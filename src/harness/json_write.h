/**
 * @file
 * Minimal JSON writing helpers shared by every hand-rolled emitter.
 *
 * The repository writes its JSON by hand so each format's field order
 * stays documented at the call site (sweep exports, run reports, Chrome
 * traces, the farm wire protocol).  What must NOT be hand-rolled per
 * site is string escaping: three emitters grew three disagreeing
 * escapers (one complete, one partial, one absent), which is exactly
 * the kind of drift that corrupts a file the first time a path with a
 * backslash lands in a label.  This header is the one escaper — and the
 * one place that guarantees u64 counters round-trip exactly (decimal
 * text, never through a double) to match json_parse.h's raw-token
 * numbers on the way back in.
 */
#ifndef RNR_HARNESS_JSON_WRITE_H
#define RNR_HARNESS_JSON_WRITE_H

#include <cstdint>
#include <string>

namespace rnr {

/**
 * The contents of a JSON string literal for @p s: ", \ and control
 * characters escaped (\n, \t, \uXXXX), everything else byte-preserved.
 * Returns the escaped text WITHOUT the surrounding quotes.
 */
std::string jsonEscape(const std::string &s);

/** @p s as a complete JSON string literal, quotes included. */
std::string jsonQuote(const std::string &s);

/** Exact decimal rendering of @p v (never routed through a double). */
std::string jsonU64(std::uint64_t v);

/**
 * @p v as a JSON number token: finite values with enough digits to
 * round-trip ("%.17g" trimmed), non-finite values as 0 (JSON has no
 * NaN/Infinity).
 */
std::string jsonDouble(double v);

/** "true" / "false". */
const char *jsonBool(bool v);

} // namespace rnr

#endif // RNR_HARNESS_JSON_WRITE_H
