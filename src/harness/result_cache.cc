#include "harness/result_cache.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/file_lock.h"
#include "obs/metrics.h"

#ifdef _WIN32
#include <process.h>
#define rnr_getpid _getpid
#else
#include <unistd.h>
#define rnr_getpid getpid
#endif

namespace rnr {

namespace {

// Null when RNR_METRICS=0 — the shared "free when off" gate.
struct CacheMetrics {
    obs::Counter *hits;
    obs::Counter *misses;
    obs::Counter *merges;
    CacheMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        hits = reg.counter("rnr_cache_hits_total");
        misses = reg.counter("rnr_cache_misses_total");
        merges = reg.counter("rnr_cache_merges_total");
    }
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

std::string
ResultCache::serialize(const ExperimentResult &r)
{
    std::ostringstream os;
    os << r.input_bytes << " " << r.target_bytes << " "
       << r.seq_table_bytes << " " << r.div_table_bytes << " "
       << r.iterations.size();
    // Field order comes from the X-macro: the single source of truth
    // shared with IterStats itself, so codec and struct cannot drift.
    for (const IterStats &it : r.iterations) {
#define RNR_WRITE_FIELD(type, name) os << " " << it.name;
        RNR_ITER_STAT_FIELDS(RNR_WRITE_FIELD)
#undef RNR_WRITE_FIELD
    }
    return os.str();
}

bool
ResultCache::deserialize(const std::string &value, ExperimentResult &r)
{
    std::istringstream is(value);
    std::size_t n = 0;
    if (!(is >> r.input_bytes >> r.target_bytes >> r.seq_table_bytes >>
          r.div_table_bytes >> n))
        return false;
    r.iterations.clear();
    for (std::size_t i = 0; i < n; ++i) {
        IterStats it;
        bool ok = true;
#define RNR_READ_FIELD(type, name)                                          \
        ok = ok && static_cast<bool>(is >> it.name);
        RNR_ITER_STAT_FIELDS(RNR_READ_FIELD)
#undef RNR_READ_FIELD
        if (!ok)
            return false;
        r.iterations.push_back(it);
    }
    return !r.iterations.empty();
}

std::string
ResultCache::filePath()
{
    if (const char *p = std::getenv("RNR_CACHE_FILE"))
        return p;
    return "rnr_results.cache";
}

bool
ResultCache::persistenceEnabled()
{
    const char *p = std::getenv("RNR_CACHE");
    return !(p && std::string(p) == "0");
}

void
ResultCache::ensureLoadedLocked()
{
    const std::string path = persistenceEnabled() ? filePath() : "";
    if (loaded_ && path == loaded_path_)
        return;
    lines_.clear();
    corrupt_lines_ = 0;
    loaded_path_ = path;
    loaded_ = true;
    if (path.empty())
        return;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto bar = line.find('|');
        if (bar == std::string::npos) {
            ++corrupt_lines_;
            continue;
        }
        // Validate now so a truncated write never poisons a lookup.
        ExperimentResult probe;
        if (!deserialize(line.substr(bar + 1), probe)) {
            ++corrupt_lines_;
            continue;
        }
        lines_[line.substr(0, bar)] = line.substr(bar + 1);
    }
}

void
ResultCache::mergeFromDiskLocked()
{
    std::ifstream in(loaded_path_);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto bar = line.find('|');
        if (bar == std::string::npos)
            continue;
        std::string key = line.substr(0, bar);
        if (lines_.count(key))
            continue; // ours wins (results are deterministic anyway)
        ExperimentResult probe;
        std::string value = line.substr(bar + 1);
        if (deserialize(value, probe))
            lines_.emplace(std::move(key), std::move(value));
    }
}

void
ResultCache::rewriteFileLocked()
{
    if (loaded_path_.empty())
        return;
    // Serialise concurrent *processes* (farm workers, a warm daemon)
    // through a sidecar flock, and fold in whatever they published
    // since we loaded, so a whole-file rewrite never drops their lines.
    // The lock degrades to a no-op where unsupported — then we are back
    // to the single-process guarantee, which the rename still provides.
    FileLock lock(loaded_path_ + ".lock", FileLock::Mode::Block);
    if (lock.held())
        mergeFromDiskLocked();

    const std::string tmp =
        loaded_path_ + ".tmp." + std::to_string(rnr_getpid());
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (!out)
        return; // unwritable location: keep going without persistence
    bool ok = true;
    for (const auto &[key, value] : lines_) {
        if (std::fprintf(out, "%s|%s\n", key.c_str(), value.c_str()) < 0) {
            ok = false;
            break;
        }
    }
    // fsync BEFORE the rename: once the new name is visible it must
    // carry every byte, or a crash between rename and writeback could
    // leave a torn final line for the next loader (tolerated, but each
    // tolerated line is a lost result).
    ok = ok && std::fflush(out) == 0;
#ifndef _WIN32
    ok = ok && ::fsync(fileno(out)) == 0;
#endif
    ok = std::fclose(out) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), loaded_path_.c_str()) != 0)
        std::remove(tmp.c_str());
}

bool
ResultCache::lookup(const ExperimentConfig &cfg, ExperimentResult &out)
{
    const std::string key = cfg.key();
    std::lock_guard<std::mutex> lock(mu_);
    auto mit = memo_.find(key);
    if (mit != memo_.end()) {
        if (obs::Counter *c = cacheMetrics().hits)
            c->add();
        out = mit->second;
        return true;
    }
    ensureLoadedLocked();
    auto fit = lines_.find(key);
    if (fit == lines_.end()) {
        if (obs::Counter *c = cacheMetrics().misses)
            c->add();
        return false;
    }
    ExperimentResult r;
    r.config = cfg;
    if (!deserialize(fit->second, r)) {
        if (obs::Counter *c = cacheMetrics().misses)
            c->add();
        return false; // pre-validated at load, but stay defensive
    }
    memo_[key] = r;
    if (obs::Counter *c = cacheMetrics().hits)
        c->add();
    out = r;
    return true;
}

void
ResultCache::store(const std::string &key, const ExperimentResult &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    memo_[key] = r;
    ensureLoadedLocked();
    if (loaded_path_.empty())
        return;
    lines_[key] = serialize(r);
    rewriteFileLocked();
}

void
ResultCache::noteExternal(const std::string &key,
                          const ExperimentResult &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    memo_[key] = r;
    if (obs::Counter *c = cacheMetrics().merges)
        c->add();
}

std::size_t
ResultCache::corruptLinesSkipped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return corrupt_lines_;
}

void
ResultCache::clearForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    memo_.clear();
    lines_.clear();
    loaded_path_.clear();
    loaded_ = false;
    corrupt_lines_ = 0;
}

} // namespace rnr
