/**
 * @file
 * Sweep-level run reports: one JSON document plus one self-contained
 * HTML dashboard per batch of experiment cells.
 *
 * The sweep JSON export (harness/sweep.h) answers "what were the
 * counters"; a report answers "what did the run look like" — every
 * cell's time-series telemetry (sim/timeseries.h) rendered as inline-SVG
 * sparklines, the latency histograms as bar charts, the Fig 6-13
 * derived metrics (harness/metrics.h) tabulated against the
 * no-prefetcher baseline, and per-cell host profiling (wall clock, peak
 * RSS, result-cache / trace-store hit state).
 *
 * Report generation always simulates (runExperimentInstrumented with a
 * live sampler) — a result-cache hit would carry no telemetry — but the
 * trace store still accelerates it: every cell of one workload replays
 * the same captured trace.
 *
 * Output formats:
 *  - `<prefix>.json`, schema "rnr-report-v1": machine-readable; cells
 *    with config/key, per-iteration counters, derived metrics, host
 *    profile and the full telemetry blob (series points as
 *    [tick, value] pairs).
 *  - `<prefix>.html`: a single file with inline CSS/SVG and zero
 *    external fetches, so it can be archived or attached to CI runs
 *    and opened anywhere.
 *
 * Environment:
 *   RNR_SAMPLE_CYCLES=<n>  sampling period for the cells (default 8192)
 *   RNR_REPORT_OUT=<p>     output prefix for `trace_tools report`
 *
 * See docs/HARNESS.md section 13.
 */
#ifndef RNR_HARNESS_REPORT_H
#define RNR_HARNESS_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace rnr {

/** One simulated cell plus what producing it cost on the host. */
struct ReportCell {
    ExperimentResult result;
    double wall_sec = 0;
    std::uint64_t peak_rss_bytes = 0; ///< Process HWM after the cell.
    bool result_cache_hit = false; ///< A cached result existed (unused).
    bool trace_store_hit = false;  ///< Replayed from the trace corpus.
    bool trace_store_captured = false; ///< This cell captured the trace.
};

/** A full report: every cell of one labelled batch. */
struct SweepReport {
    std::string label = "report";
    Tick sample_cycles = 0; ///< Effective period used for every cell.
    std::vector<ReportCell> cells;
};

/**
 * Simulates every config in @p cfgs with telemetry forced on (period
 * @p sample_cycles, 0 = env/default) and collects the cells.  Bypasses
 * the result cache by construction; uses the trace store when enabled.
 */
SweepReport buildSweepReport(const std::vector<ExperimentConfig> &cfgs,
                             const std::string &label = "report",
                             Tick sample_cycles = 0);

/** The report as an "rnr-report-v1" JSON document. */
std::string reportJson(const SweepReport &rep);

/** The report as one self-contained HTML page (no external fetches). */
std::string reportHtml(const SweepReport &rep);

/**
 * Writes `<prefix>.json` and `<prefix>.html` atomically (temp +
 * rename).  Returns false if either write failed.
 */
bool writeReport(const std::string &prefix, const SweepReport &rep);

/** $RNR_REPORT_OUT, or "" when unset. */
std::string reportEnvOutPrefix();

} // namespace rnr

#endif // RNR_HARNESS_REPORT_H
