/**
 * @file
 * Experiment configuration and raw results.
 *
 * One ExperimentConfig names a cell of the evaluation matrix (workload x
 * input x prefetcher x RnR options); the runner simulates it and returns
 * per-iteration counter snapshots from which every figure's metric is
 * derived (harness/metrics.h).
 */
#ifndef RNR_HARNESS_EXPERIMENT_H
#define RNR_HARNESS_EXPERIMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/replay_control.h"
#include "prefetch/factory.h"
#include "sim/types.h"

namespace rnr {

/** One cell of the evaluation matrix. */
struct ExperimentConfig {
    std::string app = "pagerank";   ///< pagerank | hyperanf | spcg.
    std::string input = "urand";    ///< Table III input name.
    PrefetcherKind prefetcher = PrefetcherKind::None;
    ReplayControlMode control = ReplayControlMode::WindowPace;
    std::uint32_t window_size = 0;  ///< 0 = hardware default (half L2).
    unsigned iterations = 3;        ///< Simulated iterations.
    unsigned cores = 4;
    bool ideal_llc = false;         ///< Fig 6's "ideal" bar.

    /** Stable cache key / display id. */
    std::string key() const;
};

/** Counter snapshot for one simulated iteration (summed over cores). */
struct IterStats {
    Tick cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_demand_misses = 0; ///< true misses (no merges)
    std::uint64_t pf_issued = 0;
    std::uint64_t pf_useful = 0;        ///< demand hits on prefetched lines
    std::uint64_t pf_late_merged = 0;   ///< demands merged into prefetches
    std::uint64_t dram_bytes_total = 0;
    std::uint64_t dram_bytes_demand = 0;
    std::uint64_t dram_bytes_prefetch = 0;
    std::uint64_t dram_bytes_metadata = 0;
    std::uint64_t dram_bytes_writeback = 0;
    std::uint64_t rnr_ontime = 0;
    std::uint64_t rnr_early = 0;
    std::uint64_t rnr_late = 0;
    std::uint64_t rnr_out_of_window = 0;
    std::uint64_t rnr_recorded = 0;     ///< misses recorded this iteration
};

/** Full raw result of one experiment. */
struct ExperimentResult {
    ExperimentConfig config;
    std::vector<IterStats> iterations;
    std::uint64_t input_bytes = 0;    ///< workload input footprint
    std::uint64_t target_bytes = 0;   ///< irregular structure footprint
    std::uint64_t seq_table_bytes = 0; ///< peak RnR metadata (Fig 13)
    std::uint64_t div_table_bytes = 0;

    const IterStats &first() const { return iterations.front(); }
    /** Steady-state iteration (the last simulated one). */
    const IterStats &steady() const { return iterations.back(); }
};

} // namespace rnr

#endif // RNR_HARNESS_EXPERIMENT_H
