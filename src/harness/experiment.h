/**
 * @file
 * Experiment configuration and raw results.
 *
 * One ExperimentConfig names a cell of the evaluation matrix (workload x
 * input x prefetcher x RnR options); the runner simulates it and returns
 * per-iteration counter snapshots from which every figure's metric is
 * derived (harness/metrics.h).
 */
#ifndef RNR_HARNESS_EXPERIMENT_H
#define RNR_HARNESS_EXPERIMENT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/replay_control.h"
#include "prefetch/factory.h"
#include "sim/types.h"

namespace rnr {

struct AttribBlob;
struct TelemetryBlob;

/**
 * Observability knobs (sim/trace_event.h), carried by ExperimentConfig.
 *
 * Deliberately excluded from ExperimentConfig::key(): tracing is
 * observation-only (a traced run's counters are bit-identical to an
 * untraced run's), so the results are interchangeable cache-wise.  The
 * flip side: runExperiment() may satisfy a traced config from the cache
 * without simulating, producing no events — call runExperimentTraced()
 * when events are the point.
 */
struct TraceOptions {
    bool enabled = false;      ///< Collect events (or RNR_TRACE=1).
    std::string json_out;      ///< Chrome-trace path ("" = RNR_TRACE_OUT).
    std::size_t ring_capacity = 0; ///< Events/track; 0 = env or default.
};

/**
 * Time-series sampling knobs (sim/timeseries.h), carried by
 * ExperimentConfig.  Excluded from key()/workloadKey() for the same
 * reason as TraceOptions: sampling is observation-only (a sampled run's
 * IterStats are bit-identical to an unsampled run's), so results are
 * cache-interchangeable.  A cache hit carries no telemetry blob — run
 * with the cache disabled (or via harness/report.h) when the series are
 * the point.
 */
struct TelemetryOptions {
    bool enabled = false;    ///< Sample counters (or RNR_SAMPLE_CYCLES).
    Tick sample_cycles = 0;  ///< Sampling period; 0 = env or default.
};

/**
 * Prefetch-quality attribution knobs (sim/attrib.h), carried by
 * ExperimentConfig.  Excluded from key() like the other observability
 * options: attribution is observation-only (an attributed run's
 * IterStats are bit-identical to an unattributed run's), so results are
 * cache-interchangeable.  A cache hit carries no attrib blob — disable
 * the cache (or go through harness/report.h, which does) when the
 * per-site tables are the point.
 */
struct AttribOptions {
    bool enabled = false;       ///< Collect attribution (or RNR_ATTRIB=1).
    std::size_t site_top_k = 0;   ///< Sites kept exactly; 0 = default (64).
    std::size_t region_top_k = 0; ///< Regions kept exactly; 0 = default.
};

/** "none" / "window" / "window+pace" (sweep JSON, reports, farm). */
const char *replayControlName(ReplayControlMode mode);

/** Inverse of replayControlName(); false on an unknown name. */
bool replayControlFromName(const std::string &name,
                           ReplayControlMode &out);

/** One cell of the evaluation matrix. */
struct ExperimentConfig {
    std::string app = "pagerank";   ///< pagerank | hyperanf | spcg.
    std::string input = "urand";    ///< Table III input name.
    PrefetcherKind prefetcher = PrefetcherKind::None;
    ReplayControlMode control = ReplayControlMode::WindowPace;
    std::uint32_t window_size = 0;  ///< 0 = hardware default (half L2).
    unsigned iterations = 3;        ///< Simulated iterations.
    unsigned cores = 4;
    bool ideal_llc = false;         ///< Fig 6's "ideal" bar.
    TraceOptions trace;             ///< Observation-only; not in key().
    TelemetryOptions telemetry;     ///< Observation-only; not in key().
    AttribOptions attrib;           ///< Observation-only; not in key().

    /**
     * Workload half of the key: every field that shapes the *emitted
     * trace* (app, input, window size, iterations, cores) and nothing
     * that only shapes the simulation.  This is what the trace store
     * keys entries by — the 6+ prefetcher configs of one figure row all
     * replay the one trace captured under this key.  window_size stays
     * in: it changes the WindowSize.set control payload in the trace.
     */
    std::string workloadKey() const;

    /** Stable cache key / display id: workloadKey() plus the
     *  simulation-only fields (prefetcher, control mode, ideal LLC). */
    std::string key() const;
};

/**
 * X-macro over every per-iteration counter field, in the order they are
 * declared, serialized (result cache), and exported (sweep JSON).  This
 * is the single source of truth shared by IterStats, SystemCounters
 * (harness/system_counters.h), the cache codec and the JSON writer —
 * adding a field here propagates everywhere.
 *
 * The order is ABI for the on-disk result cache: appending at the end is
 * the only compatible change (and still invalidates old cache files,
 * which self-describe via their header line).
 *
 * Field semantics:
 *   cycles / instructions     filled from IterationResult, not counters
 *   l2_demand_misses          true misses (MSHR merges excluded)
 *   pf_useful                 demand hits on prefetched lines
 *   pf_late_merged            demands merged into in-flight prefetches
 *   rnr_*                     Fig 11 timeliness taxonomy
 *   rnr_recorded              misses recorded this iteration
 */
#define RNR_ITER_STAT_FIELDS(X)                                             \
    X(Tick, cycles)                                                         \
    X(std::uint64_t, instructions)                                          \
    X(std::uint64_t, l2_accesses)                                           \
    X(std::uint64_t, l2_demand_misses)                                      \
    X(std::uint64_t, pf_issued)                                             \
    X(std::uint64_t, pf_useful)                                             \
    X(std::uint64_t, pf_late_merged)                                        \
    X(std::uint64_t, dram_bytes_total)                                      \
    X(std::uint64_t, dram_bytes_demand)                                     \
    X(std::uint64_t, dram_bytes_prefetch)                                   \
    X(std::uint64_t, dram_bytes_metadata)                                   \
    X(std::uint64_t, dram_bytes_writeback)                                  \
    X(std::uint64_t, rnr_ontime)                                            \
    X(std::uint64_t, rnr_early)                                             \
    X(std::uint64_t, rnr_late)                                              \
    X(std::uint64_t, rnr_out_of_window)                                     \
    X(std::uint64_t, rnr_recorded)

/** Counter snapshot for one simulated iteration (summed over cores). */
struct IterStats {
#define RNR_DEFINE_FIELD(type, name) type name = 0;
    RNR_ITER_STAT_FIELDS(RNR_DEFINE_FIELD)
#undef RNR_DEFINE_FIELD
};

/** Full raw result of one experiment. */
struct ExperimentResult {
    ExperimentConfig config;
    std::vector<IterStats> iterations;
    std::uint64_t input_bytes = 0;    ///< workload input footprint
    std::uint64_t target_bytes = 0;   ///< irregular structure footprint
    std::uint64_t seq_table_bytes = 0; ///< peak RnR metadata (Fig 13)
    std::uint64_t div_table_bytes = 0;

    /** Harvested time-series/histograms when sampling was on; null
     *  otherwise (and always null on result-cache hits — the cache
     *  codec stores counters only). */
    std::shared_ptr<const TelemetryBlob> telemetry;

    /** Per-site/per-region attribution tables when attribution was on;
     *  null otherwise (and always null on result-cache hits). */
    std::shared_ptr<const AttribBlob> attrib;

    const IterStats &first() const { return iterations.front(); }
    /** Steady-state iteration (the last simulated one). */
    const IterStats &steady() const { return iterations.back(); }
};

} // namespace rnr

#endif // RNR_HARNESS_EXPERIMENT_H
