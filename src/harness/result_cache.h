/**
 * @file
 * Thread-safe experiment result cache (in-process memo + file persistence).
 *
 * The cache has two layers, both keyed by ExperimentConfig::key():
 *
 *  1. an in-process memo (mutex-guarded map) that makes repeated
 *     runExperiment() calls within one binary free, and
 *  2. an optional on-disk text file (one "key|value" line per result,
 *     see docs/HARNESS.md for the exact field order) shared by every
 *     bench binary run from the same working directory.
 *
 * File persistence is crash- and concurrency-safe: every store rewrites
 * the whole file through a process-unique temporary that is fsync'd and
 * then renamed into place (rename(2) is atomic on POSIX), so readers
 * never observe a torn line and a worker killed mid-publish leaves the
 * previous file intact — the temp either carries every byte or is never
 * renamed.  Cross-process, the rewrite holds an advisory flock on
 * "<path>.lock" (harness/file_lock.h) and re-merges the on-disk file
 * first, so concurrent farm workers append to, never clobber, each
 * other's results.  The loader tolerates corrupt lines: anything that
 * does not parse (including a torn final line from a pre-fsync crash)
 * is counted and skipped, never fatal.
 *
 * Environment:
 *   RNR_CACHE=0            disable file persistence (memo still active)
 *   RNR_CACHE_FILE=<path>  move the file (default "rnr_results.cache")
 */
#ifndef RNR_HARNESS_RESULT_CACHE_H
#define RNR_HARNESS_RESULT_CACHE_H

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "harness/experiment.h"

namespace rnr {

/** Process-wide, thread-safe two-layer result cache. */
class ResultCache
{
  public:
    /** The process-wide instance used by runExperiment(). */
    static ResultCache &instance();

    /**
     * Looks @p cfg up in the memo, then in the file cache.  On a hit
     * fills @p out (with out.config = cfg) and returns true.
     */
    bool lookup(const ExperimentConfig &cfg, ExperimentResult &out);

    /** Memoises @p r and, if persistence is enabled, rewrites the file. */
    void store(const std::string &key, const ExperimentResult &r);

    /**
     * Memo-only store for a result another *process* already persisted
     * (a farm worker's, streamed back to the daemon): later lookups hit
     * without re-reading the file, and the file — which that worker
     * just rewrote under its flock — is not redundantly rewritten.
     */
    void noteExternal(const std::string &key, const ExperimentResult &r);

    /** Lines skipped by the loader because they failed to parse. */
    std::size_t corruptLinesSkipped() const;

    /**
     * Drops the memo and any loaded file state so the next lookup
     * re-reads $RNR_CACHE / $RNR_CACHE_FILE.  Tests that repoint the
     * cache file mid-process must call this; production code never
     * needs to.
     */
    void clearForTest();

    // -- serialisation (exposed for tests and the JSON exporter) --

    /** One cache line's value part: space-separated decimal fields. */
    static std::string serialize(const ExperimentResult &r);

    /** Parses a value part; returns false (partial @p r) on corruption. */
    static bool deserialize(const std::string &value, ExperimentResult &r);

    /** Current cache file path ($RNR_CACHE_FILE or rnr_results.cache). */
    static std::string filePath();

    /** False iff $RNR_CACHE is exactly "0". */
    static bool persistenceEnabled();

  private:
    ResultCache() = default;

    /** (Re)loads the file into lines_ if the target path changed. */
    void ensureLoadedLocked();
    /** Folds lines other processes published since we loaded into
     *  lines_ (existing keys win); called under the file lock. */
    void mergeFromDiskLocked();
    void rewriteFileLocked();

    mutable std::mutex mu_;
    std::map<std::string, ExperimentResult> memo_;
    std::map<std::string, std::string> lines_; ///< key -> serialized value
    std::string loaded_path_;                  ///< "" = nothing loaded yet
    bool loaded_ = false;
    std::size_t corrupt_lines_ = 0;
};

} // namespace rnr

#endif // RNR_HARNESS_RESULT_CACHE_H
