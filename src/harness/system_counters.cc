#include "harness/system_counters.h"

#include "cpu/system.h"
#include "prefetch/factory.h"

namespace rnr {

SystemCounters
SystemCounters::capture(System &sys)
{
    SystemCounters s;
    for (unsigned c = 0; c < sys.coreCount(); ++c) {
        const CacheCounters &l2 = sys.mem().l2(c).ctr();
        s.l2_accesses += l2.accesses.value();
        s.l2_demand_misses += l2.misses.value() - l2.mshr_merges.value();
        s.pf_issued += l2.prefetches_issued.value();
        s.pf_useful += l2.prefetch_useful.value();
        s.pf_late_merged += l2.demand_merged_into_prefetch.value();
        if (const RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c))) {
            const RnrPrefetcher::Counters &rc = r->ctr();
            s.rnr_ontime += rc.pf_ontime.value();
            s.rnr_early += rc.pf_early.value();
            s.rnr_late += rc.pf_late.value();
            s.rnr_out_of_window += rc.pf_out_of_window.value();
            s.rnr_recorded += rc.recorded_misses.value();
        }
    }
    const DramCounters &d = sys.mem().dram().ctr();
    s.dram_bytes_total = d.bytes_total.value();
    const auto origin = [&d](ReqOrigin o) {
        return d.bytes_by_origin[static_cast<int>(o)]->value();
    };
    s.dram_bytes_demand = origin(ReqOrigin::Demand);
    s.dram_bytes_prefetch = origin(ReqOrigin::Prefetch);
    s.dram_bytes_metadata = origin(ReqOrigin::Metadata);
    s.dram_bytes_writeback = origin(ReqOrigin::Writeback);
    return s;
}

IterStats
SystemCounters::delta(const SystemCounters &before) const
{
    IterStats d;
#define RNR_DELTA_FIELD(type, name) d.name = name - before.name;
    RNR_ITER_STAT_FIELDS(RNR_DELTA_FIELD)
#undef RNR_DELTA_FIELD
    return d;
}

} // namespace rnr
