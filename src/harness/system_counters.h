/**
 * @file
 * Typed snapshot of the cumulative system counters an IterStats delta is
 * derived from.
 *
 * The fields mirror IterStats exactly — both structs are generated from
 * RNR_ITER_STAT_FIELDS (harness/experiment.h), so the runner's
 * snapshot/delta arithmetic, the cache codec and the JSON export can
 * never drift apart.  capture() reads the components' pre-declared
 * Counter handles directly (CacheCounters, DramCounters,
 * RnrPrefetcher::Counters); no string-keyed lookup happens per
 * iteration.
 *
 * cycles and instructions are not cumulative hardware counters — the
 * runner fills them from IterationResult after the delta — so capture()
 * leaves them zero.
 */
#ifndef RNR_HARNESS_SYSTEM_COUNTERS_H
#define RNR_HARNESS_SYSTEM_COUNTERS_H

#include "harness/experiment.h"

namespace rnr {

class System;

struct SystemCounters {
#define RNR_DEFINE_FIELD(type, name) type name = 0;
    RNR_ITER_STAT_FIELDS(RNR_DEFINE_FIELD)
#undef RNR_DEFINE_FIELD

    /** Reads every counter handle of @p sys (summed over cores). */
    static SystemCounters capture(System &sys);

    /** Per-iteration view: field-wise `*this - before`. */
    IterStats delta(const SystemCounters &before) const;
};

} // namespace rnr

#endif // RNR_HARNESS_SYSTEM_COUNTERS_H
