/**
 * @file
 * Advisory whole-file lock (flock) for cross-process publish discipline.
 *
 * The result cache and the trace store both follow "write a temp,
 * rename into place" — atomic against readers, but two *processes*
 * publishing concurrently could still duplicate work (both capture the
 * same workload) or lose each other's cache lines (both rewrite the
 * whole file).  Farm workers make that the common case, so both stores
 * now serialise their publish sections with an advisory flock(2) on a
 * sidecar lock file.
 *
 * Properties that make flock the right tool here:
 *  - released automatically when the process dies (SIGKILLed workers
 *    can never wedge the farm);
 *  - advisory: a reader that ignores the lock still sees consistent
 *    data thanks to the atomic rename — the lock only prevents
 *    duplicated or lost *work*;
 *  - degrades to a no-op where unsupported (Windows, exotic
 *    filesystems): held() is false and callers proceed with the
 *    PR 1-era single-process guarantees.
 */
#ifndef RNR_HARNESS_FILE_LOCK_H
#define RNR_HARNESS_FILE_LOCK_H

#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace rnr {

/** RAII advisory lock on a sidecar file; move-only. */
class FileLock
{
  public:
    enum class Mode {
        Block, ///< wait for the lock
        Try,   ///< LOCK_NB: fail immediately if another process holds it
    };

    FileLock() = default;
    FileLock(const std::string &path, Mode mode) { acquire(path, mode); }

    FileLock(FileLock &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    FileLock &operator=(FileLock &&other) noexcept
    {
        if (this != &other) {
            release();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    ~FileLock() { release(); }

    /** Takes the lock; returns held().  Open/lock failures (including
     *  Mode::Try contention) leave the lock unheld, never throw. */
    bool
    acquire(const std::string &path, Mode mode)
    {
        release();
#ifndef _WIN32
        const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                              0644);
        if (fd < 0)
            return false;
        const int op = LOCK_EX | (mode == Mode::Try ? LOCK_NB : 0);
        int rc;
        do {
            rc = ::flock(fd, op);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) {
            ::close(fd);
            return false;
        }
        fd_ = fd;
#else
        (void)path;
        (void)mode;
#endif
        return held();
    }

    void
    release()
    {
#ifndef _WIN32
        if (fd_ >= 0)
            ::close(fd_); // closing drops the flock
#endif
        fd_ = -1;
    }

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

} // namespace rnr

#endif // RNR_HARNESS_FILE_LOCK_H
