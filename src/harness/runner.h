/**
 * @file
 * Experiment runner: builds the machine, the workload and the per-core
 * prefetchers for an ExperimentConfig, simulates the requested number of
 * algorithm iterations and collects the per-iteration counters.
 *
 * Results are cached (in-process and, optionally, in a small text file)
 * keyed by ExperimentConfig::key(), so the per-figure bench binaries can
 * share one simulation of each matrix cell instead of re-simulating.
 */
#ifndef RNR_HARNESS_RUNNER_H
#define RNR_HARNESS_RUNNER_H

#include <memory>
#include <string>

#include "harness/experiment.h"
#include "workloads/workload.h"

namespace rnr {

/** Instantiates the workload named by @p cfg (app + input). */
std::unique_ptr<Workload> makeWorkload(const ExperimentConfig &cfg);

/** Simulates @p cfg (no caching). */
ExperimentResult runExperimentUncached(const ExperimentConfig &cfg);

/**
 * Simulates @p cfg, consulting the in-process cache and the file cache
 * (path from $RNR_CACHE_FILE, default "rnr_results.cache" in the working
 * directory; set RNR_CACHE=0 to disable persistence).
 */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/** Convenience: the no-prefetcher baseline matching @p cfg. */
ExperimentResult runBaseline(const ExperimentConfig &cfg);

} // namespace rnr

#endif // RNR_HARNESS_RUNNER_H
