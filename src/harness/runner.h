/**
 * @file
 * Experiment runner: builds the machine, the workload and the per-core
 * prefetchers for an ExperimentConfig, simulates the requested number of
 * algorithm iterations and collects the per-iteration counters.
 *
 * Results are cached through harness/result_cache.h (in-process memo +
 * optional text file) keyed by ExperimentConfig::key(), so the per-figure
 * bench binaries share one simulation of each matrix cell instead of
 * re-simulating.  runExperiment() is thread-safe and single-flight:
 * concurrent calls with the same key block on one simulation instead of
 * racing — this is what lets SweepRunner (harness/sweep.h) saturate every
 * core on a cold cache.
 *
 * Below the result cache sits the trace store (tracestore/trace_store.h,
 * RNR_TRACE_STORE=0 to disable): the first simulation of a workload key
 * captures the emitted trace into a compressed on-disk corpus; every
 * further simulation of that workload — different prefetcher, control
 * mode or ideal-LLC setting, another process, another day — replays the
 * stored trace block-by-block instead of re-executing the workload
 * natively.  Replay is counter-for-counter identical to native emission
 * (tests/harness/trace_replay_test.cc asserts bit-equality).
 */
#ifndef RNR_HARNESS_RUNNER_H
#define RNR_HARNESS_RUNNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/trace_event.h"
#include "workloads/workload.h"

namespace rnr {

class AttribCollector;
class TelemetrySampler;

/** Instantiates the workload named by @p cfg (app + input). */
std::unique_ptr<Workload> makeWorkload(const ExperimentConfig &cfg);

/**
 * Simulates @p cfg (no caching, no locking).  When cfg.trace.enabled or
 * RNR_TRACE=1, a TraceCollector rides along for the whole run and the
 * sinks fire afterwards: the Chrome-trace JSON goes to cfg.trace.json_out
 * (or $RNR_TRACE_OUT) and the per-window replay report to stderr when
 * RNR_TRACE_REPORT=1.  Tracing never changes the returned counters.
 */
ExperimentResult runExperimentUncached(const ExperimentConfig &cfg);

/**
 * Simulates @p cfg with events collected into @p tr (caller-owned; must
 * be built for cfg.cores tracks).  Always simulates — never consults or
 * populates the result cache — because a cache hit would return counters
 * without ever generating events.  Pass tr = nullptr to just bypass the
 * cache.
 */
ExperimentResult runExperimentTraced(const ExperimentConfig &cfg,
                                     TraceCollector *tr);

/**
 * Fully instrumented variant: events into @p tr and periodic counter
 * samples into @p tm (both caller-owned, either may be null).  Like
 * runExperimentTraced it always simulates — a cache hit would produce
 * neither events nor samples.  The harvested series additionally land on
 * the returned result as ExperimentResult::telemetry when @p tm is
 * non-null.  Neither instrument changes the returned counters
 * (tests/harness/report_test.cc asserts bit-equality for sampling).
 */
ExperimentResult runExperimentInstrumented(const ExperimentConfig &cfg,
                                           TraceCollector *tr,
                                           TelemetrySampler *tm);

/**
 * The fully loaded variant: events into @p tr, samples into @p tm and
 * prefetch-quality attribution into @p at (all caller-owned, any may be
 * null).  Always simulates, like the other instrumented entry points.
 * When @p at is non-null its harvest lands on the returned result as
 * ExperimentResult::attrib and is mirrored into the process metrics
 * registry (sim/attrib.h).  Attribution never changes the returned
 * counters (tests/sim/attrib_test.cc asserts bit-equality).
 */
ExperimentResult runExperimentAttributed(const ExperimentConfig &cfg,
                                         TraceCollector *tr,
                                         TelemetrySampler *tm,
                                         AttribCollector *at);

/**
 * Simulates @p cfg, consulting the in-process cache and the file cache
 * (path from $RNR_CACHE_FILE, default "rnr_results.cache" in the working
 * directory; set RNR_CACHE=0 to disable persistence).
 *
 * Thread-safe.  If @p was_cached is non-null it is set to true when the
 * result came from either cache layer (or from another thread's
 * concurrent in-flight simulation of the same key) and false when this
 * call ran the simulation itself.
 */
ExperimentResult runExperiment(const ExperimentConfig &cfg,
                               bool *was_cached = nullptr);

/**
 * Simulates @p cfg start to finish (uncached, uninstrumented) and
 * additionally serializes the complete simulation state — caches,
 * MSHRs, DRAM queues, TLBs, cores, every prefetcher including the RnR
 * tables/FSM, plus the per-iteration results so far — into
 * @p snapshot_out as an rnr-ckpt-v1 blob after @p window iterations
 * complete.  @p window must be in [1, cfg.iterations).  The returned
 * result is bit-identical to an unsnapshotted run.
 */
ExperimentResult
runExperimentCheckpointed(const ExperimentConfig &cfg, unsigned window,
                          std::vector<std::uint8_t> &snapshot_out);

/**
 * Restores the state captured by runExperimentCheckpointed() and
 * continues to cfg.iterations.  The workload is fast-forwarded
 * natively (its numerics re-run; nothing is simulated), then the
 * System/Prefetchers/Harness sections are loaded, so the returned
 * result is bit-identical to the uninterrupted run — under either
 * RNR_KERNEL mode, including the one that did not capture.  Throws
 * ckpt::CorruptSnapshot on a truncated/corrupt/mismatched blob.
 */
ExperimentResult
runExperimentFromSnapshot(const ExperimentConfig &cfg,
                          const std::vector<std::uint8_t> &snapshot);

/**
 * CheckpointStore front door for full snapshots: restore-and-continue
 * when the store holds (cfg.key(), window), else simulate from the
 * start, snapshotting at @p window and publishing for the next caller
 * (single-flight across threads and farm worker processes).  A
 * corrupt snapshot is quarantined and re-produced once before giving
 * up on the store.  RNR_CKPT=0 always simulates from the start.
 */
ExperimentResult runExperimentResumable(const ExperimentConfig &cfg,
                                        unsigned window);

/** Convenience: the no-prefetcher baseline matching @p cfg. */
ExperimentResult runBaseline(const ExperimentConfig &cfg);

/**
 * Number of simulations this process actually ran (cache misses in
 * runExperiment plus direct runExperimentUncached calls).  Monotonic;
 * used by the concurrency tests to assert single-flight behaviour.
 */
std::uint64_t experimentsSimulated();

} // namespace rnr

#endif // RNR_HARNESS_RUNNER_H
