#include "harness/sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#ifdef _WIN32
#include <io.h>
#include <process.h>
#define rnr_isatty _isatty
#define rnr_fileno _fileno
#define rnr_getpid _getpid
#else
#include <unistd.h>
#define rnr_isatty isatty
#define rnr_fileno fileno
#define rnr_getpid getpid
#endif

#include "ckpt/ckpt_store.h"
#include "farm/farm_client.h"
#include "harness/json_parse.h"
#include "harness/json_write.h"
#include "harness/runner.h"
#include "harness/scheduler.h"
#include "obs/log.h"
#include "tracestore/trace_store.h"

namespace rnr {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

std::uint64_t
hostPeakRssBytes()
{
#ifdef __linux__
    // VmHWM ("high water mark") is the peak resident set; the line looks
    // like "VmHWM:     12345 kB".
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            const std::uint64_t kb =
                std::strtoull(line.c_str() + 6, nullptr, 10);
            return kb * 1024;
        }
    }
#endif
    return 0;
}

std::string
formatSweepEta(std::size_t done, std::size_t total, std::size_t simulated,
               double elapsed_sec)
{
    // No signal: nothing finished, the clock has not moved, or every
    // finished cell was a warm cache hit — per-cell time then says
    // nothing about the simulations still to run.
    if (done == 0 || elapsed_sec <= 0.0 || simulated == 0)
        return "--";
    const double eta = elapsed_sec / static_cast<double>(done) *
                       static_cast<double>(total - std::min(done, total));
    if (!std::isfinite(eta))
        return "--";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0fs", eta);
    return buf;
}

namespace {

/** Serialises one result as a JSON object (no external JSON dep). */
void
appendResultJson(std::ostringstream &os, const ExperimentResult &r,
                 const char *indent)
{
    const ExperimentConfig &c = r.config;
    os << indent << "{\n";
    os << indent << "  \"key\": \"" << jsonEscape(c.key()) << "\",\n";
    os << indent << "  \"config\": {\"app\": \"" << jsonEscape(c.app)
       << "\", \"input\": \"" << jsonEscape(c.input)
       << "\", \"prefetcher\": \"" << toString(c.prefetcher)
       << "\", \"control\": \""
       << replayControlName(c.control) << "\", \"window_size\": "
       << c.window_size << ", \"iterations\": " << c.iterations
       << ", \"cores\": " << c.cores << ", \"ideal_llc\": "
       << (c.ideal_llc ? "true" : "false") << "},\n";
    os << indent << "  \"input_bytes\": " << r.input_bytes
       << ", \"target_bytes\": " << r.target_bytes
       << ", \"seq_table_bytes\": " << r.seq_table_bytes
       << ", \"div_table_bytes\": " << r.div_table_bytes << ",\n";
    os << indent << "  \"iterations\": [\n";
    for (std::size_t i = 0; i < r.iterations.size(); ++i) {
        const IterStats &it = r.iterations[i];
        os << indent << "    {";
        // Keys and order come from the IterStats X-macro, so the JSON
        // schema follows the struct automatically.
        const char *sep = "";
#define RNR_JSON_FIELD(type, name)                                          \
        os << sep << "\"" #name "\": " << it.name;                          \
        sep = ", ";
        RNR_ITER_STAT_FIELDS(RNR_JSON_FIELD)
#undef RNR_JSON_FIELD
        os << "}" << (i + 1 < r.iterations.size() ? "," : "") << "\n";
    }
    os << indent << "  ]\n";
    os << indent << "}";
}

/** Throttled stderr reporter; all methods are called under one mutex. */
class ProgressReporter
{
  public:
    ProgressReporter(bool enabled, std::string label, std::size_t total)
        : enabled_(enabled), tty_(rnr_isatty(rnr_fileno(stderr)) != 0),
          label_(std::move(label)), total_(total), start_(Clock::now())
    {
    }

    void
    cellDone(std::size_t done, std::size_t simulated, std::size_t hits)
    {
        if (!enabled_ || total_ == 0)
            return;
        // On a terminal rewrite one line per cell; in a log (CI) emit
        // roughly ten lines per sweep so the output stays readable.
        const std::size_t stride = tty_ ? 1 : std::max<std::size_t>(
                                                  1, total_ / 10);
        if (done % stride != 0 && done != total_)
            return;
        const double elapsed = secondsSince(start_);
        const std::string eta =
            formatSweepEta(done, total_, simulated, elapsed);
        std::fprintf(stderr,
                     "%s[%s] %zu/%zu cells | %zu simulated, %zu cached "
                     "| %.1fs elapsed, ETA %s%s",
                     tty_ ? "\r" : "", label_.c_str(), done, total_,
                     simulated, hits, elapsed, eta.c_str(),
                     tty_ ? "   " : "\n");
        std::fflush(stderr);
    }

    void
    finish(const SweepStats &stats, const SweepHostInfo &host,
           const std::string &backend)
    {
        if (!enabled_ || total_ == 0)
            return;
        std::fprintf(stderr,
                     "%s[%s] done: %zu cells (%zu simulated, %zu "
                     "cached, %zu duplicates folded) in %.1fs via %s\n",
                     tty_ ? "\r" : "", label_.c_str(), stats.cells,
                     stats.simulated, stats.cache_hits,
                     stats.duplicates, stats.elapsed_sec,
                     backend.c_str());
        if (stats.poisoned > 0)
            std::fprintf(stderr,
                         "[%s] WARNING: %zu cell(s) poisoned — their "
                         "results are config-only placeholders\n",
                         label_.c_str(), stats.poisoned);
        // One line of trace-store accounting: how many of the
        // simulations above re-executed a workload natively (captures)
        // versus replaying the shared corpus (hits).
        const TraceStore &ts = TraceStore::instance();
        if (TraceStore::enabled() && (ts.captures() + ts.hits()) > 0)
            std::fprintf(stderr,
                         "[%s] trace store: %llu workloads captured, "
                         "%llu replays served from %s\n",
                         label_.c_str(),
                         static_cast<unsigned long long>(ts.captures()),
                         static_cast<unsigned long long>(ts.hits()),
                         TraceStore::rootPath().c_str());
        // One line of checkpoint accounting: how many inputs this sweep
        // warmed up natively versus forked from a shared snapshot (and
        // how many full snapshots it resumed from mid-run).
        if (ckpt::CheckpointStore::enabled() &&
            (host.ckpt_warmups + host.ckpt_forks + host.ckpt_restores) >
                0)
            std::fprintf(
                stderr,
                "[%s] ckpt: %llu warm-ups, %llu forks, %llu restores "
                "from %s\n",
                label_.c_str(),
                static_cast<unsigned long long>(host.ckpt_warmups),
                static_cast<unsigned long long>(host.ckpt_forks),
                static_cast<unsigned long long>(host.ckpt_restores),
                ckpt::CheckpointStore::rootPath().c_str());
        // And one of host accounting: what the batch cost this process.
        // Peak RSS is cumulative (a high-water mark), so it bounds, not
        // measures, this sweep; "n/a" on hosts without procfs.
        if (host.peak_rss_bytes > 0)
            std::fprintf(stderr,
                         "[%s] host: %.1fs wall, peak RSS %.1f MiB\n",
                         label_.c_str(), host.wall_sec,
                         static_cast<double>(host.peak_rss_bytes) /
                             (1024.0 * 1024.0));
        else
            std::fprintf(stderr, "[%s] host: %.1fs wall, peak RSS n/a\n",
                         label_.c_str(), host.wall_sec);
    }

  private:
    bool enabled_;
    bool tty_;
    std::string label_;
    std::size_t total_;
    Clock::time_point start_;
};

bool
progressEnabled(const SweepOptions &opts)
{
    if (opts.progress >= 0)
        return opts.progress != 0;
    const char *p = std::getenv("RNR_PROGRESS");
    return !(p && std::string(p) == "0");
}

std::string
jsonOutPath(const SweepOptions &opts)
{
    if (!opts.json_out.empty())
        return opts.json_out;
    if (const char *p = std::getenv("RNR_JSON_OUT"))
        return p;
    return "";
}

bool
jsonHostEnabled(const SweepOptions &opts)
{
    if (opts.json_host >= 0)
        return opts.json_host != 0;
    const char *p = std::getenv("RNR_JSON_HOST");
    return !(p && std::string(p) == "0");
}

std::string
farmSocket(const SweepOptions &opts)
{
    if (!opts.farm.empty())
        return opts.farm;
    if (const char *p = std::getenv("RNR_FARM"))
        return p;
    return "";
}

std::unique_ptr<ExperimentBackend>
makeBackend(const SweepOptions &opts)
{
    const std::string sock = farmSocket(opts);
    if (!sock.empty())
        return std::make_unique<FarmClientBackend>(sock);
    return std::make_unique<InProcessBackend>(
        SweepRunner::resolveJobs(opts));
}

} // namespace

unsigned
SweepRunner::resolveJobs(const SweepOptions &opts)
{
    if (opts.jobs > 0)
        return opts.jobs;
    if (const char *p = std::getenv("RNR_JOBS")) {
        const long n = std::strtol(p, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

void
SweepRunner::add(const ExperimentConfig &cfg, int priority)
{
    const std::string key = cfg.key();
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) {
            ++stats_.duplicates;
            priorities_[i] = std::max(priorities_[i], priority);
            return;
        }
    }
    keys_.push_back(key);
    cells_.push_back(cfg);
    priorities_.push_back(priority);
}

void
SweepRunner::add(const std::vector<ExperimentConfig> &cfgs)
{
    for (const ExperimentConfig &cfg : cfgs)
        add(cfg);
}

std::vector<ExperimentResult>
SweepRunner::run()
{
    const auto start = Clock::now();
    const std::size_t total = cells_.size();
    stats_.cells = total;

    std::vector<ExperimentResult> results(total);
    std::size_t done = 0, simulated = 0, hits = 0, poisoned = 0;
    std::mutex report_mu;
    ProgressReporter reporter(progressEnabled(opts_), opts_.label, total);

    std::unique_ptr<ExperimentBackend> backend = makeBackend(opts_);

    // Snapshot the cumulative checkpoint counters so the sweep can
    // report its own delta (the store counts for the whole process).
    const ckpt::CheckpointStore &ckpt_store =
        ckpt::CheckpointStore::instance();
    const std::uint64_t ckpt_warmups0 = ckpt_store.warmups();
    const std::uint64_t ckpt_forks0 = ckpt_store.forks();
    const std::uint64_t ckpt_restores0 = ckpt_store.restores();

    // Called once per cell from an arbitrary backend thread.
    auto on_done = [&](std::size_t i, CellOutcome out) {
        std::lock_guard<std::mutex> lock(report_mu);
        if (out.status == CellOutcome::Status::Poisoned) {
            // The batch keeps going; the quarantined cell is visible as
            // a config-only result (empty iterations) plus a warning.
            results[i].config = cells_[i];
            ++poisoned;
            obs::LogLine(obs::LogLevel::Warn, "sweep")
                .msg("cell poisoned")
                .kv("label", opts_.label)
                .kv("cell", keys_[i])
                .kv("attempts", out.attempts)
                .kv("why", out.error);
        } else {
            results[i] = std::move(out.result);
            ++(out.was_cached ? hits : simulated);
        }
        ++done;
        reporter.cellDone(done, simulated, hits);
    };

    auto harvest = [&] {
        std::lock_guard<std::mutex> lock(report_mu);
        stats_.cache_hits = hits;
        stats_.simulated = simulated;
        stats_.poisoned = poisoned;
        stats_.elapsed_sec = secondsSince(start);
    };

    try {
        backend->run(cells_, priorities_, on_done);
    } catch (...) {
        harvest(); // keep stats truthful for whoever catches this
        throw;
    }
    harvest();

    SweepHostInfo host;
    host.wall_sec = stats_.elapsed_sec;
    host.peak_rss_bytes = hostPeakRssBytes();
    host.ckpt_warmups = ckpt_store.warmups() - ckpt_warmups0;
    host.ckpt_forks = ckpt_store.forks() - ckpt_forks0;
    host.ckpt_restores = ckpt_store.restores() - ckpt_restores0;
    reporter.finish(stats_, host, backend->name());

    const std::string json = jsonOutPath(opts_);
    if (!json.empty() &&
        !writeResultsJson(json, results, opts_.label,
                          jsonHostEnabled(opts_) ? &host : nullptr))
        obs::LogLine(obs::LogLevel::Error, "sweep")
            .msg("could not write JSON results")
            .kv("label", opts_.label)
            .kv("path", json);
    return results;
}

std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &cfgs, SweepOptions opts)
{
    SweepRunner runner(std::move(opts));
    runner.add(cfgs);
    return runner.run();
}

bool
writeResultsJson(const std::string &path,
                 const std::vector<ExperimentResult> &results,
                 const std::string &label, const SweepHostInfo *host)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"rnr-sweep-v2\",\n  \"label\": \""
       << jsonEscape(label) << "\",\n";
    if (host) {
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.3f", host->wall_sec);
        os << "  \"host\": {\"wall_sec\": " << wall
           << ", \"peak_rss_bytes\": " << host->peak_rss_bytes
           << ", \"ckpt_warmups\": " << host->ckpt_warmups
           << ", \"ckpt_forks\": " << host->ckpt_forks
           << ", \"ckpt_restores\": " << host->ckpt_restores << "},\n";
    }
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        appendResultJson(os, results[i], "    ");
        os << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";

    const std::string tmp =
        path + ".tmp." + std::to_string(rnr_getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << os.str();
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readResultsJson(const std::string &path, std::vector<ExperimentResult> &out,
                std::string *label, SweepHostInfo *host, std::string *error)
{
    out.clear();
    if (label)
        label->clear();
    if (host)
        *host = SweepHostInfo{};

    JsonValue doc;
    if (!parseJsonFile(path, doc, error))
        return false;

    auto fail = [&](const std::string &what) {
        if (error)
            *error = path + ": " + what;
        return false;
    };

    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->kind != JsonValue::Kind::String)
        return fail("missing schema");
    if (schema->text != "rnr-sweep-v1" && schema->text != "rnr-sweep-v2")
        return fail("unknown schema '" + schema->text + "'");

    if (label)
        if (const JsonValue *l = doc.find("label"))
            *label = l->text;
    if (host)
        if (const JsonValue *h = doc.find("host")) {
            if (const JsonValue *w = h->find("wall_sec"))
                host->wall_sec = w->asDouble();
            if (const JsonValue *r = h->find("peak_rss_bytes"))
                host->peak_rss_bytes = r->asU64();
            if (const JsonValue *v = h->find("ckpt_warmups"))
                host->ckpt_warmups = v->asU64();
            if (const JsonValue *v = h->find("ckpt_forks"))
                host->ckpt_forks = v->asU64();
            if (const JsonValue *v = h->find("ckpt_restores"))
                host->ckpt_restores = v->asU64();
        }

    const JsonValue *cells = doc.find("cells");
    if (!cells || !cells->isArray())
        return fail("missing cells array");

    for (const JsonValue &cell : cells->items) {
        ExperimentResult r;
        const JsonValue *cfg = cell.find("config");
        if (!cfg || !cfg->isObject())
            return fail("cell without config");
        ExperimentConfig &c = r.config;
        if (const JsonValue *v = cfg->find("app"))
            c.app = v->text;
        if (const JsonValue *v = cfg->find("input"))
            c.input = v->text;
        if (const JsonValue *v = cfg->find("prefetcher")) {
            try {
                c.prefetcher = prefetcherKindFromString(v->text);
            } catch (const std::exception &) {
                return fail("unknown prefetcher '" + v->text + "'");
            }
        }
        if (const JsonValue *v = cfg->find("control"))
            if (!replayControlFromName(v->text, c.control))
                return fail("unknown control '" + v->text + "'");
        if (const JsonValue *v = cfg->find("window_size"))
            c.window_size = static_cast<std::uint32_t>(v->asU64());
        if (const JsonValue *v = cfg->find("iterations"))
            c.iterations = static_cast<unsigned>(v->asU64());
        if (const JsonValue *v = cfg->find("cores"))
            c.cores = static_cast<unsigned>(v->asU64());
        if (const JsonValue *v = cfg->find("ideal_llc"))
            c.ideal_llc = v->boolean;

        if (const JsonValue *v = cell.find("input_bytes"))
            r.input_bytes = v->asU64();
        if (const JsonValue *v = cell.find("target_bytes"))
            r.target_bytes = v->asU64();
        if (const JsonValue *v = cell.find("seq_table_bytes"))
            r.seq_table_bytes = v->asU64();
        if (const JsonValue *v = cell.find("div_table_bytes"))
            r.div_table_bytes = v->asU64();

        const JsonValue *iters = cell.find("iterations");
        if (!iters || !iters->isArray())
            return fail("cell without iterations array");
        for (const JsonValue &itv : iters->items) {
            IterStats it;
#define RNR_READ_FIELD(type, name)                                          \
            if (const JsonValue *v = itv.find(#name))                       \
                it.name = static_cast<type>(v->asU64());
            RNR_ITER_STAT_FIELDS(RNR_READ_FIELD)
#undef RNR_READ_FIELD
            r.iterations.push_back(it);
        }
        out.push_back(std::move(r));
    }
    return true;
}

} // namespace rnr
