#include "harness/metrics.h"

#include <cmath>

namespace rnr {

std::uint64_t
usefulPrefetches(const IterStats &it)
{
    return it.pf_useful + it.pf_late_merged;
}

double
amortizedCycles(const ExperimentResult &r, unsigned n)
{
    const double first = static_cast<double>(r.first().cycles);
    const double steady = static_cast<double>(r.steady().cycles);
    return first + steady * (n - 1);
}

double
speedup(const ExperimentResult &r, const ExperimentResult &baseline,
        unsigned n)
{
    const double own = amortizedCycles(r, n);
    if (own == 0.0)
        return 0.0;
    return amortizedCycles(baseline, n) / own;
}

double
mpki(const ExperimentResult &r)
{
    const IterStats &it = r.steady();
    if (it.instructions == 0)
        return 0.0;
    return static_cast<double>(it.l2_demand_misses) * 1000.0 /
           static_cast<double>(it.instructions);
}

double
coverage(const ExperimentResult &r, const ExperimentResult &baseline)
{
    const std::uint64_t base_misses = baseline.steady().l2_demand_misses;
    if (base_misses == 0)
        return 0.0;
    const double c = static_cast<double>(usefulPrefetches(r.steady())) /
                     static_cast<double>(base_misses);
    return std::min(c, 1.0);
}

double
accuracy(const ExperimentResult &r)
{
    const IterStats &it = r.steady();
    if (it.pf_issued == 0)
        return 0.0;
    const double a = static_cast<double>(usefulPrefetches(it)) /
                     static_cast<double>(it.pf_issued);
    return std::min(a, 1.0);
}

double
trafficOverhead(const ExperimentResult &r,
                const ExperimentResult &baseline)
{
    const double base =
        static_cast<double>(baseline.steady().dram_bytes_total);
    if (base == 0.0)
        return 0.0;
    return (static_cast<double>(r.steady().dram_bytes_total) - base) /
           base;
}

double
storageOverhead(const ExperimentResult &r)
{
    if (r.input_bytes == 0)
        return 0.0;
    return static_cast<double>(r.seq_table_bytes + r.div_table_bytes) /
           static_cast<double>(r.input_bytes);
}

double
recordOverhead(const ExperimentResult &r,
               const ExperimentResult &baseline)
{
    const double base = static_cast<double>(baseline.first().cycles);
    if (base == 0.0)
        return 0.0;
    return static_cast<double>(r.first().cycles) / base - 1.0;
}

TimelinessBreakdown
timeliness(const ExperimentResult &r)
{
    const IterStats &it = r.steady();
    const double total = static_cast<double>(
        it.rnr_ontime + it.rnr_early + it.rnr_late + it.rnr_out_of_window);
    TimelinessBreakdown b;
    if (total == 0.0)
        return b;
    b.ontime = it.rnr_ontime / total;
    b.early = it.rnr_early / total;
    b.late = it.rnr_late / total;
    b.out_of_window = it.rnr_out_of_window / total;
    return b;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(std::max(v, 1e-12));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace rnr
