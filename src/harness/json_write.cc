#include "harness/json_write.h"

#include <cmath>
#include <cstdio>

namespace rnr {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonU64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
jsonBool(bool v)
{
    return v ? "true" : "false";
}

} // namespace rnr
