/**
 * @file
 * Transport-agnostic experiment scheduling core.
 *
 * PR 1's SweepRunner fused three concerns: deduplicating a batch of
 * cells, executing them on a thread pool, and reporting progress.  The
 * simulation farm (src/farm/) needs the first and last of those but a
 * very different middle — cells dispatched to worker *processes* over a
 * socket — so the execution layer now lives behind one interface:
 *
 *   SweepRunner (dedup, ordering, progress, JSON export)
 *        └── ExperimentBackend::run(cells, priorities, done)
 *              ├── InProcessBackend   threads + runExperiment()
 *              └── FarmClientBackend  submit to rnr_farmd (farm/)
 *
 * Both backends drain a ShardedWorkQueue: a priority queue sharded
 * across workers, where an idle worker first serves its own shard and
 * then steals from the fullest other shard.  For the in-process backend
 * the shards are threads; for the farm daemon they are worker
 * processes.  Scheduling order never affects results — every cell is an
 * independent simulation and results are returned by batch index.
 */
#ifndef RNR_HARNESS_SCHEDULER_H
#define RNR_HARNESS_SCHEDULER_H

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace rnr {

/** What happened to one scheduled cell. */
struct CellOutcome {
    enum class Status {
        Done,     ///< result is valid
        Poisoned, ///< crashed/failed after a retry; error says why
    };
    Status status = Status::Done;
    bool was_cached = false; ///< served from a cache layer, not simulated
    int attempts = 1;        ///< executions it took (2 = one retry)
    ExperimentResult result; ///< valid when status == Done
    std::string error;       ///< valid when status == Poisoned
};

/**
 * Invoked exactly once per cell, from an arbitrary backend thread, with
 * the cell's batch index.  Callers synchronise their own state.
 */
using CellDoneFn =
    std::function<void(std::size_t index, CellOutcome outcome)>;

/** Executes a deduplicated batch of cells; see file header. */
class ExperimentBackend
{
  public:
    virtual ~ExperimentBackend() = default;

    /** Display name for logs ("in-process", "farm(<socket>)"). */
    virtual std::string name() const = 0;

    /**
     * Runs every cell, calling @p done once per index.  @p priorities
     * is either empty (all zero) or cells.size() long; higher runs
     * first.  Throws on a backend-level failure (a worker-thread
     * exception, a lost daemon connection) after delivering whatever
     * outcomes it has.
     */
    virtual void run(const std::vector<ExperimentConfig> &cells,
                     const std::vector<int> &priorities,
                     const CellDoneFn &done) = 0;
};

/**
 * Priority work queue sharded across N workers with stealing.  push()
 * assigns items round-robin; tryPop(shard) serves the highest-priority
 * item of the worker's own shard, falling back to stealing from the
 * fullest other shard, so a worker that finishes its share keeps the
 * farm saturated instead of idling.  Thread-safe; items are opaque
 * indices.  FIFO within equal priority.
 */
class ShardedWorkQueue
{
  public:
    explicit ShardedWorkQueue(unsigned shards);

    void push(std::size_t item, int priority = 0);

    /** Pops for @p shard (own queue first, then steal); false = empty. */
    bool tryPop(unsigned shard, std::size_t &item);

    std::size_t pending() const;
    unsigned shards() const { return static_cast<unsigned>(q_.size()); }

  private:
    // One multimap per shard, keyed by descending priority; equal-key
    // insertion order is preserved, which gives FIFO within a priority.
    using Shard = std::multimap<int, std::size_t, std::greater<int>>;

    /** Publishes max-min shard depth to the rnr_queue_imbalance gauge. */
    void updateImbalanceLocked();

    mutable std::mutex mu_;
    std::vector<Shard> q_;
    std::size_t next_ = 0;
    std::size_t pending_ = 0;
};

/**
 * The classic backend: a fixed-size thread pool calling the cached,
 * single-flight runExperiment().  A cell that throws is retried by
 * rethrowing after all threads join (the pre-farm SweepRunner
 * behaviour, kept because an in-process crash cannot be contained
 * anyway — process isolation is what the farm backend is for).
 */
class InProcessBackend final : public ExperimentBackend
{
  public:
    explicit InProcessBackend(unsigned jobs);

    std::string name() const override { return "in-process"; }
    void run(const std::vector<ExperimentConfig> &cells,
             const std::vector<int> &priorities,
             const CellDoneFn &done) override;

  private:
    unsigned jobs_;
};

} // namespace rnr

#endif // RNR_HARNESS_SCHEDULER_H
