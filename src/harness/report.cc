#include "harness/report.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#define rnr_getpid _getpid
#else
#include <unistd.h>
#define rnr_getpid getpid
#endif

#include "harness/json_write.h"
#include "harness/metrics.h"
#include "harness/result_cache.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "sim/attrib.h"
#include "sim/timeseries.h"
#include "tracestore/trace_store.h"

namespace rnr {

namespace {

// JSON string escaping comes from harness/json_write.h (jsonEscape),
// shared with the sweep exporter and the farm wire protocol.

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** The matching no-prefetcher cell, or null (cells keyed by workload). */
const ReportCell *
baselineFor(const SweepReport &rep, const ReportCell &cell)
{
    const std::string wkey = cell.result.config.workloadKey();
    for (const ReportCell &c : rep.cells)
        if (c.result.config.prefetcher == PrefetcherKind::None &&
            c.result.config.workloadKey() == wkey)
            return &c;
    return nullptr;
}

bool
atomicWrite(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(rnr_getpid());
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            return false;
        out << content;
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

std::string
reportEnvOutPrefix()
{
    const char *p = std::getenv("RNR_REPORT_OUT");
    return p ? p : "";
}

SweepReport
buildSweepReport(const std::vector<ExperimentConfig> &cfgs,
                 const std::string &label, Tick sample_cycles)
{
    using Clock = std::chrono::steady_clock;

    SweepReport rep;
    rep.label = label;
    rep.sample_cycles = telemetrySampleCycles(sample_cycles);

    for (const ExperimentConfig &cfg : cfgs) {
        ReportCell cell;

        // Would the result cache have served this cell?  Recorded for
        // the host profile, then deliberately ignored: a cache hit
        // carries no telemetry, and telemetry is the point here.
        ExperimentResult cached;
        cell.result_cache_hit =
            ResultCache::instance().lookup(cfg, cached);

        const TraceStore &ts = TraceStore::instance();
        const std::uint64_t caps_before = ts.captures();
        const std::uint64_t hits_before = ts.hits();

        ExperimentConfig run_cfg = cfg;
        run_cfg.telemetry.enabled = true;
        run_cfg.telemetry.sample_cycles = rep.sample_cycles;
        run_cfg.attrib.enabled = true;

        const Clock::time_point t0 = Clock::now();
        cell.result = runExperimentUncached(run_cfg);
        cell.wall_sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        cell.peak_rss_bytes = hostPeakRssBytes();
        cell.trace_store_captured = ts.captures() > caps_before;
        cell.trace_store_hit = ts.hits() > hits_before;

        rep.cells.push_back(std::move(cell));
    }
    return rep;
}

std::string
reportJson(const SweepReport &rep)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"rnr-report-v2\",\n  \"label\": \""
       << jsonEscape(rep.label) << "\",\n  \"sample_cycles\": "
       << rep.sample_cycles << ",\n  \"cells\": [\n";

    for (std::size_t ci = 0; ci < rep.cells.size(); ++ci) {
        const ReportCell &cell = rep.cells[ci];
        const ExperimentResult &r = cell.result;
        const ExperimentConfig &c = r.config;
        os << "    {\n      \"key\": \"" << jsonEscape(c.key())
           << "\",\n";
        os << "      \"config\": {\"app\": \"" << c.app
           << "\", \"input\": \"" << c.input << "\", \"prefetcher\": \""
           << toString(c.prefetcher) << "\", \"control\": \""
           << replayControlName(c.control) << "\", \"window_size\": "
           << c.window_size << ", \"iterations\": " << c.iterations
           << ", \"cores\": " << c.cores << ", \"ideal_llc\": "
           << (c.ideal_llc ? "true" : "false") << "},\n";
        os << "      \"host\": {\"wall_sec\": "
           << fmtDouble(cell.wall_sec) << ", \"peak_rss_bytes\": "
           << cell.peak_rss_bytes << ", \"result_cache_hit\": "
           << (cell.result_cache_hit ? "true" : "false")
           << ", \"trace_store_hit\": "
           << (cell.trace_store_hit ? "true" : "false")
           << ", \"trace_store_captured\": "
           << (cell.trace_store_captured ? "true" : "false") << "},\n";

        os << "      \"iterations\": [\n";
        for (std::size_t i = 0; i < r.iterations.size(); ++i) {
            const IterStats &it = r.iterations[i];
            os << "        {";
            const char *sep = "";
#define RNR_JSON_FIELD(type, name)                                          \
            os << sep << "\"" #name "\": " << it.name;                      \
            sep = ", ";
            RNR_ITER_STAT_FIELDS(RNR_JSON_FIELD)
#undef RNR_JSON_FIELD
            os << "}" << (i + 1 < r.iterations.size() ? "," : "")
               << "\n";
        }
        os << "      ],\n";

        // Derived metrics; baseline-relative ones only when the batch
        // contains the matching no-prefetcher cell.
        const ReportCell *base = baselineFor(rep, cell);
        const TimelinessBreakdown tl = timeliness(r);
        os << "      \"metrics\": {\"mpki\": " << fmtDouble(mpki(r))
           << ", \"accuracy\": " << fmtDouble(accuracy(r))
           << ", \"storage_overhead\": "
           << fmtDouble(storageOverhead(r))
           << ", \"timeliness\": {\"ontime\": " << fmtDouble(tl.ontime)
           << ", \"early\": " << fmtDouble(tl.early) << ", \"late\": "
           << fmtDouble(tl.late) << ", \"out_of_window\": "
           << fmtDouble(tl.out_of_window) << "}";
        if (base) {
            const ExperimentResult &b = base->result;
            os << ", \"speedup\": " << fmtDouble(speedup(r, b))
               << ", \"coverage\": " << fmtDouble(coverage(r, b))
               << ", \"traffic_overhead\": "
               << fmtDouble(trafficOverhead(r, b))
               << ", \"record_overhead\": "
               << fmtDouble(recordOverhead(r, b));
        }
        os << "},\n";

        os << "      \"telemetry\": {";
        if (r.telemetry) {
            const TelemetryBlob &tb = *r.telemetry;
            os << "\"sample_cycles\": " << tb.sample_cycles
               << ", \"samples_taken\": " << tb.samples_taken
               << ",\n        \"series\": [\n";
            for (std::size_t s = 0; s < tb.series.size(); ++s) {
                const TelemetrySeriesBlob &sb = tb.series[s];
                os << "          {\"name\": \"" << jsonEscape(sb.name)
                   << "\", \"keep_every\": " << sb.keep_every
                   << ", \"points\": [";
                for (std::size_t p = 0; p < sb.points.size(); ++p)
                    os << (p ? "," : "") << "[" << sb.points[p].tick
                       << "," << sb.points[p].value << "]";
                os << "]}"
                   << (s + 1 < tb.series.size() ? "," : "") << "\n";
            }
            os << "        ],\n        \"histograms\": [\n";
            for (std::size_t h = 0; h < tb.histograms.size(); ++h) {
                const TelemetryHistogramBlob &hb = tb.histograms[h];
                os << "          {\"name\": \"" << jsonEscape(hb.name)
                   << "\", \"count\": " << hb.count << ", \"sum\": "
                   << hb.sum << ", \"buckets\": [";
                for (std::size_t b = 0; b < hb.buckets.size(); ++b)
                    os << (b ? "," : "") << "[" << hb.buckets[b].first
                       << "," << hb.buckets[b].second << "]";
                os << "]}"
                   << (h + 1 < tb.histograms.size() ? "," : "") << "\n";
            }
            os << "        ]\n      },\n";
        } else {
            os << "},\n";
        }
        // v2: the full rnr-attrib-v1 object rides along per cell (null
        // when attribution was off, e.g. a hand-built report).
        os << "      \"attrib\": ";
        if (r.attrib)
            os << attribJson(*r.attrib);
        else
            os << "null";
        os << "\n    }" << (ci + 1 < rep.cells.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

namespace {

/** An inline-SVG sparkline of one series (fixed 260x60 viewport). */
void
appendSparkline(std::ostringstream &os, const TelemetrySeriesBlob &sb)
{
    constexpr double W = 260, H = 60, pad = 4;
    std::uint64_t vmin = ~std::uint64_t{0}, vmax = 0;
    for (const TelemetrySample &p : sb.points) {
        vmin = std::min(vmin, p.value);
        vmax = std::max(vmax, p.value);
    }
    if (sb.points.empty())
        vmin = vmax = 0;
    const Tick t0 = sb.points.empty() ? 0 : sb.points.front().tick;
    const Tick t1 = sb.points.empty() ? 0 : sb.points.back().tick;

    os << "<div class=\"series\"><div class=\"sname\">"
       << htmlEscape(sb.name) << "</div>"
       << "<svg viewBox=\"0 0 260 60\" width=\"260\" height=\"60\" "
          "role=\"img\"><polyline fill=\"none\" stroke=\"#2a7ae2\" "
          "stroke-width=\"1.2\" points=\"";
    for (const TelemetrySample &p : sb.points) {
        const double x =
            t1 > t0 ? pad + static_cast<double>(p.tick - t0) /
                                static_cast<double>(t1 - t0) *
                                (W - 2 * pad)
                    : W / 2;
        const double y =
            vmax > vmin
                ? H - pad -
                      static_cast<double>(p.value - vmin) /
                          static_cast<double>(vmax - vmin) *
                          (H - 2 * pad)
                : H / 2;
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
        os << buf;
    }
    os << "\"/></svg><div class=\"srange\">min " << vmin << " · max "
       << vmax << " · " << sb.points.size() << " pts";
    if (sb.keep_every > 1)
        os << " · 1/" << sb.keep_every;
    os << "</div></div>\n";
}

/** An inline-SVG bar chart of one log2 histogram (fixed height). */
void
appendHistogram(std::ostringstream &os, const TelemetryHistogramBlob &hb)
{
    constexpr double W = 260, H = 80, pad = 4;
    os << "<div class=\"series\"><div class=\"sname\">"
       << htmlEscape(hb.name) << "</div>";
    if (hb.buckets.empty()) {
        os << "<div class=\"srange\">empty</div></div>\n";
        return;
    }
    const unsigned lo = hb.buckets.front().first;
    const unsigned hi = hb.buckets.back().first;
    const unsigned n = hi - lo + 1;
    std::uint64_t cmax = 0;
    for (const auto &b : hb.buckets)
        cmax = std::max(cmax, b.second);
    const double bw = (W - 2 * pad) / n;

    os << "<svg viewBox=\"0 0 260 80\" width=\"260\" height=\"80\" "
          "role=\"img\">";
    for (const auto &b : hb.buckets) {
        const double h = cmax ? static_cast<double>(b.second) /
                                    static_cast<double>(cmax) *
                                    (H - 2 * pad)
                              : 0;
        const double x = pad + (b.first - lo) * bw;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                      "height=\"%.1f\" fill=\"#e2702a\"><title>"
                      "[%llu, %llu]: %llu</title></rect>",
                      x, H - pad - h, bw > 1.5 ? bw - 1 : bw, h,
                      static_cast<unsigned long long>(
                          Log2Histogram::bucketLow(b.first)),
                      static_cast<unsigned long long>(
                          Log2Histogram::bucketHigh(b.first)),
                      static_cast<unsigned long long>(b.second));
        os << buf;
    }
    const double mean =
        hb.count ? static_cast<double>(hb.sum) /
                       static_cast<double>(hb.count)
                 : 0.0;
    os << "</svg><div class=\"srange\">" << hb.count
       << " samples · mean " << fmtDouble(mean) << " cyc · range ["
       << Log2Histogram::bucketLow(lo) << ", "
       << Log2Histogram::bucketHigh(hi) << "]</div></div>\n";
}

/** Human-readable site-id rendering (the sim/attrib.h grammar). */
std::string
siteName(std::uint32_t site)
{
    if (site == 0)
        return "(none)";
    if (attribSiteIsRnr(site))
        return "rnr lane " +
               std::to_string(site & ~kAttribRnrSiteBit);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "pc 0x%x", site);
    return buf;
}

void
appendAttribStatsCells(std::ostringstream &os, const AttribSiteStats &s)
{
    const double acc =
        s.issued ? static_cast<double>(s.useful) /
                       static_cast<double>(s.issued)
                 : 0.0;
    os << "<td>" << s.issued << "</td><td>" << s.useful << "</td><td>"
       << s.late_merged << "</td><td>" << s.evicted_unused
       << "</td><td>" << s.pollution << "</td><td>" << fmtDouble(acc)
       << "</td>";
}

/** Top-site outcome table (issued / useful / ... / accuracy). */
void
appendSiteTable(std::ostringstream &os, const AttribBlob &ab)
{
    os << "<table class=\"attrib-sites\">\n<tr><th class=\"k\">site"
          "</th><th>issued</th><th>useful</th><th>late merged</th>"
          "<th>evicted unused</th><th>pollution</th><th>accuracy</th>"
          "</tr>\n";
    for (const AttribBlob::SiteRow &row : ab.sites) {
        os << "<tr><td class=\"k\">" << htmlEscape(siteName(row.site))
           << "</td>";
        appendAttribStatsCells(os, row.stats);
        os << "</tr>\n";
    }
    if (ab.site_other.total() > 0) {
        os << "<tr><td class=\"k\">(folded)</td>";
        appendAttribStatsCells(os, ab.site_other);
        os << "</tr>\n";
    }
    os << "</table>\n<p class=\"host\">" << ab.sites_tracked
       << " sites tracked · " << ab.sites.size() << " kept exactly"
       << "</p>\n";
}

/** Busiest-region outcome table (at most @p max_rows rows). */
void
appendRegionTable(std::ostringstream &os, const AttribBlob &ab,
                  std::size_t max_rows)
{
    std::vector<const AttribBlob::RegionRow *> rows;
    rows.reserve(ab.regions.size());
    for (const AttribBlob::RegionRow &r : ab.regions)
        rows.push_back(&r);
    std::sort(rows.begin(), rows.end(),
              [](const AttribBlob::RegionRow *x,
                 const AttribBlob::RegionRow *y) {
                  const std::uint64_t xt = x->stats.total();
                  const std::uint64_t yt = y->stats.total();
                  return xt != yt ? xt > yt : x->region < y->region;
              });
    if (rows.size() > max_rows)
        rows.resize(max_rows);

    os << "<table class=\"attrib-regions\">\n<tr><th class=\"k\">"
          "region (4 KiB)</th><th>issued</th><th>useful</th>"
          "<th>late merged</th><th>evicted unused</th>"
          "<th>pollution</th><th>accuracy</th></tr>\n";
    for (const AttribBlob::RegionRow *row : rows) {
        char name[24];
        std::snprintf(name, sizeof(name), "0x%llx",
                      static_cast<unsigned long long>(row->region));
        os << "<tr><td class=\"k\">" << name << "</td>";
        appendAttribStatsCells(os, row->stats);
        os << "</tr>\n";
    }
    os << "</table>\n<p class=\"host\">showing " << rows.size()
       << " busiest of " << ab.regions.size() << " kept regions ("
       << ab.regions_tracked << " tracked)</p>\n";
}

/**
 * Region heatmap: one tile per kept region in ascending address order,
 * wrapped 64 per row.  Hue runs blue (useful outcomes) to red (wasted:
 * evicted-unused + pollution); opacity scales with log2 activity so a
 * region with 1000x the traffic does not wash out the rest.
 */
void
appendRegionHeatmap(std::ostringstream &os, const AttribBlob &ab)
{
    if (ab.regions.empty())
        return;
    constexpr unsigned kCols = 64, kTile = 10;
    const unsigned n = static_cast<unsigned>(ab.regions.size());
    const unsigned cols = std::min(n, kCols);
    const unsigned rows = (n + kCols - 1) / kCols;
    std::uint64_t tmax = 1;
    for (const AttribBlob::RegionRow &r : ab.regions)
        tmax = std::max(tmax, r.stats.total());
    const double lmax =
        std::log2(static_cast<double>(tmax) + 1.0);

    os << "<svg class=\"heatmap\" viewBox=\"0 0 " << cols * kTile
       << " " << rows * kTile << "\" width=\"" << cols * kTile
       << "\" height=\"" << rows * kTile << "\" role=\"img\">";
    for (unsigned i = 0; i < n; ++i) {
        const AttribBlob::RegionRow &r = ab.regions[i];
        const std::uint64_t total = r.stats.total();
        const std::uint64_t bad =
            r.stats.evicted_unused + r.stats.pollution;
        const double f =
            total ? static_cast<double>(bad) /
                        static_cast<double>(total)
                  : 0.0;
        // #2a7ae2 (all useful) -> #e2402a (all wasted).
        const int red = static_cast<int>(0x2a + f * (0xe2 - 0x2a));
        const int grn = static_cast<int>(0x7a + f * (0x40 - 0x7a));
        const int blu = static_cast<int>(0xe2 + f * (0x2a - 0xe2));
        const double op =
            0.2 + 0.8 * std::log2(static_cast<double>(total) + 1.0) /
                      lmax;
        char buf[240];
        std::snprintf(
            buf, sizeof(buf),
            "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" "
            "fill=\"#%02x%02x%02x\" fill-opacity=\"%.2f\"><title>"
            "region 0x%llx: %llu events, %.0f%% wasted</title>"
            "</rect>",
            (i % kCols) * kTile, (i / kCols) * kTile, kTile - 1,
            kTile - 1, red, grn, blu, op,
            static_cast<unsigned long long>(r.region),
            static_cast<unsigned long long>(total), f * 100.0);
        os << buf;
    }
    os << "</svg>\n<p class=\"host\">heatmap: blue = useful, red = "
          "wasted (evicted unused + pollution); opacity = log "
          "activity</p>\n";
}

} // namespace

std::string
reportHtml(const SweepReport &rep)
{
    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n<title>RnR report: "
       << htmlEscape(rep.label)
       << "</title>\n<style>\n"
          "body{font:14px/1.45 system-ui,sans-serif;margin:2em;"
          "color:#222;max-width:1200px}\n"
          "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em;"
          "border-bottom:1px solid #ddd;padding-bottom:.25em}\n"
          "table{border-collapse:collapse;margin:1em 0}\n"
          "td,th{border:1px solid #ccc;padding:.3em .6em;"
          "text-align:right;font-variant-numeric:tabular-nums}\n"
          "th{background:#f5f5f5}td.k,th.k{text-align:left;"
          "font-family:ui-monospace,monospace;font-size:.92em}\n"
          ".cells{display:flex;flex-wrap:wrap;gap:1em}\n"
          ".series{border:1px solid #e5e5e5;border-radius:4px;"
          "padding:.5em}\n"
          ".sname{font-family:ui-monospace,monospace;font-size:.85em}\n"
          ".srange{color:#777;font-size:.8em}\n"
          ".host{color:#555;font-size:.9em}\n"
          "</style>\n</head>\n<body>\n";
    os << "<h1>RnR run report — " << htmlEscape(rep.label) << "</h1>\n";
    os << "<p class=\"host\">schema rnr-report-v2 · sampling every "
       << rep.sample_cycles << " cycles · " << rep.cells.size()
       << " cells</p>\n";

    // ---- Derived-metric summary table (Fig 6-13 columns) ----
    os << "<h2>Derived metrics</h2>\n<table>\n<tr><th class=\"k\">cell"
          "</th><th>speedup</th><th>MPKI</th><th>coverage</th>"
          "<th>accuracy</th><th>traffic</th><th>storage</th>"
          "<th>record ovh</th><th>wall s</th><th>peak RSS MiB</th>"
          "<th>cache</th><th>trace store</th></tr>\n";
    for (const ReportCell &cell : rep.cells) {
        const ExperimentResult &r = cell.result;
        const ReportCell *base = baselineFor(rep, cell);
        os << "<tr><td class=\"k\">" << htmlEscape(r.config.key())
           << "</td>";
        if (base)
            os << "<td>" << fmtDouble(speedup(r, base->result))
               << "</td>";
        else
            os << "<td>–</td>";
        os << "<td>" << fmtDouble(mpki(r)) << "</td>";
        if (base)
            os << "<td>" << fmtDouble(coverage(r, base->result))
               << "</td>";
        else
            os << "<td>–</td>";
        os << "<td>" << fmtDouble(accuracy(r)) << "</td>";
        if (base)
            os << "<td>"
               << fmtDouble(trafficOverhead(r, base->result))
               << "</td><td>" << fmtDouble(storageOverhead(r))
               << "</td><td>"
               << fmtDouble(recordOverhead(r, base->result))
               << "</td>";
        else
            os << "<td>–</td><td>" << fmtDouble(storageOverhead(r))
               << "</td><td>–</td>";
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.2f", cell.wall_sec);
        os << "<td>" << wall << "</td><td>";
        if (cell.peak_rss_bytes)
            os << fmtDouble(static_cast<double>(cell.peak_rss_bytes) /
                            (1024.0 * 1024.0));
        else
            os << "n/a";
        os << "</td><td>" << (cell.result_cache_hit ? "hit" : "miss")
           << "</td><td>"
           << (cell.trace_store_hit
                   ? "replay"
                   : cell.trace_store_captured ? "capture" : "off")
           << "</td></tr>\n";
    }
    os << "</table>\n";

    // ---- Per-cell telemetry + attribution ----
    for (const ReportCell &cell : rep.cells) {
        const ExperimentResult &r = cell.result;
        os << "<h2>" << htmlEscape(r.config.key()) << "</h2>\n";
        if (r.telemetry) {
            const TelemetryBlob &tb = *r.telemetry;
            os << "<p class=\"host\">" << tb.samples_taken
               << " samples · period " << tb.sample_cycles
               << " cycles</p>\n<div class=\"cells\">\n";
            for (const TelemetrySeriesBlob &sb : tb.series)
                appendSparkline(os, sb);
            for (const TelemetryHistogramBlob &hb : tb.histograms)
                appendHistogram(os, hb);
            os << "</div>\n";
        } else {
            os << "<p class=\"host\">no telemetry collected</p>\n";
        }
        if (r.attrib) {
            const AttribBlob &ab = *r.attrib;
            os << "<h3>Prefetch attribution</h3>\n<p class=\"host\">"
               << ab.totals.issued << " issued · " << ab.totals.useful
               << " useful · " << ab.totals.late_merged
               << " late merged · " << ab.totals.evicted_unused
               << " evicted unused · " << ab.totals.pollution
               << " pollution</p>\n";
            appendSiteTable(os, ab);
            appendRegionHeatmap(os, ab);
            appendRegionTable(os, ab, 32);
        }
    }
    os << "</body>\n</html>\n";
    return os.str();
}

bool
writeReport(const std::string &prefix, const SweepReport &rep)
{
    const bool json_ok = atomicWrite(prefix + ".json", reportJson(rep));
    const bool html_ok = atomicWrite(prefix + ".html", reportHtml(rep));
    return json_ok && html_ok;
}

} // namespace rnr
