/**
 * @file
 * Minimal JSON reader for the harness's own file formats.
 *
 * The repository writes all of its JSON by hand (sweep exports, reports,
 * Chrome traces) but until now never read any back.  The sweep loader
 * (rnr-sweep-v1/v2), the report tooling and the bench-regression gate
 * (`micro_hotpath compare`) all need to, so this header provides a tiny
 * DOM parser — no dependencies, a few hundred lines, tolerant of the
 * subset of JSON those writers emit plus anything a conforming producer
 * (google-benchmark, python json.dump) generates.
 *
 * Design notes:
 *  - Numbers are kept as raw token text and converted lazily (asDouble /
 *    asU64), so exact 64-bit counters survive a round trip untouched by
 *    double rounding.
 *  - Objects keep their members in a vector of (key, value) pairs in
 *    file order; find() is a linear scan.  Harness files have tens of
 *    keys per object, not thousands.
 *  - No writer: writing stays hand-rolled at each call site, where the
 *    exact field order is part of the format documentation.
 */
#ifndef RNR_HARNESS_JSON_PARSE_H
#define RNR_HARNESS_JSON_PARSE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rnr {

/** One parsed JSON value; a tree of these is a parsed document. */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** String contents (unescaped) for String, raw token for Number. */
    std::string text;
    std::vector<JsonValue> items;                            ///< Array
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member lookup on an object; null for other kinds / missing key. */
    const JsonValue *find(const std::string &key) const;

    /** Number/string-as-number to double; 0.0 for other kinds. */
    double asDouble() const;

    /** Number to uint64 (truncating negatives to 0); 0 otherwise. */
    std::uint64_t asU64() const;
};

/**
 * Parses @p text into @p out.  Returns false (and sets @p error, when
 * non-null, to a message with a byte offset) on malformed input or
 * trailing garbage.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/** Convenience: slurps @p path and parses it. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string *error = nullptr);

} // namespace rnr

#endif // RNR_HARNESS_JSON_PARSE_H
