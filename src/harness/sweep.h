/**
 * @file
 * Parallel experiment sweep runner.
 *
 * Every cell of the paper's evaluation matrix (workload x input x
 * prefetcher x RnR options) is an independent simulation, so a batch of
 * ExperimentConfig cells is embarrassingly parallel.  SweepRunner takes
 * such a batch, deduplicates it by ExperimentConfig::key(), and executes
 * the unique cells through an ExperimentBackend (harness/scheduler.h),
 * filling the shared result cache (harness/result_cache.h) as it goes.
 * Two backends exist: the default in-process thread pool, and — when
 * SweepOptions::farm / $RNR_FARM names a unix socket — a client that
 * submits the batch to a running rnr_farmd daemon (src/farm/), which
 * shards cells across worker *processes* so a crashing cell is
 * quarantined instead of taking the sweep down.  Concurrent requests
 * for the same key — within a sweep or from concurrent runExperiment()
 * callers — are single-flight: one simulation runs, everyone else waits
 * for its result.
 *
 * Observability:
 *  - a progress reporter on stderr (cells done/total, cache hits vs.
 *    freshly simulated, elapsed time and ETA), silenced with
 *    RNR_PROGRESS=0;
 *  - an optional structured JSON export of the full result batch
 *    (SweepOptions::json_out or RNR_JSON_OUT=<path>), so figures can be
 *    regenerated from Python/gnuplot without rerunning the simulator.
 *
 * Environment (all overridable through SweepOptions):
 *   RNR_JOBS=<n>       worker threads (default hardware_concurrency())
 *   RNR_PROGRESS=0     silence the stderr progress reporter
 *   RNR_JSON_OUT=<p>   write the JSON export of every sweep to <p>
 *   RNR_FARM=<sock>    run cells on the rnr_farmd listening at <sock>
 *   RNR_JSON_HOST=0    omit the "host" object from the JSON export
 *                      (host cost varies run to run; omitting it makes
 *                      exports from different runs byte-comparable)
 *   RNR_CKPT=0         disable checkpoint-fork input sharing (src/ckpt/);
 *                      every cell then generates its input natively
 *   RNR_CKPT_DIR=<d>   where input/full snapshots live (default rnr_ckpt)
 *
 * See docs/HARNESS.md for the JSON schema and a usage walkthrough.
 */
#ifndef RNR_HARNESS_SWEEP_H
#define RNR_HARNESS_SWEEP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace rnr {

/** Knobs for one sweep; every default defers to the environment. */
struct SweepOptions {
    /** Worker threads; 0 = $RNR_JOBS, else hardware_concurrency(). */
    unsigned jobs = 0;
    /** Progress on stderr; -1 = $RNR_PROGRESS (default on). */
    int progress = -1;
    /** JSON export path; empty = $RNR_JSON_OUT (empty = no export). */
    std::string json_out;
    /** Label shown by the progress reporter ("Fig 6", ...). */
    std::string label = "sweep";
    /** Farm daemon socket; empty = $RNR_FARM (empty = in-process). */
    std::string farm;
    /** "host" object in the JSON export; -1 = $RNR_JSON_HOST (on). */
    int json_host = -1;
};

/** What a finished sweep did (for tests and the progress summary). */
struct SweepStats {
    std::size_t cells = 0;      ///< unique cells executed
    std::size_t duplicates = 0; ///< configs folded away by key()
    std::size_t cache_hits = 0; ///< served from memo or file cache
    std::size_t simulated = 0;  ///< actually simulated this run
    std::size_t poisoned = 0;   ///< quarantined by the farm (crash/hang)
    double elapsed_sec = 0;
};

/**
 * Host-side cost of producing a batch of results: wall clock and the
 * process's peak resident set.  Printed on the sweep accounting line and
 * exported in the JSON "host" object (rnr-sweep-v2) so regressions in
 * simulation cost are visible from archived sweep files.
 */
struct SweepHostInfo {
    double wall_sec = 0;
    std::uint64_t peak_rss_bytes = 0; ///< 0 = unknown (non-Linux host)
    /** Checkpoint-fork accounting for this sweep (deltas of the
     *  CheckpointStore counters across run()): how many inputs were
     *  generated natively (warm-ups) versus forked from a shared
     *  snapshot, and how many full snapshots were resumed. */
    std::uint64_t ckpt_warmups = 0;
    std::uint64_t ckpt_forks = 0;
    std::uint64_t ckpt_restores = 0;
};

/**
 * The process's peak resident set size in bytes (VmHWM from
 * /proc/self/status).  Returns 0 on platforms without procfs — callers
 * treat 0 as "unknown", never as a measurement.
 */
std::uint64_t hostPeakRssBytes();

/** Executes a deduplicated batch of experiments on a thread pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /**
     * Queues @p cfg; duplicates (by key()) are folded into one cell
     * (which keeps the highest priority seen).  Higher-priority cells
     * are scheduled first — useful to front-load the slow cells of a
     * matrix so the tail of the sweep is short.
     */
    void add(const ExperimentConfig &cfg, int priority = 0);
    void add(const std::vector<ExperimentConfig> &cfgs);

    /**
     * Runs every queued cell to completion and returns their results
     * in the order the cells were first add()ed.  Rethrows the first
     * worker exception after all threads have joined (in-process
     * backend); farm-poisoned cells instead yield a config-only result
     * and bump stats().poisoned.  May be called once per runner.
     */
    std::vector<ExperimentResult> run();

    /** Valid after run(). */
    const SweepStats &stats() const { return stats_; }

    /** Thread-pool width implied by @p opts and the environment. */
    static unsigned resolveJobs(const SweepOptions &opts);

  private:
    SweepOptions opts_;
    std::vector<ExperimentConfig> cells_; ///< unique, insertion order
    std::vector<std::string> keys_;
    std::vector<int> priorities_;
    SweepStats stats_;
};

/** One-shot convenience: queue @p cfgs, run, return the results. */
std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &cfgs, SweepOptions opts = {});

/**
 * Writes @p results as structured JSON to @p path (atomically, via a
 * temporary + rename).  Used by SweepRunner for RNR_JSON_OUT / --json;
 * callable directly for ad-hoc exports.  Returns false on I/O failure.
 *
 * Schema "rnr-sweep-v2": v1 plus an optional top-level "host" object
 * ({"wall_sec", "peak_rss_bytes"}, emitted when @p host is non-null)
 * recording what the batch cost to produce.  readResultsJson() accepts
 * both versions.
 */
bool writeResultsJson(const std::string &path,
                      const std::vector<ExperimentResult> &results,
                      const std::string &label = "sweep",
                      const SweepHostInfo *host = nullptr);

/**
 * Loads a sweep export written by writeResultsJson() — schema
 * rnr-sweep-v1 or rnr-sweep-v2 — back into ExperimentResult form (the
 * config, footprint fields and per-iteration counters; telemetry blobs
 * are not part of the format).  @p label and @p host receive the
 * file-level fields when non-null (host is zeroed for v1 files).
 * Returns false and sets @p error on malformed input or an unknown
 * schema string.
 */
bool readResultsJson(const std::string &path,
                     std::vector<ExperimentResult> &out,
                     std::string *label = nullptr,
                     SweepHostInfo *host = nullptr,
                     std::string *error = nullptr);

/**
 * Formats the progress reporter's ETA ("12s"), or "--" when the data
 * carries no signal: nothing done yet, no elapsed time, or every
 * finished cell was a warm cache hit (@p simulated == 0) — cache hits
 * complete in microseconds, so extrapolating the remaining *simulated*
 * cells from them would print a nonsense near-zero ETA.  Also guards
 * the division against non-finite results.  Pure; unit-tested.
 */
std::string formatSweepEta(std::size_t done, std::size_t total,
                           std::size_t simulated, double elapsed_sec);

} // namespace rnr

#endif // RNR_HARNESS_SWEEP_H
