#include "harness/experiment.h"

#include <sstream>

namespace rnr {

std::string
ExperimentConfig::key() const
{
    std::ostringstream os;
    os << app << ":" << input << ":" << toString(prefetcher) << ":c"
       << static_cast<int>(control) << ":w" << window_size << ":i"
       << iterations << ":n" << cores << (ideal_llc ? ":ideal" : "");
    return os.str();
}

} // namespace rnr
