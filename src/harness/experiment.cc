#include "harness/experiment.h"

#include <sstream>

namespace rnr {

const char *
replayControlName(ReplayControlMode mode)
{
    switch (mode) {
    case ReplayControlMode::None:
        return "none";
    case ReplayControlMode::Window:
        return "window";
    case ReplayControlMode::WindowPace:
        return "window+pace";
    }
    return "?";
}

bool
replayControlFromName(const std::string &name, ReplayControlMode &out)
{
    if (name == "none")
        out = ReplayControlMode::None;
    else if (name == "window")
        out = ReplayControlMode::Window;
    else if (name == "window+pace")
        out = ReplayControlMode::WindowPace;
    else
        return false;
    return true;
}

std::string
ExperimentConfig::workloadKey() const
{
    std::ostringstream os;
    os << app << ":" << input << ":w" << window_size << ":i" << iterations
       << ":n" << cores;
    return os.str();
}

std::string
ExperimentConfig::key() const
{
    std::ostringstream os;
    os << workloadKey() << ":" << toString(prefetcher) << ":c"
       << static_cast<int>(control) << (ideal_llc ? ":ideal" : "");
    return os.str();
}

} // namespace rnr
