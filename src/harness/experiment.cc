#include "harness/experiment.h"

#include <sstream>

namespace rnr {

std::string
ExperimentConfig::workloadKey() const
{
    std::ostringstream os;
    os << app << ":" << input << ":w" << window_size << ":i" << iterations
       << ":n" << cores;
    return os.str();
}

std::string
ExperimentConfig::key() const
{
    std::ostringstream os;
    os << workloadKey() << ":" << toString(prefetcher) << ":c"
       << static_cast<int>(control) << (ideal_llc ? ":ideal" : "");
    return os.str();
}

} // namespace rnr
