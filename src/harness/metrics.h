/**
 * @file
 * Derived metrics — the formulas of Section VII applied to raw results.
 *
 *   Coverage  = UsefulPrefetches / TotalBaselineMisses        (Fig 8)
 *   Accuracy  = UsefulPrefetches / TotalPrefetches            (Fig 9)
 *   MPKI      = L2 demand misses * 1000 / instructions        (Fig 7)
 *   Speedup   = amortised over N iterations, matching the paper's
 *               100-iteration runs: one record/cold iteration plus
 *               (N-1) steady iterations                        (Fig 6)
 *   Traffic   = extra off-chip bytes vs the no-prefetch run   (Fig 12)
 *   Storage   = peak metadata bytes / input bytes             (Fig 13)
 *
 * Every function here is a pure function of ExperimentResult fields, so
 * figures can equally be regenerated offline from a sweep's JSON export
 * (harness/sweep.h, schema rnr-sweep-v2) — see docs/HARNESS.md for the
 * field-by-field mapping.
 *
 * Degenerate inputs: every ratio whose denominator can legitimately be
 * zero (no baseline misses, no instructions, no prefetches issued, zero
 * cycles, empty input) returns the defined sentinel **0.0** instead of
 * inf/NaN, so JSON exports stay parseable and table printers never see
 * a non-finite value.  0.0 is unambiguous for every metric here: a real
 * run always has non-zero cycles/instructions, so a 0.0 speedup or MPKI
 * can only mean "undefined".  Pinned by tests/harness/metrics_test.cc.
 */
#ifndef RNR_HARNESS_METRICS_H
#define RNR_HARNESS_METRICS_H

#include "harness/experiment.h"

namespace rnr {

/** Iterations the paper amortises over ("we use 100 iterations"). */
constexpr unsigned kAmortizedIterations = 100;

/** Useful prefetches in @p it (resident hits + late merges). */
std::uint64_t usefulPrefetches(const IterStats &it);

/** Amortised total cycles over @p n algorithm iterations. */
double amortizedCycles(const ExperimentResult &r,
                       unsigned n = kAmortizedIterations);

/** Speedup of @p r over @p baseline (both amortised); 0.0 when @p r
 *  has zero amortised cycles (degenerate result). */
double speedup(const ExperimentResult &r, const ExperimentResult &baseline,
               unsigned n = kAmortizedIterations);

/** Steady-state L2 demand MPKI; 0.0 when no instructions retired. */
double mpki(const ExperimentResult &r);

/** Miss coverage vs the baseline's steady iteration; 0.0 when the
 *  baseline had no misses (nothing to cover). */
double coverage(const ExperimentResult &r,
                const ExperimentResult &baseline);

/** Prefetch accuracy of the steady iteration; 0.0 when no prefetches
 *  were issued. */
double accuracy(const ExperimentResult &r);

/** Extra off-chip traffic fraction vs baseline (steady iteration);
 *  0.0 when the baseline moved no DRAM bytes. */
double trafficOverhead(const ExperimentResult &r,
                       const ExperimentResult &baseline);

/** Metadata storage as a fraction of the input size; 0.0 for an empty
 *  input. */
double storageOverhead(const ExperimentResult &r);

/** Record-iteration slowdown vs the baseline's first iteration; 0.0
 *  when the baseline's first iteration took zero cycles. */
double recordOverhead(const ExperimentResult &r,
                      const ExperimentResult &baseline);

/** Timeliness shares (Fig 11); each in [0,1], summing to ~1. */
struct TimelinessBreakdown {
    double ontime = 0, early = 0, late = 0, out_of_window = 0;
};
TimelinessBreakdown timeliness(const ExperimentResult &r);

/** Geometric mean helper for the GEOMEAN columns. */
double geomean(const std::vector<double> &values);

} // namespace rnr

#endif // RNR_HARNESS_METRICS_H
