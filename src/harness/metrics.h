/**
 * @file
 * Derived metrics — the formulas of Section VII applied to raw results.
 *
 *   Coverage  = UsefulPrefetches / TotalBaselineMisses        (Fig 8)
 *   Accuracy  = UsefulPrefetches / TotalPrefetches            (Fig 9)
 *   MPKI      = L2 demand misses * 1000 / instructions        (Fig 7)
 *   Speedup   = amortised over N iterations, matching the paper's
 *               100-iteration runs: one record/cold iteration plus
 *               (N-1) steady iterations                        (Fig 6)
 *   Traffic   = extra off-chip bytes vs the no-prefetch run   (Fig 12)
 *   Storage   = peak metadata bytes / input bytes             (Fig 13)
 *
 * Every function here is a pure function of ExperimentResult fields, so
 * figures can equally be regenerated offline from a sweep's JSON export
 * (harness/sweep.h, schema rnr-sweep-v1) — see docs/HARNESS.md for the
 * field-by-field mapping.
 */
#ifndef RNR_HARNESS_METRICS_H
#define RNR_HARNESS_METRICS_H

#include "harness/experiment.h"

namespace rnr {

/** Iterations the paper amortises over ("we use 100 iterations"). */
constexpr unsigned kAmortizedIterations = 100;

/** Useful prefetches in @p it (resident hits + late merges). */
std::uint64_t usefulPrefetches(const IterStats &it);

/** Amortised total cycles over @p n algorithm iterations. */
double amortizedCycles(const ExperimentResult &r,
                       unsigned n = kAmortizedIterations);

/** Speedup of @p r over @p baseline (both amortised). */
double speedup(const ExperimentResult &r, const ExperimentResult &baseline,
               unsigned n = kAmortizedIterations);

/** Steady-state L2 demand MPKI. */
double mpki(const ExperimentResult &r);

/** Miss coverage vs the baseline's steady iteration. */
double coverage(const ExperimentResult &r,
                const ExperimentResult &baseline);

/** Prefetch accuracy of the steady iteration. */
double accuracy(const ExperimentResult &r);

/** Extra off-chip traffic fraction vs baseline (steady iteration). */
double trafficOverhead(const ExperimentResult &r,
                       const ExperimentResult &baseline);

/** Metadata storage as a fraction of the input size. */
double storageOverhead(const ExperimentResult &r);

/** Record-iteration slowdown vs the baseline's first iteration. */
double recordOverhead(const ExperimentResult &r,
                      const ExperimentResult &baseline);

/** Timeliness shares (Fig 11); each in [0,1], summing to ~1. */
struct TimelinessBreakdown {
    double ontime = 0, early = 0, late = 0, out_of_window = 0;
};
TimelinessBreakdown timeliness(const ExperimentResult &r);

/** Geometric mean helper for the GEOMEAN columns. */
double geomean(const std::vector<double> &values);

} // namespace rnr

#endif // RNR_HARNESS_METRICS_H
