#include "harness/json_parse.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rnr {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number && kind != Kind::String)
        return 0.0;
    return std::strtod(text.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number && kind != Kind::String)
        return 0;
    if (!text.empty() && text[0] == '-')
        return 0;
    // Exact path for integer tokens; fall back through double for
    // scientific notation ("1e6") that a foreign writer might emit.
    if (text.find_first_of(".eE") == std::string::npos) {
        errno = 0;
        const std::uint64_t v = std::strtoull(text.c_str(), nullptr, 10);
        if (errno == 0)
            return v;
    }
    const double d = asDouble();
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

namespace {

/** Recursive-descent parser over an in-memory buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s_(text), err_(error)
    {
    }

    bool
    run(JsonValue &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (err_ && err_->empty()) {
            std::ostringstream os;
            os << what << " at byte " << pos_;
            *err_ = os.str();
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (s_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    return fail("truncated escape");
                const char e = s_[pos_ + 1];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    // Harness strings are keys and labels; \u escapes
                    // only matter for exotic input, so decode the BMP
                    // code point as UTF-8 and skip surrogate pairing.
                    if (pos_ + 5 >= s_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_ + 2 + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    pos_ += 4;
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                pos_ += 2;
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                ((s_[pos_] == '-' || s_[pos_] == '+') &&
                 (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E')))) {
            digits |= std::isdigit(static_cast<unsigned char>(s_[pos_]));
            ++pos_;
        }
        if (!digits)
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.text = s_.substr(start, pos_ - start);
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        const char c = s_[pos_];
        switch (c) {
          case '{': {
            out.kind = JsonValue::Kind::Object;
            ++pos_;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != '"')
                    return fail("expected object key");
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue v;
                if (!value(v, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < s_.size() && s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            out.kind = JsonValue::Kind::Array;
            ++pos_;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                JsonValue v;
                if (!value(v, depth + 1))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < s_.size() && s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return number(out);
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    std::string *err_;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    if (error)
        error->clear();
    out = JsonValue{};
    return Parser(text, error).run(out);
}

bool
parseJsonFile(const std::string &path, JsonValue &out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseJson(buf.str(), out, error);
}

} // namespace rnr
