#include "harness/runner.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "ckpt/ckpt_store.h"
#include "ckpt/input_fork.h"
#include "cpu/system.h"
#include "harness/result_cache.h"
#include "obs/log.h"
#include "harness/system_counters.h"
#include "sim/attrib.h"
#include "sim/kernel.h"
#include "sim/timeseries.h"
#include "tracestore/trace_reader.h"
#include "tracestore/trace_store.h"
#include "workloads/graph_gen.h"
#include "workloads/hyperanf.h"
#include "workloads/jacobi.h"
#include "workloads/labelprop.h"
#include "workloads/pagerank.h"
#include "workloads/sparse_gen.h"
#include "workloads/spcg.h"
#include "workloads/trace_replay.h"

namespace rnr {

namespace {

// ---- Single-flight bookkeeping for concurrent runExperiment calls ----

std::atomic<std::uint64_t> g_simulated{0};
std::mutex g_inflight_mu;
std::condition_variable g_inflight_cv;
std::set<std::string> g_inflight;

/** Thrown by the replay path when a stored trace fails mid-stream; the
 *  caller quarantines the entry and recaptures. */
struct CorruptTraceEntry : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/**
 * Machine + workload + prefetchers for one experiment, shared by the
 * capture (materialised) and replay (streaming) paths so they simulate
 * byte-identically.
 */
struct Sim {
    System sys;
    std::unique_ptr<Workload> wl;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    ExperimentResult result;
    SystemCounters before;

    Sim(const ExperimentConfig &cfg, TraceCollector *tr,
        TelemetrySampler *tm, AttribCollector *at = nullptr)
        : sys(machineFor(cfg)), wl(makeWorkload(cfg))
    {
        RnrPrefetcher::Options rnr_opts;
        rnr_opts.control = cfg.control;
        rnr_opts.window_size = cfg.window_size;

        for (unsigned c = 0; c < cfg.cores; ++c) {
            prefetchers.push_back(
                createPrefetcher(cfg.prefetcher, rnr_opts));
            prefetchers.back()->configureFor(*wl, c);
            sys.mem().setPrefetcher(c, prefetchers.back().get());
        }
        if (tr)
            sys.attachTrace(tr);
        if (tm)
            sys.attachTelemetry(tm);
        if (at)
            sys.attachAttrib(at);

        result.config = cfg;
        result.input_bytes = wl->inputBytes();
        result.target_bytes = wl->targetBytes();
        before = SystemCounters::capture(sys);
    }

    static MachineConfig
    machineFor(const ExperimentConfig &cfg)
    {
        MachineConfig mcfg = MachineConfig::scaledDefault();
        mcfg.cores = cfg.cores;
        if (cfg.ideal_llc)
            mcfg = MachineConfig::withInfiniteLlc(mcfg);
        return mcfg;
    }

    /** Books one simulated iteration into the result. */
    void
    recordIteration(const IterationResult &run)
    {
        SystemCounters after = SystemCounters::capture(sys);
        IterStats it = after.delta(before);
        it.cycles = run.cycles();
        it.instructions = run.instructions;
        result.iterations.push_back(it);
        before = after;
    }

    /** Collects the end-of-run metadata sizes (Fig 13). */
    ExperimentResult
    finish(const ExperimentConfig &cfg)
    {
        for (unsigned c = 0; c < cfg.cores; ++c)
            if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c))) {
                result.seq_table_bytes += r->seqTableBytes();
                result.div_table_bytes += r->divTableBytes();
            }
        return std::move(result);
    }
};

/**
 * Executes the workload natively and simulates from the materialised
 * buffers (the legacy path, and the store's capture path).  When
 * @p cap is non-null every iteration's buffers are also encoded into
 * the in-progress store entry.
 */
ExperimentResult
runMaterialized(const ExperimentConfig &cfg, TraceCollector *tr,
                TelemetrySampler *tm, AttribCollector *at,
                TraceStore::Capture *cap)
{
    g_simulated.fetch_add(1);
    Sim sim(cfg, tr, tm, at);

    std::vector<TraceBuffer> bufs(cfg.cores);
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        // No clear here: retargetAll() clears, and first samples each
        // buffer's size so it can reserve the next iteration's records.
        sim.wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);

        for (unsigned c = 0; cap && c < cfg.cores; ++c)
            if (TraceIoResult r = cap->add(iter, c, bufs[c]); !r) {
                // Capture is best-effort: keep simulating, drop the
                // half-written entry (the destructor aborts it).
                obs::LogLine(obs::LogLevel::Warn, "tracestore")
                    .msg("capture failed")
                    .kv("workload", cfg.workloadKey())
                    .kv("why", r.message());
                cap = nullptr;
            }

        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        sim.recordIteration(sim.sys.run(ptrs));
    }
    return sim.finish(cfg);
}

/**
 * Simulates from a validated store entry: each core streams its
 * compressed per-iteration trace block-by-block; the workload is still
 * constructed (prefetcher hints read its structures) but its expensive
 * emitIteration() never runs.  Throws CorruptTraceEntry when a file
 * fails mid-stream.
 */
ExperimentResult
runFromStore(const ExperimentConfig &cfg, TraceCollector *tr,
             TelemetrySampler *tm, AttribCollector *at,
             const TraceStore::Entry &entry)
{
    g_simulated.fetch_add(1);
    Sim sim(cfg, tr, tm, at);

    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        // Advance workload-held replay state (e.g. PageRank's p_curr
        // base swap) that emitIteration() would have performed.
        sim.wl->beginReplayIteration(iter);

        std::vector<StreamingTraceReader> readers(cfg.cores);
        std::vector<TraceSource *> sources;
        sources.reserve(cfg.cores);
        for (unsigned c = 0; c < cfg.cores; ++c) {
            const std::string path = entry.tracePath(iter, c);
            if (TraceIoResult r = readers[c].open(path); !r)
                throw CorruptTraceEntry(path + ": " + r.message());
            sources.push_back(&readers[c]);
        }
        const IterationResult run = sim.sys.runStreaming(sources);
        for (unsigned c = 0; c < cfg.cores; ++c)
            if (readers[c].error())
                throw CorruptTraceEntry(
                    readers[c].errorResult().message());
        sim.recordIteration(run);
    }
    return sim.finish(cfg);
}

/**
 * Trace-store front door: replay when the corpus has this workload,
 * capture-and-publish when it does not.  A corrupt entry is
 * quarantined and recaptured once before giving up on the store.
 */
ExperimentResult
runWithTraceStore(const ExperimentConfig &cfg, TraceCollector *tr,
                  TelemetrySampler *tm, AttribCollector *at)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = cfg.workloadKey();

    for (int attempt = 0; attempt < 2; ++attempt) {
        TraceStore::Entry entry;
        if (store.acquire(wkey, entry) == TraceStore::Acquire::Hit) {
            try {
                return runFromStore(cfg, tr, tm, at, entry);
            } catch (const CorruptTraceEntry &e) {
                obs::LogLine(obs::LogLevel::Warn, "tracestore")
                    .msg("replay failed; quarantining and recapturing")
                    .kv("workload", wkey)
                    .kv("why", e.what());
                store.invalidate(wkey);
                continue;
            }
        }
        // Owner: run natively, encoding each iteration as it finishes.
        TraceStore::Capture cap =
            store.beginCapture(wkey, cfg.iterations, cfg.cores);
        ExperimentResult r = runMaterialized(cfg, tr, tm, at, &cap);
        cap.publish(r.input_bytes, r.target_bytes);
        return r;
    }
    // Two corrupt replays in a row: something is systematically wrong
    // with this entry's environment; simulate without the store.
    return runMaterialized(cfg, tr, tm, at, nullptr);
}

// ---- Full-state checkpoint capture / restore (src/ckpt) ----

/** Serializes the complete simulation state of @p sim after @p window
 *  finished iterations into an rnr-ckpt-v1 blob. */
std::vector<std::uint8_t>
snapshotSim(const ExperimentConfig &cfg, Sim &sim, unsigned window)
{
    ckpt::SnapshotWriter w(
        ckpt::SnapshotHeader{cfg.workloadKey(), cfg.key(), window});
    {
        // Echo only: restoring under the other RNR_KERNEL mode is
        // legal (the kernels are bit-identical by contract); inspect
        // just shows which mode captured.
        ckpt::Ser &s = w.section(ckpt::SectionId::Meta);
        s.scalar(std::uint64_t{
            kernelModeFromEnv() == KernelMode::Legacy ? 1u : 0u});
        s.scalar(std::uint64_t{cfg.cores});
        s.scalar(std::uint64_t{cfg.iterations});
    }
    sim.sys.visitState(w.section(ckpt::SectionId::System));
    {
        ckpt::Ser &s = w.section(ckpt::SectionId::Prefetchers);
        for (auto &p : sim.prefetchers)
            p->saveState(s);
    }
    {
        ckpt::Ser &s = w.section(ckpt::SectionId::Harness);
        s.scalar(sim.result.input_bytes);
        s.scalar(sim.result.target_bytes);
        s.scalar(std::uint64_t{sim.result.iterations.size()});
        for (IterStats &it : sim.result.iterations) {
#define RNR_CKPT_ITER_FIELD(type, name) s.scalar(it.name);
            RNR_ITER_STAT_FIELDS(RNR_CKPT_ITER_FIELD)
#undef RNR_CKPT_ITER_FIELD
        }
    }
    return w.finish();
}

/** Rebuilds @p sim to the snapshot's state: native workload
 *  fast-forward plus section loads.  Throws CorruptSnapshot when any
 *  section fails to decode. */
void
restoreSim(const ExperimentConfig &cfg, Sim &sim,
           const ckpt::SnapshotReader &reader)
{
    const unsigned window =
        static_cast<unsigned>(reader.header().window);

    // Fast-forward the workload natively through the checkpointed
    // iterations: re-running the numerics leaves the workload (and
    // its RnR runtime staging) in exactly the checkpoint-time state
    // for any workload type.  The emitted records are discarded — the
    // System/Prefetchers sections stand in for simulating them.
    std::vector<TraceBuffer> bufs(cfg.cores);
    for (unsigned iter = 0; iter < window; ++iter)
        sim.wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);

    ckpt::Deser sys = reader.section(ckpt::SectionId::System);
    sim.sys.visitState(sys);
    if (!sys.ok())
        throw ckpt::CorruptSnapshot(sys.result());

    ckpt::Deser pf = reader.section(ckpt::SectionId::Prefetchers);
    for (auto &p : sim.prefetchers)
        p->loadState(pf);
    if (!pf.ok())
        throw ckpt::CorruptSnapshot(pf.result());

    ckpt::Deser h = reader.section(ckpt::SectionId::Harness);
    h.scalar(sim.result.input_bytes);
    h.scalar(sim.result.target_bytes);
    std::uint64_t n = 0;
    h.scalar(n);
    sim.result.iterations.clear();
    if (ckpt::checkCount(h, n, 8)) {
        for (std::uint64_t i = 0; i < n; ++i) {
            IterStats it;
#define RNR_CKPT_ITER_FIELD(type, name) h.scalar(it.name);
            RNR_ITER_STAT_FIELDS(RNR_CKPT_ITER_FIELD)
#undef RNR_CKPT_ITER_FIELD
            sim.result.iterations.push_back(it);
        }
    }
    if (!h.ok())
        throw ckpt::CorruptSnapshot(h.result());

    // The restored stats make a fresh capture equal the
    // checkpoint-time one, so iteration deltas continue seamlessly.
    sim.before = SystemCounters::capture(sim.sys);
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const ExperimentConfig &cfg)
{
    WorkloadOptions opts;
    opts.cores = cfg.cores;
    opts.use_rnr = true; // control records are harmless to baselines
    opts.window_size = cfg.window_size;

    // Inputs come through the checkpoint-fork layer: the first config
    // of a workload key generates (the sweep's shared warm-up), every
    // other one forks the published input snapshot (RNR_CKPT=0 falls
    // back to generating every time).  Forked inputs are bit-identical
    // to generated ones, so results do not depend on the store.
    if (cfg.app == "pagerank")
        return std::make_unique<PageRankWorkload>(
            ckpt::forkGraphInput(cfg), opts);
    if (cfg.app == "hyperanf")
        return std::make_unique<HyperAnfWorkload>(
            ckpt::forkGraphInput(cfg), opts);
    if (cfg.app == "spcg")
        return std::make_unique<SpcgWorkload>(
            ckpt::forkMatrixInput(cfg), opts);
    if (cfg.app == "labelprop")
        return std::make_unique<LabelPropWorkload>(
            ckpt::forkGraphInput(cfg), opts);
    if (cfg.app == "jacobi")
        return std::make_unique<JacobiWorkload>(
            ckpt::forkMatrixInput(cfg), opts);
    if (cfg.app == "tracefile")
        return std::make_unique<TraceFileWorkload>(cfg.input, opts);
    throw std::invalid_argument("unknown app: " + cfg.app);
}

ExperimentResult
runExperimentAttributed(const ExperimentConfig &cfg, TraceCollector *tr,
                        TelemetrySampler *tm, AttribCollector *at)
{
    // The tracefile app already replays from disk; storing it again
    // would only duplicate the file.
    ExperimentResult r =
        (TraceStore::enabled() && cfg.app != "tracefile")
            ? runWithTraceStore(cfg, tr, tm, at)
            : runMaterialized(cfg, tr, tm, at, nullptr);
    if (tm)
        r.telemetry = std::make_shared<TelemetryBlob>(tm->harvest());
    if (at) {
        auto blob = std::make_shared<AttribBlob>(at->harvest());
        publishAttribMetrics(*blob);
        r.attrib = std::move(blob);
    }
    return r;
}

ExperimentResult
runExperimentInstrumented(const ExperimentConfig &cfg, TraceCollector *tr,
                          TelemetrySampler *tm)
{
    return runExperimentAttributed(cfg, tr, tm, nullptr);
}

ExperimentResult
runExperimentTraced(const ExperimentConfig &cfg, TraceCollector *tr)
{
    return runExperimentInstrumented(cfg, tr, nullptr);
}

ExperimentResult
runExperimentUncached(const ExperimentConfig &cfg)
{
    const bool want_trace = cfg.trace.enabled || traceEnvEnabled();
    const bool want_samples =
        cfg.telemetry.enabled || telemetryEnvSampleCycles() > 0;
    const bool want_attrib = cfg.attrib.enabled || attribEnvEnabled();
    if (!want_trace && !want_samples && !want_attrib)
        return runExperimentInstrumented(cfg, nullptr, nullptr);

    std::unique_ptr<TelemetrySampler> tm;
    if (want_samples)
        tm = std::make_unique<TelemetrySampler>(
            telemetrySampleCycles(cfg.telemetry.sample_cycles));
    std::unique_ptr<AttribCollector> at;
    if (want_attrib)
        at = std::make_unique<AttribCollector>(
            cfg.attrib.site_top_k != 0
                ? cfg.attrib.site_top_k
                : AttribCollector::kDefaultSiteTopK,
            cfg.attrib.region_top_k != 0
                ? cfg.attrib.region_top_k
                : AttribCollector::kDefaultRegionTopK);
    if (!want_trace)
        return runExperimentAttributed(cfg, nullptr, tm.get(), at.get());

    TraceCollector tr(cfg.cores, cfg.trace.ring_capacity);
    ExperimentResult result =
        runExperimentAttributed(cfg, &tr, tm.get(), at.get());

    // Sinks.  Caveat for parallel sweeps: every traced cell writes the
    // same RNR_TRACE_OUT path (atomically; last writer wins) — tracing
    // is meant for single-cell runs, not whole sweeps.
    const std::string out = !cfg.trace.json_out.empty()
                                ? cfg.trace.json_out
                                : traceEnvOutPath();
    if (!out.empty() && !writeChromeTrace(out, tr))
        obs::LogLine(obs::LogLevel::Error, "trace")
            .msg("failed to write trace")
            .kv("path", out);
    if (traceEnvReportEnabled()) {
        const std::string report =
            formatReplayDiagnostics(buildReplayDiagnostics(tr));
        std::fprintf(stderr, "[%s] replay windows:\n%s", cfg.key().c_str(),
                     report.c_str());
    }
    return result;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg, bool *was_cached)
{
    ResultCache &cache = ResultCache::instance();
    const std::string key = cfg.key();

    // Single-flight: the first caller of a key simulates; concurrent
    // callers of the same key sleep until the result lands in the cache
    // (or the simulating thread fails, in which case one waiter takes
    // over and retries).
    {
        std::unique_lock<std::mutex> lock(g_inflight_mu);
        for (;;) {
            ExperimentResult hit;
            if (cache.lookup(cfg, hit)) {
                if (was_cached)
                    *was_cached = true;
                return hit;
            }
            if (g_inflight.insert(key).second)
                break; // we own the simulation of this key
            g_inflight_cv.wait(lock);
        }
    }

    ExperimentResult r;
    try {
        r = runExperimentUncached(cfg);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(g_inflight_mu);
            g_inflight.erase(key);
        }
        g_inflight_cv.notify_all();
        throw;
    }
    cache.store(key, r);
    {
        std::lock_guard<std::mutex> lock(g_inflight_mu);
        g_inflight.erase(key);
    }
    g_inflight_cv.notify_all();
    if (was_cached)
        *was_cached = false;
    return r;
}

std::uint64_t
experimentsSimulated()
{
    return g_simulated.load();
}

ExperimentResult
runExperimentCheckpointed(const ExperimentConfig &cfg, unsigned window,
                          std::vector<std::uint8_t> &snapshot_out)
{
    if (window == 0 || window >= cfg.iterations)
        throw std::invalid_argument(
            "checkpoint window must be in [1, iterations)");
    g_simulated.fetch_add(1);
    Sim sim(cfg, nullptr, nullptr);

    std::vector<TraceBuffer> bufs(cfg.cores);
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        sim.wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        sim.recordIteration(sim.sys.run(ptrs));
        if (iter + 1 == window)
            snapshot_out = snapshotSim(cfg, sim, window);
    }
    return sim.finish(cfg);
}

ExperimentResult
runExperimentFromSnapshot(const ExperimentConfig &cfg,
                          const std::vector<std::uint8_t> &snapshot)
{
    ckpt::SnapshotReader reader;
    if (ckpt::CkptIoResult r = reader.parse(snapshot); !r.ok())
        throw ckpt::CorruptSnapshot(r);
    if (reader.header().full_key != cfg.key())
        throw ckpt::CorruptSnapshot(ckpt::CkptIoResult::fail(
            ckpt::CkptIoStatus::KeyMismatch,
            "snapshot belongs to \"" + reader.header().full_key + "\""));
    const unsigned window =
        static_cast<unsigned>(reader.header().window);
    if (window == 0 || window >= cfg.iterations)
        throw ckpt::CorruptSnapshot(ckpt::CkptIoResult::fail(
            ckpt::CkptIoStatus::BadSection,
            "window " + std::to_string(window) + " outside [1, " +
                std::to_string(cfg.iterations) + ")"));

    g_simulated.fetch_add(1);
    Sim sim(cfg, nullptr, nullptr);
    restoreSim(cfg, sim, reader);
    ckpt::CheckpointStore::instance().noteRestore();

    std::vector<TraceBuffer> bufs(cfg.cores);
    for (unsigned iter = window; iter < cfg.iterations; ++iter) {
        sim.wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        sim.recordIteration(sim.sys.run(ptrs));
    }
    return sim.finish(cfg);
}

ExperimentResult
runExperimentResumable(const ExperimentConfig &cfg, unsigned window)
{
    ckpt::CheckpointStore &store = ckpt::CheckpointStore::instance();
    std::vector<std::uint8_t> blob;
    if (!ckpt::CheckpointStore::enabled())
        return runExperimentCheckpointed(cfg, window, blob);

    // One span covers the whole resumable operation, so the store's
    // own records (corrupt-snapshot drops, publish failures) correlate
    // with the quarantine warnings below in a merged farm log.
    obs::SpanScope span;
    const std::string key = cfg.key();
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (store.acquire(key, window, blob) ==
            ckpt::CheckpointStore::Acquire::Hit) {
            try {
                return runExperimentFromSnapshot(cfg, blob);
            } catch (const ckpt::CorruptSnapshot &e) {
                obs::LogLine(obs::LogLevel::Warn, "ckpt")
                    .msg("restore failed; quarantining and re-running")
                    .kv("key", key)
                    .kv("why", e.what());
                store.invalidate(key, window);
                continue;
            }
        }
        // Owner: simulate from the start, snapshotting at the window.
        ExperimentResult r;
        try {
            r = runExperimentCheckpointed(cfg, window, blob);
        } catch (...) {
            store.abandon(key, window);
            throw;
        }
        store.publish(key, window, blob);
        return r;
    }
    // Two corrupt restores in a row: run straight through without
    // touching the store again.
    return runExperimentCheckpointed(cfg, window, blob);
}

ExperimentResult
runBaseline(const ExperimentConfig &cfg)
{
    ExperimentConfig base = cfg;
    base.prefetcher = PrefetcherKind::None;
    base.control = ReplayControlMode::WindowPace;
    base.window_size = 0;
    base.ideal_llc = false;
    return runExperiment(base);
}

} // namespace rnr
