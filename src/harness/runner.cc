#include "harness/runner.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>

#include "cpu/system.h"
#include "harness/result_cache.h"
#include "prefetch/imp.h"
#include "workloads/graph_gen.h"
#include "workloads/hyperanf.h"
#include "workloads/jacobi.h"
#include "workloads/labelprop.h"
#include "workloads/pagerank.h"
#include "workloads/sparse_gen.h"
#include "workloads/spcg.h"

namespace rnr {

namespace {

/** Sums a counter over every core's cache/prefetcher stat group. */
std::uint64_t
sumL2(System &sys, const std::string &key)
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < sys.coreCount(); ++c)
        total += sys.mem().l2(c).stats().get(key);
    return total;
}

std::uint64_t
sumRnr(System &sys, const std::string &key)
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < sys.coreCount(); ++c) {
        if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c)))
            total += r->stats().get(key);
    }
    return total;
}

/** Snapshot of all cumulative counters an IterStats delta needs. */
IterStats
snapshot(System &sys)
{
    IterStats s;
    s.l2_accesses = sumL2(sys, "accesses");
    s.l2_demand_misses = sumL2(sys, "misses") - sumL2(sys, "mshr_merges");
    s.pf_issued = sumL2(sys, "prefetches_issued");
    s.pf_useful = sumL2(sys, "prefetch_useful");
    s.pf_late_merged = sumL2(sys, "demand_merged_into_prefetch");
    const StatGroup &d = sys.mem().dram().stats();
    s.dram_bytes_total = d.get("bytes_total");
    s.dram_bytes_demand = d.get("bytes_demand");
    s.dram_bytes_prefetch = d.get("bytes_prefetch");
    s.dram_bytes_metadata = d.get("bytes_metadata");
    s.dram_bytes_writeback = d.get("bytes_writeback");
    s.rnr_ontime = sumRnr(sys, "pf_ontime");
    s.rnr_early = sumRnr(sys, "pf_early");
    s.rnr_late = sumRnr(sys, "pf_late");
    s.rnr_out_of_window = sumRnr(sys, "pf_out_of_window");
    s.rnr_recorded = sumRnr(sys, "recorded_misses");
    return s;
}

IterStats
delta(const IterStats &after, const IterStats &before)
{
    IterStats d = after;
    d.l2_accesses -= before.l2_accesses;
    d.l2_demand_misses -= before.l2_demand_misses;
    d.pf_issued -= before.pf_issued;
    d.pf_useful -= before.pf_useful;
    d.pf_late_merged -= before.pf_late_merged;
    d.dram_bytes_total -= before.dram_bytes_total;
    d.dram_bytes_demand -= before.dram_bytes_demand;
    d.dram_bytes_prefetch -= before.dram_bytes_prefetch;
    d.dram_bytes_metadata -= before.dram_bytes_metadata;
    d.dram_bytes_writeback -= before.dram_bytes_writeback;
    d.rnr_ontime -= before.rnr_ontime;
    d.rnr_early -= before.rnr_early;
    d.rnr_late -= before.rnr_late;
    d.rnr_out_of_window -= before.rnr_out_of_window;
    d.rnr_recorded -= before.rnr_recorded;
    return d;
}

// ---- Single-flight bookkeeping for concurrent runExperiment calls ----

std::atomic<std::uint64_t> g_simulated{0};
std::mutex g_inflight_mu;
std::condition_variable g_inflight_cv;
std::set<std::string> g_inflight;

} // namespace

std::unique_ptr<Workload>
makeWorkload(const ExperimentConfig &cfg)
{
    WorkloadOptions opts;
    opts.cores = cfg.cores;
    opts.use_rnr = true; // control records are harmless to baselines
    opts.window_size = cfg.window_size;

    if (cfg.app == "pagerank")
        return std::make_unique<PageRankWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "hyperanf")
        return std::make_unique<HyperAnfWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "spcg")
        return std::make_unique<SpcgWorkload>(
            makeMatrixInput(cfg.input).matrix, opts);
    if (cfg.app == "labelprop")
        return std::make_unique<LabelPropWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "jacobi")
        return std::make_unique<JacobiWorkload>(
            makeMatrixInput(cfg.input).matrix, opts);
    throw std::invalid_argument("unknown app: " + cfg.app);
}

ExperimentResult
runExperimentUncached(const ExperimentConfig &cfg)
{
    g_simulated.fetch_add(1);
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = cfg.cores;
    if (cfg.ideal_llc)
        mcfg = MachineConfig::withInfiniteLlc(mcfg);

    System sys(mcfg);
    std::unique_ptr<Workload> wl = makeWorkload(cfg);

    RnrPrefetcher::Options rnr_opts;
    rnr_opts.control = cfg.control;
    rnr_opts.window_size = cfg.window_size;

    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        prefetchers.push_back(createPrefetcher(cfg.prefetcher, rnr_opts));
        if (auto *d = dynamic_cast<DropletPrefetcher *>(
                prefetchers.back().get()))
            d->setHint(wl->dropletHint(c));
        if (auto *i = dynamic_cast<ImpPrefetcher *>(
                prefetchers.back().get()))
            i->setSniffer(wl->impSniffer(c));
        sys.mem().setPrefetcher(c, prefetchers.back().get());
    }

    ExperimentResult result;
    result.config = cfg;
    result.input_bytes = wl->inputBytes();
    result.target_bytes = wl->targetBytes();

    std::vector<TraceBuffer> bufs(cfg.cores);
    IterStats before = snapshot(sys);
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        for (auto &b : bufs)
            b.clear();
        wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);

        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        const IterationResult run = sys.run(ptrs);

        IterStats after = snapshot(sys);
        IterStats it = delta(after, before);
        it.cycles = run.cycles();
        it.instructions = run.instructions;
        result.iterations.push_back(it);
        before = after;
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c))) {
            result.seq_table_bytes += r->seqTableBytes();
            result.div_table_bytes += r->divTableBytes();
        }
    }
    return result;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg, bool *was_cached)
{
    ResultCache &cache = ResultCache::instance();
    const std::string key = cfg.key();

    // Single-flight: the first caller of a key simulates; concurrent
    // callers of the same key sleep until the result lands in the cache
    // (or the simulating thread fails, in which case one waiter takes
    // over and retries).
    {
        std::unique_lock<std::mutex> lock(g_inflight_mu);
        for (;;) {
            ExperimentResult hit;
            if (cache.lookup(cfg, hit)) {
                if (was_cached)
                    *was_cached = true;
                return hit;
            }
            if (g_inflight.insert(key).second)
                break; // we own the simulation of this key
            g_inflight_cv.wait(lock);
        }
    }

    ExperimentResult r;
    try {
        r = runExperimentUncached(cfg);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(g_inflight_mu);
            g_inflight.erase(key);
        }
        g_inflight_cv.notify_all();
        throw;
    }
    cache.store(key, r);
    {
        std::lock_guard<std::mutex> lock(g_inflight_mu);
        g_inflight.erase(key);
    }
    g_inflight_cv.notify_all();
    if (was_cached)
        *was_cached = false;
    return r;
}

std::uint64_t
experimentsSimulated()
{
    return g_simulated.load();
}

ExperimentResult
runBaseline(const ExperimentConfig &cfg)
{
    ExperimentConfig base = cfg;
    base.prefetcher = PrefetcherKind::None;
    base.control = ReplayControlMode::WindowPace;
    base.window_size = 0;
    base.ideal_llc = false;
    return runExperiment(base);
}

} // namespace rnr
