#include "harness/runner.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <stdexcept>

#include "cpu/system.h"
#include "harness/result_cache.h"
#include "harness/system_counters.h"
#include "workloads/graph_gen.h"
#include "workloads/hyperanf.h"
#include "workloads/jacobi.h"
#include "workloads/labelprop.h"
#include "workloads/pagerank.h"
#include "workloads/sparse_gen.h"
#include "workloads/spcg.h"

namespace rnr {

namespace {

// ---- Single-flight bookkeeping for concurrent runExperiment calls ----

std::atomic<std::uint64_t> g_simulated{0};
std::mutex g_inflight_mu;
std::condition_variable g_inflight_cv;
std::set<std::string> g_inflight;

} // namespace

std::unique_ptr<Workload>
makeWorkload(const ExperimentConfig &cfg)
{
    WorkloadOptions opts;
    opts.cores = cfg.cores;
    opts.use_rnr = true; // control records are harmless to baselines
    opts.window_size = cfg.window_size;

    if (cfg.app == "pagerank")
        return std::make_unique<PageRankWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "hyperanf")
        return std::make_unique<HyperAnfWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "spcg")
        return std::make_unique<SpcgWorkload>(
            makeMatrixInput(cfg.input).matrix, opts);
    if (cfg.app == "labelprop")
        return std::make_unique<LabelPropWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "jacobi")
        return std::make_unique<JacobiWorkload>(
            makeMatrixInput(cfg.input).matrix, opts);
    throw std::invalid_argument("unknown app: " + cfg.app);
}

ExperimentResult
runExperimentTraced(const ExperimentConfig &cfg, TraceCollector *tr)
{
    g_simulated.fetch_add(1);
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = cfg.cores;
    if (cfg.ideal_llc)
        mcfg = MachineConfig::withInfiniteLlc(mcfg);

    System sys(mcfg);
    std::unique_ptr<Workload> wl = makeWorkload(cfg);

    RnrPrefetcher::Options rnr_opts;
    rnr_opts.control = cfg.control;
    rnr_opts.window_size = cfg.window_size;

    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        prefetchers.push_back(createPrefetcher(cfg.prefetcher, rnr_opts));
        prefetchers.back()->configureFor(*wl, c);
        sys.mem().setPrefetcher(c, prefetchers.back().get());
    }
    if (tr)
        sys.attachTrace(tr);

    ExperimentResult result;
    result.config = cfg;
    result.input_bytes = wl->inputBytes();
    result.target_bytes = wl->targetBytes();

    std::vector<TraceBuffer> bufs(cfg.cores);
    SystemCounters before = SystemCounters::capture(sys);
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        // No clear here: retargetAll() clears, and first samples each
        // buffer's size so it can reserve the next iteration's records.
        wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);

        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        const IterationResult run = sys.run(ptrs);

        SystemCounters after = SystemCounters::capture(sys);
        IterStats it = after.delta(before);
        it.cycles = run.cycles();
        it.instructions = run.instructions;
        result.iterations.push_back(it);
        before = after;
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c))) {
            result.seq_table_bytes += r->seqTableBytes();
            result.div_table_bytes += r->divTableBytes();
        }
    }
    return result;
}

ExperimentResult
runExperimentUncached(const ExperimentConfig &cfg)
{
    if (!cfg.trace.enabled && !traceEnvEnabled())
        return runExperimentTraced(cfg, nullptr);

    TraceCollector tr(cfg.cores, cfg.trace.ring_capacity);
    ExperimentResult result = runExperimentTraced(cfg, &tr);

    // Sinks.  Caveat for parallel sweeps: every traced cell writes the
    // same RNR_TRACE_OUT path (atomically; last writer wins) — tracing
    // is meant for single-cell runs, not whole sweeps.
    const std::string out = !cfg.trace.json_out.empty()
                                ? cfg.trace.json_out
                                : traceEnvOutPath();
    if (!out.empty() && !writeChromeTrace(out, tr))
        std::fprintf(stderr, "rnr: failed to write trace to %s\n",
                     out.c_str());
    if (traceEnvReportEnabled()) {
        const std::string report =
            formatReplayDiagnostics(buildReplayDiagnostics(tr));
        std::fprintf(stderr, "[%s] replay windows:\n%s", cfg.key().c_str(),
                     report.c_str());
    }
    return result;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg, bool *was_cached)
{
    ResultCache &cache = ResultCache::instance();
    const std::string key = cfg.key();

    // Single-flight: the first caller of a key simulates; concurrent
    // callers of the same key sleep until the result lands in the cache
    // (or the simulating thread fails, in which case one waiter takes
    // over and retries).
    {
        std::unique_lock<std::mutex> lock(g_inflight_mu);
        for (;;) {
            ExperimentResult hit;
            if (cache.lookup(cfg, hit)) {
                if (was_cached)
                    *was_cached = true;
                return hit;
            }
            if (g_inflight.insert(key).second)
                break; // we own the simulation of this key
            g_inflight_cv.wait(lock);
        }
    }

    ExperimentResult r;
    try {
        r = runExperimentUncached(cfg);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(g_inflight_mu);
            g_inflight.erase(key);
        }
        g_inflight_cv.notify_all();
        throw;
    }
    cache.store(key, r);
    {
        std::lock_guard<std::mutex> lock(g_inflight_mu);
        g_inflight.erase(key);
    }
    g_inflight_cv.notify_all();
    if (was_cached)
        *was_cached = false;
    return r;
}

std::uint64_t
experimentsSimulated()
{
    return g_simulated.load();
}

ExperimentResult
runBaseline(const ExperimentConfig &cfg)
{
    ExperimentConfig base = cfg;
    base.prefetcher = PrefetcherKind::None;
    base.control = ReplayControlMode::WindowPace;
    base.window_size = 0;
    base.ideal_llc = false;
    return runExperiment(base);
}

} // namespace rnr
