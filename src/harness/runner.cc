#include "harness/runner.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "cpu/system.h"
#include "prefetch/imp.h"
#include "workloads/graph_gen.h"
#include "workloads/hyperanf.h"
#include "workloads/jacobi.h"
#include "workloads/labelprop.h"
#include "workloads/pagerank.h"
#include "workloads/sparse_gen.h"
#include "workloads/spcg.h"

namespace rnr {

namespace {

/** Sums a counter over every core's cache/prefetcher stat group. */
std::uint64_t
sumL2(System &sys, const std::string &key)
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < sys.coreCount(); ++c)
        total += sys.mem().l2(c).stats().get(key);
    return total;
}

std::uint64_t
sumRnr(System &sys, const std::string &key)
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < sys.coreCount(); ++c) {
        if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c)))
            total += r->stats().get(key);
    }
    return total;
}

/** Snapshot of all cumulative counters an IterStats delta needs. */
IterStats
snapshot(System &sys)
{
    IterStats s;
    s.l2_accesses = sumL2(sys, "accesses");
    s.l2_demand_misses = sumL2(sys, "misses") - sumL2(sys, "mshr_merges");
    s.pf_issued = sumL2(sys, "prefetches_issued");
    s.pf_useful = sumL2(sys, "prefetch_useful");
    s.pf_late_merged = sumL2(sys, "demand_merged_into_prefetch");
    const StatGroup &d = sys.mem().dram().stats();
    s.dram_bytes_total = d.get("bytes_total");
    s.dram_bytes_demand = d.get("bytes_demand");
    s.dram_bytes_prefetch = d.get("bytes_prefetch");
    s.dram_bytes_metadata = d.get("bytes_metadata");
    s.dram_bytes_writeback = d.get("bytes_writeback");
    s.rnr_ontime = sumRnr(sys, "pf_ontime");
    s.rnr_early = sumRnr(sys, "pf_early");
    s.rnr_late = sumRnr(sys, "pf_late");
    s.rnr_out_of_window = sumRnr(sys, "pf_out_of_window");
    s.rnr_recorded = sumRnr(sys, "recorded_misses");
    return s;
}

IterStats
delta(const IterStats &after, const IterStats &before)
{
    IterStats d = after;
    d.l2_accesses -= before.l2_accesses;
    d.l2_demand_misses -= before.l2_demand_misses;
    d.pf_issued -= before.pf_issued;
    d.pf_useful -= before.pf_useful;
    d.pf_late_merged -= before.pf_late_merged;
    d.dram_bytes_total -= before.dram_bytes_total;
    d.dram_bytes_demand -= before.dram_bytes_demand;
    d.dram_bytes_prefetch -= before.dram_bytes_prefetch;
    d.dram_bytes_metadata -= before.dram_bytes_metadata;
    d.dram_bytes_writeback -= before.dram_bytes_writeback;
    d.rnr_ontime -= before.rnr_ontime;
    d.rnr_early -= before.rnr_early;
    d.rnr_late -= before.rnr_late;
    d.rnr_out_of_window -= before.rnr_out_of_window;
    d.rnr_recorded -= before.rnr_recorded;
    return d;
}

// ---- Result (de)serialisation for the file cache ----

std::string
serialize(const ExperimentResult &r)
{
    std::ostringstream os;
    os << r.input_bytes << " " << r.target_bytes << " "
       << r.seq_table_bytes << " " << r.div_table_bytes << " "
       << r.iterations.size();
    for (const IterStats &it : r.iterations) {
        os << " " << it.cycles << " " << it.instructions << " "
           << it.l2_accesses << " " << it.l2_demand_misses << " "
           << it.pf_issued << " " << it.pf_useful << " "
           << it.pf_late_merged << " " << it.dram_bytes_total << " "
           << it.dram_bytes_demand << " " << it.dram_bytes_prefetch << " "
           << it.dram_bytes_metadata << " " << it.dram_bytes_writeback
           << " " << it.rnr_ontime << " " << it.rnr_early << " "
           << it.rnr_late << " " << it.rnr_out_of_window << " "
           << it.rnr_recorded;
    }
    return os.str();
}

bool
deserialize(const std::string &line, ExperimentResult &r)
{
    std::istringstream is(line);
    std::size_t n = 0;
    if (!(is >> r.input_bytes >> r.target_bytes >> r.seq_table_bytes >>
          r.div_table_bytes >> n))
        return false;
    r.iterations.clear();
    for (std::size_t i = 0; i < n; ++i) {
        IterStats it;
        if (!(is >> it.cycles >> it.instructions >> it.l2_accesses >>
              it.l2_demand_misses >> it.pf_issued >> it.pf_useful >>
              it.pf_late_merged >> it.dram_bytes_total >>
              it.dram_bytes_demand >> it.dram_bytes_prefetch >>
              it.dram_bytes_metadata >> it.dram_bytes_writeback >>
              it.rnr_ontime >> it.rnr_early >> it.rnr_late >>
              it.rnr_out_of_window >> it.rnr_recorded))
            return false;
        r.iterations.push_back(it);
    }
    return !r.iterations.empty();
}

std::string
cacheFilePath()
{
    if (const char *p = std::getenv("RNR_CACHE_FILE"))
        return p;
    return "rnr_results.cache";
}

bool
cacheEnabled()
{
    const char *p = std::getenv("RNR_CACHE");
    return !(p && std::string(p) == "0");
}

std::map<std::string, std::string> &
fileCache()
{
    static std::map<std::string, std::string> cache = [] {
        std::map<std::string, std::string> m;
        if (cacheEnabled()) {
            std::ifstream in(cacheFilePath());
            std::string line;
            while (std::getline(in, line)) {
                const auto bar = line.find('|');
                if (bar != std::string::npos)
                    m[line.substr(0, bar)] = line.substr(bar + 1);
            }
        }
        return m;
    }();
    return cache;
}

void
appendToFileCache(const std::string &key, const std::string &value)
{
    if (!cacheEnabled())
        return;
    std::ofstream out(cacheFilePath(), std::ios::app);
    out << key << "|" << value << "\n";
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const ExperimentConfig &cfg)
{
    WorkloadOptions opts;
    opts.cores = cfg.cores;
    opts.use_rnr = true; // control records are harmless to baselines
    opts.window_size = cfg.window_size;

    if (cfg.app == "pagerank")
        return std::make_unique<PageRankWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "hyperanf")
        return std::make_unique<HyperAnfWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "spcg")
        return std::make_unique<SpcgWorkload>(
            makeMatrixInput(cfg.input).matrix, opts);
    if (cfg.app == "labelprop")
        return std::make_unique<LabelPropWorkload>(
            makeGraphInput(cfg.input).graph, opts);
    if (cfg.app == "jacobi")
        return std::make_unique<JacobiWorkload>(
            makeMatrixInput(cfg.input).matrix, opts);
    throw std::invalid_argument("unknown app: " + cfg.app);
}

ExperimentResult
runExperimentUncached(const ExperimentConfig &cfg)
{
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = cfg.cores;
    if (cfg.ideal_llc)
        mcfg = MachineConfig::withInfiniteLlc(mcfg);

    System sys(mcfg);
    std::unique_ptr<Workload> wl = makeWorkload(cfg);

    RnrPrefetcher::Options rnr_opts;
    rnr_opts.control = cfg.control;
    rnr_opts.window_size = cfg.window_size;

    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        prefetchers.push_back(createPrefetcher(cfg.prefetcher, rnr_opts));
        if (auto *d = dynamic_cast<DropletPrefetcher *>(
                prefetchers.back().get()))
            d->setHint(wl->dropletHint(c));
        if (auto *i = dynamic_cast<ImpPrefetcher *>(
                prefetchers.back().get()))
            i->setSniffer(wl->impSniffer(c));
        sys.mem().setPrefetcher(c, prefetchers.back().get());
    }

    ExperimentResult result;
    result.config = cfg;
    result.input_bytes = wl->inputBytes();
    result.target_bytes = wl->targetBytes();

    std::vector<TraceBuffer> bufs(cfg.cores);
    IterStats before = snapshot(sys);
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        for (auto &b : bufs)
            b.clear();
        wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);

        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        const IterationResult run = sys.run(ptrs);

        IterStats after = snapshot(sys);
        IterStats it = delta(after, before);
        it.cycles = run.cycles();
        it.instructions = run.instructions;
        result.iterations.push_back(it);
        before = after;
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c))) {
            result.seq_table_bytes += r->seqTableBytes();
            result.div_table_bytes += r->divTableBytes();
        }
    }
    return result;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    static std::map<std::string, ExperimentResult> memo;
    static std::mutex mu;
    const std::string key = cfg.key();
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = memo.find(key);
        if (it != memo.end())
            return it->second;
        auto fit = fileCache().find(key);
        if (fit != fileCache().end()) {
            ExperimentResult r;
            r.config = cfg;
            if (deserialize(fit->second, r)) {
                memo[key] = r;
                return r;
            }
        }
    }
    ExperimentResult r = runExperimentUncached(cfg);
    {
        std::lock_guard<std::mutex> lock(mu);
        memo[key] = r;
        appendToFileCache(key, serialize(r));
    }
    return r;
}

ExperimentResult
runBaseline(const ExperimentConfig &cfg)
{
    ExperimentConfig base = cfg;
    base.prefetcher = PrefetcherKind::None;
    base.control = ReplayControlMode::WindowPace;
    base.window_size = 0;
    base.ideal_llc = false;
    return runExperiment(base);
}

} // namespace rnr
