#include "harness/scheduler.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "harness/runner.h"
#include "obs/metrics.h"

namespace rnr {

namespace {

/** Null when RNR_METRICS=0; looked up once, bumped lock-free. */
struct QueueMetrics {
    obs::Counter *pops;
    obs::Counter *steals;
    obs::Gauge *imbalance;
    QueueMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        pops = reg.counter("rnr_queue_pops_total");
        steals = reg.counter("rnr_queue_steals_total");
        imbalance = reg.gauge("rnr_queue_imbalance");
    }
};

QueueMetrics &
queueMetrics()
{
    static QueueMetrics m;
    return m;
}

} // namespace

ShardedWorkQueue::ShardedWorkQueue(unsigned shards)
    : q_(std::max(1u, shards))
{
}

void
ShardedWorkQueue::updateImbalanceLocked()
{
    obs::Gauge *g = queueMetrics().imbalance;
    if (!g)
        return;
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const Shard &s : q_) {
        lo = std::min(lo, s.size());
        hi = std::max(hi, s.size());
    }
    g->set(static_cast<std::int64_t>(hi - lo));
}

void
ShardedWorkQueue::push(std::size_t item, int priority)
{
    std::lock_guard<std::mutex> lock(mu_);
    q_[next_].emplace(priority, item);
    next_ = (next_ + 1) % q_.size();
    ++pending_;
    updateImbalanceLocked();
}

bool
ShardedWorkQueue::tryPop(unsigned shard, std::size_t &item)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ == 0)
        return false;
    Shard *src = nullptr;
    if (shard < q_.size() && !q_[shard].empty()) {
        src = &q_[shard];
    } else {
        // Steal from the fullest shard so the load rebalances fastest.
        for (Shard &s : q_)
            if (!s.empty() && (!src || s.size() > src->size()))
                src = &s;
        if (src)
            if (obs::Counter *c = queueMetrics().steals)
                c->add();
    }
    if (!src)
        return false;
    item = src->begin()->second;
    src->erase(src->begin());
    --pending_;
    if (obs::Counter *c = queueMetrics().pops)
        c->add();
    updateImbalanceLocked();
    return true;
}

std::size_t
ShardedWorkQueue::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
}

InProcessBackend::InProcessBackend(unsigned jobs)
    : jobs_(std::max(1u, jobs))
{
}

void
InProcessBackend::run(const std::vector<ExperimentConfig> &cells,
                      const std::vector<int> &priorities,
                      const CellDoneFn &done)
{
    const std::size_t total = cells.size();
    const unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(total, 1)));

    ShardedWorkQueue queue(jobs);
    for (std::size_t i = 0; i < total; ++i)
        queue.push(i, i < priorities.size() ? priorities[i] : 0);

    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&](unsigned shard) {
        std::size_t i;
        while (queue.tryPop(shard, i)) {
            CellOutcome out;
            try {
                out.result = runExperiment(cells[i], &out.was_cached);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
            done(i, std::move(out));
        }
    };

    if (jobs == 1 || total <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace rnr
