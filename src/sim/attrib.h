/**
 * @file
 * Prefetch-quality attribution: per-site and per-region accounting of
 * where prefetches help and where they hurt.
 *
 * The IterStats counters (pf_issued / pf_useful / pf_late_merged /
 * rnr_*) say *how much* a prefetcher helps; this layer says *where*.
 * Every issued prefetch carries a 32-bit **site id** — the trigger PC
 * for pattern prefetchers, or the RnR replay lane id for replayed
 * blocks — threaded from Prefetcher::issuePrefetch() through the L2
 * prefetch queue and into the cache line, so every later outcome of
 * that line (demand hit, late merge, unused eviction, pollution) can
 * be attributed back to the decision that fetched it.
 *
 * Site-id grammar:
 *   0                      no site (demand fill / unattributed)
 *   bit 31 clear           trigger PC of the issuing access
 *   bit 31 set             RnR replay lane; low bits = core id
 *
 * Pollution accounting: when a prefetch fill evicts a line the demand
 * stream owned (a non-prefetched line, or a prefetched line that was
 * referenced), the victim block is remembered in a small direct-mapped
 * recently-evicted-victim filter together with the evicting site.  A
 * demand miss that hits the filter is a **pollution event**: the
 * prefetch displaced a line the program still needed.  The filter
 * entry is consumed by the hit, so one eviction is charged at most
 * once.  The filter is per-core (private L2s) and deliberately small —
 * like its hardware inspirations it undercounts (collisions overwrite)
 * but never fabricates.
 *
 * Design constraints, matching sim/trace_event.h and sim/timeseries.h:
 *
 *  1. **Observation only.**  An attributed run's IterStats are
 *     bit-identical to an unattributed run's (test-enforced).
 *  2. **Free when off.**  Components hold an `AttribCollector *` that
 *     is null unless attribution was requested (RNR_ATTRIB=1 or
 *     ExperimentConfig::attrib.enabled); disabled cost is one
 *     predictable null-pointer branch per hook (BM_DemandAccess-
 *     AttribGated in BENCH_hotpath.json).
 *  3. **Bounded when on.**  The per-site / per-region tables are
 *     capacity-capped: inserting past the cap deterministically folds
 *     the smallest entry into an "other" bucket.  Totals are kept
 *     outside the tables, so they reconcile *exactly* with the
 *     IterStats counters no matter how much the tables folded.
 *  4. **Single-writer.**  One collector belongs to one simulation.
 *
 * Environment:
 *   RNR_ATTRIB=1  enable attribution (same gate the config flag sets)
 *
 * See docs/HARNESS.md section 18 for the full walkthrough.
 */
#ifndef RNR_SIM_ATTRIB_H
#define RNR_SIM_ATTRIB_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace rnr {

// ---- Site-id grammar ----

/** Bit 31 marks a site as the RnR replay lane rather than a PC. */
inline constexpr std::uint32_t kAttribRnrSiteBit = 0x8000'0000u;

/** The replay-lane site id for @p core. */
constexpr std::uint32_t
attribRnrSite(unsigned core)
{
    return kAttribRnrSiteBit | static_cast<std::uint32_t>(core);
}

/** True when @p site is a replay-lane id (vs. a trigger PC). */
constexpr bool
attribSiteIsRnr(std::uint32_t site)
{
    return (site & kAttribRnrSiteBit) != 0;
}

/** Blocks per 4 KiB region (the attribution granule). */
inline constexpr unsigned kAttribRegionShift = 12 - kBlockBits;

/** The 4 KiB region of @p block. */
constexpr Addr
attribRegion(Addr block)
{
    return block >> kAttribRegionShift;
}

// ---- Accounting records ----

/** Outcome counts for one site / one region / the whole run. */
struct AttribSiteStats {
    std::uint64_t issued = 0;         ///< Prefetches issued.
    std::uint64_t useful = 0;         ///< First demand hit on the line.
    std::uint64_t late_merged = 0;    ///< Demand merged into in-flight pf.
    std::uint64_t evicted_unused = 0; ///< Evicted before any demand hit.
    std::uint64_t pollution = 0;      ///< Demand re-miss on our victim.

    /** Activity weight used for table-fold victim selection. */
    std::uint64_t
    total() const
    {
        return issued + useful + late_merged + evicted_unused +
               pollution;
    }

    void
    fold(const AttribSiteStats &o)
    {
        issued += o.issued;
        useful += o.useful;
        late_merged += o.late_merged;
        evicted_unused += o.evicted_unused;
        pollution += o.pollution;
    }
};

/** Fig 11 taxonomy classes, as classified by the RnR replay lane. */
enum class RnrTimeliness : unsigned {
    OnTime = 0,
    Early = 1,
    Late = 2,
    OutOfWindow = 3,
};

/**
 * Everything one attributed run produced, detached from the collector
 * so it can ride on ExperimentResult past the simulation's lifetime.
 */
struct AttribBlob {
    struct SiteRow {
        std::uint32_t site = 0;
        AttribSiteStats stats;
    };
    struct RegionRow {
        Addr region = 0; ///< 4 KiB region number (vaddr >> 12).
        AttribSiteStats stats;
    };
    struct WindowRow {
        std::uint64_t window = 0;
        std::uint64_t ontime = 0;
        std::uint64_t early = 0;
        std::uint64_t late = 0;
        std::uint64_t out_of_window = 0;
    };

    /** Top-K sites, sorted by descending total() (ties: ascending
     *  site id).  Folded activity lands in site_other. */
    std::vector<SiteRow> sites;
    AttribSiteStats site_other;
    /** Table-entry creations (a site folded and seen again counts
     *  twice); sites.size() when the table never overflowed. */
    std::uint64_t sites_tracked = 0;

    /** Tracked 4 KiB regions, sorted by ascending region number (the
     *  heatmap's spatial order).  Folded activity in region_other. */
    std::vector<RegionRow> regions;
    AttribSiteStats region_other;
    std::uint64_t regions_tracked = 0;

    /** Per-replay-window Fig 11 splits for the RnR lane, dense from
     *  window 0; windows past the cap fold into window_overflow. */
    std::vector<WindowRow> windows;
    WindowRow window_overflow;

    /** Exact run totals; reconcile with IterStats (summed over
     *  iterations): issued == pf_issued, useful == pf_useful,
     *  late_merged == pf_late_merged. */
    AttribSiteStats totals;

    /** Exact RnR lane totals; reconcile with rnr_* IterStats. */
    std::uint64_t rnr_ontime = 0;
    std::uint64_t rnr_early = 0;
    std::uint64_t rnr_late = 0;
    std::uint64_t rnr_out_of_window = 0;

    /** Victim-filter traffic (hits == totals.pollution). */
    std::uint64_t pollution_filter_inserts = 0;
    std::uint64_t pollution_filter_hits = 0;
};

// ---- The collector ----

/**
 * The per-simulation attribution sink.  Owned by whoever runs the
 * simulation (the runner, the report generator, a test); components
 * receive a raw pointer via System::attachAttrib() — null pointer =
 * attribution off, the usual one-branch discipline.
 *
 * Hooks are placed at the *exact* source lines that bump the
 * corresponding hardware counters (Cache / MemorySystem /
 * RnrPrefetcher), which is what makes harvest().totals reconcile
 * exactly with IterStats.
 */
class AttribCollector
{
  public:
    static constexpr std::size_t kDefaultSiteTopK = 64;
    static constexpr std::size_t kDefaultRegionTopK = 128;
    static constexpr std::size_t kMaxWindows = 4096;
    /** Victim-filter entries per core (direct-mapped, power of two). */
    static constexpr std::size_t kVictimFilterEntries = 256;

    explicit AttribCollector(
        std::size_t site_top_k = kDefaultSiteTopK,
        std::size_t region_top_k = kDefaultRegionTopK);

    /** Co-located with ++prefetches_issued (MemorySystem). */
    void onIssued(std::uint32_t site, Addr block);
    /** Co-located with ++prefetch_useful (Cache::access hit path). */
    void onUseful(std::uint32_t site, Addr block);
    /** Co-located with ++demand_merged_into_prefetch (MemorySystem). */
    void onLateMerged(std::uint32_t site, Addr block);
    /** Co-located with ++prefetch_evicted_unused (Cache::insert). */
    void onEvictedUnused(std::uint32_t site, Addr block);

    /** A prefetch fill (issued by @p site) displaced a demand-owned
     *  line: remember the victim in @p core's filter. */
    void onPrefetchEvictsDemand(unsigned core, std::uint32_t site,
                                Addr victim_block);
    /** A demand miss on @p core; charges a pollution event when the
     *  block hits the victim filter (entry consumed). */
    void onDemandMiss(unsigned core, Addr block);

    /** Co-located with the four rnr_* classification bumps. */
    void onRnrClass(RnrTimeliness cls, std::uint64_t window);

    /** Detaches everything recorded so far into a blob. */
    AttribBlob harvest() const;

  private:
    struct VictimEnt {
        Addr block = 0;
        std::uint32_t site = 0;
        bool valid = false;
    };

    AttribSiteStats &siteRow(std::uint32_t site);
    AttribSiteStats &regionRow(Addr region);
    void account(std::uint32_t site, Addr block,
                 std::uint64_t AttribSiteStats::*field);

    std::size_t site_top_k_;
    std::size_t region_top_k_;

    std::unordered_map<std::uint32_t, AttribSiteStats> sites_;
    AttribSiteStats site_other_;
    std::uint64_t sites_tracked_ = 0;

    std::unordered_map<Addr, AttribSiteStats> regions_;
    AttribSiteStats region_other_;
    std::uint64_t regions_tracked_ = 0;

    std::vector<std::array<std::uint64_t, 4>> windows_;
    std::array<std::uint64_t, 4> window_overflow_{};

    AttribSiteStats totals_;
    std::uint64_t rnr_class_[4] = {};

    /** [core][entry]; grown on first use of a core. */
    std::vector<std::vector<VictimEnt>> victims_;
    std::uint64_t filter_inserts_ = 0;
    std::uint64_t filter_hits_ = 0;
};

// ---- Environment gate (read by harness/runner.cc and the tools) ----

/** True when $RNR_ATTRIB is set to anything but "" / "0". */
bool attribEnvEnabled();

// ---- Expositions ----

/** @p blob as an rnr-attrib-v1 JSON object (one line, no \n). */
std::string attribJson(const AttribBlob &blob);

/**
 * Mirrors @p blob into the process-wide obs::MetricsRegistry (no-op
 * when RNR_METRICS=0): run totals accumulate into rnr_attrib_*_total
 * counters (farm-wide, across every attributed cell this process ran)
 * and the table occupancies land in rnr_attrib_*_tracked gauges (last
 * harvested run).  docs/HARNESS.md §16 lists the names.
 */
void publishAttribMetrics(const AttribBlob &blob);

} // namespace rnr

#endif // RNR_SIM_ATTRIB_H
