/**
 * @file
 * Deterministic pseudo-random number generator used by the synthetic input
 * generators.  A fixed, seedable generator keeps every experiment and test
 * reproducible across hosts and standard-library versions (std::mt19937
 * would also work, but xoshiro is faster and the distributions in libstdc++
 * are not guaranteed to be stable across versions).
 */
#ifndef RNR_SIM_RNG_H
#define RNR_SIM_RNG_H

#include <cstdint>

namespace rnr {

/** splitmix64/xorshift-based PRNG with stable cross-platform output. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialises the state from @p seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        state_ = seed;
        // Warm the state so that small seeds do not produce small outputs.
        next64();
        next64();
    }

    /** Returns the next 64 uniformly random bits. */
    std::uint64_t
    next64()
    {
        // splitmix64: passes BigCrush, one multiply-xor chain per output.
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Returns a uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the bounds used here (< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next64()) * bound) >> 64);
    }

    /** Returns a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Checkpoint visitor: the whole generator is one u64 of state. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(state_);
    }

  private:
    std::uint64_t state_;
};

} // namespace rnr

#endif // RNR_SIM_RNG_H
