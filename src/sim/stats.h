/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Components own a StatGroup and declare their counters up front in
 * their constructors: declare(name) returns a stable Counter& handle
 * (sim/counter.h) whose ++/+= is a plain uint64_t bump, so the per-event
 * simulation path never touches the name→counter map.  The string-keyed
 * add()/set()/get() API remains for one-time and per-iteration gauges
 * and for tests/the harness walk, and both views are the same storage:
 * a handle bump is immediately visible through get() and dump().
 *
 * Thread-safety contract: a StatGroup is NOT internally synchronised.
 * Every group is owned by exactly one System (cache, DRAM, prefetcher),
 * and the parallel sweep runner (harness/sweep.h) parallelises at
 * whole-simulation granularity — one System, and therefore every
 * StatGroup it owns, is only ever touched by the one worker thread that
 * runs that simulation.  Counters deliberately stay plain uint64_t so
 * the simulator's hot path pays no atomic-RMW cost; anything shared
 * *across* simulations (the result cache, the sweep progress counters)
 * lives in harness/ and carries its own locks/atomics.
 */
#ifndef RNR_SIM_STATS_H
#define RNR_SIM_STATS_H

#include <cstdint>
#include <map>
#include <string>

#include "ckpt/serde.h"
#include "sim/counter.h"

namespace rnr {

/** A named group of monotonically increasing 64-bit counters. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /**
     * Registers @p key and returns its stable handle, creating the
     * counter at zero on first declaration.  Declaring the same name
     * again returns the same handle (composite components may share a
     * cell).  The map is node-based, so the reference stays valid for
     * the group's lifetime — across further declarations, rename() and
     * reset().
     */
    Counter &
    declare(const std::string &key)
    {
        return counters_[key];
    }

    /** Adds @p delta to counter @p key, creating it at zero if absent.
     *  Map-lookup cost: for per-access paths use declare() handles. */
    void
    add(const std::string &key, std::uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Sets counter @p key to an absolute value (for gauges). */
    void
    set(const std::string &key, std::uint64_t value)
    {
        counters_[key].set(value);
    }

    /** Returns the value of @p key, or 0 when it was never touched. */
    std::uint64_t get(const std::string &key) const;

    /** Resets every counter to zero, in place: handles returned by
     *  declare() remain valid (per-iteration measurement windows). */
    void reset();

    const std::string &name() const { return name_; }

    /** Renames the group (display only); handles stay valid — this is
     *  how prefetchers pick up their per-core name at attach() without
     *  invalidating counters declared at construction. */
    void rename(std::string name) { name_ = std::move(name); }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** Formats "group.key = value" lines, sorted by key. */
    std::string dump() const;

    /**
     * Checkpoint visitor: (name, value) pairs in map order.  Loading
     * writes through set(), which creates string-API counters the
     * fresh component has not declared yet (e.g. RnR's one-time
     * gauges) and updates pre-declared cells in place, so every
     * Counter& handle a component captured at construction keeps
     * pointing at live, now-restored storage.
     */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        std::uint64_t n = counters_.size();
        ar.scalar(n);
        if constexpr (Ar::kLoading) {
            if (!ckpt::checkCount(ar, n, 16))
                return;
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string key;
                std::uint64_t value = 0;
                ar.str(key);
                ar.scalar(value);
                set(key, value);
            }
        } else {
            for (auto &kv : counters_) {
                std::string key = kv.first;
                std::uint64_t value = kv.second.value();
                ar.str(key);
                ar.scalar(value);
            }
        }
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace rnr

#endif // RNR_SIM_STATS_H
