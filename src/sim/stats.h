/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Components own a StatGroup and declare counters up front; the harness
 * walks the registry to compute the paper's derived metrics (MPKI, miss
 * coverage, accuracy, off-chip traffic) without each component having to
 * know which figure it feeds.
 *
 * Thread-safety contract: a StatGroup is NOT internally synchronised.
 * Every group is owned by exactly one System (cache, DRAM, prefetcher),
 * and the parallel sweep runner (harness/sweep.h) parallelises at
 * whole-simulation granularity — one System, and therefore every
 * StatGroup it owns, is only ever touched by the one worker thread that
 * runs that simulation.  Counters deliberately stay plain uint64_t so
 * the simulator's hot path pays no atomic-RMW cost; anything shared
 * *across* simulations (the result cache, the sweep progress counters)
 * lives in harness/ and carries its own locks/atomics.
 */
#ifndef RNR_SIM_STATS_H
#define RNR_SIM_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace rnr {

/** A named group of monotonically increasing 64-bit counters. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Adds @p delta to counter @p key, creating it at zero if absent. */
    void
    add(const std::string &key, std::uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Sets counter @p key to an absolute value (for gauges). */
    void
    set(const std::string &key, std::uint64_t value)
    {
        counters_[key] = value;
    }

    /** Returns the value of @p key, or 0 when it was never touched. */
    std::uint64_t get(const std::string &key) const;

    /** Resets every counter to zero (per-iteration measurement windows). */
    void reset();

    const std::string &name() const { return name_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Formats "group.key = value" lines, sorted by key. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace rnr

#endif // RNR_SIM_STATS_H
