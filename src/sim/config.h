/**
 * @file
 * Machine configuration (the paper's Table II) plus the scaled variant used
 * by default so that experiments complete in seconds on a development host.
 *
 * All latencies are expressed in core cycles at 4 GHz.  The paper models a
 * DDR4-2400 part (1200 MHz bus); one DRAM clock is therefore 4000/1200 =
 * 3.33 core cycles and the datasheet's tCL = tRCD = tRP = 17 DRAM cycles
 * become ~57 core cycles each.
 */
#ifndef RNR_SIM_CONFIG_H
#define RNR_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace rnr {

/** Cache replacement policy. */
enum class ReplacementPolicy {
    Lru,   ///< Least recently used (the default everywhere).
    Srrip, ///< Static RRIP (2-bit re-reference prediction), which
           ///< resists streaming thrash: new lines start "far" and must
           ///< prove reuse before they can displace proven lines.
};

/** Geometry and latency of one cache level. */
struct CacheConfig {
    std::string name;
    std::uint64_t size_bytes = 0;
    unsigned ways = 8;
    unsigned mshrs = 8;
    /** In-flight prefetch-queue entries (separate from demand MSHRs). */
    unsigned prefetch_queue = 16;
    Tick latency = 4;          ///< Hit latency added by this level.
    bool shared = false;       ///< Shared across cores (LLC) or private.
    ReplacementPolicy replacement = ReplacementPolicy::Lru;

    unsigned sets() const;
};

/** DRAM timing and structure (single channel, Table II). */
struct DramConfig {
    unsigned channels = 1; ///< Independent channels (block-interleaved).
    unsigned banks = 16;   ///< Banks per channel.
    unsigned read_queue = 64;
    unsigned write_queue = 32;
    /** Write-queue drain thresholds as a fraction of capacity. */
    double drain_high = 0.75;
    double drain_low = 0.25;
    Tick tCAS = 57;            ///< Column access (row-buffer hit), core cyc.
    Tick tRCD = 57;            ///< Activate-to-read.
    Tick tRP = 57;             ///< Precharge.
    Tick tBURST = 14;          ///< Data burst occupancy of the channel.
    unsigned row_bytes = 8192; ///< Row-buffer width.
};

/** Core front/back-end parameters (Table II, 4-wide OoO). */
struct CoreConfig {
    unsigned issue_width = 4;
    unsigned retire_width = 4;
    unsigned rob_size = 256;
    unsigned lsq_size = 64;
    Tick exec_latency = 1;     ///< Latency of a non-memory instruction.
};

/** TLB model parameters. */
struct TlbConfig {
    unsigned dtlb_entries = 64;
    unsigned stlb_entries = 1536;
    Tick stlb_latency = 8;
    Tick walk_latency = 60;
};

/** Full machine description. */
struct MachineConfig {
    unsigned cores = 4;
    CoreConfig core;
    CacheConfig l1d;
    CacheConfig l2;
    CacheConfig llc;
    TlbConfig tlb;
    DramConfig dram;

    /**
     * Builds the paper's Table II configuration: 4 cores, 64 KB L1D,
     * 256 KB private L2, 8 MB shared LLC, DDR4-2400 single channel.
     */
    static MachineConfig paperBaseline();

    /**
     * Builds the scaled configuration used by the default experiments:
     * identical structure and L1:L2:LLC capacity ratios, shrunk 16x so
     * that the scaled synthetic inputs (DESIGN.md section 4) keep the
     * same does-not-fit relationships while simulating in seconds.
     */
    static MachineConfig scaledDefault();

    /** Variant with an effectively infinite LLC ("ideal" bar in Fig 6). */
    static MachineConfig withInfiniteLlc(const MachineConfig &base);

    /** Human-readable one-line-per-component dump (bench headers). */
    std::string describe() const;
};

} // namespace rnr

#endif // RNR_SIM_CONFIG_H
