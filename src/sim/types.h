/**
 * @file
 * Fundamental types shared by every subsystem of the RnR simulator.
 *
 * The simulator is trace-driven and timestamp-based: components do not tick
 * every cycle; instead each request carries the core-cycle time at which it
 * occurs and each shared resource tracks the time at which it next becomes
 * free.  All times are expressed in core cycles (the paper's 4 GHz cores).
 */
#ifndef RNR_SIM_TYPES_H
#define RNR_SIM_TYPES_H

#include <cstdint>

namespace rnr {

/** Simulated time in core cycles. */
using Tick = std::uint64_t;

/** Virtual or physical byte address. */
using Addr = std::uint64_t;

/** A tick value that is later than any reachable simulation time. */
constexpr Tick kTickMax = ~Tick{0};

/** Log2 of the cache block size; all caches share one block size. */
constexpr unsigned kBlockBits = 6;
/** Cache block size in bytes (64 B, as in Table II's platform). */
constexpr unsigned kBlockSize = 1u << kBlockBits;

/** Log2 of the (small) page size used by the TLB model. */
constexpr unsigned kPageBits = 12;
constexpr Addr kPageSize = Addr{1} << kPageBits;

/** Returns the block-aligned address containing @p a. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~Addr{kBlockSize - 1};
}

/** Returns the block number (address >> 6) containing @p a. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> kBlockBits;
}

/** Returns the page number containing @p a. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageBits;
}

/** Kind of memory operation carried by a trace record or request. */
enum class MemOp : std::uint8_t {
    Load,
    Store,
};

/** Who generated a memory request; used for priority and statistics. */
enum class ReqOrigin : std::uint8_t {
    Demand,         ///< A load/store issued by the core.
    Prefetch,       ///< Issued by a hardware prefetcher into the L2.
    Metadata,       ///< RnR sequence/division table traffic (uncached).
    Writeback,      ///< Dirty-block eviction traffic.
};

} // namespace rnr

#endif // RNR_SIM_TYPES_H
