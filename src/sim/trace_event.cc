#include "sim/trace_event.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/json_write.h"

#ifdef _WIN32
#include <process.h>
#define rnr_getpid _getpid
#else
#include <unistd.h>
#define rnr_getpid getpid
#endif

namespace rnr {

namespace {

/** Default events per track when neither config nor env says otherwise:
 *  32k events x 32 B x (cores + 2) tracks ~= 6 MB on a 4-core machine,
 *  enough to hold a full scaled replay iteration without wrapping. */
constexpr std::size_t kDefaultRingCapacity = 32768;

bool
envFlag(const char *name)
{
    const char *p = std::getenv(name);
    return p && *p && std::string(p) != "0";
}

} // namespace

const char *
traceEventName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::CacheMiss: return "cache_miss";
      case TraceEventType::CacheFill: return "cache_fill";
      case TraceEventType::MshrAlloc: return "mshr_alloc";
      case TraceEventType::MshrMerge: return "mshr_merge";
      case TraceEventType::DramEnqueue: return "dram_enqueue";
      case TraceEventType::DramDequeue: return "dram_dequeue";
      case TraceEventType::PrefetchIssue: return "pf_issue";
      case TraceEventType::PrefetchDrop: return "pf_drop";
      case TraceEventType::PrefetchFill: return "pf_fill";
      case TraceEventType::ControlRecord: return "rnr_api";
      case TraceEventType::RecordStart: return "record_start";
      case TraceEventType::RecordStop: return "record_stop";
      case TraceEventType::ReplayStart: return "replay_start";
      case TraceEventType::ReplayStop: return "replay_stop";
      case TraceEventType::SeqTableWrite: return "seq_table_write";
      case TraceEventType::DivTableWrite: return "div_table_write";
      case TraceEventType::WindowOpen: return "window_open";
      case TraceEventType::WindowClose: return "window_close";
      case TraceEventType::PaceRecompute: return "pace_recompute";
      case TraceEventType::MetaRefill: return "meta_refill";
      case TraceEventType::MetaRefillStall: return "meta_refill_stall";
      case TraceEventType::PfOntime: return "pf_ontime";
      case TraceEventType::PfEarly: return "pf_early";
      case TraceEventType::PfLate: return "pf_late";
      case TraceEventType::PfOutOfWindow: return "pf_out_of_window";
    }
    return "?";
}

TraceCollector::TraceCollector(unsigned cores, std::size_t ring_capacity)
    : cores_(cores)
{
    const std::size_t cap = traceRingCapacity(ring_capacity);
    rings_.reserve(trackCount());
    for (unsigned t = 0; t < trackCount(); ++t)
        rings_.emplace_back(cap);
}

WindowDiag &
TraceCollector::diag(std::uint32_t w)
{
    if (w >= windows_.size()) {
        windows_.resize(w + 1);
        for (std::uint32_t i = 0; i < windows_.size(); ++i)
            windows_[i].window = i;
    }
    return windows_[w];
}

void
TraceCollector::aggregate(const TraceEvent &e)
{
    // Only the types the replay report is built from; everything else
    // lives in the rings alone.
    switch (e.type) {
      case TraceEventType::WindowOpen:
      case TraceEventType::PaceRecompute:
        diag(e.window).pace = e.arg;
        break;
      case TraceEventType::MetaRefillStall:
        ++diag(e.window).refill_stalls;
        break;
      case TraceEventType::PfOntime:
        ++diag(e.window).ontime;
        break;
      case TraceEventType::PfEarly:
        ++diag(e.window).early;
        break;
      case TraceEventType::PfLate:
        ++diag(e.window).late;
        break;
      case TraceEventType::PfOutOfWindow:
        ++diag(e.window).out_of_window;
        break;
      default:
        break;
    }
}

std::uint64_t
TraceCollector::eventsTotal() const
{
    std::uint64_t n = 0;
    for (const TraceRing &r : rings_)
        n += r.total();
    return n;
}

std::uint64_t
TraceCollector::eventsOverwritten() const
{
    std::uint64_t n = 0;
    for (const TraceRing &r : rings_)
        n += r.overwritten();
    return n;
}

ReplayDiagnostics
buildReplayDiagnostics(const TraceCollector &tr)
{
    ReplayDiagnostics d;
    for (const WindowDiag &w : tr.windowTable()) {
        const bool touched = w.demands || w.issued || w.refill_stalls ||
                             w.ontime || w.early || w.late ||
                             w.out_of_window || w.pace;
        if (!touched)
            continue;
        d.windows.push_back(w);
        d.total.demands += w.demands;
        d.total.issued += w.issued;
        d.total.refill_stalls += w.refill_stalls;
        d.total.ontime += w.ontime;
        d.total.early += w.early;
        d.total.late += w.late;
        d.total.out_of_window += w.out_of_window;
    }
    return d;
}

std::string
formatReplayDiagnostics(const ReplayDiagnostics &diag)
{
    std::ostringstream os;
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%8s %10s %10s %6s %7s %10s %8s %8s %8s\n", "window",
                  "demands", "issued", "pace", "stalls", "ontime",
                  "early", "late", "out-of-w");
    os << line;
    const auto row = [&](const char *label, const WindowDiag &w) {
        std::snprintf(line, sizeof(line),
                      "%8s %10" PRIu64 " %10" PRIu64 " %6" PRIu64
                      " %7" PRIu64 " %10" PRIu64 " %8" PRIu64 " %8" PRIu64
                      " %8" PRIu64 "\n",
                      label, w.demands, w.issued, w.pace, w.refill_stalls,
                      w.ontime, w.early, w.late, w.out_of_window);
        os << line;
    };
    for (const WindowDiag &w : diag.windows) {
        char label[16];
        std::snprintf(label, sizeof(label), "%" PRIu32, w.window);
        row(label, w);
    }
    row("total", diag.total);
    return os.str();
}

namespace {

const char *
cacheLevelName(std::uint64_t level)
{
    switch (level & 3) {
      case 0: return "l1";
      case 1: return "l2";
      default: return "llc";
    }
}

void
appendEventJson(std::ostringstream &os, const TraceEvent &e,
                std::uint16_t track, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;

    os << "    {\"name\": \"";
    // Cache events carry their level in arg; fold it into the name so
    // Perfetto's aggregation-by-name stays meaningful per level.
    if (e.type == TraceEventType::CacheMiss ||
        e.type == TraceEventType::CacheFill) {
        os << cacheLevelName(e.arg) << "_"
           << (e.type == TraceEventType::CacheMiss ? "miss" : "fill");
        if (e.type == TraceEventType::CacheFill && (e.arg & 4))
            os << "_pf";
    } else {
        // Names are internal constants today, but escape anyway so this
        // writer shares the one escaping discipline (json_write.h).
        os << jsonEscape(traceEventName(e.type));
    }
    os << "\", \"cat\": \"rnr\", \"pid\": 1, \"tid\": " << track
       << ", \"ts\": " << e.tick;
    if (e.type == TraceEventType::MetaRefillStall) {
        // Stalls render as spans so the dead time is visible.
        os << ", \"ph\": \"X\", \"dur\": " << (e.arg ? e.arg : 1);
    } else {
        os << ", \"ph\": \"i\", \"s\": \"t\"";
    }
    os << ", \"args\": {\"addr\": " << e.addr << ", \"arg\": " << e.arg
       << ", \"window\": " << e.window << ", \"core\": " << e.core
       << "}}";
}

} // namespace

std::string
chromeTraceJson(const TraceCollector &tr)
{
    std::ostringstream os;
    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
    bool first = true;

    // Track-name metadata so Perfetto shows labelled lanes.
    for (unsigned t = 0; t < tr.trackCount(); ++t) {
        if (!first)
            os << ",\n";
        first = false;
        os << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << t << ", \"args\": {\"name\": \"";
        if (t < tr.cores())
            os << "core " << t;
        else if (t == tr.memTrack())
            os << "mem (LLC+DRAM)";
        else
            os << "rnr replay";
        os << "\"}}";
    }

    for (unsigned t = 0; t < tr.trackCount(); ++t) {
        const TraceRing &ring = tr.ring(static_cast<std::uint16_t>(t));
        for (std::size_t i = 0; i < ring.size(); ++i)
            appendEventJson(os, ring.at(i),
                            static_cast<std::uint16_t>(t), first);
    }
    os << "\n  ],\n  \"otherData\": {\"events_total\": "
       << tr.eventsTotal()
       << ", \"events_overwritten\": " << tr.eventsOverwritten()
       << ", \"cores\": " << tr.cores() << "}\n}\n";
    return os.str();
}

bool
writeChromeTrace(const std::string &path, const TraceCollector &tr)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(rnr_getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << chromeTraceJson(tr);
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
traceEnvEnabled()
{
    return envFlag("RNR_TRACE");
}

std::string
traceEnvOutPath()
{
    if (const char *p = std::getenv("RNR_TRACE_OUT"))
        return p;
    return "";
}

bool
traceEnvReportEnabled()
{
    return envFlag("RNR_TRACE_REPORT");
}

std::size_t
traceRingCapacity(std::size_t requested)
{
    if (requested)
        return requested;
    if (const char *p = std::getenv("RNR_TRACE_BUF")) {
        const long n = std::strtol(p, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return kDefaultRingCapacity;
}

} // namespace rnr
