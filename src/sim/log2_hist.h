/**
 * @file
 * The one log2-bucketed histogram core.
 *
 * Two layers need the same power-of-two bucketing — the per-simulation
 * telemetry histograms (sim/timeseries.h, single-writer plain cells)
 * and the process-wide metrics registry (obs/metrics.h, concurrent
 * relaxed-atomic cells).  They once carried two hand-written copies of
 * the bucket math; this header is the shared implementation, templated
 * only on the cell type so each façade keeps its exact storage and
 * thread-safety contract.
 *
 * Bucketing: bucket 0 holds exactly {0}; bucket i >= 1 holds
 * [2^(i-1), 2^i - 1]; 65 buckets cover all of uint64_t.  The index of
 * value v is bit_width(v), so recording is O(1) with no branches
 * beyond the array index.
 */
#ifndef RNR_SIM_LOG2_HIST_H
#define RNR_SIM_LOG2_HIST_H

#include <atomic>
#include <bit>
#include <cstdint>

namespace rnr {
namespace log2b {

inline constexpr unsigned kBuckets = 65;

/** Bucket for @p v: 0 for 0, otherwise bit_width(v). */
constexpr unsigned
index(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v));
}

/** Smallest value bucket @p i can hold. */
constexpr std::uint64_t
low(unsigned i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

/** Largest value bucket @p i can hold (saturates: bucket 64's upper
 *  edge is UINT64_MAX, not an out-of-range shift). */
constexpr std::uint64_t
high(unsigned i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

} // namespace log2b

/**
 * Histogram core shared by rnr::Log2Histogram and obs::Histogram.
 *
 * @tparam Cell  std::uint64_t for single-writer histograms (one add
 *               per record) or std::atomic<std::uint64_t> for
 *               concurrent ones (relaxed fetch_add per record).
 */
template <class Cell>
class BasicLog2Histogram
{
  public:
    static constexpr unsigned kBuckets = log2b::kBuckets;

    void
    record(std::uint64_t v)
    {
        bump(count_, 1);
        bump(sum_, v);
        bump(buckets_[log2b::index(v)], 1);
    }

    std::uint64_t count() const { return load(count_); }
    std::uint64_t sum() const { return load(sum_); }

    double
    mean() const
    {
        const std::uint64_t n = count();
        return n ? static_cast<double>(sum()) / static_cast<double>(n)
                 : 0.0;
    }

    std::uint64_t
    bucket(unsigned i) const
    {
        return i < kBuckets ? load(buckets_[i]) : 0;
    }

    /** One past the highest non-empty bucket (0 when empty). */
    unsigned
    maxBucket() const
    {
        for (unsigned i = kBuckets; i > 0; --i)
            if (bucket(i - 1))
                return i;
        return 0;
    }

    /** Zeroes every cell (relaxed stores).  Test plumbing — callers
     *  must ensure no concurrent record() observes the tear. */
    void
    resetForTest()
    {
        store(count_, 0);
        store(sum_, 0);
        for (Cell &b : buckets_)
            store(b, 0);
    }

  private:
    static void bump(std::uint64_t &c, std::uint64_t n) { c += n; }
    static void
    bump(std::atomic<std::uint64_t> &c, std::uint64_t n)
    {
        c.fetch_add(n, std::memory_order_relaxed);
    }
    static std::uint64_t load(const std::uint64_t &c) { return c; }
    static std::uint64_t
    load(const std::atomic<std::uint64_t> &c)
    {
        return c.load(std::memory_order_relaxed);
    }
    static void store(std::uint64_t &c, std::uint64_t v) { c = v; }
    static void
    store(std::atomic<std::uint64_t> &c, std::uint64_t v)
    {
        c.store(v, std::memory_order_relaxed);
    }

    Cell buckets_[kBuckets] = {};
    Cell count_{};
    Cell sum_{};
};

} // namespace rnr

#endif // RNR_SIM_LOG2_HIST_H
