#include "sim/attrib.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "harness/json_write.h"
#include "obs/metrics.h"

namespace rnr {

AttribCollector::AttribCollector(std::size_t site_top_k,
                                 std::size_t region_top_k)
    : site_top_k_(site_top_k >= 1 ? site_top_k : 1),
      region_top_k_(region_top_k >= 1 ? region_top_k : 1)
{
}

namespace {

/**
 * Deterministic fold victim: the least-active entry, ties broken by
 * the smallest key.  The choice depends only on (total, key) pairs,
 * never on unordered_map iteration order.
 */
template <class Map>
typename Map::iterator
foldVictim(Map &m)
{
    auto victim = m.begin();
    for (auto it = m.begin(); it != m.end(); ++it) {
        const std::uint64_t t = it->second.total();
        const std::uint64_t vt = victim->second.total();
        if (t < vt || (t == vt && it->first < victim->first))
            victim = it;
    }
    return victim;
}

} // namespace

AttribSiteStats &
AttribCollector::siteRow(std::uint32_t site)
{
    auto it = sites_.find(site);
    if (it != sites_.end())
        return it->second;
    if (sites_.size() >= site_top_k_) {
        auto victim = foldVictim(sites_);
        site_other_.fold(victim->second);
        sites_.erase(victim);
    }
    ++sites_tracked_;
    return sites_.emplace(site, AttribSiteStats{}).first->second;
}

AttribSiteStats &
AttribCollector::regionRow(Addr region)
{
    auto it = regions_.find(region);
    if (it != regions_.end())
        return it->second;
    if (regions_.size() >= region_top_k_) {
        auto victim = foldVictim(regions_);
        region_other_.fold(victim->second);
        regions_.erase(victim);
    }
    ++regions_tracked_;
    return regions_.emplace(region, AttribSiteStats{}).first->second;
}

void
AttribCollector::account(std::uint32_t site, Addr block,
                         std::uint64_t AttribSiteStats::*field)
{
    ++(totals_.*field);
    ++(siteRow(site).*field);
    ++(regionRow(attribRegion(block)).*field);
}

void
AttribCollector::onIssued(std::uint32_t site, Addr block)
{
    account(site, block, &AttribSiteStats::issued);
}

void
AttribCollector::onUseful(std::uint32_t site, Addr block)
{
    account(site, block, &AttribSiteStats::useful);
}

void
AttribCollector::onLateMerged(std::uint32_t site, Addr block)
{
    account(site, block, &AttribSiteStats::late_merged);
}

void
AttribCollector::onEvictedUnused(std::uint32_t site, Addr block)
{
    account(site, block, &AttribSiteStats::evicted_unused);
}

void
AttribCollector::onPrefetchEvictsDemand(unsigned core,
                                        std::uint32_t site,
                                        Addr victim_block)
{
    if (core >= victims_.size())
        victims_.resize(core + 1);
    if (victims_[core].empty())
        victims_[core].resize(kVictimFilterEntries);
    VictimEnt &e = victims_[core][victim_block % kVictimFilterEntries];
    e.block = victim_block;
    e.site = site;
    e.valid = true;
    ++filter_inserts_;
}

void
AttribCollector::onDemandMiss(unsigned core, Addr block)
{
    if (core >= victims_.size() || victims_[core].empty())
        return;
    VictimEnt &e = victims_[core][block % kVictimFilterEntries];
    if (!e.valid || e.block != block)
        return;
    e.valid = false; // consume: one eviction, at most one charge
    ++filter_hits_;
    account(e.site, block, &AttribSiteStats::pollution);
}

void
AttribCollector::onRnrClass(RnrTimeliness cls, std::uint64_t window)
{
    const auto c = static_cast<unsigned>(cls);
    ++rnr_class_[c];
    if (window < kMaxWindows) {
        if (windows_.size() <= window)
            windows_.resize(window + 1);
        ++windows_[window][c];
    } else {
        ++window_overflow_[c];
    }
}

AttribBlob
AttribCollector::harvest() const
{
    AttribBlob b;

    b.sites.reserve(sites_.size());
    for (const auto &[site, stats] : sites_)
        b.sites.push_back({site, stats});
    std::sort(b.sites.begin(), b.sites.end(),
              [](const AttribBlob::SiteRow &x,
                 const AttribBlob::SiteRow &y) {
                  const std::uint64_t xt = x.stats.total();
                  const std::uint64_t yt = y.stats.total();
                  return xt != yt ? xt > yt : x.site < y.site;
              });
    b.site_other = site_other_;
    b.sites_tracked = sites_tracked_;

    b.regions.reserve(regions_.size());
    for (const auto &[region, stats] : regions_)
        b.regions.push_back({region, stats});
    std::sort(b.regions.begin(), b.regions.end(),
              [](const AttribBlob::RegionRow &x,
                 const AttribBlob::RegionRow &y) {
                  return x.region < y.region;
              });
    b.region_other = region_other_;
    b.regions_tracked = regions_tracked_;

    b.windows.reserve(windows_.size());
    for (std::size_t w = 0; w < windows_.size(); ++w)
        b.windows.push_back({w, windows_[w][0], windows_[w][1],
                             windows_[w][2], windows_[w][3]});
    b.window_overflow = {0, window_overflow_[0], window_overflow_[1],
                         window_overflow_[2], window_overflow_[3]};

    b.totals = totals_;
    b.rnr_ontime = rnr_class_[0];
    b.rnr_early = rnr_class_[1];
    b.rnr_late = rnr_class_[2];
    b.rnr_out_of_window = rnr_class_[3];
    b.pollution_filter_inserts = filter_inserts_;
    b.pollution_filter_hits = filter_hits_;
    return b;
}

bool
attribEnvEnabled()
{
    const char *p = std::getenv("RNR_ATTRIB");
    return p && *p && std::strcmp(p, "0") != 0;
}

namespace {

void
appendStats(std::ostringstream &os, const AttribSiteStats &s)
{
    os << "{\"issued\": " << jsonU64(s.issued)
       << ", \"useful\": " << jsonU64(s.useful)
       << ", \"late_merged\": " << jsonU64(s.late_merged)
       << ", \"evicted_unused\": " << jsonU64(s.evicted_unused)
       << ", \"pollution\": " << jsonU64(s.pollution) << "}";
}

void
appendWindow(std::ostringstream &os, const AttribBlob::WindowRow &w,
             bool with_index)
{
    os << "{";
    if (with_index)
        os << "\"window\": " << jsonU64(w.window) << ", ";
    os << "\"ontime\": " << jsonU64(w.ontime)
       << ", \"early\": " << jsonU64(w.early)
       << ", \"late\": " << jsonU64(w.late)
       << ", \"out_of_window\": " << jsonU64(w.out_of_window) << "}";
}

} // namespace

std::string
attribJson(const AttribBlob &blob)
{
    std::ostringstream os;
    os << "{\"schema\": \"rnr-attrib-v1\", \"totals\": ";
    appendStats(os, blob.totals);
    os << ", \"rnr\": {\"ontime\": " << jsonU64(blob.rnr_ontime)
       << ", \"early\": " << jsonU64(blob.rnr_early)
       << ", \"late\": " << jsonU64(blob.rnr_late)
       << ", \"out_of_window\": " << jsonU64(blob.rnr_out_of_window)
       << "}, \"pollution_filter\": {\"inserts\": "
       << jsonU64(blob.pollution_filter_inserts)
       << ", \"hits\": " << jsonU64(blob.pollution_filter_hits)
       << "}, \"sites\": [";
    for (std::size_t i = 0; i < blob.sites.size(); ++i) {
        if (i > 0)
            os << ", ";
        const AttribBlob::SiteRow &r = blob.sites[i];
        os << "{\"site\": " << jsonU64(r.site) << ", \"rnr\": "
           << jsonBool(attribSiteIsRnr(r.site)) << ", \"stats\": ";
        appendStats(os, r.stats);
        os << "}";
    }
    os << "], \"sites_tracked\": " << jsonU64(blob.sites_tracked)
       << ", \"site_other\": ";
    appendStats(os, blob.site_other);
    os << ", \"regions\": [";
    for (std::size_t i = 0; i < blob.regions.size(); ++i) {
        if (i > 0)
            os << ", ";
        const AttribBlob::RegionRow &r = blob.regions[i];
        os << "{\"region\": " << jsonU64(r.region) << ", \"stats\": ";
        appendStats(os, r.stats);
        os << "}";
    }
    os << "], \"regions_tracked\": " << jsonU64(blob.regions_tracked)
       << ", \"region_other\": ";
    appendStats(os, blob.region_other);
    os << ", \"windows\": [";
    for (std::size_t i = 0; i < blob.windows.size(); ++i) {
        if (i > 0)
            os << ", ";
        appendWindow(os, blob.windows[i], true);
    }
    os << "], \"window_overflow\": ";
    appendWindow(os, blob.window_overflow, false);
    os << "}";
    return os.str();
}

void
publishAttribMetrics(const AttribBlob &blob)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    if (!obs::MetricsRegistry::enabled())
        return;
    const auto bump = [&reg](const char *name, std::uint64_t v) {
        if (obs::Counter *c = reg.counter(name))
            c->add(v);
    };
    bump("rnr_attrib_runs_total", 1);
    bump("rnr_attrib_pf_issued_total", blob.totals.issued);
    bump("rnr_attrib_pf_useful_total", blob.totals.useful);
    bump("rnr_attrib_pf_late_merged_total", blob.totals.late_merged);
    bump("rnr_attrib_pf_evicted_unused_total",
         blob.totals.evicted_unused);
    bump("rnr_attrib_pollution_total", blob.totals.pollution);
    const auto level = [&reg](const char *name, std::uint64_t v) {
        if (obs::Gauge *g = reg.gauge(name))
            g->set(static_cast<std::int64_t>(v));
    };
    level("rnr_attrib_sites_tracked", blob.sites_tracked);
    level("rnr_attrib_regions_tracked", blob.regions_tracked);
    level("rnr_attrib_windows_tracked", blob.windows.size());
}

} // namespace rnr
