/**
 * @file
 * Simulation event tracing: typed events, per-track ring buffers, a
 * Chrome-trace/Perfetto JSON exporter and per-window replay diagnostics.
 *
 * This is the observability layer under the paper's timeliness story:
 * IterStats (harness/experiment.h) says *how many* replay prefetches
 * were early/on-time/late per iteration; the trace says *when* and *in
 * which Division-Table window* each one happened, alongside the cache,
 * MSHR, DRAM and metadata-streaming events that explain why.
 *
 * Design constraints, in order:
 *
 *  1. **Observation only.**  Nothing here feeds back into simulation
 *     state; a traced run produces bit-identical IterStats to an
 *     untraced run (pinned by tests/sim/trace_event_test.cc).
 *  2. **Free when off.**  Components hold a `TraceCollector *` that is
 *     null unless tracing was requested (RNR_TRACE=1 or
 *     ExperimentConfig::trace.enabled); the hot-path cost of disabled
 *     tracing is one predictable null-pointer branch per hook.
 *  3. **Bounded when on.**  Events land in fixed-capacity rings (one
 *     per track) that overwrite the oldest entry when full; per-window
 *     aggregates are updated at emit time, so the diagnostics report
 *     stays exact even after the rings wrap.
 *  4. **Single-writer.**  A collector belongs to one System, and a
 *     System is only ever driven by one thread (the sweep parallelises
 *     at whole-simulation granularity, see sim/stats.h).  The rings are
 *     single-producer and need no atomics — "lock-free" by ownership.
 *
 * Tracks: one per simulated core (tid 0..N-1, core-side events), one
 * shared "mem" track (tid N, LLC + DRAM), one "rnr" track (tid N+1,
 * the record/replay lifecycle).  writeChromeTrace() emits Chrome
 * trace-event JSON ({"traceEvents": [...]}) that loads directly into
 * Perfetto (ui.perfetto.dev) or chrome://tracing; timestamps are core
 * cycles written into the "ts" microsecond field (1 cycle == 1 "us" on
 * screen — only relative spacing matters).
 *
 * Environment:
 *   RNR_TRACE=1          enable collection in runExperimentUncached
 *   RNR_TRACE_OUT=<p>    write the Chrome trace JSON to <p>
 *   RNR_TRACE_BUF=<n>    ring capacity per track (events, default 32768)
 *   RNR_TRACE_REPORT=1   print the per-window replay report to stderr
 *
 * See docs/HARNESS.md section 11 for the full pipeline walkthrough.
 */
#ifndef RNR_SIM_TRACE_EVENT_H
#define RNR_SIM_TRACE_EVENT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace rnr {

/** Every event kind the simulator can emit. */
enum class TraceEventType : std::uint8_t {
    // Memory hierarchy (core tracks; LLC events on the "mem" track).
    CacheMiss,      ///< Lookup found no resident line; arg = cache level.
    CacheFill,      ///< Line installed; tick = fill time, arg = level
                    ///< (+4 when the fill was triggered by a prefetch).
    MshrAlloc,      ///< Outstanding-miss entry allocated; tick = fill
                    ///< tick, arg = 1 for the prefetch-queue file.
    MshrMerge,      ///< Demand merged into an in-flight fill.
    DramEnqueue,    ///< Request entered the DRAM queues; arg = ReqOrigin.
    DramDequeue,    ///< Read serviced; tick = completion, arg = latency.
    // Prefetch path (core tracks; all prefetcher kinds).
    PrefetchIssue,  ///< New prefetch went out; arg = fill latency.
    PrefetchDrop,   ///< arg: 0 = redundant, 1 = prefetch queue full.
    PrefetchFill,   ///< Prefetched line's data arrives (tick = fill).
    ControlRecord,  ///< RnR API call executed by the core; arg = RnrOp.
    // RnR lifecycle ("rnr" track; event.core says which core's RnR).
    RecordStart,    ///< PrefetchState.start()
    RecordStop,     ///< Recording ended; arg = sequence entries recorded.
    ReplayStart,    ///< PrefetchState.replay(); arg = entries to replay.
    ReplayStop,     ///< Replay ended (EndState/state change).
    SeqTableWrite,  ///< Staged sequence entries written back; arg = bytes.
    DivTableWrite,  ///< Division-table append written back; arg = bytes.
    WindowOpen,     ///< Program progressed into `window`; arg = N_pace.
    WindowClose,    ///< Program left `window`.
    PaceRecompute,  ///< Controller recomputed N_pace; arg = new pace.
    MetaRefill,     ///< Metadata double-buffer refill; arg = bytes.
    MetaRefillStall,///< Refill completed after `now`; arg = stall cycles.
    PfOntime,       ///< Replay-prefetch classification (Fig 11 taxonomy),
    PfEarly,        ///< attributed to the prefetch's recorded window.
    PfLate,
    PfOutOfWindow,
};

/** Number of TraceEventType values (for tables in the exporter). */
constexpr unsigned kTraceEventTypeCount =
    static_cast<unsigned>(TraceEventType::PfOutOfWindow) + 1;

/** Stable display name used by the exporter and the tests. */
const char *traceEventName(TraceEventType type);

/** One recorded event.  32 bytes; rings hold tens of thousands. */
struct TraceEvent {
    Tick tick = 0;              ///< Core-cycle timestamp.
    Addr addr = 0;              ///< Block number / table address / 0.
    std::uint64_t arg = 0;      ///< Type-specific payload (see enum).
    std::uint32_t window = 0;   ///< Division-Table window (RnR events).
    std::uint16_t core = 0;     ///< Originating core.
    TraceEventType type = TraceEventType::CacheMiss;
};

/**
 * Fixed-capacity single-producer ring.  push() overwrites the oldest
 * event once full; total() keeps counting, so overwritten() exposes the
 * loss and the exporter can say what was dropped (no silent caps).
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    void
    push(const TraceEvent &e)
    {
        if (ev_.size() < capacity_) {
            ev_.push_back(e);
        } else {
            ev_[total_ % capacity_] = e;
        }
        ++total_;
    }

    /** Events currently resident (<= capacity). */
    std::size_t size() const { return ev_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Events ever pushed. */
    std::uint64_t total() const { return total_; }
    /** Events lost to wrap-around. */
    std::uint64_t overwritten() const { return total_ - ev_.size(); }

    /** @return the @p i-th resident event, oldest first. */
    const TraceEvent &
    at(std::size_t i) const
    {
        if (total_ <= capacity_)
            return ev_[i];
        return ev_[(total_ + i) % capacity_];
    }

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> ev_;
    std::uint64_t total_ = 0;
};

/**
 * Per-window aggregates for the replay diagnostics report — the drill-
 * down of Fig 11 from per-iteration to per-Division-Table-window
 * granularity.  Updated at emit time, so exact regardless of ring wrap;
 * windows accumulate across replay passes (iterations) and cores.
 */
struct WindowDiag {
    std::uint32_t window = 0;
    std::uint64_t demands = 0;       ///< Target-structure reads observed.
    std::uint64_t issued = 0;        ///< RnR replay prefetches issued.
    std::uint64_t pace = 0;          ///< Last N_pace active in the window.
    std::uint64_t refill_stalls = 0; ///< Metadata refills that arrived late.
    std::uint64_t ontime = 0;        ///< Fig 11 classification, attributed
    std::uint64_t early = 0;         ///< to the prefetch's recorded window.
    std::uint64_t late = 0;
    std::uint64_t out_of_window = 0;
};

/**
 * The per-simulation event sink: one ring per track plus the window
 * aggregate table.  Owned by whoever runs the simulation (the runner,
 * the rnr-trace tool, a test); components receive a raw pointer via
 * System::attachTrace() and must not outlive it.
 */
class TraceCollector
{
  public:
    /** @param cores simulated core count (fixes the track layout).
     *  @param ring_capacity events per track; 0 = env/default. */
    explicit TraceCollector(unsigned cores, std::size_t ring_capacity = 0);

    unsigned cores() const { return cores_; }
    /** Track of the shared backside (LLC + DRAM). */
    std::uint16_t memTrack() const { return static_cast<std::uint16_t>(cores_); }
    /** Track of the RnR record/replay lifecycle. */
    std::uint16_t rnrTrack() const
    {
        return static_cast<std::uint16_t>(cores_ + 1);
    }
    unsigned trackCount() const { return cores_ + 2; }

    /** Appends an event to @p track's ring and folds it into the
     *  per-window aggregates when the type participates in the replay
     *  report.  Callers gate on their pointer, so this never runs when
     *  tracing is disabled. */
    void
    emit(std::uint16_t track, TraceEventType type, Tick tick, Addr addr = 0,
         std::uint64_t arg = 0, std::uint32_t window = 0,
         std::uint16_t core = 0)
    {
        TraceEvent e;
        e.tick = tick;
        e.addr = addr;
        e.arg = arg;
        e.window = window;
        e.core = core;
        e.type = type;
        rings_[track < rings_.size() ? track : rings_.size() - 1].push(e);
        aggregate(e);
    }

    /** Aggregate-only hooks for per-demand-read frequencies that would
     *  flood the rings: they bump the window table and nothing else. */
    void countWindowDemand(std::uint32_t w) { ++diag(w).demands; }
    void countWindowIssue(std::uint32_t w) { ++diag(w).issued; }

    const TraceRing &ring(std::uint16_t track) const
    {
        return rings_[track];
    }
    /** Dense window table (index == window id); rows a replay never
     *  touched stay zero. */
    const std::vector<WindowDiag> &windowTable() const { return windows_; }

    /** Events pushed across all tracks (including overwritten ones). */
    std::uint64_t eventsTotal() const;
    /** Events lost to ring wrap across all tracks. */
    std::uint64_t eventsOverwritten() const;

  private:
    WindowDiag &diag(std::uint32_t w);
    void aggregate(const TraceEvent &e);

    unsigned cores_;
    std::vector<TraceRing> rings_;
    std::vector<WindowDiag> windows_;
};

/** The replay report: touched windows only, plus column totals. */
struct ReplayDiagnostics {
    std::vector<WindowDiag> windows;
    WindowDiag total; ///< Column sums (total.window/pace are meaningless).
};

/** Builds the per-window report from @p tr's aggregate table. */
ReplayDiagnostics buildReplayDiagnostics(const TraceCollector &tr);

/** Renders the report as an aligned text table (ends with a newline). */
std::string formatReplayDiagnostics(const ReplayDiagnostics &diag);

/** Serialises the rings as Chrome trace-event JSON (Perfetto-loadable):
 *  {"traceEvents": [...]} with per-track thread_name metadata. */
std::string chromeTraceJson(const TraceCollector &tr);

/** Writes chromeTraceJson() to @p path atomically (temp + rename).
 *  @return false on I/O failure. */
bool writeChromeTrace(const std::string &path, const TraceCollector &tr);

// ---- Environment gate (read by harness/runner.cc and the tools) ----

/** True when RNR_TRACE is set to anything but "" or "0". */
bool traceEnvEnabled();
/** $RNR_TRACE_OUT, or "" when unset. */
std::string traceEnvOutPath();
/** True when RNR_TRACE_REPORT is set to anything but "" or "0". */
bool traceEnvReportEnabled();
/** Ring capacity: @p requested if non-zero, else $RNR_TRACE_BUF, else
 *  the 32768-event default. */
std::size_t traceRingCapacity(std::size_t requested = 0);

} // namespace rnr

#endif // RNR_SIM_TRACE_EVENT_H
