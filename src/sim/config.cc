#include "sim/config.h"

#include <sstream>

namespace rnr {

unsigned
CacheConfig::sets() const
{
    return static_cast<unsigned>(size_bytes / (kBlockSize * ways));
}

MachineConfig
MachineConfig::paperBaseline()
{
    MachineConfig m;
    m.cores = 4;

    m.l1d = {"L1D", 64 * 1024, 8, 8, /*pq=*/8, /*latency=*/4,
             /*shared=*/false};
    m.l2 = {"L2", 256 * 1024, 8, 16, /*pq=*/32, /*latency=*/8,
            /*shared=*/false};
    m.llc = {"LLC", 8 * 1024 * 1024, 16, 128, /*pq=*/64, /*latency=*/30,
             /*shared=*/true};
    // The paper quotes cumulative access delays (4/12/42); per-level
    // latencies above add up to the same totals.
    return m;
}

MachineConfig
MachineConfig::scaledDefault()
{
    MachineConfig m = paperBaseline();
    m.l1d.size_bytes = 16 * 1024;
    m.l2.size_bytes = 32 * 1024;
    m.llc.size_bytes = 512 * 1024;
    // Scale the demand-MLP resources with the caches: a full-size OoO
    // core rarely sustains 16 truly independent L2 misses (dependent
    // address generation, ROB pressure); with the scaled per-miss
    // instruction counts, 8 keeps the baseline latency-bound, matching
    // the regime the paper's speedups come from.
    m.l2.mshrs = 8;
    // DRAM service times scale with the caches: the scaled kernels issue
    // far fewer instructions per miss than the paper's 500M-instruction
    // runs, so keeping DDR4's absolute row-cycle times against 16x
    // smaller caches would make every run bandwidth-bound and flatten
    // all prefetcher differences.  The scaled timings (and the extra
    // banks, standing in for rank/bank-group parallelism and for the
    // FR-FCFS efficiency the FCFS model lacks) keep the baseline
    // latency-bound and give prefetchers the same headroom they have in
    // the paper's configuration.
    m.dram.banks = 32;
    m.dram.tCAS = m.dram.tRCD = m.dram.tRP = 20;
    m.dram.tBURST = 2;
    return m;
}

MachineConfig
MachineConfig::withInfiniteLlc(const MachineConfig &base)
{
    MachineConfig m = base;
    // 64 MB fully covers every scaled input (largest is ~16 MB) while
    // keeping the line array small enough to allocate cheaply.
    m.llc.size_bytes = std::uint64_t{64} << 20;
    return m;
}

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << cores << " cores, " << core.issue_width << "-wide OoO, ROB "
       << core.rob_size << ", LSQ " << core.lsq_size << "\n";
    for (const CacheConfig *c : {&l1d, &l2, &llc}) {
        os << c->name << ": " << c->size_bytes / 1024 << " KB, " << c->ways
           << "-way, " << c->mshrs << " MSHRs, +" << c->latency
           << " cyc, " << (c->shared ? "shared" : "private") << "\n";
    }
    os << "DRAM: 1 channel, " << dram.banks << " banks, RQ "
       << dram.read_queue << " / WQ " << dram.write_queue
       << " (drain " << dram.drain_high * 100 << "%/" << dram.drain_low * 100
       << "%), tCAS=tRCD=tRP=" << dram.tCAS << " core cyc";
    return os.str();
}

} // namespace rnr
