/**
 * @file
 * Time-series telemetry: periodic counter sampling into fixed-capacity
 * auto-downsampling series, plus Gauge and power-of-two latency
 * histogram primitives.
 *
 * Where the event-tracing layer (sim/trace_event.h) answers "what
 * happened at tick T" at per-event granularity — too heavy to keep on
 * for every sweep cell — this layer answers "how did X evolve over the
 * run" at a fixed sampling period, cheap enough to enable per cell.
 * The sampled signals are the paper's time-varying quantities: window-
 * by-window pace control N_pace, metadata buffer fill, MSHR/DRAM queue
 * occupancy, and the latency distributions behind the Fig 11
 * timeliness story.
 *
 * Design constraints, matching trace_event.h:
 *
 *  1. **Observation only.**  Probes are read, never written; a sampled
 *     run produces bit-identical IterStats to an unsampled run (pinned
 *     by tests/harness/report_test.cc).
 *  2. **Free when off.**  Components hold a `TelemetrySampler *` that
 *     is null unless sampling was requested (RNR_SAMPLE_CYCLES=<n> or
 *     ExperimentConfig::telemetry.enabled); the hot-path cost of
 *     disabled sampling is one predictable null-pointer branch per
 *     hook (A/B in BENCH_telemetry.json).
 *  3. **Bounded when on.**  Each series holds at most `capacity`
 *     points.  When a series fills up it halves its resolution,
 *     Perfetto-style: every other retained point is dropped and the
 *     decimation factor doubles, so a series always spans the whole
 *     run at the best resolution that fits.  Probes are only invoked
 *     at sample time — their cost is off the hot path entirely.
 *  4. **Single-writer.**  A sampler belongs to one System and needs no
 *     atomics (the sweep parallelises at whole-simulation granularity).
 *
 * Environment:
 *   RNR_SAMPLE_CYCLES=<n>  sample every n core cycles (unset/0 = off)
 *
 * See docs/HARNESS.md section 13 for the full pipeline walkthrough.
 */
#ifndef RNR_SIM_TIMESERIES_H
#define RNR_SIM_TIMESERIES_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/log2_hist.h"
#include "sim/types.h"

namespace rnr {

/** One sampled point: (core-cycle timestamp, value). */
struct TelemetrySample {
    Tick tick = 0;
    std::uint64_t value = 0;
};

/**
 * Fixed-capacity series with Perfetto-style auto-downsampling.
 *
 * push() keeps every `keepEvery()`-th offered sample (initially every
 * one).  When the buffer reaches capacity, compact() drops every other
 * retained point and doubles the decimation factor, so the memory
 * bound holds while the series keeps covering the entire run.  The
 * retained points stay aligned: a sample survives iff its offer index
 * is a multiple of the final decimation factor.
 */
class TimeSeries
{
  public:
    static constexpr std::size_t kDefaultCapacity = 512;

    explicit TimeSeries(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity >= 2 ? capacity : 2)
    {
    }

    /** Offers one sample; retained when aligned to the decimation. */
    void
    push(Tick tick, std::uint64_t value)
    {
        const std::uint64_t index = offered_++;
        if (index % keep_every_ != 0)
            return;
        if (pts_.size() == capacity_)
            compact();
        if (index % keep_every_ == 0)
            pts_.push_back({tick, value});
    }

    const std::vector<TelemetrySample> &points() const { return pts_; }
    std::size_t capacity() const { return capacity_; }
    /** Samples offered to push() (retained or not). */
    std::uint64_t offered() const { return offered_; }
    /** Current decimation factor: one point per keepEvery() offers. */
    std::uint64_t keepEvery() const { return keep_every_; }

  private:
    /** Halves resolution: keeps even-positioned points, doubles the
     *  decimation factor.  Even positions are the ones aligned to the
     *  doubled factor, so future pushes stay on the same grid. */
    void
    compact()
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < pts_.size(); i += 2)
            pts_[out++] = pts_[i];
        pts_.resize(out);
        keep_every_ *= 2;
    }

    std::size_t capacity_;
    std::uint64_t keep_every_ = 1;
    std::uint64_t offered_ = 0;
    std::vector<TelemetrySample> pts_;
};

/**
 * An instantaneous level a component maintains explicitly (queue depth,
 * buffer fill) when no accessor exists to probe it lazily.  Plain cell:
 * the writer pays one store; the sampler reads it at sample time.
 */
class Gauge
{
  public:
    void set(std::uint64_t v) { value_ = v; }
    void add(std::uint64_t d) { value_ += d; }
    /** Saturating decrement (a gauge level never goes negative). */
    void sub(std::uint64_t d) { value_ -= value_ < d ? value_ : d; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Power-of-two-bucket histogram for latency distributions.  Bucketing
 * and recording live in the shared core (sim/log2_hist.h); this façade
 * is the single-writer (plain uint64_t cell) instantiation plus the
 * bucket-edge names this layer's consumers use.
 */
class Log2Histogram : public BasicLog2Histogram<std::uint64_t>
{
  public:
    /** Smallest value bucket @p i can hold. */
    static std::uint64_t bucketLow(unsigned i) { return log2b::low(i); }
    /** Largest value bucket @p i can hold. */
    static std::uint64_t bucketHigh(unsigned i) { return log2b::high(i); }
};

/** Detached copy of one series, as carried by ExperimentResult. */
struct TelemetrySeriesBlob {
    std::string name;
    std::uint64_t keep_every = 1; ///< Final decimation factor.
    std::vector<TelemetrySample> points;
};

/** Detached copy of one histogram. */
struct TelemetryHistogramBlob {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /** (log2 bucket index, count) for non-empty buckets only. */
    std::vector<std::pair<unsigned, std::uint64_t>> buckets;
};

/** Everything a sampled run produced, detached from the sampler so it
 *  can ride on ExperimentResult past the simulation's lifetime. */
struct TelemetryBlob {
    Tick sample_cycles = 0;
    std::uint64_t samples_taken = 0;
    std::vector<TelemetrySeriesBlob> series;
    std::vector<TelemetryHistogramBlob> histograms;

    const TelemetrySeriesBlob *findSeries(const std::string &name) const;
    const TelemetryHistogramBlob *
    findHistogram(const std::string &name) const;
};

/**
 * The per-simulation telemetry sink.  Owned by whoever runs the
 * simulation (the runner, the report generator, a test); components
 * receive a raw pointer via System::attachTelemetry() and register
 * their probes/histograms at attach time, so the harness never needs
 * per-component wiring knowledge.
 *
 * Sampling is driven from CoreModel::step(): every core offers its
 * local clock through maybeSample(), and the sampler fires once the
 * clock passes the next sample point.  Cores are interleaved in local-
 * time order by System::drive(), so the offered clocks are near-
 * monotonic and one sampler serves the whole machine.
 */
class TelemetrySampler
{
  public:
    using Probe = std::function<std::uint64_t()>;

    /** @param sample_cycles period in core cycles; 0 = env/default.
     *  @param series_capacity points per series before downsampling. */
    explicit TelemetrySampler(
        Tick sample_cycles = 0,
        std::size_t series_capacity = TimeSeries::kDefaultCapacity);

    Tick sampleCycles() const { return period_; }
    std::uint64_t samplesTaken() const { return samples_; }

    /** Registers a level/cumulative probe, sampled verbatim. */
    TimeSeries &addSeries(std::string name, Probe probe);
    /** Registers a cumulative probe sampled as a scaled per-cycle rate:
     *  value = delta(probe) * scale / delta(tick).  scale=1000 turns a
     *  retired-instruction counter into a milli-IPC series. */
    TimeSeries &addRate(std::string name, Probe probe,
                        std::uint64_t scale = 1000);
    /** Registers @p g's level (caller keeps ownership; must outlive
     *  the sampler's last sample()). */
    TimeSeries &addGauge(std::string name, const Gauge &g);
    /** Registers @p c's running value (sim/counter.h handle). */
    template <typename CounterT>
    TimeSeries &
    addCounter(std::string name, const CounterT &c)
    {
        return addSeries(std::move(name),
                         [&c] { return c.value(); });
    }

    /** Create-or-get; references stay valid for the sampler's life. */
    Log2Histogram &histogram(const std::string &name);

    /** The hot-path gate: one comparison when it is not yet time. */
    void
    maybeSample(Tick now)
    {
        if (now < next_)
            return;
        sample(now);
    }

    /** Snapshots every registered source at @p now (forced). */
    void sample(Tick now);

    std::size_t seriesCount() const { return sources_.size(); }
    const TimeSeries *findSeries(const std::string &name) const;

    /** Detaches everything sampled so far into a blob. */
    TelemetryBlob harvest() const;

  private:
    struct Source {
        std::string name;
        Probe probe;
        bool rate = false;
        std::uint64_t scale = 1;
        std::uint64_t last_value = 0;
        Tick last_tick = 0;
        TimeSeries series;
    };

    Tick period_;
    Tick next_ = 0;
    std::uint64_t samples_ = 0;
    std::size_t series_capacity_;
    /** Deque so addSeries() references stay valid across registrations. */
    std::deque<Source> sources_;
    /** Node-based so histogram() references survive later inserts. */
    std::map<std::string, Log2Histogram> histograms_;
};

// ---- Environment gate (read by harness/runner.cc and the tools) ----

/** Default sampling period when enabled without an explicit one. */
constexpr Tick kDefaultSampleCycles = 8192;

/** $RNR_SAMPLE_CYCLES as a number, or 0 when unset/invalid/off. */
Tick telemetryEnvSampleCycles();

/** Resolves the effective period: @p requested if non-zero, else
 *  $RNR_SAMPLE_CYCLES, else kDefaultSampleCycles. */
Tick telemetrySampleCycles(Tick requested = 0);

} // namespace rnr

#endif // RNR_SIM_TIMESERIES_H
