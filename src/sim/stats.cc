#include "sim/stats.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace rnr {

std::uint64_t
StatGroup::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.value_ = 0;
}

std::string
StatGroup::dump() const
{
    // Sort explicitly rather than relying on the map's iteration order:
    // dumps must diff deterministically across runs and job counts even
    // if the backing container changes (e.g. to an unordered map).
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    rows.reserve(counters_.size());
    for (const auto &kv : counters_)
        rows.emplace_back(kv.first, kv.second.value());
    std::sort(rows.begin(), rows.end());

    std::ostringstream os;
    for (const auto &[key, value] : rows)
        os << name_ << "." << key << " = " << value << "\n";
    return os.str();
}

} // namespace rnr
