#include "sim/stats.h"

#include <sstream>

namespace rnr {

std::uint64_t
StatGroup::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.value_ = 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " = " << kv.second.value()
           << "\n";
    return os.str();
}

} // namespace rnr
