#include "sim/timeseries.h"

#include <cstdlib>

namespace rnr {

const TelemetrySeriesBlob *
TelemetryBlob::findSeries(const std::string &name) const
{
    for (const TelemetrySeriesBlob &s : series)
        if (s.name == name)
            return &s;
    return nullptr;
}

const TelemetryHistogramBlob *
TelemetryBlob::findHistogram(const std::string &name) const
{
    for (const TelemetryHistogramBlob &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

TelemetrySampler::TelemetrySampler(Tick sample_cycles,
                                   std::size_t series_capacity)
    : period_(telemetrySampleCycles(sample_cycles)),
      series_capacity_(series_capacity)
{
}

TimeSeries &
TelemetrySampler::addSeries(std::string name, Probe probe)
{
    Source s;
    s.name = std::move(name);
    s.probe = std::move(probe);
    s.series = TimeSeries(series_capacity_);
    sources_.push_back(std::move(s));
    return sources_.back().series;
}

TimeSeries &
TelemetrySampler::addRate(std::string name, Probe probe,
                          std::uint64_t scale)
{
    TimeSeries &ts = addSeries(std::move(name), std::move(probe));
    sources_.back().rate = true;
    sources_.back().scale = scale ? scale : 1;
    return ts;
}

TimeSeries &
TelemetrySampler::addGauge(std::string name, const Gauge &g)
{
    return addSeries(std::move(name), [&g] { return g.value(); });
}

Log2Histogram &
TelemetrySampler::histogram(const std::string &name)
{
    return histograms_[name];
}

void
TelemetrySampler::sample(Tick now)
{
    ++samples_;
    for (Source &s : sources_) {
        const std::uint64_t v = s.probe();
        std::uint64_t out = v;
        if (s.rate) {
            const Tick dt = now > s.last_tick ? now - s.last_tick : 0;
            const std::uint64_t dv =
                v >= s.last_value ? v - s.last_value : 0;
            out = dt ? dv * s.scale / dt : 0;
            s.last_value = v;
            s.last_tick = now;
        }
        s.series.push(now, out);
    }
    next_ = now + period_;
}

const TimeSeries *
TelemetrySampler::findSeries(const std::string &name) const
{
    for (const Source &s : sources_)
        if (s.name == name)
            return &s.series;
    return nullptr;
}

TelemetryBlob
TelemetrySampler::harvest() const
{
    TelemetryBlob blob;
    blob.sample_cycles = period_;
    blob.samples_taken = samples_;
    blob.series.reserve(sources_.size());
    for (const Source &s : sources_) {
        TelemetrySeriesBlob b;
        b.name = s.name;
        b.keep_every = s.series.keepEvery();
        b.points = s.series.points();
        blob.series.push_back(std::move(b));
    }
    blob.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        if (h.count() == 0)
            continue; // registered but never hit: nothing to report
        TelemetryHistogramBlob b;
        b.name = name;
        b.count = h.count();
        b.sum = h.sum();
        for (unsigned i = 0; i < Log2Histogram::kBuckets; ++i)
            if (h.bucket(i))
                b.buckets.emplace_back(i, h.bucket(i));
        blob.histograms.push_back(std::move(b));
    }
    return blob;
}

Tick
telemetryEnvSampleCycles()
{
    const char *p = std::getenv("RNR_SAMPLE_CYCLES");
    if (!p || !*p)
        return 0;
    const long long n = std::strtoll(p, nullptr, 10);
    return n > 0 ? static_cast<Tick>(n) : 0;
}

Tick
telemetrySampleCycles(Tick requested)
{
    if (requested)
        return requested;
    if (const Tick env = telemetryEnvSampleCycles())
        return env;
    return kDefaultSampleCycles;
}

} // namespace rnr
