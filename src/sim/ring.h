/**
 * @file
 * Fixed-capacity ring buffer for the core model's ROB/LSQ queues.
 *
 * std::deque pays a heap-backed block map and a double-branch per
 * push/pop; the core's queues are bounded by the configuration
 * (rob_size / lsq_size entries), so a power-of-two ring with masked
 * indices turns every hot-path operation into an array access.  If a
 * push ever exceeds the reserved capacity the ring grows (re-linearising
 * its contents) rather than asserting, so callers never have to prove
 * their bound.
 */
#ifndef RNR_SIM_RING_H
#define RNR_SIM_RING_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ckpt/serde.h"

namespace rnr {

/** Bounded FIFO over a power-of-two array with masked indices. */
template <typename T>
class Ring
{
  public:
    explicit Ring(std::size_t capacity) { reset(capacity); }

    /** Empties the ring and reserves room for @p capacity entries. */
    void
    reset(std::size_t capacity)
    {
        std::size_t pow2 = 1;
        while (pow2 < capacity + 1)
            pow2 <<= 1;
        slots_.assign(pow2, T());
        mask_ = pow2 - 1;
        head_ = tail_ = 0;
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return (tail_ - head_) & mask_; }

    const T &front() const { return slots_[head_]; }
    void pop_front() { head_ = (head_ + 1) & mask_; }

    void
    push_back(const T &v)
    {
        if (size() == mask_)
            grow();
        slots_[tail_] = v;
        tail_ = (tail_ + 1) & mask_;
    }

    void clear() { head_ = tail_ = 0; }

    /** i-th element from the front (0 <= i < size()); iteration. */
    const T &at(std::size_t i) const { return slots_[(head_ + i) & mask_]; }

    /** Checkpoint visitor: occupancy count + elements front-to-back.
     *  Loading refills through push_back, so capacity grows as needed
     *  and the restored ring drains identically to the original. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        std::uint64_t n = size();
        ar.scalar(n);
        if constexpr (Ar::kLoading) {
            clear();
            if (!ckpt::checkCount(ar, n, 8))
                return;
            for (std::uint64_t i = 0; i < n; ++i) {
                T v{};
                ckpt::visitValue(ar, v);
                push_back(v);
            }
        } else {
            for (std::uint64_t i = 0; i < n; ++i)
                ckpt::visitValue(ar, const_cast<T &>(at(i)));
        }
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger((mask_ + 1) * 2, T());
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            bigger[i] = at(i);
        slots_.swap(bigger);
        mask_ = slots_.size() - 1;
        head_ = 0;
        tail_ = n;
    }

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
};

} // namespace rnr

#endif // RNR_SIM_RING_H
