#include "sim/kernel.h"

#include <cstdlib>
#include <cstring>

namespace rnr {

KernelMode
kernelModeFromEnv()
{
    const char *env = std::getenv("RNR_KERNEL");
    if (env && std::strcmp(env, "legacy") == 0)
        return KernelMode::Legacy;
    return KernelMode::Batched;
}

const char *
kernelModeName(KernelMode mode)
{
    return mode == KernelMode::Legacy ? "legacy" : "batched";
}

} // namespace rnr
