/**
 * @file
 * Simulation-kernel mode selection.
 *
 * The batched kernel (the default) stages whole 4096-record trace
 * blocks via TraceSource::takeBlock() and simulates them in tight runs
 * with no per-record virtual dispatch; the legacy kernel is the seed
 * per-record done()/take() path, kept behind RNR_KERNEL=legacy for one
 * release as the bit-identical reference the parity tests compare
 * against (docs/PERF.md section 4).
 */
#ifndef RNR_SIM_KERNEL_H
#define RNR_SIM_KERNEL_H

namespace rnr {

/** Which inner loop CoreModel runs; see file docs. */
enum class KernelMode {
    Batched, ///< Block-at-a-time staging (default).
    Legacy,  ///< Seed per-record virtual-dispatch path.
};

/**
 * Mode selected by the RNR_KERNEL environment variable: "legacy" picks
 * the seed path, anything else (including unset) the batched kernel.
 * Read once per System/CoreModel construction, not per record.
 */
KernelMode kernelModeFromEnv();

/** Stable display name ("batched" / "legacy"). */
const char *kernelModeName(KernelMode mode);

} // namespace rnr

#endif // RNR_SIM_KERNEL_H
