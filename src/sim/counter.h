/**
 * @file
 * Pre-registered counter handle for the simulator's hot path.
 *
 * A Counter is a plain uint64_t cell living inside a StatGroup's
 * registry (sim/stats.h).  Components call StatGroup::declare(name)
 * once, at construction, and keep the returned reference; bumping it on
 * the event path is then a single inlined add — no string hashing, no
 * map lookup, no allocation — which is what lets per-access accounting
 * stay free relative to the cache/DRAM event being modeled (the same
 * plain-counter-array discipline ChampSim-lineage simulators use).
 *
 * Handles are stable: the registry is node-based, so a Counter's
 * address never changes once declared, and StatGroup::reset() zeroes
 * values in place without invalidating references.
 *
 * Thread-safety: a Counter inherits its owning StatGroup's contract
 * (one simulation == one thread; see sim/stats.h).  It is deliberately
 * NOT atomic so the hot path pays no RMW cost.
 */
#ifndef RNR_SIM_COUNTER_H
#define RNR_SIM_COUNTER_H

#include <cstdint>

namespace rnr {

/** One monotonically increasing (or gauge-set) 64-bit counter cell. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    /** Gauge-style absolute update (e.g. peak table sizes, maxima). */
    void set(std::uint64_t v) { value_ = v; }

    /** Raises the value to @p v when larger (running-maximum gauges). */
    void
    maxWith(std::uint64_t v)
    {
        if (v > value_)
            value_ = v;
    }

    std::uint64_t value() const { return value_; }

  private:
    friend class StatGroup; // reset() zeroes cells in place

    std::uint64_t value_ = 0;
};

} // namespace rnr

#endif // RNR_SIM_COUNTER_H
