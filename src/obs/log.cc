#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "harness/json_write.h"

namespace rnr {
namespace obs {

namespace {

enum class Sink { Stderr, File, Off };

struct LogConfig {
    Sink sink = Sink::Stderr;
    std::FILE *file = nullptr; ///< owned, never closed (process lifetime)
    std::mutex write_mu;
};

LogConfig &
config()
{
    static LogConfig cfg;
    return cfg;
}

std::once_flag g_init_once;
// Reassigned by logReconfigureForTest so tests can re-read the env;
// std::once_flag itself cannot be reset.
bool g_initialized = false;
std::mutex g_init_mu;

int
parseLevel(const char *p)
{
    if (!p || !*p)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(p, "debug") == 0)
        return static_cast<int>(LogLevel::Debug);
    if (std::strcmp(p, "info") == 0)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(p, "warn") == 0 || std::strcmp(p, "warning") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(p, "error") == 0)
        return static_cast<int>(LogLevel::Error);
    if (std::strcmp(p, "off") == 0 || std::strcmp(p, "0") == 0)
        return static_cast<int>(LogLevel::Off);
    return static_cast<int>(LogLevel::Info);
}

void
initFromEnv()
{
    LogConfig &cfg = config();
    if (cfg.file) {
        std::fclose(cfg.file);
        cfg.file = nullptr;
    }
    const char *dest = std::getenv("RNR_LOG");
    if (dest && std::strcmp(dest, "0") == 0) {
        cfg.sink = Sink::Off;
    } else if (dest && *dest) {
        // Append so daemon + inherited workers can share one file; each
        // record is a single fwrite, which O_APPEND keeps line-atomic
        // for the short lines we emit.
        cfg.file = std::fopen(dest, "a");
        cfg.sink = cfg.file ? Sink::File : Sink::Stderr;
    } else {
        cfg.sink = Sink::Stderr;
    }
    int threshold = parseLevel(std::getenv("RNR_LOG_LEVEL"));
    if (cfg.sink == Sink::Off)
        threshold = static_cast<int>(LogLevel::Off);
    detail::logThresholdRef().store(threshold, std::memory_order_relaxed);
}

void
ensureInit()
{
    std::lock_guard<std::mutex> lock(g_init_mu);
    if (!g_initialized) {
        initFromEnv();
        g_initialized = true;
    }
}

const char *
levelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    case LogLevel::Off:
        break;
    }
    return "off";
}

} // namespace

namespace detail {

std::atomic<int> &
logThresholdRef()
{
    // Start permissive: the first LogLine construction runs ensureInit()
    // which tightens this to the real threshold before anything emits.
    static std::atomic<int> threshold{static_cast<int>(LogLevel::Debug)};
    return threshold;
}

} // namespace detail

LogLevel
logThreshold()
{
    ensureInit();
    return static_cast<LogLevel>(
        detail::logThresholdRef().load(std::memory_order_relaxed));
}

std::uint64_t
logWallClockUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

namespace {
std::atomic<std::uint64_t> g_next_span{1};
thread_local std::uint64_t t_current_span = 0;
} // namespace

std::uint64_t
nextSpanId()
{
    return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
currentSpanId()
{
    return t_current_span;
}

SpanScope::SpanScope() : id_(nextSpanId()), prev_(t_current_span)
{
    t_current_span = id_;
}

SpanScope::~SpanScope()
{
    t_current_span = prev_;
}

LogLine::LogLine(LogLevel level, const char *component)
{
    ensureInit();
    active_ = logEnabled(level);
    if (!active_)
        return;
    buf_.reserve(160);
    buf_ += "{\"ts_us\": ";
    buf_ += jsonU64(logWallClockUs());
    buf_ += ", \"level\": \"";
    buf_ += levelName(level);
    buf_ += "\", \"comp\": ";
    buf_ += jsonQuote(component ? component : "");
#ifndef _WIN32
    buf_ += ", \"pid\": ";
    buf_ += jsonU64(static_cast<std::uint64_t>(::getpid()));
#endif
    if (t_current_span != 0) {
        buf_ += ", \"span\": ";
        buf_ += jsonU64(t_current_span);
    }
}

LogLine &
LogLine::msg(const std::string &text)
{
    if (active_) {
        buf_ += ", \"msg\": ";
        buf_ += jsonQuote(text);
    }
    return *this;
}

LogLine &
LogLine::kv(const char *key, const std::string &value)
{
    if (active_) {
        buf_ += ", ";
        buf_ += jsonQuote(key);
        buf_ += ": ";
        buf_ += jsonQuote(value);
    }
    return *this;
}

LogLine &
LogLine::kv(const char *key, const char *value)
{
    return kv(key, std::string(value ? value : ""));
}

LogLine &
LogLine::kv(const char *key, std::uint64_t value)
{
    if (active_) {
        buf_ += ", ";
        buf_ += jsonQuote(key);
        buf_ += ": ";
        buf_ += jsonU64(value);
    }
    return *this;
}

LogLine &
LogLine::kv(const char *key, std::int64_t value)
{
    if (active_) {
        buf_ += ", ";
        buf_ += jsonQuote(key);
        buf_ += ": ";
        buf_ += std::to_string(value);
    }
    return *this;
}

LogLine &
LogLine::kv(const char *key, int value)
{
    return kv(key, static_cast<std::int64_t>(value));
}

LogLine &
LogLine::kv(const char *key, unsigned value)
{
    return kv(key, static_cast<std::uint64_t>(value));
}

LogLine &
LogLine::kv(const char *key, double value)
{
    if (active_) {
        buf_ += ", ";
        buf_ += jsonQuote(key);
        buf_ += ": ";
        buf_ += jsonDouble(value);
    }
    return *this;
}

LogLine &
LogLine::kvBool(const char *key, bool value)
{
    if (active_) {
        buf_ += ", ";
        buf_ += jsonQuote(key);
        buf_ += ": ";
        buf_ += jsonBool(value);
    }
    return *this;
}

LogLine::~LogLine()
{
    if (!active_)
        return;
    buf_ += "}\n";
    LogConfig &cfg = config();
    std::FILE *out = cfg.sink == Sink::File ? cfg.file : stderr;
    if (cfg.sink == Sink::Off || !out)
        return;
    std::lock_guard<std::mutex> lock(cfg.write_mu);
    std::fwrite(buf_.data(), 1, buf_.size(), out);
    std::fflush(out);
}

void
logReconfigureForTest()
{
    std::lock_guard<std::mutex> lock(g_init_mu);
    initFromEnv();
    g_initialized = true;
}

} // namespace obs
} // namespace rnr
