#include "obs/metrics.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "harness/json_write.h"

namespace rnr {
namespace obs {

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

bool
MetricsRegistry::enabled()
{
    static const bool on = [] {
        const char *p = std::getenv("RNR_METRICS");
        return !(p && std::strcmp(p, "0") == 0);
    }();
    return on;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    if (!enabled())
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return slot.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    if (!enabled())
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return slot.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name)
{
    if (!enabled())
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return slot.get();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        MetricsSnapshot::Hist hs;
        hs.name = name;
        hs.count = h->count();
        hs.sum = h->sum();
        unsigned last = 0;
        std::array<std::uint64_t, Histogram::kBuckets> counts{};
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            counts[i] = h->bucketCount(i);
            if (counts[i] != 0)
                last = i;
        }
        for (unsigned i = 0; i <= last; ++i)
            hs.buckets.emplace_back(Histogram::bucketUpperBound(i),
                                    counts[i]);
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

void
MetricsRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->v_.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : gauges_)
        g->v_.store(0, std::memory_order_relaxed);
    for (auto &[name, h] : histograms_)
        h->resetForTest();
}

std::string
metricsJsonFrom(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    os << "{\"schema\": \"rnr-metrics-v1\", \"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << jsonQuote(snap.counters[i].first) << ": "
           << jsonU64(snap.counters[i].second);
    }
    os << "}, \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << jsonQuote(snap.gauges[i].first) << ": "
           << snap.gauges[i].second;
    }
    os << "}, \"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const MetricsSnapshot::Hist &h = snap.histograms[i];
        if (i > 0)
            os << ", ";
        os << jsonQuote(h.name) << ": {\"count\": " << jsonU64(h.count)
           << ", \"sum\": " << jsonU64(h.sum) << ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0)
                os << ", ";
            os << "[" << jsonU64(h.buckets[b].first) << ", "
               << jsonU64(h.buckets[b].second) << "]";
        }
        os << "]}";
    }
    os << "}}";
    return os.str();
}

std::string
metricsPrometheusTextFrom(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    for (const auto &[name, v] : snap.counters) {
        os << "# TYPE " << name << " counter\n";
        os << name << " " << jsonU64(v) << "\n";
    }
    for (const auto &[name, v] : snap.gauges) {
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << v << "\n";
    }
    for (const MetricsSnapshot::Hist &h : snap.histograms) {
        os << "# TYPE " << h.name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (const auto &[le, count] : h.buckets) {
            cumulative += count;
            os << h.name << "_bucket{le=\"" << jsonU64(le) << "\"} "
               << jsonU64(cumulative) << "\n";
        }
        os << h.name << "_bucket{le=\"+Inf\"} " << jsonU64(h.count)
           << "\n";
        os << h.name << "_sum " << jsonU64(h.sum) << "\n";
        os << h.name << "_count " << jsonU64(h.count) << "\n";
    }
    return os.str();
}

std::string
metricsJson()
{
    return metricsJsonFrom(MetricsRegistry::instance().snapshot());
}

std::string
metricsPrometheusText()
{
    return metricsPrometheusTextFrom(
        MetricsRegistry::instance().snapshot());
}

} // namespace obs
} // namespace rnr
