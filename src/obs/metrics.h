/**
 * @file
 * Process-wide metrics registry: named counters, gauges and log2
 * histograms with lock-cheap bump paths and two expositions.
 *
 * This is plumbing observability, distinct from src/harness/metrics.h
 * (which computes the *paper's* figures-of-merit: speedup, coverage,
 * accuracy).  Call sites look a metric up once and keep the pointer —
 * the registry never deletes a metric, so pointers stay valid for the
 * process lifetime and the bump itself is one relaxed atomic add:
 *
 *   static obs::Counter *hits =
 *       obs::MetricsRegistry::instance().counter("rnr_cache_hits_total");
 *   if (hits)
 *       hits->add();
 *
 * The null check is the "free when off" gate shared with event tracing:
 * RNR_METRICS=0 makes every lookup return nullptr, so disabled call
 * sites cost one predictable branch (gated with the same micro_hotpath
 * A/B the tracing and telemetry layers use).
 *
 * Expositions (docs/HARNESS.md §16 lists every metric name):
 *   metricsJson()            rnr-metrics-v1 JSON (the farm `metrics`
 *                            request embeds this object verbatim)
 *   metricsPrometheusText()  Prometheus text format, histograms as
 *                            cumulative `_bucket{le="..."}` series
 *
 * Naming follows Prometheus convention: `rnr_` prefix, `_total` suffix
 * on counters, base-unit suffix on histograms (`_us`).
 */
#ifndef RNR_OBS_METRICS_H
#define RNR_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/log2_hist.h"

namespace rnr {
namespace obs {

/** Monotonically increasing u64; bump is one relaxed atomic add. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> v_{0};
};

/** Signed instantaneous value (queue depth, in-flight cells). */
class Gauge
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    void sub(std::int64_t d)
    {
        v_.fetch_sub(d, std::memory_order_relaxed);
    }
    std::int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<std::int64_t> v_{0};
};

/**
 * Log2-bucketed histogram of u64 observations — the exact bucketing the
 * telemetry layer's latency histograms use, because both are the shared
 * core in sim/log2_hist.h.  This façade is the concurrent instantiation
 * (relaxed-atomic cells; observe() is two relaxed adds plus one bucket
 * add) plus this layer's method names.
 */
class Histogram : public BasicLog2Histogram<std::atomic<std::uint64_t>>
{
  public:
    void observe(std::uint64_t v) { record(v); }

    std::uint64_t bucketCount(unsigned i) const { return bucket(i); }

    /** Bucket for @p v: 0 for 0, otherwise bit_width(v). */
    static unsigned bucketIndex(std::uint64_t v)
    {
        return log2b::index(v);
    }

    /** Inclusive upper edge of bucket @p i (0, 1, 3, 7, ...). */
    static std::uint64_t bucketUpperBound(unsigned i)
    {
        return log2b::high(i);
    }
};

/** Point-in-time copy of every registered metric. */
struct MetricsSnapshot {
    struct Hist {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        /** (inclusive upper bound, non-cumulative count) per bucket,
         *  truncated after the last non-empty bucket. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
    };
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<Hist> histograms;
};

/**
 * The process-wide registry.  Lookup takes a mutex (do it once, keep
 * the pointer); bumps through the returned pointers are lock-free.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** False iff $RNR_METRICS is exactly "0" (checked once). */
    static bool enabled();

    /** Named metric, created on first use; nullptr when disabled. */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    Histogram *histogram(const std::string &name);

    /** Name-sorted copy; safe while other threads keep bumping. */
    MetricsSnapshot snapshot() const;

    /**
     * Zeroes every registered value (pointers stay valid).  Tests that
     * assert exact totals call this first; production never needs to.
     */
    void resetForTest();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The registry as an rnr-metrics-v1 JSON object (one line, no \n). */
std::string metricsJson();

/** The registry in Prometheus text exposition format. */
std::string metricsPrometheusText();

/** Renders @p snap as metricsJson() would (exposed for the daemon,
 *  which snapshots once and serves either format from it). */
std::string metricsJsonFrom(const MetricsSnapshot &snap);
std::string metricsPrometheusTextFrom(const MetricsSnapshot &snap);

} // namespace obs
} // namespace rnr

#endif // RNR_OBS_METRICS_H
