/**
 * @file
 * Leveled structured (JSONL) logger shared by the harness and the farm.
 *
 * Every record is one JSON object on one line, so a farm run's stderr —
 * daemon, workers and clients interleaved — stays machine-parseable:
 *
 *   {"ts_us": 1723190400123456, "level": "warn", "comp": "farm",
 *    "pid": 4242, "msg": "poisoned cell", "cell": "pagerank/urand/...",
 *    "worker": 1, "attempts": 2}
 *
 * Environment:
 *   RNR_LOG        unset = stderr, "0" = off, any other value = append
 *                  to that file path (workers inherit it, so one file
 *                  collects the whole farm; lines are written atomically
 *                  under a mutex per process and O_APPEND across them).
 *   RNR_LOG_LEVEL  debug | info | warn | error | off (default "info");
 *                  records below the threshold are dropped before any
 *                  formatting happens.
 *
 * Usage (the level check is one relaxed atomic load; everything after
 * it only runs when the record will actually be written):
 *
 *   obs::LogLine(obs::LogLevel::Warn, "farm")
 *       .msg("poisoned cell")
 *       .kv("cell", key).kv("worker", idx).kv("attempts", attempts);
 *
 * The progress reporter (docs/HARNESS.md §5) intentionally stays on its
 * own RNR_PROGRESS channel: progress is a human-facing live display,
 * not a log record.
 */
#ifndef RNR_OBS_LOG_H
#define RNR_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <string>

namespace rnr {
namespace obs {

enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

namespace detail {
/** Cached RNR_LOG_LEVEL threshold (numeric LogLevel). */
std::atomic<int> &logThresholdRef();
} // namespace detail

/** True when a record at @p level would be written. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           detail::logThresholdRef().load(std::memory_order_relaxed);
}

/** The parsed RNR_LOG_LEVEL threshold. */
LogLevel logThreshold();

/**
 * One log record, emitted by the destructor.  When the level is below
 * the threshold (or the sink is off) construction is a single atomic
 * load and every builder call is a no-op.
 */
class LogLine
{
  public:
    LogLine(LogLevel level, const char *component);
    ~LogLine();

    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;

    LogLine &msg(const std::string &text);
    LogLine &kv(const char *key, const std::string &value);
    LogLine &kv(const char *key, const char *value);
    LogLine &kv(const char *key, std::uint64_t value);
    LogLine &kv(const char *key, std::int64_t value);
    LogLine &kv(const char *key, int value);
    LogLine &kv(const char *key, unsigned value);
    LogLine &kv(const char *key, double value);
    LogLine &kvBool(const char *key, bool value);

  private:
    bool active_;
    std::string buf_;
};

/**
 * Process-unique id (monotonic from 1) for correlating the log lines
 * of one multi-step operation — the logging counterpart of the farm's
 * per-cell span ids in daemon_spans.jsonl.
 */
std::uint64_t nextSpanId();

/** The calling thread's ambient span id, 0 when none is active. */
std::uint64_t currentSpanId();

/**
 * RAII ambient span: while alive, every LogLine the calling thread
 * emits automatically carries "span": <id>, so records written by
 * lower layers (e.g. the checkpoint store dropping a corrupt snapshot)
 * correlate with the operation that triggered them (the runner's
 * quarantine-and-rerun) without threading ids through every signature.
 * Scopes nest; the enclosing span is restored on destruction.
 */
class SpanScope
{
  public:
    SpanScope();
    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    std::uint64_t id() const { return id_; }

  private:
    std::uint64_t id_;
    std::uint64_t prev_;
};

/**
 * Drops the cached RNR_LOG / RNR_LOG_LEVEL state so the next record
 * re-reads the environment.  Tests that setenv() mid-process must call
 * this; production code never needs to.
 */
void logReconfigureForTest();

/** Wall-clock microseconds since the epoch (the "ts_us" field). */
std::uint64_t logWallClockUs();

} // namespace obs
} // namespace rnr

#endif // RNR_OBS_LOG_H
