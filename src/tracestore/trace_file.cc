#include "tracestore/trace_file.h"

#include <filesystem>
#include <system_error>

#include "tracestore/trace_reader.h"

namespace rnr {

TraceIoResult
readAnyTraceFile(const std::string &path, TraceBuffer &buf)
{
    StreamingTraceReader reader;
    if (TraceIoResult r = reader.open(path); !r)
        return r;
    while (!reader.done())
        buf.push(reader.take());
    if (reader.error())
        return reader.errorResult();
    return TraceIoResult::ok();
}

TraceIoResult
readAnyTraceFileStats(const std::string &path, TraceFileStats &stats)
{
    std::uint32_t version = 0;
    if (TraceIoResult r = probeTraceFileVersion(path, version); !r)
        return r;
    if (version == kTraceFormatVersionV2)
        return readTraceFileV2Stats(path, stats);

    // v1 carries no footer: stream the records once and count.
    StreamingTraceReader reader;
    if (TraceIoResult r = reader.open(path); !r)
        return r;
    TraceFileStats s;
    bool have_mem = false;
    while (!reader.done()) {
        const TraceRecord r = reader.take();
        ++s.records;
        switch (r.kind) {
          case RecordKind::Load: ++s.loads; break;
          case RecordKind::Store: ++s.stores; break;
          case RecordKind::Control: ++s.controls; break;
        }
        s.instructions +=
            r.gap + (r.kind != RecordKind::Control ? 1 : 0);
        if (r.kind != RecordKind::Control) {
            if (!have_mem || r.addr < s.min_addr)
                s.min_addr = r.addr;
            if (!have_mem || r.addr > s.max_addr)
                s.max_addr = r.addr;
            have_mem = true;
        }
    }
    if (reader.error())
        return reader.errorResult();
    s.raw_bytes = s.records * sizeof(TraceRecord);
    stats = s;
    return TraceIoResult::ok();
}

std::uint64_t
traceFileSizeBytes(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t n = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(n);
}

} // namespace rnr
