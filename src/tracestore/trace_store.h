/**
 * @file
 * On-disk trace corpus shared by all benches and processes.
 *
 * The paper's methodology is "capture a PIN trace once, replay it
 * across many configurations".  The harness used to re-execute the
 * workload natively for *every* sweep cell even though the 6+
 * prefetcher configs of one figure row all consume the identical
 * trace.  TraceStore gives the trace corpus the same lifecycle the
 * result cache gives counters: keyed, persistent, shared, and safe.
 *
 * Keying — entries are keyed by ExperimentConfig::workloadKey(), the
 * workload half of the experiment key (app, input, window, iterations,
 * cores).  Prefetcher kind, replay-control mode and ideal_llc are
 * excluded: they change the simulation, never the emitted trace.  Entry
 * directories are content-addressed by an FNV-1a hash of the key; the
 * manifest stores the full key so a hash collision reads as a miss, not
 * as wrong data.
 *
 * Layout under rootPath() ($RNR_TRACE_DIR, default "rnr_traces"):
 *   <hash16>/manifest          text, see trace_store.cc
 *   <hash16>/it<I>.c<C>.rnrt   one v2 trace per (iteration, core)
 *
 * Discipline (mirrors harness/result_cache.h):
 *  - single-flight capture: concurrent experiments sharing a workload
 *    key block on one capture instead of each re-executing — within a
 *    process via a condition variable, and across processes (farm
 *    workers) via an advisory flock on "<root>/<hash16>.lock"
 *    (harness/file_lock.h), so N workers capture a shared workload
 *    once, not N times;
 *  - atomic publish: captures write to a process-unique temp directory
 *    renamed into place, so readers never observe a torn entry and
 *    concurrent processes race benignly (first publisher wins);
 *  - corrupt-entry tolerance: a manifest/trace that fails validation is
 *    quarantined (removed) and recaptured, never fatal;
 *  - size cap: $RNR_TRACE_CAP_MB evicts oldest-published entries after
 *    each publish (never the entry just written).
 *
 * Environment:
 *   RNR_TRACE_STORE=0     disable the store (materialised legacy path)
 *   RNR_TRACE_DIR=<path>  move the corpus (default "rnr_traces")
 *   RNR_TRACE_CAP_MB=<n>  evict oldest entries beyond n MiB (0 = off)
 */
#ifndef RNR_TRACESTORE_TRACE_STORE_H
#define RNR_TRACESTORE_TRACE_STORE_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "harness/file_lock.h"
#include "trace/trace_buffer.h"
#include "trace/trace_io.h"

namespace rnr {

/** Process-wide, thread-safe trace corpus. */
class TraceStore
{
  public:
    /** The process-wide instance used by the runner. */
    static TraceStore &instance();

    /** False iff $RNR_TRACE_STORE is exactly "0". */
    static bool enabled();

    /** Corpus directory ($RNR_TRACE_DIR or "rnr_traces"). */
    static std::string rootPath();

    /** Eviction threshold in bytes ($RNR_TRACE_CAP_MB); 0 = no cap. */
    static std::uint64_t capBytes();

    /** One validated corpus entry. */
    struct Entry {
        std::string dir;  ///< Absolute-or-relative entry directory.
        std::string key;  ///< Full workload key (from the manifest).
        unsigned iterations = 0;
        unsigned cores = 0;
        std::uint64_t records = 0;
        std::uint64_t raw_bytes = 0;    ///< In-memory record bytes.
        std::uint64_t stored_bytes = 0; ///< Compressed on-disk bytes.
        std::uint64_t input_bytes = 0;
        std::uint64_t target_bytes = 0;

        /** Path of the (iteration, core) trace file. */
        std::string tracePath(unsigned iter, unsigned core) const;
    };

    enum class Acquire {
        Hit,   ///< @p out filled; replay from the corpus.
        Owner, ///< Caller must capture (beginCapture) then publish/abort.
    };

    /**
     * Single-flight entry acquisition for @p wkey.  A valid entry
     * returns Hit immediately.  Otherwise the first caller becomes the
     * Owner (and must capture); concurrent callers block until the
     * owner publishes (then Hit) or aborts (then one waiter is
     * promoted to Owner).  A corrupt entry found here is quarantined
     * and treated as a miss.
     */
    Acquire acquire(const std::string &wkey, Entry &out);

    /**
     * In-progress capture for a workload key this caller owns (via
     * acquire() returning Owner).  Trace files are encoded into a
     * temp directory as iterations finish; publish() writes the
     * manifest, renames the directory into place, logs the
     * raw-vs-compressed ratio, applies the size cap and wakes
     * waiters.  Destruction without publish() aborts: the temp
     * directory is removed and ownership released so a waiter can
     * recapture.
     */
    class Capture
    {
      public:
        Capture(Capture &&other) noexcept;
        Capture &operator=(Capture &&) = delete;
        ~Capture();

        /** Encodes @p buf as the (iter, core) trace of this entry. */
        TraceIoResult add(unsigned iter, unsigned core,
                          const TraceBuffer &buf);

        /** Finalises and installs the entry; returns false on I/O
         *  failure (the capture is aborted, waiters are released). */
        bool publish(std::uint64_t input_bytes,
                     std::uint64_t target_bytes);

      private:
        friend class TraceStore;
        Capture(TraceStore *store, std::string wkey, unsigned iterations,
                unsigned cores);

        TraceStore *store_;
        std::string wkey_;
        std::string tmp_dir_;
        unsigned iterations_;
        unsigned cores_;
        std::uint64_t records_ = 0;
        std::uint64_t raw_bytes_ = 0;
        bool open_ = false;
        bool done_ = false;
    };

    /** Starts the capture this caller owns (after Acquire::Owner). */
    Capture beginCapture(const std::string &wkey, unsigned iterations,
                         unsigned cores);

    /** Quarantines @p wkey's entry (corrupt mid-replay): the directory
     *  is removed and the corrupt counter bumped. */
    void invalidate(const std::string &wkey);

    /** All currently valid entries (corpus report / trace_tools). */
    std::vector<Entry> listEntries();

    // -- observability (monotonic per process) --
    std::uint64_t captures() const;        ///< Entries captured+published.
    std::uint64_t hits() const;            ///< acquire() served from disk.
    std::uint64_t corruptEntries() const;  ///< Quarantined entries.
    std::uint64_t evictions() const;       ///< Entries removed by the cap.

    /** Resets counters and in-flight state (tests that repoint
     *  $RNR_TRACE_DIR mid-process). */
    void resetForTest();

  private:
    TraceStore() = default;

    /** Validates and loads the entry for @p wkey; false = miss. */
    bool openEntry(const std::string &wkey, Entry &out);
    void releaseOwnership(const std::string &wkey);
    void applyCapLocked(const std::string &keep_dir);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::set<std::string> inflight_; ///< Workload keys being captured.
    /** Cross-process capture locks held by this process's captures. */
    std::map<std::string, std::unique_ptr<FileLock>> locks_;
    std::uint64_t captures_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t corrupt_ = 0;
    std::uint64_t evictions_ = 0;
};

/** Directory name for @p wkey: 16 hex digits of FNV-1a64. */
std::string traceStoreHashName(const std::string &wkey);

} // namespace rnr

#endif // RNR_TRACESTORE_TRACE_STORE_H
