#include "tracestore/trace_reader.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace rnr {

namespace {

constexpr char kMagic[8] = {'R', 'N', 'R', 'T', 'R', 'A', 'C', 'E'};

template <typename T>
bool
get(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(in);
}

} // namespace

TraceIoResult
StreamingTraceReader::open(const std::string &path)
{
    path_ = path;
    in_.open(path, std::ios::binary);
    if (!in_)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);

    char magic[8];
    in_.read(magic, sizeof(magic));
    if (!in_)
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "file shorter than the 8-byte magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return TraceIoResult::fail(TraceIoStatus::BadMagic,
                                   "expected RNRTRACE");
    if (!get(in_, version_))
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "missing version field");
    if (version_ == kTraceFormatVersion) {
        std::uint32_t reserved = 0;
        if (!get(in_, reserved) || !get(in_, v1_remaining_))
            return TraceIoResult::fail(TraceIoStatus::Truncated,
                                       "missing v1 header fields");
    } else if (version_ == kTraceFormatVersionV2) {
        if (!get(in_, block_records_) || block_records_ == 0)
            return TraceIoResult::fail(TraceIoStatus::Truncated,
                                       "missing block size field");
    } else {
        return TraceIoResult::fail(TraceIoStatus::BadVersion,
                                   "version " + std::to_string(version_));
    }
    return TraceIoResult::ok();
}

void
StreamingTraceReader::failStream(TraceIoStatus status, std::string detail)
{
    error_ = true;
    exhausted_ = true;
    error_result_ =
        TraceIoResult::fail(status, path_ + ": " + std::move(detail));
}

bool
StreamingTraceReader::refillV1()
{
    if (v1_remaining_ == 0)
        return false;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(v1_remaining_, block_records_));
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord r;
        std::uint8_t kind = 0, ctrl = 0;
        std::uint16_t padding = 0;
        if (!get(in_, r.addr) || !get(in_, r.aux) || !get(in_, r.pc) ||
            !get(in_, r.gap) || !get(in_, kind) || !get(in_, ctrl) ||
            !get(in_, padding)) {
            failStream(TraceIoStatus::Truncated,
                       "v1 record stream ended early");
            return false;
        }
        r.kind = static_cast<RecordKind>(kind);
        r.ctrl = static_cast<RnrOp>(ctrl);
        block_.push_back(r);
    }
    v1_remaining_ -= n;
    return true;
}

bool
StreamingTraceReader::refillV2()
{
    std::uint32_t payload_bytes = 0, record_count = 0;
    if (!get(in_, payload_bytes) || !get(in_, record_count)) {
        failStream(TraceIoStatus::Truncated,
                   "block header ended early (missing terminator?)");
        return false;
    }
    if (payload_bytes == 0 && record_count == 0)
        return false; // terminator: clean end of stream
    if (record_count == 0 || record_count > block_records_) {
        failStream(TraceIoStatus::CorruptBlock,
                   "implausible record count " +
                       std::to_string(record_count));
        return false;
    }
    payload_.resize(payload_bytes);
    in_.read(reinterpret_cast<char *>(payload_.data()), payload_bytes);
    if (!in_) {
        failStream(TraceIoStatus::Truncated, "block payload ended early");
        return false;
    }
    if (!decodeBlock(payload_.data(), payload_.size(), record_count,
                     block_)) {
        failStream(TraceIoStatus::CorruptBlock,
                   "payload of " + std::to_string(payload_bytes) +
                       " bytes failed to decode");
        return false;
    }
    return true;
}

bool
StreamingTraceReader::refill()
{
    block_.clear();
    pos_ = 0;
    const bool refilled = version_ == kTraceFormatVersionV2 ? refillV2()
                                                            : refillV1();
    if (!refilled)
        exhausted_ = true;
    return refilled;
}

bool
StreamingTraceReader::done()
{
    if (pos_ < block_.size())
        return false;
    if (exhausted_)
        return true;
    return !refill();
}

TraceRecord
StreamingTraceReader::take()
{
    ++delivered_;
    return block_[pos_++];
}

const TraceRecord *
StreamingTraceReader::takeBlock(std::size_t &n)
{
    if (pos_ >= block_.size() && (exhausted_ || !refill())) {
        n = 0;
        return nullptr;
    }
    const TraceRecord *run = block_.data() + pos_;
    n = block_.size() - pos_;
    pos_ = block_.size();
    delivered_ += n;
    return run;
}

} // namespace rnr
