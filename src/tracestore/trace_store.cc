#include "tracestore/trace_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "tracestore/trace_codec.h"
#include "tracestore/trace_file.h"

#ifdef _WIN32
#include <process.h>
#define rnr_getpid _getpid
#else
#include <unistd.h>
#define rnr_getpid getpid
#endif

namespace fs = std::filesystem;

namespace rnr {

namespace {

constexpr char kManifestMagic[] = "rnr-tracestore-v1";

/** Null when RNR_METRICS=0; mirrors the store's own counters so one
 *  farm-wide scrape sees corpus activity without a TraceStore handle. */
struct StoreMetrics {
    obs::Counter *captures;
    obs::Counter *replays;
    obs::Counter *quarantines;
    obs::Counter *evictions;
    StoreMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        captures = reg.counter("rnr_tracestore_captures_total");
        replays = reg.counter("rnr_tracestore_replays_total");
        quarantines = reg.counter("rnr_tracestore_quarantines_total");
        evictions = reg.counter("rnr_tracestore_evictions_total");
    }
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics m;
    return m;
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest";
}

/** Parses an entry manifest; false on any malformation. */
bool
parseManifest(const std::string &dir, TraceStore::Entry &out)
{
    std::ifstream in(manifestPath(dir));
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != kManifestMagic)
        return false;
    TraceStore::Entry e;
    e.dir = dir;
    bool have_key = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string field;
        if (!(ls >> field))
            continue;
        if (field == "key") {
            // The key is everything after "key " (keys contain ':').
            const auto sp = line.find(' ');
            if (sp == std::string::npos)
                return false;
            e.key = line.substr(sp + 1);
            have_key = true;
        } else if (field == "iterations") {
            if (!(ls >> e.iterations))
                return false;
        } else if (field == "cores") {
            if (!(ls >> e.cores))
                return false;
        } else if (field == "records") {
            if (!(ls >> e.records))
                return false;
        } else if (field == "raw_bytes") {
            if (!(ls >> e.raw_bytes))
                return false;
        } else if (field == "stored_bytes") {
            if (!(ls >> e.stored_bytes))
                return false;
        } else if (field == "input_bytes") {
            if (!(ls >> e.input_bytes))
                return false;
        } else if (field == "target_bytes") {
            if (!(ls >> e.target_bytes))
                return false;
        } // unknown fields: forward-compatible skip
    }
    if (!have_key || e.iterations == 0 || e.cores == 0)
        return false;
    out = e;
    return true;
}

std::uint64_t
entryStoredBytes(const std::string &dir)
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &f : fs::directory_iterator(dir, ec)) {
        std::error_code fec;
        const std::uintmax_t n = fs::file_size(f.path(), fec);
        if (!fec)
            total += static_cast<std::uint64_t>(n);
    }
    return total;
}

} // namespace

std::string
traceStoreHashName(const std::string &wkey)
{
    // FNV-1a 64: stable across platforms, collision-checked via the
    // manifest's full key, so it only has to spread, not be perfect.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : wkey) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

TraceStore &
TraceStore::instance()
{
    static TraceStore store;
    return store;
}

bool
TraceStore::enabled()
{
    const char *p = std::getenv("RNR_TRACE_STORE");
    return !(p && std::string(p) == "0");
}

std::string
TraceStore::rootPath()
{
    if (const char *p = std::getenv("RNR_TRACE_DIR"); p && *p)
        return p;
    return "rnr_traces";
}

std::uint64_t
TraceStore::capBytes()
{
    const char *p = std::getenv("RNR_TRACE_CAP_MB");
    if (!p || !*p)
        return 0;
    return std::strtoull(p, nullptr, 10) * 1024ull * 1024ull;
}

std::string
TraceStore::Entry::tracePath(unsigned iter, unsigned core) const
{
    return dir + "/it" + std::to_string(iter) + ".c" +
           std::to_string(core) + ".rnrt";
}

bool
TraceStore::openEntry(const std::string &wkey, Entry &out)
{
    const std::string dir = rootPath() + "/" + traceStoreHashName(wkey);
    std::error_code ec;
    if (!fs::exists(dir, ec))
        return false;

    Entry e;
    std::string why;
    if (!parseManifest(dir, e)) {
        why = "unreadable manifest";
    } else if (e.key != wkey) {
        // Hash collision: the slot belongs to another key.  Miss, but
        // do NOT quarantine — the other key's entry is intact.
        return false;
    } else {
        std::uint64_t records = 0;
        for (unsigned it = 0; it < e.iterations && why.empty(); ++it) {
            for (unsigned c = 0; c < e.cores && why.empty(); ++c) {
                TraceFileStats stats;
                const std::string path = e.tracePath(it, c);
                if (TraceIoResult r = readAnyTraceFileStats(path, stats);
                    !r)
                    why = path + ": " + r.message();
                else
                    records += stats.records;
            }
        }
        if (why.empty() && records != e.records)
            why = "manifest claims " + std::to_string(e.records) +
                  " records, files carry " + std::to_string(records);
    }
    if (!why.empty()) {
        // Corrupt entry: quarantine and recapture instead of failing.
        obs::LogLine(obs::LogLevel::Warn, "tracestore")
            .msg("dropping corrupt entry")
            .kv("dir", dir)
            .kv("why", why);
        fs::remove_all(dir, ec);
        ++corrupt_;
        if (obs::Counter *c = storeMetrics().quarantines)
            c->add();
        return false;
    }
    out = e;
    return true;
}

namespace {

std::string
captureLockPath(const std::string &wkey)
{
    return TraceStore::rootPath() + "/" + traceStoreHashName(wkey) +
           ".lock";
}

} // namespace

TraceStore::Acquire
TraceStore::acquire(const std::string &wkey, Entry &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (openEntry(wkey, out)) {
            ++hits_;
            if (obs::Counter *c = storeMetrics().replays)
                c->add();
            return Acquire::Hit;
        }
        if (!inflight_.insert(wkey).second) {
            // A thread of this process is already capturing.
            cv_.wait(lock);
            continue;
        }
        // In-process owner; now contend with other *processes* (farm
        // workers) for the same entry through an advisory flock.
        std::error_code ec;
        fs::create_directories(rootPath(), ec);
        auto fl = std::make_unique<FileLock>(captureLockPath(wkey),
                                             FileLock::Mode::Try);
        if (fl->held()) {
            locks_[wkey] = std::move(fl);
            return Acquire::Owner;
        }
        // Another process holds the lock (or flock is unsupported
        // here).  Wait for it without wedging this process's other
        // threads: drop mu_, block on the lock, re-check from scratch.
        inflight_.erase(wkey);
        cv_.notify_all();
        lock.unlock();
        FileLock waiter(captureLockPath(wkey), FileLock::Mode::Block);
        const bool waited = waiter.held();
        waiter.release();
        lock.lock();
        if (!waited) {
            // flock unsupported (exotic fs, Windows): degrade to the
            // single-process guarantee and capture ourselves.
            if (inflight_.insert(wkey).second)
                return Acquire::Owner;
            cv_.wait(lock);
        }
        // Re-loop: the other process published (-> Hit) or aborted
        // (-> we become the owner on the next iteration).
    }
}

void
TraceStore::releaseOwnership(const std::string &wkey)
{
    bool held_flock = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        held_flock = locks_.erase(wkey) != 0; // drops the flock, if any
        inflight_.erase(wkey);
    }
    if (held_flock) {
        // We held the flock, so no other process does: the lock file is
        // ours to remove.  A waiter racing on the old inode at worst
        // captures redundantly — the same degradation as a no-flock
        // filesystem — and publish stays an atomic rename either way.
        std::error_code ec;
        fs::remove(captureLockPath(wkey), ec);
    }
    cv_.notify_all();
}

// ---- Capture ----

TraceStore::Capture::Capture(TraceStore *store, std::string wkey,
                             unsigned iterations, unsigned cores)
    : store_(store), wkey_(std::move(wkey)), iterations_(iterations),
      cores_(cores)
{
    tmp_dir_ = rootPath() + "/.tmp." + traceStoreHashName(wkey_) + "." +
               std::to_string(rnr_getpid());
    std::error_code ec;
    fs::remove_all(tmp_dir_, ec); // stale leftover from a crashed run
    fs::create_directories(tmp_dir_, ec);
    open_ = !ec;
}

TraceStore::Capture::Capture(Capture &&other) noexcept
    : store_(other.store_), wkey_(std::move(other.wkey_)),
      tmp_dir_(std::move(other.tmp_dir_)), iterations_(other.iterations_),
      cores_(other.cores_), records_(other.records_),
      raw_bytes_(other.raw_bytes_), open_(other.open_), done_(other.done_)
{
    other.done_ = true;
    other.store_ = nullptr;
}

TraceStore::Capture::~Capture()
{
    if (done_ || !store_)
        return;
    // Abort: drop the partial capture and let a waiter take over.
    std::error_code ec;
    fs::remove_all(tmp_dir_, ec);
    store_->releaseOwnership(wkey_);
}

TraceIoResult
TraceStore::Capture::add(unsigned iter, unsigned core,
                         const TraceBuffer &buf)
{
    if (!open_)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, tmp_dir_);
    const std::string path = tmp_dir_ + "/it" + std::to_string(iter) +
                             ".c" + std::to_string(core) + ".rnrt";
    records_ += buf.size();
    raw_bytes_ += buf.memoryBytes();
    return writeTraceFileV2(path, buf);
}

bool
TraceStore::Capture::publish(std::uint64_t input_bytes,
                             std::uint64_t target_bytes)
{
    done_ = true;
    std::error_code ec;
    bool ok = open_;
    std::uint64_t stored = 0;
    if (ok) {
        stored = entryStoredBytes(tmp_dir_);
        std::ofstream mf(manifestPath(tmp_dir_), std::ios::trunc);
        mf << kManifestMagic << "\n"
           << "key " << wkey_ << "\n"
           << "iterations " << iterations_ << "\n"
           << "cores " << cores_ << "\n"
           << "records " << records_ << "\n"
           << "raw_bytes " << raw_bytes_ << "\n"
           << "stored_bytes " << stored << "\n"
           << "input_bytes " << input_bytes << "\n"
           << "target_bytes " << target_bytes << "\n";
        mf.flush();
        ok = static_cast<bool>(mf);
    }

    const std::string final_dir =
        rootPath() + "/" + traceStoreHashName(wkey_);
    if (ok) {
        std::lock_guard<std::mutex> lock(store_->mu_);
        if (fs::exists(final_dir, ec)) {
            // Another process published first.  Keep theirs if it is
            // the same key; replace it on a hash collision (ours is
            // the one being asked for right now).
            Entry theirs;
            if (parseManifest(final_dir, theirs) && theirs.key == wkey_)
                fs::remove_all(tmp_dir_, ec);
            else {
                fs::remove_all(final_dir, ec);
                fs::rename(tmp_dir_, final_dir, ec);
                ok = !ec;
            }
        } else {
            fs::rename(tmp_dir_, final_dir, ec);
            ok = !ec;
        }
        if (ok) {
            ++store_->captures_;
            if (obs::Counter *c = storeMetrics().captures)
                c->add();
            store_->applyCapLocked(final_dir);
        }
    }
    if (!ok)
        fs::remove_all(tmp_dir_, ec);
    else
        obs::LogLine(obs::LogLevel::Info, "tracestore")
            .msg("captured workload")
            .kv("workload", wkey_)
            .kv("records", records_)
            .kv("raw_bytes", raw_bytes_)
            .kv("stored_bytes", stored)
            .kv("ratio", stored ? static_cast<double>(raw_bytes_) /
                                      static_cast<double>(stored)
                                : 0.0);
    store_->releaseOwnership(wkey_);
    return ok;
}

TraceStore::Capture
TraceStore::beginCapture(const std::string &wkey, unsigned iterations,
                         unsigned cores)
{
    return Capture(this, wkey, iterations, cores);
}

void
TraceStore::invalidate(const std::string &wkey)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    fs::remove_all(rootPath() + "/" + traceStoreHashName(wkey), ec);
    ++corrupt_;
    if (obs::Counter *c = storeMetrics().quarantines)
        c->add();
}

void
TraceStore::applyCapLocked(const std::string &keep_dir)
{
    const std::uint64_t cap = capBytes();
    if (cap == 0)
        return;
    struct Candidate {
        fs::file_time_type mtime;
        std::string dir;
        std::uint64_t bytes;
    };
    std::vector<Candidate> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &d : fs::directory_iterator(rootPath(), ec)) {
        if (!d.is_directory())
            continue;
        const std::string dir = d.path().string();
        if (d.path().filename().string().rfind(".tmp.", 0) == 0)
            continue;
        const std::uint64_t bytes = entryStoredBytes(dir);
        total += bytes;
        std::error_code mec;
        const auto mtime = fs::last_write_time(
            manifestPath(dir), mec);
        if (dir != keep_dir)
            entries.push_back({mec ? fs::file_time_type::min() : mtime,
                               dir, bytes});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.mtime < b.mtime;
              });
    for (const Candidate &c : entries) {
        if (total <= cap)
            break;
        fs::remove_all(c.dir, ec);
        total -= c.bytes;
        ++evictions_;
        if (obs::Counter *ec_ctr = storeMetrics().evictions)
            ec_ctr->add();
        obs::LogLine(obs::LogLevel::Info, "tracestore")
            .msg("evicted entry for RNR_TRACE_CAP_MB")
            .kv("dir", c.dir)
            .kv("bytes", c.bytes);
    }
}

std::vector<TraceStore::Entry>
TraceStore::listEntries()
{
    std::vector<Entry> out;
    std::error_code ec;
    for (const auto &d : fs::directory_iterator(rootPath(), ec)) {
        if (!d.is_directory())
            continue;
        if (d.path().filename().string().rfind(".tmp.", 0) == 0)
            continue;
        Entry e;
        if (parseManifest(d.path().string(), e))
            out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) { return a.key < b.key; });
    return out;
}

std::uint64_t
TraceStore::captures() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return captures_;
}

std::uint64_t
TraceStore::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
TraceStore::corruptEntries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return corrupt_;
}

std::uint64_t
TraceStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

void
TraceStore::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.clear();
    locks_.clear();
    captures_ = hits_ = corrupt_ = evictions_ = 0;
}

} // namespace rnr
