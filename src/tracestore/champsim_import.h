/**
 * @file
 * ChampSim trace importer.
 *
 * ChampSim distributes instruction traces as flat streams of packed
 * 64-byte `trace_instr_format` records (ip, branch flags, register ids,
 * two destination-memory and four source-memory addresses).  This
 * importer converts such a stream into our TraceRecord form so a real
 * captured trace becomes a runnable workload: `trace_tools convert`
 * writes the result as a v2 file, and workloads/trace_replay.h feeds it
 * to the simulator like any in-process workload.
 *
 * Mapping per instruction:
 *  - every nonzero source_memory slot becomes a Load record;
 *  - every nonzero destination_memory slot becomes a Store record;
 *  - `pc` is the 64-bit ip folded to 32 bits (hi ^ lo) — it only needs
 *    to identify the access site, mirroring the in-process workloads;
 *  - instructions with no memory operands accumulate into the next
 *    record's `gap`, exactly how workloads charge untraced work.
 *
 * ChampSim traces carry no RnR API calls, so the import emits none;
 * replay-side control (window sizing, start/replay) is injected by the
 * TraceFileWorkload wrapper instead.
 */
#ifndef RNR_TRACESTORE_CHAMPSIM_IMPORT_H
#define RNR_TRACESTORE_CHAMPSIM_IMPORT_H

#include <cstdint>
#include <string>

#include "trace/trace_io.h"

namespace rnr {

/** Size of one packed ChampSim instruction record. */
constexpr std::size_t kChampSimRecordBytes = 64;

/** Import summary (what `trace_tools convert` reports). */
struct ChampSimImportStats {
    std::uint64_t instructions = 0; ///< ChampSim records consumed.
    std::uint64_t loads = 0;        ///< Source-memory operands emitted.
    std::uint64_t stores = 0;       ///< Destination-memory operands.
    std::uint64_t memless = 0;      ///< Instructions folded into gaps.
};

/**
 * Appends the ChampSim trace at @p path to @p buf.  Fails with
 * Truncated when the file size is not a multiple of the 64-byte record
 * (a torn download or a compressed file that was not unpacked).
 */
TraceIoResult importChampSimTrace(const std::string &path, TraceBuffer &buf,
                                  ChampSimImportStats *stats = nullptr);

} // namespace rnr

#endif // RNR_TRACESTORE_CHAMPSIM_IMPORT_H
