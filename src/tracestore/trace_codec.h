/**
 * @file
 * v2 trace codec: per-field delta + varint encoding in fixed-size
 * indexed blocks, with a stats footer.
 *
 * The v1 format (trace/trace_io.h) spends 28 bytes per record on fields
 * that are almost entirely redundant: successive records from one
 * access site stride by one element, instruction gaps are tiny, and
 * aux is zero outside control records.  v2 exploits all three:
 *
 *  - addresses are delta-encoded *per access site* (keyed by the
 *    record's pc), so each of the workload's interleaved streams
 *    (offsets, edges, values...) compresses against itself rather than
 *    against whichever stream happened to emit last;
 *  - pc and gap are varint-encoded (pc as a delta, gap raw);
 *  - aux costs one tag bit unless nonzero.
 *
 * Records are packed into blocks of a fixed record count; all delta
 * state resets at block boundaries, so any block decodes independently
 * (this is what lets tracestore/trace_reader.h stream a file with one
 * decoded block resident).  A footer carries a per-block index plus
 * per-kind record counts, so `trace_tools stats` and the store's
 * corpus report summarise a file without decoding any payload.
 *
 * File layout (little-endian):
 *   8B magic "RNRTRACE" | u32 version=2 | u32 block_records
 *   per block:  u32 payload_bytes | u32 record_count | payload
 *   terminator: u32 0 | u32 0
 *   footer:     u64 block_count
 *               per block: u64 offset | u32 payload_bytes | u32 records
 *               TraceFileStats (9 x u64)
 *               u64 footer_offset | 8B footer magic "RNRTFTR1"
 */
#ifndef RNR_TRACESTORE_TRACE_CODEC_H
#define RNR_TRACESTORE_TRACE_CODEC_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_io.h"

namespace rnr {

/** Version tag of the compressed block format. */
constexpr std::uint32_t kTraceFormatVersionV2 = 2;

/** Records per block unless the writer overrides it. */
constexpr std::uint32_t kDefaultBlockRecords = 4096;

/** Per-kind summary carried by the v2 footer (decode-free). */
struct TraceFileStats {
    std::uint64_t records = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t controls = 0;
    std::uint64_t instructions = 0; ///< Memory ops + gaps (TraceBuffer).
    std::uint64_t min_addr = 0;     ///< Over load/store records; 0 if none.
    std::uint64_t max_addr = 0;
    std::uint64_t raw_bytes = 0;    ///< records * sizeof(TraceRecord).
};

/** One footer index entry: where a block lives and what it holds. */
struct TraceBlockIndexEntry {
    std::uint64_t offset = 0; ///< File offset of the block header.
    std::uint32_t payload_bytes = 0;
    std::uint32_t record_count = 0;
};

/**
 * Encodes @p n records into @p out (appended).  Delta state starts
 * fresh, so the result is a self-contained block payload.
 */
void encodeBlock(const TraceRecord *recs, std::size_t n,
                 std::vector<std::uint8_t> &out);

/**
 * Decodes a block payload of exactly @p expected_records records into
 * @p out (appended).  Returns false if the payload is malformed or its
 * length disagrees with the record count.
 */
bool decodeBlock(const std::uint8_t *payload, std::size_t payload_bytes,
                 std::size_t expected_records,
                 std::vector<TraceRecord> &out);

/** Writes @p buf to @p path in v2 format. */
TraceIoResult writeTraceFileV2(
    const std::string &path, const TraceBuffer &buf,
    std::uint32_t block_records = kDefaultBlockRecords);

/**
 * Reads only the v2 footer of @p path: stats and (optionally) the
 * block index, without touching any payload.
 */
TraceIoResult readTraceFileV2Stats(
    const std::string &path, TraceFileStats &stats,
    std::vector<TraceBlockIndexEntry> *index = nullptr);

/**
 * Validates the leading magic + version of an open stream positioned
 * at 0 and leaves it positioned after the v2 header.  On success fills
 * @p block_records.  Shared by the stats reader and the streaming
 * reader.
 */
TraceIoResult readV2FileHeader(std::istream &in,
                               std::uint32_t &block_records);

/**
 * Peeks the format version of @p path (1, 2, ...).  Fails with
 * BadMagic/Truncated/OpenFailed for non-trace files.
 */
TraceIoResult probeTraceFileVersion(const std::string &path,
                                    std::uint32_t &version);

} // namespace rnr

#endif // RNR_TRACESTORE_TRACE_CODEC_H
