#include "tracestore/champsim_import.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>

namespace rnr {

namespace {

/** Offsets inside one packed ChampSim record (all little-endian). */
constexpr std::size_t kIpOffset = 0;
constexpr std::size_t kDestMemOffset = 16; ///< 2 x u64
constexpr std::size_t kSrcMemOffset = 32;  ///< 4 x u64
constexpr std::size_t kDestMemSlots = 2;
constexpr std::size_t kSrcMemSlots = 4;

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
foldPc(std::uint64_t ip)
{
    return static_cast<std::uint32_t>(ip) ^
           static_cast<std::uint32_t>(ip >> 32);
}

} // namespace

TraceIoResult
importChampSimTrace(const std::string &path, TraceBuffer &buf,
                    ChampSimImportStats *stats)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);

    ChampSimImportStats s;
    std::uint64_t gap = 0;
    std::uint8_t rec[kChampSimRecordBytes];
    for (;;) {
        in.read(reinterpret_cast<char *>(rec), sizeof(rec));
        const std::streamsize got = in.gcount();
        if (got == 0)
            break;
        if (got != static_cast<std::streamsize>(sizeof(rec)))
            return TraceIoResult::fail(
                TraceIoStatus::Truncated,
                path + ": trailing " + std::to_string(got) +
                    " bytes are not a whole 64-byte ChampSim record "
                    "(still compressed?)");
        ++s.instructions;

        const std::uint32_t pc = foldPc(readU64(rec + kIpOffset));
        bool emitted = false;
        const auto emit = [&](std::uint64_t addr, bool is_load) {
            // The gap field saturates rather than wraps on the (absurd)
            // case of >4G consecutive memless instructions.
            const std::uint32_t g = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(
                    gap, std::numeric_limits<std::uint32_t>::max()));
            buf.push(is_load ? TraceRecord::load(addr, pc, g)
                             : TraceRecord::store(addr, pc, g));
            gap = 0;
            emitted = true;
        };
        for (std::size_t i = 0; i < kSrcMemSlots; ++i) {
            const std::uint64_t a = readU64(rec + kSrcMemOffset + 8 * i);
            if (a) {
                emit(a, true);
                ++s.loads;
            }
        }
        for (std::size_t i = 0; i < kDestMemSlots; ++i) {
            const std::uint64_t a = readU64(rec + kDestMemOffset + 8 * i);
            if (a) {
                emit(a, false);
                ++s.stores;
            }
        }
        if (!emitted) {
            ++gap;
            ++s.memless;
        }
    }
    if (s.instructions == 0)
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   path + ": empty trace");
    if (stats)
        *stats = s;
    return TraceIoResult::ok();
}

} // namespace rnr
