/**
 * @file
 * Streaming trace-file reader: a TraceSource over a v1 or v2 file.
 *
 * The replay path feeds each simulated core straight from disk,
 * block-by-block, so a multi-million-record iteration never has to be
 * resident in memory (the materialised std::vector<TraceBuffer> path
 * needed 32 bytes per record per core).  Peak memory per open reader is
 * one decoded block (block_records x 32 B, 128 KiB at the default) plus
 * the undecoded payload buffer.
 *
 * v2 files stream natively (each block self-describes); v1 files are
 * chunked into kDefaultBlockRecords-sized batches on the fly, so the
 * reader is format-transparent to the core model.
 *
 * Errors surface two ways: open() returns the TraceIoResult, and a
 * corrupt block discovered mid-stream flips error() — the runner treats
 * that as a corrupt store entry (quarantine + recapture) because the
 * simulation that consumed the earlier blocks is already tainted.
 */
#ifndef RNR_TRACESTORE_TRACE_READER_H
#define RNR_TRACESTORE_TRACE_READER_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_source.h"
#include "tracestore/trace_codec.h"

namespace rnr {

/** Block-at-a-time TraceSource over a trace file (v1 or v2). */
class StreamingTraceReader final : public TraceSource
{
  public:
    StreamingTraceReader() = default;

    /** Opens @p path and positions at the first record. */
    TraceIoResult open(const std::string &path);

    bool done() override;
    TraceRecord take() override;

    /** Zero-copy: the rest of the decoded block is one run. */
    const TraceRecord *takeBlock(std::size_t &n) override;

    /** Set when a block failed to decode mid-stream (see file docs). */
    bool error() const { return error_; }

    /** Details of the mid-stream failure (valid when error()). */
    const TraceIoResult &errorResult() const { return error_result_; }

    /** Records handed out so far (diagnostics). */
    std::uint64_t recordsDelivered() const { return delivered_; }

  private:
    bool refill();
    bool refillV1();
    bool refillV2();
    void failStream(TraceIoStatus status, std::string detail);

    std::ifstream in_;
    std::string path_;
    std::uint32_t version_ = 0;
    std::uint32_t block_records_ = kDefaultBlockRecords;
    std::uint64_t v1_remaining_ = 0; ///< Records left (v1 only).

    std::vector<TraceRecord> block_;
    std::size_t pos_ = 0;
    std::vector<std::uint8_t> payload_;
    std::uint64_t delivered_ = 0;
    bool exhausted_ = false;
    bool error_ = false;
    TraceIoResult error_result_;
};

} // namespace rnr

#endif // RNR_TRACESTORE_TRACE_READER_H
