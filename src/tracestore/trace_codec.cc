#include "tracestore/trace_codec.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <unordered_map>

#include "tracestore/varint.h"

namespace rnr {

namespace {

constexpr char kMagic[8] = {'R', 'N', 'R', 'T', 'R', 'A', 'C', 'E'};
constexpr char kFooterMagic[8] = {'R', 'N', 'R', 'T', 'F', 'T', 'R', '1'};

// Tag byte: bits 0-1 = RecordKind, bit 2 = aux field present.
constexpr std::uint8_t kKindMask = 0x03;
constexpr std::uint8_t kAuxFlag = 0x04;

template <typename T>
void
put(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
get(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(in);
}

/**
 * Per-block delta context.  Addresses delta against the last address
 * seen *from the same pc* (each access site is its own stream); a site's
 * first record in a block deltas against the last memory address of any
 * site, which is usually in the same region.  Everything resets at
 * block boundaries so blocks decode independently.
 */
struct DeltaState {
    std::uint32_t prev_pc = 0;
    std::uint64_t last_mem_addr = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> site_last;

    std::uint64_t
    baseFor(std::uint32_t pc) const
    {
        const auto it = site_last.find(pc);
        return it != site_last.end() ? it->second : last_mem_addr;
    }

    void
    noteMem(std::uint32_t pc, std::uint64_t addr)
    {
        site_last[pc] = addr;
        last_mem_addr = addr;
    }
};

} // namespace

void
encodeBlock(const TraceRecord *recs, std::size_t n,
            std::vector<std::uint8_t> &out)
{
    DeltaState st;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = recs[i];
        std::uint8_t tag = static_cast<std::uint8_t>(r.kind) & kKindMask;
        if (r.aux != 0)
            tag |= kAuxFlag;
        out.push_back(tag);
        if (r.kind == RecordKind::Control)
            out.push_back(static_cast<std::uint8_t>(r.ctrl));
        putVarint(out, r.gap);
        putVarint(out, zigzag(static_cast<std::int64_t>(r.pc) -
                              static_cast<std::int64_t>(st.prev_pc)));
        st.prev_pc = r.pc;
        if (r.kind == RecordKind::Control) {
            // Control payloads are region bases/sizes, unrelated to the
            // access stream: store the address verbatim.
            putVarint(out, r.addr);
        } else {
            const std::uint64_t base = st.baseFor(r.pc);
            putVarint(out, zigzag(static_cast<std::int64_t>(r.addr - base)));
            st.noteMem(r.pc, r.addr);
        }
        if (r.aux != 0)
            putVarint(out, r.aux);
    }
}

bool
decodeBlock(const std::uint8_t *payload, std::size_t payload_bytes,
            std::size_t expected_records, std::vector<TraceRecord> &out)
{
    const std::uint8_t *p = payload;
    const std::uint8_t *end = payload + payload_bytes;
    DeltaState st;
    for (std::size_t i = 0; i < expected_records; ++i) {
        if (p == end)
            return false;
        const std::uint8_t tag = *p++;
        if ((tag & ~(kKindMask | kAuxFlag)) != 0)
            return false;
        const auto kind = static_cast<RecordKind>(tag & kKindMask);
        if (kind != RecordKind::Load && kind != RecordKind::Store &&
            kind != RecordKind::Control)
            return false;

        TraceRecord r;
        r.kind = kind;
        if (kind == RecordKind::Control) {
            if (p == end)
                return false;
            r.ctrl = static_cast<RnrOp>(*p++);
        }
        std::uint64_t v = 0;
        if (!getVarint(p, end, v) || v > 0xffffffffull)
            return false;
        r.gap = static_cast<std::uint32_t>(v);
        if (!getVarint(p, end, v))
            return false;
        r.pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(st.prev_pc) + unzigzag(v));
        st.prev_pc = r.pc;
        if (!getVarint(p, end, v))
            return false;
        if (kind == RecordKind::Control) {
            r.addr = v;
        } else {
            r.addr = st.baseFor(r.pc) +
                     static_cast<std::uint64_t>(unzigzag(v));
            st.noteMem(r.pc, r.addr);
        }
        if (tag & kAuxFlag) {
            if (!getVarint(p, end, r.aux))
                return false;
        }
        out.push_back(r);
    }
    return p == end; // trailing garbage = corrupt
}

TraceIoResult
writeTraceFileV2(const std::string &path, const TraceBuffer &buf,
                 std::uint32_t block_records)
{
    if (block_records == 0)
        block_records = kDefaultBlockRecords;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);
    out.write(kMagic, sizeof(kMagic));
    put<std::uint32_t>(out, kTraceFormatVersionV2);
    put<std::uint32_t>(out, block_records);

    TraceFileStats stats;
    stats.records = buf.size();
    stats.loads = buf.loads();
    stats.stores = buf.stores();
    stats.controls = buf.controls();
    stats.instructions = buf.instructions();
    stats.raw_bytes = buf.memoryBytes();
    bool have_mem = false;

    std::vector<TraceBlockIndexEntry> index;
    std::vector<std::uint8_t> payload;
    const std::vector<TraceRecord> &recs = buf.records();
    for (std::size_t first = 0; first < recs.size();
         first += block_records) {
        const std::size_t n =
            std::min<std::size_t>(block_records, recs.size() - first);
        payload.clear();
        encodeBlock(recs.data() + first, n, payload);

        TraceBlockIndexEntry e;
        e.offset = static_cast<std::uint64_t>(out.tellp());
        e.payload_bytes = static_cast<std::uint32_t>(payload.size());
        e.record_count = static_cast<std::uint32_t>(n);
        index.push_back(e);

        put<std::uint32_t>(out, e.payload_bytes);
        put<std::uint32_t>(out, e.record_count);
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));

        for (std::size_t i = first; i < first + n; ++i) {
            const TraceRecord &r = recs[i];
            if (r.kind == RecordKind::Control)
                continue;
            if (!have_mem || r.addr < stats.min_addr)
                stats.min_addr = r.addr;
            if (!have_mem || r.addr > stats.max_addr)
                stats.max_addr = r.addr;
            have_mem = true;
        }
    }
    // Terminator lets a sequential reader stop without the footer.
    put<std::uint32_t>(out, 0);
    put<std::uint32_t>(out, 0);

    const std::uint64_t footer_offset =
        static_cast<std::uint64_t>(out.tellp());
    put<std::uint64_t>(out, static_cast<std::uint64_t>(index.size()));
    for (const TraceBlockIndexEntry &e : index) {
        put<std::uint64_t>(out, e.offset);
        put<std::uint32_t>(out, e.payload_bytes);
        put<std::uint32_t>(out, e.record_count);
    }
    put<std::uint64_t>(out, stats.records);
    put<std::uint64_t>(out, stats.loads);
    put<std::uint64_t>(out, stats.stores);
    put<std::uint64_t>(out, stats.controls);
    put<std::uint64_t>(out, stats.instructions);
    put<std::uint64_t>(out, stats.min_addr);
    put<std::uint64_t>(out, stats.max_addr);
    put<std::uint64_t>(out, stats.raw_bytes);
    put<std::uint64_t>(out, footer_offset);
    out.write(kFooterMagic, sizeof(kFooterMagic));
    out.flush();
    if (!out)
        return TraceIoResult::fail(TraceIoStatus::WriteFailed, path, errno);
    return TraceIoResult::ok();
}

TraceIoResult
readV2FileHeader(std::istream &in, std::uint32_t &block_records)
{
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "file shorter than the 8-byte magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return TraceIoResult::fail(TraceIoStatus::BadMagic,
                                   "expected RNRTRACE");
    std::uint32_t version = 0;
    if (!get(in, version))
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "missing version field");
    if (version != kTraceFormatVersionV2)
        return TraceIoResult::fail(TraceIoStatus::BadVersion,
                                   "version " + std::to_string(version));
    if (!get(in, block_records) || block_records == 0)
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "missing block size field");
    return TraceIoResult::ok();
}

TraceIoResult
probeTraceFileVersion(const std::string &path, std::uint32_t &version)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "file shorter than the 8-byte magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return TraceIoResult::fail(TraceIoStatus::BadMagic,
                                   "expected RNRTRACE");
    if (!get(in, version))
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "missing version field");
    return TraceIoResult::ok();
}

TraceIoResult
readTraceFileV2Stats(const std::string &path, TraceFileStats &stats,
                     std::vector<TraceBlockIndexEntry> *index)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);
    std::uint32_t block_records = 0;
    if (TraceIoResult r = readV2FileHeader(in, block_records); !r)
        return r;

    in.seekg(0, std::ios::end);
    const std::int64_t file_size = in.tellg();
    constexpr std::int64_t kTrailer = 16; // footer_offset + footer magic
    if (file_size < kTrailer)
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "file too short for a footer");
    in.seekg(file_size - kTrailer);
    std::uint64_t footer_offset = 0;
    char fmagic[8];
    if (!get(in, footer_offset) ||
        !in.read(fmagic, sizeof(fmagic)))
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "cannot read footer trailer");
    if (std::memcmp(fmagic, kFooterMagic, sizeof(kFooterMagic)) != 0)
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "footer magic missing (truncated "
                                   "write?)");
    if (footer_offset >= static_cast<std::uint64_t>(file_size))
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "footer offset out of range");
    in.seekg(static_cast<std::streamoff>(footer_offset));
    std::uint64_t block_count = 0;
    if (!get(in, block_count))
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "cannot read block count");
    if (block_count * 16 > static_cast<std::uint64_t>(file_size))
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "implausible block count");
    std::vector<TraceBlockIndexEntry> idx(
        static_cast<std::size_t>(block_count));
    for (TraceBlockIndexEntry &e : idx) {
        if (!get(in, e.offset) || !get(in, e.payload_bytes) ||
            !get(in, e.record_count))
            return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                       "cannot read block index");
    }
    TraceFileStats s;
    if (!get(in, s.records) || !get(in, s.loads) || !get(in, s.stores) ||
        !get(in, s.controls) || !get(in, s.instructions) ||
        !get(in, s.min_addr) || !get(in, s.max_addr) ||
        !get(in, s.raw_bytes))
        return TraceIoResult::fail(TraceIoStatus::BadFooter,
                                   "cannot read stats");
    std::uint64_t indexed_records = 0;
    for (const TraceBlockIndexEntry &e : idx)
        indexed_records += e.record_count;
    if (indexed_records != s.records)
        return TraceIoResult::fail(
            TraceIoStatus::BadFooter,
            "index covers " + std::to_string(indexed_records) +
                " records, stats claim " + std::to_string(s.records));
    stats = s;
    if (index)
        *index = std::move(idx);
    return TraceIoResult::ok();
}

} // namespace rnr
