/**
 * @file
 * LEB128 varint and zigzag primitives for the v2 trace codec.
 *
 * Trace fields are overwhelmingly small once delta-encoded (instruction
 * gaps of a few, per-site address strides of one element), so a
 * byte-oriented varint beats fixed-width fields by 4-6x.  Kept
 * header-only and allocation-free: the encoder appends to a byte vector
 * the caller owns, the decoder walks a [begin, end) range and reports
 * overruns instead of reading past the block.
 */
#ifndef RNR_TRACESTORE_VARINT_H
#define RNR_TRACESTORE_VARINT_H

#include <cstdint>
#include <vector>

namespace rnr {

/** Appends @p v to @p out as a little-endian base-128 varint. */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decodes a varint from [@p p, @p end); advances @p p past it.
 * @return false on overrun (ran off the block) or overlong encoding
 *         (more than 10 bytes), leaving @p v unspecified.
 */
inline bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (p == end)
            return false;
        const std::uint8_t byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false;
}

/** Maps a signed delta to an unsigned varint-friendly value. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzag(). */
inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace rnr

#endif // RNR_TRACESTORE_VARINT_H
