/**
 * @file
 * Version-transparent trace-file convenience API.
 *
 * trace/trace_io.h owns the uncompressed v1 format and
 * tracestore/trace_codec.h the compressed v2 format; tools and tests
 * mostly just want "read whatever this file is".  These helpers probe
 * the version field and dispatch.
 */
#ifndef RNR_TRACESTORE_TRACE_FILE_H
#define RNR_TRACESTORE_TRACE_FILE_H

#include <string>

#include "tracestore/trace_codec.h"

namespace rnr {

/** Reads a v1 or v2 trace file into @p buf (appending). */
TraceIoResult readAnyTraceFile(const std::string &path, TraceBuffer &buf);

/**
 * Summarises @p path without materialising it: v2 files answer from
 * the footer (no payload decode); v1 files are streamed once to count.
 */
TraceIoResult readAnyTraceFileStats(const std::string &path,
                                    TraceFileStats &stats);

/** Bytes @p path occupies on disk; 0 when it cannot be stat'ed. */
std::uint64_t traceFileSizeBytes(const std::string &path);

} // namespace rnr

#endif // RNR_TRACESTORE_TRACE_FILE_H
