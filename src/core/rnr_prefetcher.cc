#include "core/rnr_prefetcher.h"

#include <algorithm>
#include <string>

#include "core/rnr_hw_model.h"
#include "mem/memory_system.h"
#include "sim/attrib.h"
#include "sim/timeseries.h"

namespace rnr {

RnrPrefetcher::Counters::Counters(StatGroup &g)
    : init_calls(g.declare("init_calls")),
      record_passes(g.declare("record_passes")),
      replay_passes(g.declare("replay_passes")),
      pauses(g.declare("pauses")),
      resumes(g.declare("resumes")),
      recorded_misses(g.declare("recorded_misses")),
      offset_overflow_skipped(g.declare("offset_overflow_skipped")),
      unresolvable_entries(g.declare("unresolvable_entries")),
      metadata_tlb_lookups(g.declare("metadata_tlb_lookups")),
      pf_ontime(g.declare("pf_ontime")),
      pf_early(g.declare("pf_early")),
      pf_late(g.declare("pf_late")),
      pf_out_of_window(g.declare("pf_out_of_window"))
{
}

RnrPrefetcher::RnrPrefetcher(Options opts)
    : opts_(opts), ctr_(stats_),
      controller_(opts.control, opts.window_size ? opts.window_size : 256,
                  opts.uncontrolled_degree)
{
}

void
RnrPrefetcher::setTrace(TraceCollector *tr, std::uint16_t track)
{
    Prefetcher::setTrace(tr, track);
    tr_rnr_track_ = tr ? tr->rnrTrack() : 0;
    controller_.setTrace(tr, tr_rnr_track_,
                         static_cast<std::uint16_t>(core_));
}

void
RnrPrefetcher::setTelemetry(TelemetrySampler *tm, unsigned core)
{
    if (!tm)
        return;
    const std::string p = "rnr.core" + std::to_string(core) + ".";
    tm->addSeries(p + "n_pace",
                  [this] { return controller_.pace(); });
    tm->addSeries(p + "seq_buffer_bytes",
                  [this] { return seqBufferFillBytes(); });
    tm->addSeries(p + "div_buffer_bytes",
                  [this] { return divBufferFillBytes(); });
}

std::uint64_t
RnrPrefetcher::seqBufferFillBytes() const
{
    if (arch_.state == RnrState::Record) {
        return (seq_store_.size() - seq_flushed_) * kSeqEntryBytes;
    } else if (arch_.state == RnrState::Replay) {
        return seq_streamed_ > issue_cursor_
                   ? (seq_streamed_ - issue_cursor_) * kSeqEntryBytes
                   : 0;
    }
    return 0;
}

std::uint64_t
RnrPrefetcher::divBufferFillBytes() const
{
    if (arch_.state == RnrState::Record) {
        return (div_store_.size() - div_flushed_) * kDivEntryBytes;
    } else if (arch_.state == RnrState::Replay) {
        const std::uint64_t consumed = controller_.currentWindow();
        return div_streamed_ > consumed
                   ? (div_streamed_ - consumed) * kDivEntryBytes
                   : 0;
    }
    return 0;
}

std::uint64_t
RnrPrefetcher::contextSwitchBytes()
{
    // Single source of truth: the hardware model's register inventory
    // (the 128 B staging buffers are flushed, not saved).
    return computeRnrHwCost().context_switch_bytes;
}

bool
RnrPrefetcher::inTargetRegion(Addr vaddr) const
{
    if (arch_.state == RnrState::Idle || arch_.state == RnrState::Paused)
        return false;
    for (const auto &b : arch_.boundaries) {
        if (b.contains(vaddr))
            return true;
    }
    return false;
}

std::uint64_t
RnrPrefetcher::seqTableBytes() const
{
    return peak_seq_entries_ * kSeqEntryBytes;
}

std::uint64_t
RnrPrefetcher::divTableBytes() const
{
    return peak_div_entries_ * kDivEntryBytes;
}

void
RnrPrefetcher::onControl(const TraceRecord &rec, Tick now)
{
    switch (rec.ctrl) {
      case RnrOp::Init:
        arch_ = RnrArchState{};
        arch_.seq_table_base = rec.addr;
        arch_.div_table_base = rec.aux;
        if (opts_.window_size) {
            arch_.window_size = opts_.window_size;
        } else {
            // The double-buffered windows must leave L2 room for the
            // demand streams flowing through alongside the target
            // structure, so the default is a quarter of the L2 per
            // window (half the L2 for both buffers together).  Fig 14
            // shows a wide flat optimum, so this sits in the same
            // regime as the paper's half-L2 default.
            arch_.window_size = static_cast<std::uint32_t>(
                ms_->config().l2.size_bytes / kBlockSize / 4);
        }
        seq_store_.clear();
        div_store_.clear();
        ++ctr_.init_calls;
        break;

      case RnrOp::AddrBaseSet: {
        for (auto &b : arch_.boundaries) {
            if (!b.valid || b.base == rec.addr) {
                b.base = rec.addr;
                b.size = rec.aux;
                b.valid = true;
                b.enabled = false;
                break;
            }
        }
        break;
      }

      case RnrOp::AddrEnable:
      case RnrOp::AddrDisable:
        for (auto &b : arch_.boundaries) {
            if (b.valid && b.base == rec.addr)
                b.enabled = rec.ctrl == RnrOp::AddrEnable;
        }
        break;

      case RnrOp::WindowSizeSet:
        arch_.window_size = static_cast<std::uint32_t>(rec.addr);
        break;

      case RnrOp::Start:
        startRecording();
        emitRnr(TraceEventType::RecordStart, now);
        break;

      case RnrOp::Replay:
        if (arch_.state == RnrState::Record)
            finishRecording(now);
        startReplay(now);
        break;

      case RnrOp::Pause:
        if (arch_.state == RnrState::Record ||
            arch_.state == RnrState::Replay) {
            arch_.paused_from = arch_.state;
            arch_.state = RnrState::Paused;
            // Save architectural + internal state to memory.
            ms_->metadataWrite(arch_.seq_table_base, contextSwitchBytes(),
                               now);
            ++ctr_.pauses;
        }
        break;

      case RnrOp::Resume:
        if (arch_.state == RnrState::Paused) {
            ms_->metadataRead(arch_.seq_table_base, contextSwitchBytes(),
                              now);
            arch_.state = arch_.paused_from;
            ++ctr_.resumes;
        }
        break;

      case RnrOp::EndState:
        if (arch_.state == RnrState::Record)
            finishRecording(now);
        else if (arch_.state == RnrState::Replay)
            emitRnr(TraceEventType::ReplayStop, now);
        arch_.state = RnrState::Idle;
        break;

      case RnrOp::Free:
        stats_.set("seq_table_bytes", seqTableBytes());
        stats_.set("div_table_bytes", divTableBytes());
        seq_store_.clear();
        div_store_.clear();
        arch_ = RnrArchState{};
        break;
    }
}

void
RnrPrefetcher::startRecording()
{
    arch_.state = RnrState::Record;
    internal_ = RnrInternalState{};
    seq_store_.clear();
    div_store_.clear();
    seq_flushed_ = 0;
    div_flushed_ = 0;
    ++ctr_.record_passes;
}

void
RnrPrefetcher::finishRecording(Tick now)
{
    // Close the final (possibly partial) window so the replay controller
    // knows the read count of the tail, then flush staged metadata.
    if (seq_store_.size() % arch_.window_size != 0 ||
        (div_store_.empty() && !seq_store_.empty())) {
        div_store_.push_back(internal_.cur_struct_read);
        internal_.div_table_len =
            static_cast<std::uint32_t>(div_store_.size());
    }
    const std::uint64_t seq_pending =
        (seq_store_.size() - seq_flushed_) * kSeqEntryBytes;
    if (seq_pending) {
        ms_->metadataWrite(arch_.seq_table_base +
                               seq_flushed_ * kSeqEntryBytes,
                           seq_pending, now);
        emitRnr(TraceEventType::SeqTableWrite, now, seq_pending);
    }
    seq_flushed_ = seq_store_.size();
    const std::uint64_t div_pending =
        (div_store_.size() - div_flushed_) * kDivEntryBytes;
    if (div_pending) {
        ms_->metadataWrite(arch_.div_table_base +
                               div_flushed_ * kDivEntryBytes,
                           div_pending, now);
        emitRnr(TraceEventType::DivTableWrite, now, div_pending);
    }
    div_flushed_ = div_store_.size();

    peak_seq_entries_ = std::max<std::uint64_t>(peak_seq_entries_,
                                                seq_store_.size());
    peak_div_entries_ = std::max<std::uint64_t>(peak_div_entries_,
                                                div_store_.size());
    emitRnr(TraceEventType::RecordStop, now, seq_store_.size());
}

void
RnrPrefetcher::startReplay(Tick now)
{
    arch_.state = RnrState::Replay;
    internal_.cur_struct_read = 0;
    internal_.cur_window = 0;
    internal_.prefetch_count = 0;
    issue_cursor_ = 0;
    seq_streamed_ = 0;
    div_streamed_ = 0;
    last_window_ = 0;
    pf_status_.clear();
    controller_.setWindowSize(arch_.window_size);
    emitRnr(TraceEventType::ReplayStart, now, seq_store_.size());
    controller_.beginReplay(&div_store_, seq_store_.size(), now);
    ++ctr_.replay_passes;

    // Prime the double buffers: two sequence buffers + one division
    // buffer of metadata are fetched before prefetching begins.
    const Tick seq_done =
        ms_->metadataRead(arch_.seq_table_base, 2 * kMetaBufferBytes, now);
    const Tick div_done =
        ms_->metadataRead(arch_.div_table_base, kMetaBufferBytes, now);
    emitRnr(TraceEventType::MetaRefill, now, 2 * kMetaBufferBytes, 0,
            arch_.seq_table_base);
    emitRnr(TraceEventType::MetaRefill, now, kMetaBufferBytes, 0,
            arch_.div_table_base);
    if (const Tick done = std::max(seq_done, div_done); done > now)
        emitRnr(TraceEventType::MetaRefillStall, now, done - now, 0);
    seq_streamed_ = std::min<std::uint64_t>(
        seq_store_.size(), 2 * kMetaBufferBytes / kSeqEntryBytes);
    div_streamed_ = std::min<std::uint64_t>(
        div_store_.size(), kMetaBufferBytes / kDivEntryBytes);

    issueEntries(controller_.initialBurst(), now);
}

Addr
RnrPrefetcher::resolveEntry(const SeqEntry &entry) const
{
    const BoundaryEntry &rec_slot = arch_.boundaries[entry.slot()];
    if (rec_slot.valid && rec_slot.enabled)
        return rec_slot.base + entry.blockOffset() * kBlockSize;
    // Recorded slot is disabled: the software swapped buffers (e.g. the
    // p_curr/p_next exchange in Algorithm 1); replay against the enabled
    // boundary instead — offsets are preserved across the swap.
    for (const auto &b : arch_.boundaries) {
        if (b.valid && b.enabled)
            return b.base + entry.blockOffset() * kBlockSize;
    }
    return 0;
}

void
RnrPrefetcher::issueEntries(std::uint64_t n, Tick now)
{
    while (n > 0 && issue_cursor_ < seq_store_.size()) {
        // Stream further metadata as the cursor crosses buffer ends.
        if (issue_cursor_ >= seq_streamed_) {
            const Tick done =
                ms_->metadataRead(arch_.seq_table_base +
                                      seq_streamed_ * kSeqEntryBytes,
                                  kMetaBufferBytes, now);
            seq_streamed_ += kMetaBufferBytes / kSeqEntryBytes;
            if (tr_) {
                const auto w = static_cast<std::uint32_t>(
                    issue_cursor_ / arch_.window_size);
                emitRnr(TraceEventType::MetaRefill, now, kMetaBufferBytes,
                        w);
                // A refill completing after `now` means the replay
                // engine outran the metadata stream.
                if (done > now)
                    emitRnr(TraceEventType::MetaRefillStall, now,
                            done - now, w);
            }
        }

        const SeqEntry entry = seq_store_[issue_cursor_];
        const Addr vaddr = resolveEntry(entry);
        if (vaddr == 0) {
            ++issue_cursor_;
            --n;
            ++ctr_.unresolvable_entries;
            continue;
        }
        PrefetchIssue res =
            issuePrefetch(vaddr, now, attribRnrSite(core_));
        if (res.mshr_full)
            break; // retry from the same cursor on the next access
        const std::uint32_t window = static_cast<std::uint32_t>(
            issue_cursor_ / arch_.window_size);
        if (res.issued) {
            pf_status_[blockNumber(vaddr)] =
                {PfStatus::Pending, window, res.fill_time};
            ++internal_.prefetch_count;
            if (tr_)
                tr_->countWindowIssue(window);
        }
        ++issue_cursor_;
        --n;
    }
}

void
RnrPrefetcher::sweepOutOfWindow(Tick now)
{
    // A prefetch targeted at window w should be consumed while the
    // program is inside window w; once the current window is past it,
    // an un-demanded prefetch is "out of the window".
    const std::uint32_t cur = controller_.currentWindow();
    if (cur == last_window_)
        return;
    last_window_ = cur;
    std::erase_if(pf_status_, [&](const auto &kv) {
        if (kv.second.window + 1 < cur) {
            ++ctr_.pf_out_of_window;
            if (at_)
                at_->onRnrClass(RnrTimeliness::OutOfWindow,
                                kv.second.window);
            emitRnr(TraceEventType::PfOutOfWindow, now, 0,
                    kv.second.window, kv.first);
            return true;
        }
        return false;
    });
}

void
RnrPrefetcher::onEvict(Addr block)
{
    auto it = pf_status_.find(block);
    if (it != pf_status_.end() && it->second.status == PfStatus::Pending)
        it->second.status = PfStatus::Evicted;
}

void
RnrPrefetcher::handleRecordAccess(const L2AccessInfo &info)
{
    if (info.is_write || !info.target_struct)
        return;
    ++internal_.cur_struct_read;

    const bool true_miss = !info.hit && !info.merged;
    if (!true_miss)
        return;

    // Locate the boundary slot this miss belongs to.
    unsigned slot = 0;
    for (unsigned i = 0; i < kBoundaryEntries; ++i) {
        if (arch_.boundaries[i].contains(info.vaddr)) {
            slot = i;
            break;
        }
    }
    const std::uint64_t offset =
        (info.vaddr - arch_.boundaries[slot].base) / kBlockSize;
    if (offset > SeqEntry::kMaxOffset) {
        // The structure outgrew the entry format (2 MB at 2 B entries);
        // a full-scale implementation widens entries using the boundary
        // size registers.  Skip rather than corrupt the sequence.
        ++ctr_.offset_overflow_skipped;
        return;
    }
    seq_store_.push_back(SeqEntry::make(slot, offset));
    internal_.seq_table_len = static_cast<std::uint32_t>(seq_store_.size());
    ++ctr_.recorded_misses;

    // Window boundary: append the running read count to the division
    // table (one word per window).
    if (seq_store_.size() % arch_.window_size == 0) {
        div_store_.push_back(internal_.cur_struct_read);
        internal_.div_table_len =
            static_cast<std::uint32_t>(div_store_.size());
        if ((div_store_.size() - div_flushed_) * kDivEntryBytes >=
            kMetaBufferBytes) {
            ms_->metadataWrite(arch_.div_table_base +
                                   div_flushed_ * kDivEntryBytes,
                               kMetaBufferBytes, info.now);
            div_flushed_ = div_store_.size();
            emitRnr(TraceEventType::DivTableWrite, info.now,
                    kMetaBufferBytes);
        }
    }

    // Stage-buffer writeback: every 128 B of new sequence entries goes
    // out as two non-temporal cache-line writes.
    if ((seq_store_.size() - seq_flushed_) * kSeqEntryBytes >=
        kMetaBufferBytes) {
        const Addr wb = arch_.seq_table_base + seq_flushed_ * kSeqEntryBytes;
        // One TLB lookup per 4 MB metadata page (kept as a counter; the
        // translation is off the critical path).
        const Addr page = wb >> 22;
        if (page != internal_.cur_seq_page) {
            internal_.cur_seq_page = page;
            ++ctr_.metadata_tlb_lookups;
        }
        ms_->metadataWrite(wb, kMetaBufferBytes, info.now);
        seq_flushed_ = seq_store_.size();
        emitRnr(TraceEventType::SeqTableWrite, info.now, kMetaBufferBytes,
                0, wb);
    }
}

void
RnrPrefetcher::handleReplayAccess(const L2AccessInfo &info)
{
    if (info.is_write || !info.target_struct)
        return;
    ++internal_.cur_struct_read;

    // Classify the outcome of a prior replay prefetch of this block.
    auto it = pf_status_.find(info.block);
    if (it != pf_status_.end()) {
        if (it->second.status == PfStatus::Evicted) {
            ++ctr_.pf_early;
            if (at_)
                at_->onRnrClass(RnrTimeliness::Early,
                                it->second.window);
            emitRnr(TraceEventType::PfEarly, info.now, 0,
                    it->second.window, info.block);
        } else if (it->second.fill_time > info.now) {
            ++ctr_.pf_late;
            if (at_)
                at_->onRnrClass(RnrTimeliness::Late,
                                it->second.window);
            emitRnr(TraceEventType::PfLate, info.now, 0,
                    it->second.window, info.block);
        } else {
            ++ctr_.pf_ontime;
            if (at_)
                at_->onRnrClass(RnrTimeliness::OnTime,
                                it->second.window);
            emitRnr(TraceEventType::PfOntime, info.now, 0,
                    it->second.window, info.block);
        }
        pf_status_.erase(it);
    }

    const std::uint64_t n =
        controller_.onStructRead(internal_.cur_struct_read, issue_cursor_,
                                 info.now);
    internal_.cur_window = controller_.currentWindow();
    internal_.prefetch_pace =
        static_cast<std::uint32_t>(controller_.pace());
    sweepOutOfWindow(info.now);
    if (tr_)
        tr_->countWindowDemand(controller_.currentWindow());
    if (n > 0)
        issueEntries(n, info.now);
}

void
RnrPrefetcher::onAccess(const L2AccessInfo &info)
{
    switch (arch_.state) {
      case RnrState::Record:
        handleRecordAccess(info);
        break;
      case RnrState::Replay:
        handleReplayAccess(info);
        break;
      case RnrState::Idle:
      case RnrState::Paused:
        break;
    }
}

RNR_CKPT_DEFINE_STATE(RnrPrefetcher)

} // namespace rnr
