/**
 * @file
 * RnR software runtime — the programmer-facing API of Table I.
 *
 * Each SPMD worker owns one RnrRuntime.  Calls translate one-to-one into
 * control records in the worker's trace (the simulated core forwards them
 * to its RnR prefetcher, modelling the special-register writes).  init()
 * also allocates the Sequence/Division Table storage in the simulated
 * address space, which is the paper's "memory spaces allocated by the
 * programmer".
 *
 * A runtime constructed with enabled=false turns every call into a no-op,
 * so workloads are written once and run unchanged under every prefetcher
 * configuration.
 */
#ifndef RNR_CORE_RNR_RUNTIME_H
#define RNR_CORE_RNR_RUNTIME_H

#include <cstdint>
#include <string>

#include "trace/tracer.h"

namespace rnr {

class RnrRuntime
{
  public:
    /**
     * @param tracer the worker's trace emitter.
     * @param space shared simulated address space (metadata allocation).
     * @param tag distinguishes this worker's metadata regions by name.
     * @param enabled false turns the whole API into no-ops.
     */
    RnrRuntime(Tracer *tracer, AddressSpace *space, std::string tag,
               bool enabled = true);

    /**
     * RnR.init(): sets the ASID, allocates metadata storage sized for
     * @p expected_struct_bytes of target data, and resets the window
     * size to the hardware default.
     */
    void init(std::uint64_t expected_struct_bytes);

    /** AddrBase.set(addr, size). */
    void addrBaseSet(Addr base, std::uint64_t size);
    /** AddrBase.enable(addr). */
    void addrEnable(Addr base);
    /** AddrBase.disable(addr). */
    void addrDisable(Addr base);
    /** WindowSize.set(size) — size in cache blocks (misses per window). */
    void windowSizeSet(std::uint32_t blocks);

    /** PrefetchState.start(): enable RnR, begin recording. */
    void start();
    /** PrefetchState.replay(): replay from the top of the sequence. */
    void replay();
    /** PrefetchState.pause(). */
    void pause();
    /** PrefetchState.resume(). */
    void resume();
    /** PrefetchState.end(): disable RnR. */
    void endState();
    /** RnR.end(): free the metadata storage. */
    void end();

    bool enabled() const { return enabled_; }
    Addr seqTableBase() const { return seq_base_; }
    Addr divTableBase() const { return div_base_; }

    /** Redirects the underlying tracer (per-iteration buffers). */
    void retarget(TraceBuffer *buf);

  private:
    Tracer *tracer_;
    AddressSpace *space_;
    std::string tag_;
    bool enabled_;
    Addr seq_base_ = 0;
    Addr div_base_ = 0;
};

} // namespace rnr

#endif // RNR_CORE_RNR_RUNTIME_H
