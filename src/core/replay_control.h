/**
 * @file
 * Replay timing control (Section V-C, Fig 5).
 *
 * During replay the Division Table tells the controller how many target-
 * structure demand reads the program performed by the end of each
 * recorded window.  The controller turns the stream of observed reads
 * into a budget of sequence entries the prefetcher may have issued:
 *
 *  - None        — no timing control: a fixed burst per read (Fig 5b);
 *                  runs arbitrarily far ahead and thrashes the L2.
 *  - Window      — double buffering: entries of windows 0..w+1 may issue
 *                  while the program is inside window w (Fig 5c).
 *  - WindowPace  — additionally spreads window w+1's issues evenly over
 *                  window w's reads: one prefetch every
 *                  N_pace = StructAccessesInCurrentWindow / WindowSize
 *                  reads (Fig 5d).
 */
#ifndef RNR_CORE_REPLAY_CONTROL_H
#define RNR_CORE_REPLAY_CONTROL_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/trace_event.h"
#include "sim/types.h"

namespace rnr {

/** Ablation axis for Fig 10/11. */
enum class ReplayControlMode {
    None,
    Window,
    WindowPace,
};

/** Computes how many sequence entries may be issued at each point. */
class ReplayController
{
  public:
    /** Maximum standing in-flight lookahead of paced replay (entries). */
    static constexpr std::uint64_t kPaceLookahead = 96;
    /** Target lookahead in *demand reads*: with N_pace reads per entry,
     *  the entry lookahead is kReadLookahead / N_pace, so prefetch lead
     *  time stays roughly constant whether misses are dense (urand,
     *  pace ~3) or sparse (roadUSA, pace ~30). */
    static constexpr std::uint64_t kReadLookahead = 288;
    /** Minimum entry lookahead (covers one fill round-trip). */
    static constexpr std::uint64_t kMinLookahead = 8;

    /** Entry lookahead for the current pace. */
    std::uint64_t
    lookahead() const
    {
        const std::uint64_t by_reads =
            kReadLookahead / std::max<std::uint64_t>(1, pace_);
        return std::clamp(by_reads, kMinLookahead, kPaceLookahead);
    }

    ReplayController(ReplayControlMode mode, std::uint32_t window_size,
                     unsigned uncontrolled_degree = 4);

    /**
     * Arms the controller for a replay pass.
     * @param division cumulative struct-read counts at window ends.
     * @param total_entries sequence length to replay.
     * @param now current tick, used only to timestamp trace events.
     */
    void beginReplay(const std::vector<std::uint64_t> *division,
                     std::uint64_t total_entries, Tick now = 0);

    /** Adopts the architectural window-size register (set by RnR.init()
     *  or WindowSize.set()); must be called before beginReplay. */
    void setWindowSize(std::uint32_t window_size)
    {
        window_size_ = window_size;
    }

    /**
     * Notes one demand read of the target structure and returns how many
     * additional sequence entries the prefetcher should issue now.
     * @param issued_so_far entries the caller has already issued.
     * @param now current tick, used only to timestamp trace events.
     */
    std::uint64_t onStructRead(std::uint64_t cur_struct_read,
                               std::uint64_t issued_so_far, Tick now = 0);

    /** Entries the caller may issue immediately at replay start. */
    std::uint64_t initialBurst() const;

    std::uint32_t currentWindow() const { return cur_window_; }

    /** Current N_pace (demand reads per prefetch); 1 when unpaced. */
    std::uint64_t pace() const { return pace_; }

    ReplayControlMode mode() const { return mode_; }

    /** Routes window-open/close and pace-recompute events to @p tr's
     *  @p track (the shared "rnr" track), tagged with @p core. */
    void
    setTrace(TraceCollector *tr, std::uint16_t track, std::uint16_t core)
    {
        tr_ = tr;
        tr_track_ = track;
        tr_core_ = core;
    }

    /** Re-points the division-table reference after a state load (the
     *  raw pointer cannot travel through an archive); the owning
     *  RnrPrefetcher calls this when the restored FSM is mid-replay. */
    void rearmDivision(const std::vector<std::uint64_t> *division)
    {
        division_ = division;
    }

    /** Checkpoint visitor: replay progress registers.  mode_/degree_
     *  are constructor configuration and division_ is a pointer the
     *  owner re-arms via rearmDivision() after loading. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        if constexpr (Ar::kLoading)
            division_ = nullptr;
        ar.scalar(window_size_);
        ar.scalar(total_entries_);
        ar.scalar(cur_window_);
        ar.scalar(pace_);
        ar.scalar(reads_since_issue_);
    }

  private:
    /** Cumulative reads at the end of window @p w (handles tail). */
    std::uint64_t divisionAt(std::uint32_t w) const;

    /** Entry budget while the program executes inside window @p w. */
    std::uint64_t budget(std::uint32_t w) const;

    void recomputePace();

    ReplayControlMode mode_;
    std::uint32_t window_size_;
    unsigned degree_;

    const std::vector<std::uint64_t> *division_ = nullptr;
    std::uint64_t total_entries_ = 0;
    std::uint32_t cur_window_ = 0;
    std::uint64_t pace_ = 1;
    std::uint64_t reads_since_issue_ = 0;
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    std::uint16_t tr_track_ = 0;
    std::uint16_t tr_core_ = 0;
};

} // namespace rnr

#endif // RNR_CORE_REPLAY_CONTROL_H
