/**
 * @file
 * Analytic hardware-overhead model for the RnR prefetcher (Section VII-B).
 *
 * The paper synthesises the design with Cadence Genus on FreePDK45 and
 * scales to 22 nm, reporting < 1 KB of state and 2.7e-3 mm^2 per core
 * (< 0.01% of a 46.19 mm^2 die).  We cannot run synthesis offline, so
 * this model enumerates every register defined in rnr_state.h, sums the
 * bits, and scales area from the paper's reported density — documenting
 * exactly where each byte goes.
 */
#ifndef RNR_CORE_RNR_HW_MODEL_H
#define RNR_CORE_RNR_HW_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace rnr {

/** Per-register line item of the inventory. */
struct HwRegister {
    std::string name;
    std::uint64_t bits;
    bool architectural; ///< Software-visible vs internal.
};

/** Totals of the per-core hardware inventory. */
struct RnrHwCost {
    std::vector<HwRegister> registers;
    std::uint64_t arch_state_bits = 0;
    std::uint64_t internal_state_bits = 0;
    std::uint64_t buffer_bytes = 0;     ///< 2 x 128 B staging buffers.
    std::uint64_t total_bytes = 0;
    std::uint64_t context_switch_bytes = 0; ///< Saved across switches.
    double area_mm2_22nm = 0.0;
    double chip_fraction = 0.0;         ///< vs the paper's 46.19 mm^2.

    std::string describe() const;
};

/** Builds the inventory for the configured boundary-register count. */
RnrHwCost computeRnrHwCost();

} // namespace rnr

#endif // RNR_CORE_RNR_HW_MODEL_H
