#include "core/rnr_hw_model.h"

#include <sstream>

#include "core/rnr_state.h"

namespace rnr {

RnrHwCost
computeRnrHwCost()
{
    RnrHwCost cost;
    auto arch = [&](const std::string &n, std::uint64_t bits) {
        cost.registers.push_back({n, bits, true});
        cost.arch_state_bits += bits;
    };
    auto internal = [&](const std::string &n, std::uint64_t bits) {
        cost.registers.push_back({n, bits, false});
        cost.internal_state_bits += bits;
    };

    // Architectural state (Section IV-A).  Virtual-address registers are
    // 64 bits; structure sizes fit 48 bits; the window size register
    // holds a block count (16 bits covers the Fig 14 sweep range).
    arch("asid", 16);
    for (unsigned i = 0; i < kBoundaryEntries; ++i) {
        arch("boundary" + std::to_string(i) + ".base", 64);
        arch("boundary" + std::to_string(i) + ".size", 48);
        arch("boundary" + std::to_string(i) + ".flags", 2);
    }
    arch("seq_table_base", 64);
    arch("div_table_base", 64);
    arch("window_size", 16);
    arch("prefetch_state", 2);

    // Internal state (Section V).  Current metadata page addresses are
    // physical page numbers (one TLB lookup per 4 MB page).
    internal("cur_struct_read", 64);
    internal("seq_table_len", 32);
    internal("div_table_len", 32);
    internal("cur_seq_page_addr", 32);
    internal("cur_div_page_addr", 32);
    internal("prefetch_count", 64);
    internal("cur_window", 32);
    internal("prefetch_pace", 16);

    cost.buffer_bytes = 2 * kMetaBufferBytes;
    const std::uint64_t state_bits =
        cost.arch_state_bits + cost.internal_state_bits;
    cost.context_switch_bytes = (state_bits + 7) / 8;
    cost.total_bytes = cost.context_switch_bytes + cost.buffer_bytes;

    // Scale area from the paper's synthesis result (2.7e-3 mm^2 for
    // ~1 KB of state + control at 22 nm): mm^2 per byte of state.
    const double paper_area = 2.7e-3;
    const double paper_bytes = 1024.0;
    cost.area_mm2_22nm =
        paper_area * static_cast<double>(cost.total_bytes) / paper_bytes;
    cost.chip_fraction = cost.area_mm2_22nm / 46.19;
    return cost;
}

std::string
RnrHwCost::describe() const
{
    std::ostringstream os;
    os << "RnR per-core hardware inventory:\n";
    for (const auto &r : registers) {
        os << "  " << (r.architectural ? "[arch]    " : "[internal]")
           << " " << r.name << ": " << r.bits << " bits\n";
    }
    os << "  staging buffers: " << buffer_bytes << " B\n"
       << "  context-switch state: " << context_switch_bytes << " B\n"
       << "  total: " << total_bytes << " B (" << area_mm2_22nm
       << " mm^2 @22nm, " << chip_fraction * 100 << "% of chip)";
    return os.str();
}

} // namespace rnr
