/**
 * @file
 * The Record-and-Replay prefetcher (the paper's core contribution,
 * Sections IV and V).
 *
 * Software programs the boundary registers and drives the Fig 3 state
 * machine through control records.  In the Record state, L2 demand misses
 * to enabled target ranges are appended to the in-memory Sequence Table
 * (block offsets relative to the boundary base, staged through a 128 B
 * buffer and written back non-temporally), and every window_size misses
 * the running count of target-structure reads is appended to the Division
 * Table.  In the Replay state, the tables are streamed back through
 * double buffers and replayed as prefetches into the private L2, paced by
 * the ReplayController.
 *
 * The prefetcher also classifies every replay prefetch as on-time, early,
 * late or out-of-window (Fig 11's taxonomy) using eviction callbacks from
 * the L2.
 */
#ifndef RNR_CORE_RNR_PREFETCHER_H
#define RNR_CORE_RNR_PREFETCHER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/replay_control.h"
#include "core/rnr_state.h"
#include "prefetch/prefetcher.h"

namespace rnr {

class RnrPrefetcher : public Prefetcher
{
  public:
    struct Options {
        ReplayControlMode control = ReplayControlMode::WindowPace;
        /** 0 = derive the paper default (half the L2, in blocks). */
        std::uint32_t window_size = 0;
        unsigned uncontrolled_degree = 4;
    };

    /**
     * Pre-declared handles for every per-event RnR counter, created
     * once at construction (the paper's Fig 11 timeliness taxonomy plus
     * record/replay bookkeeping).  The harness snapshot reads these
     * directly instead of re-hashing counter names per iteration.
     */
    struct Counters {
        explicit Counters(StatGroup &g);

        Counter &init_calls;
        Counter &record_passes;
        Counter &replay_passes;
        Counter &pauses;
        Counter &resumes;
        Counter &recorded_misses;
        Counter &offset_overflow_skipped;
        Counter &unresolvable_entries;
        Counter &metadata_tlb_lookups;
        Counter &pf_ontime;
        Counter &pf_early;
        Counter &pf_late;
        Counter &pf_out_of_window;
    };

    RnrPrefetcher() : RnrPrefetcher(Options{}) {}
    explicit RnrPrefetcher(Options opts);

    void onAccess(const L2AccessInfo &info) override;
    void onEvict(Addr block) override;
    void onControl(const TraceRecord &rec, Tick now) override;
    bool inTargetRegion(Addr vaddr) const override;
    std::string name() const override { return "rnr"; }
    /** Also routes lifecycle events to the shared "rnr" track and arms
     *  the replay controller's window/pace events. */
    void setTrace(TraceCollector *tr, std::uint16_t track) override;

    /** Registers the replay-lane series: N_pace over time plus the
     *  Sequence/Division-Table staging-buffer fill levels (bytes). */
    void setTelemetry(TelemetrySampler *tm, unsigned core) override;

    /** Keeps the collector for the Fig 11 per-window classification
     *  hooks; replay prefetches themselves carry attribRnrSite(core)
     *  as their site id (sim/attrib.h). */
    void setAttrib(AttribCollector *at) override { at_ = at; }

    /** Bytes of sequence metadata currently resident in the staging /
     *  double buffers: staged-but-unflushed entries while recording,
     *  streamed-but-unissued entries while replaying, 0 otherwise. */
    std::uint64_t seqBufferFillBytes() const;
    /** Division-Table counterpart of seqBufferFillBytes(). */
    std::uint64_t divBufferFillBytes() const;

    // ---- Introspection (tests, benches, Fig 11/13) ----
    const Counters &ctr() const { return ctr_; }
    const RnrArchState &arch() const { return arch_; }
    const RnrInternalState &internals() const { return internal_; }
    std::uint64_t seqTableBytes() const;
    std::uint64_t divTableBytes() const;
    const std::vector<SeqEntry> &sequence() const { return seq_store_; }
    const std::vector<std::uint64_t> &division() const { return div_store_; }

    /** Bytes of state to save on a context switch (Section IV-C). */
    static std::uint64_t contextSwitchBytes();

    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    /**
     * Full-model checkpoint visitor: architectural registers, internal
     * registers, replay controller, both metadata tables (their memory
     * contents live here, not in the cache model), replay cursors and
     * the timeliness-classification map.  After loading mid-replay
     * state, the controller's division-table pointer is re-armed to
     * this instance's div_store_ — pointers do not travel.
     */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        arch_.visitState(ar);
        internal_.visitState(ar);
        controller_.visitState(ar);
        ar.pod(seq_store_);
        ar.pod(div_store_);
        ar.scalar(issue_cursor_);
        ar.scalar(seq_flushed_);
        ar.scalar(div_flushed_);
        ar.scalar(seq_streamed_);
        ar.scalar(div_streamed_);
        ar.scalar(last_window_);
        std::uint64_t n = pf_status_.size();
        ar.scalar(n);
        if constexpr (Ar::kLoading) {
            pf_status_.clear();
            if (!ckpt::checkCount(ar, n, 32))
                return;
            for (std::uint64_t i = 0; i < n; ++i) {
                Addr block = 0;
                ar.scalar(block);
                PfRecord rec{};
                rec.visitState(ar);
                pf_status_[block] = rec;
            }
        } else {
            for (auto &kv : pf_status_) {
                ar.scalar(kv.first);
                kv.second.visitState(ar);
            }
        }
        ar.scalar(peak_seq_entries_);
        ar.scalar(peak_div_entries_);
        if constexpr (Ar::kLoading) {
            const bool replaying =
                arch_.state == RnrState::Replay ||
                (arch_.state == RnrState::Paused &&
                 arch_.paused_from == RnrState::Replay);
            if (replaying)
                controller_.rearmDivision(&div_store_);
        }
    }

  private:
    enum class PfStatus : std::uint8_t { Pending, Evicted };

    struct PfRecord {
        PfStatus status;
        std::uint32_t window;
        Tick fill_time;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(status);
            ar.scalar(window);
            ar.scalar(fill_time);
        }
    };

    void handleRecordAccess(const L2AccessInfo &info);
    void handleReplayAccess(const L2AccessInfo &info);

    /** Issues up to @p n sequence entries starting at the cursor. */
    void issueEntries(std::uint64_t n, Tick now);

    /** Resolves a recorded entry to a prefetch address, or 0. */
    Addr resolveEntry(const SeqEntry &entry) const;

    /** Flushes staged metadata at the end of a recording pass. */
    void finishRecording(Tick now);

    void startRecording();
    void startReplay(Tick now);

    /** Retires classification records older than the active windows. */
    void sweepOutOfWindow(Tick now);

    /** Emits onto the shared "rnr" lifecycle track (no-op when off). */
    void
    emitRnr(TraceEventType type, Tick now, std::uint64_t arg = 0,
            std::uint32_t window = 0, Addr addr = 0)
    {
        if (tr_)
            tr_->emit(tr_rnr_track_, type, now, addr, arg, window,
                      static_cast<std::uint16_t>(core_));
    }

    Options opts_;
    Counters ctr_; ///< Handles into the base-class stats_.
    RnrArchState arch_;
    RnrInternalState internal_;
    ReplayController controller_;

    /** Memory contents of the two metadata tables. */
    std::vector<SeqEntry> seq_store_;
    std::vector<std::uint64_t> div_store_;

    /** Replay cursor into seq_store_ and staged-metadata bookkeeping. */
    std::uint64_t issue_cursor_ = 0;
    std::uint64_t seq_flushed_ = 0;   ///< Entries already written back.
    std::uint64_t div_flushed_ = 0;
    std::uint64_t seq_streamed_ = 0;  ///< Entries read back during replay.
    std::uint64_t div_streamed_ = 0;
    std::uint32_t last_window_ = 0;

    /** Timeliness classification of in-flight replay prefetches. */
    std::unordered_map<Addr, PfRecord> pf_status_;

    /** Peak metadata footprint across the whole run (Fig 13). */
    std::uint64_t peak_seq_entries_ = 0;
    std::uint64_t peak_div_entries_ = 0;

    std::uint16_t tr_rnr_track_ = 0; ///< Cached TraceCollector::rnrTrack().
    AttribCollector *at_ = nullptr;  ///< Null unless attribution is on.
};

} // namespace rnr

#endif // RNR_CORE_RNR_PREFETCHER_H
