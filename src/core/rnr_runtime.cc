#include "core/rnr_runtime.h"

namespace rnr {

RnrRuntime::RnrRuntime(Tracer *tracer, AddressSpace *space, std::string tag,
                       bool enabled)
    : tracer_(tracer), space_(space), tag_(std::move(tag)),
      enabled_(enabled)
{
}

void
RnrRuntime::retarget(TraceBuffer *buf)
{
    tracer_->retarget(buf);
}

void
RnrRuntime::init(std::uint64_t expected_struct_bytes)
{
    if (!enabled_)
        return;
    // Worst case the sequence table holds one 4 B entry per target block
    // touched per recording; 2x the structure size is comfortably enough
    // even for pathological miss patterns.
    const std::uint64_t seq_bytes =
        std::max<std::uint64_t>(expected_struct_bytes * 2, kPageSize);
    const std::uint64_t div_bytes =
        std::max<std::uint64_t>(expected_struct_bytes / 64, kPageSize);
    seq_base_ = space_->allocate("rnr_seq_" + tag_, seq_bytes);
    div_base_ = space_->allocate("rnr_div_" + tag_, div_bytes);
    tracer_->control(RnrOp::Init, seq_base_, div_base_);
}

void
RnrRuntime::addrBaseSet(Addr base, std::uint64_t size)
{
    if (enabled_)
        tracer_->control(RnrOp::AddrBaseSet, base, size);
}

void
RnrRuntime::addrEnable(Addr base)
{
    if (enabled_)
        tracer_->control(RnrOp::AddrEnable, base);
}

void
RnrRuntime::addrDisable(Addr base)
{
    if (enabled_)
        tracer_->control(RnrOp::AddrDisable, base);
}

void
RnrRuntime::windowSizeSet(std::uint32_t blocks)
{
    if (enabled_)
        tracer_->control(RnrOp::WindowSizeSet, blocks);
}

void
RnrRuntime::start()
{
    if (enabled_)
        tracer_->control(RnrOp::Start);
}

void
RnrRuntime::replay()
{
    if (enabled_)
        tracer_->control(RnrOp::Replay);
}

void
RnrRuntime::pause()
{
    if (enabled_)
        tracer_->control(RnrOp::Pause);
}

void
RnrRuntime::resume()
{
    if (enabled_)
        tracer_->control(RnrOp::Resume);
}

void
RnrRuntime::endState()
{
    if (enabled_)
        tracer_->control(RnrOp::EndState);
}

void
RnrRuntime::end()
{
    if (enabled_)
        tracer_->control(RnrOp::Free);
}

} // namespace rnr
