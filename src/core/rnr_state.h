/**
 * @file
 * RnR architectural state: the software-visible registers of Section IV-A
 * and the prefetch-state machine of Fig 3.
 *
 * All of this state is per core and is exactly what must be saved and
 * restored across a context switch (Section IV-C); RnrHwModel derives the
 * paper's 86.5 B save/restore figure from these definitions.
 */
#ifndef RNR_CORE_RNR_STATE_H
#define RNR_CORE_RNR_STATE_H

#include <array>
#include <cstdint>

#include "sim/types.h"

namespace rnr {

/** Fig 3: the 2-bit prefetch state register, plus which mode is paused. */
enum class RnrState : std::uint8_t {
    Idle,        ///< RnR disabled.
    Record,      ///< Recording the L2 miss sequence.
    Replay,      ///< Replaying (prefetching) the recorded sequence.
    Paused,      ///< Record or replay suspended (context switch etc.).
};

/** One boundary-checking register set: base + size + enable. */
struct BoundaryEntry {
    Addr base = 0;
    std::uint64_t size = 0;
    bool valid = false;
    bool enabled = false;

    bool
    contains(Addr a) const
    {
        return valid && enabled && a >= base && a < base + size;
    }

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(base);
        ar.scalar(size);
        ar.scalar(valid);
        ar.scalar(enabled);
    }
};

/** Number of boundary register pairs (paper footnote: two are used). */
constexpr unsigned kBoundaryEntries = 2;

/** Software-visible architectural registers (Section IV-A). */
struct RnrArchState {
    std::uint16_t asid = 0;
    std::array<BoundaryEntry, kBoundaryEntries> boundaries;
    Addr seq_table_base = 0;   ///< Virtual base of the Sequence Table.
    Addr div_table_base = 0;   ///< Virtual base of the Division Table.
    std::uint32_t window_size = 0; ///< Misses recorded per window.
    RnrState state = RnrState::Idle;
    RnrState paused_from = RnrState::Idle; ///< Mode to resume into.

    /** Exactly the register file a context switch saves (Section IV-C);
     *  the checkpoint subsystem and SwitchSchedule share this visitor. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(asid);
        for (auto &b : boundaries)
            b.visitState(ar);
        ar.scalar(seq_table_base);
        ar.scalar(div_table_base);
        ar.scalar(window_size);
        ar.scalar(state);
        ar.scalar(paused_from);
    }
};

/** Hardware-internal registers (Section V, Fig 4 right-hand box). */
struct RnrInternalState {
    std::uint64_t cur_struct_read = 0; ///< Reads hitting target ranges.
    std::uint32_t seq_table_len = 0;   ///< Entries recorded so far.
    std::uint32_t div_table_len = 0;
    Addr cur_seq_page = 0;             ///< Cached physical page addresses
    Addr cur_div_page = 0;             ///< (one TLB lookup per 4 MB page).
    std::uint64_t prefetch_count = 0;  ///< Prefetches issued this replay.
    std::uint32_t cur_window = 0;
    std::uint32_t prefetch_pace = 1;   ///< Demand reads per prefetch.

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(cur_struct_read);
        ar.scalar(seq_table_len);
        ar.scalar(div_table_len);
        ar.scalar(cur_seq_page);
        ar.scalar(cur_div_page);
        ar.scalar(prefetch_count);
        ar.scalar(cur_window);
        ar.scalar(prefetch_pace);
    }
};

/**
 * One Sequence Table entry: boundary slot + block offset.  The paper's
 * Fig 4 annotates the staging buffer as "128*2B", i.e. 2-byte entries:
 * 1 slot bit + 15 offset bits cover structures up to 2 MB at the scaled
 * cache sizes (a full-scale implementation would widen entries with the
 * boundary-size registers).
 */
struct SeqEntry {
    std::uint16_t packed = 0;

    static constexpr std::uint64_t kMaxOffset = 0x7fff;

    static SeqEntry
    make(unsigned slot, std::uint64_t block_offset)
    {
        SeqEntry e;
        e.packed = static_cast<std::uint16_t>(
            (slot << 15) | (block_offset & kMaxOffset));
        return e;
    }

    unsigned slot() const { return packed >> 15; }
    std::uint64_t blockOffset() const { return packed & kMaxOffset; }
};

/** Bytes per Sequence Table entry as stored in memory. */
constexpr unsigned kSeqEntryBytes = 2;
/** Bytes per Division Table entry (one word per window). */
constexpr unsigned kDivEntryBytes = 8;
/** Metadata staging buffer size (paper: 128 B, double-buffered). */
constexpr unsigned kMetaBufferBytes = 128;

} // namespace rnr

#endif // RNR_CORE_RNR_STATE_H
