#include "core/replay_control.h"

#include <algorithm>

namespace rnr {

ReplayController::ReplayController(ReplayControlMode mode,
                                   std::uint32_t window_size,
                                   unsigned uncontrolled_degree)
    : mode_(mode), window_size_(window_size), degree_(uncontrolled_degree)
{
}

void
ReplayController::beginReplay(const std::vector<std::uint64_t> *division,
                              std::uint64_t total_entries, Tick now)
{
    division_ = division;
    total_entries_ = total_entries;
    cur_window_ = 0;
    reads_since_issue_ = 0;
    recomputePace();
    if (tr_) {
        tr_->emit(tr_track_, TraceEventType::PaceRecompute, now, 0, pace_,
                  0, tr_core_);
        tr_->emit(tr_track_, TraceEventType::WindowOpen, now, 0, pace_, 0,
                  tr_core_);
    }
}

std::uint64_t
ReplayController::divisionAt(std::uint32_t w) const
{
    if (!division_ || division_->empty())
        return kTickMax;
    if (w < division_->size())
        return (*division_)[w];
    return kTickMax; // past the recorded windows: never advance again
}

std::uint64_t
ReplayController::budget(std::uint32_t w) const
{
    // Double buffering: while the program consumes window w, windows
    // 0..w+1 may be resident, i.e. (w+2) * window_size entries issued.
    const std::uint64_t b =
        static_cast<std::uint64_t>(w + 2) * window_size_;
    return std::min(b, total_entries_);
}

void
ReplayController::recomputePace()
{
    if (mode_ != ReplayControlMode::WindowPace || !division_ ||
        division_->empty()) {
        pace_ = 1;
        return;
    }
    // Reads the program will perform inside the current window, spread
    // over the window_size entries of the window being prefetched.
    const std::uint64_t start =
        cur_window_ == 0 ? 0 : divisionAt(cur_window_ - 1);
    const std::uint64_t end = divisionAt(cur_window_);
    if (end == kTickMax || end <= start) {
        pace_ = 1;
        return;
    }
    pace_ = std::max<std::uint64_t>(1, (end - start) / window_size_);
}

std::uint64_t
ReplayController::initialBurst() const
{
    if (mode_ == ReplayControlMode::None)
        return std::min<std::uint64_t>(degree_ * 2, total_entries_);
    if (mode_ == ReplayControlMode::WindowPace) {
        // Paced replay keeps a bounded lookahead of in-flight entries:
        // issuing smoothly at the demand rate means the standing excess
        // over consumption equals this initial burst.  Keeping it well
        // under a window stops waiting prefetches from ageing to the
        // LRU end of the L2 before their turn (Fig 11: pace control
        // trims early prefetches).
        return std::min<std::uint64_t>(
            std::min<std::uint64_t>(lookahead(), window_size_),
            total_entries_);
    }
    // Window control: windows 0 and 1 at replay start (Fig 5c issues
    // window 1's prefetches at t=0).
    return budget(0);
}

std::uint64_t
ReplayController::onStructRead(std::uint64_t cur_struct_read,
                               std::uint64_t issued_so_far, Tick now)
{
    if (mode_ == ReplayControlMode::None) {
        // Uncontrolled: a fixed burst on every read, no budget.
        return std::min<std::uint64_t>(degree_,
                                       total_entries_ - std::min(
                                           total_entries_, issued_so_far));
    }

    // Advance through completed windows.
    while (cur_struct_read >= divisionAt(cur_window_) &&
           divisionAt(cur_window_) != kTickMax) {
        if (tr_)
            tr_->emit(tr_track_, TraceEventType::WindowClose, now, 0, 0,
                      cur_window_, tr_core_);
        ++cur_window_;
        reads_since_issue_ = 0;
        recomputePace();
        if (tr_) {
            tr_->emit(tr_track_, TraceEventType::PaceRecompute, now, 0,
                      pace_, cur_window_, tr_core_);
            tr_->emit(tr_track_, TraceEventType::WindowOpen, now, 0,
                      pace_, cur_window_, tr_core_);
        }
    }

    const std::uint64_t allowed = budget(cur_window_);
    if (issued_so_far >= allowed)
        return 0;
    const std::uint64_t headroom = allowed - issued_so_far;

    if (mode_ == ReplayControlMode::Window)
        return headroom; // burst up to the budget

    // WindowPace: track consumption.  The division table gives the read
    // count at each window edge; interpolating within the current
    // window estimates how many sequence entries the program has
    // consumed, and issuance stays a bounded lookahead ahead of that.
    // This is the paper's N_pace = reads-per-window / window-size rate,
    // expressed in a drift-free form.
    const std::uint64_t start =
        cur_window_ == 0 ? 0 : divisionAt(cur_window_ - 1);
    const std::uint64_t end = divisionAt(cur_window_);
    std::uint64_t consumed =
        static_cast<std::uint64_t>(cur_window_) * window_size_;
    if (end != kTickMax && end > start && cur_struct_read > start) {
        consumed += std::min<std::uint64_t>(
            window_size_,
            (cur_struct_read - start) * window_size_ / (end - start));
    }
    const std::uint64_t target = std::min(
        std::min(consumed + lookahead(), allowed), total_entries_);
    if (issued_so_far >= target)
        return 0;
    return std::min<std::uint64_t>(target - issued_so_far, headroom);
}

} // namespace rnr
