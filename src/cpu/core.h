/**
 * @file
 * Trace-driven out-of-order core approximation.
 *
 * Models the Table II core (4-wide issue/retire, 256-entry ROB, 64-entry
 * LSQ) analytically: the ROB is a queue of (completion tick, slot count)
 * entries; issue stalls when the ROB or LSQ is full; loads overlap freely
 * inside the window (memory-level parallelism is then bounded by the L2
 * MSHR file and the DRAM queues, exactly the resources ChampSim bounds it
 * with).  Retirement is in order.
 *
 * Two inner loops exist (sim/kernel.h).  The batched kernel stages a
 * whole trace block via TraceSource::takeBlock() and executes it as a
 * tight run — one virtual call per ~4096 records instead of two per
 * record (done() + take()), with the ROB/LSQ on masked rings instead of
 * deques.  The legacy kernel is the seed per-record path, kept behind
 * RNR_KERNEL=legacy as the bit-identical reference.  Both funnel every
 * record through the same execute() body, so the timing model itself
 * has exactly one definition.  This runs at tens of millions of trace
 * records per second, which is what lets the benches sweep the paper's
 * full prefetcher x input matrix.
 */
#ifndef RNR_CPU_CORE_H
#define RNR_CPU_CORE_H

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "ckpt/serde.h"
#include "mem/memory_system.h"
#include "sim/config.h"
#include "sim/kernel.h"
#include "sim/ring.h"
#include "sim/stats.h"
#include "trace/trace_buffer.h"
#include "trace/trace_source.h"

namespace rnr {

/** One simulated core consuming one trace. */
class CoreModel
{
  public:
    CoreModel(unsigned id, const CoreConfig &cfg, MemorySystem *ms,
              KernelMode kernel = kernelModeFromEnv());

    /** Points the core at a materialised trace (wrapped in an internal
     *  BufferSource); position resets, the clock does not. */
    void setTrace(const TraceBuffer *trace);

    /**
     * Points the core at a streaming record source (caller-owned, must
     * outlive the run).  This is the replay path: a compressed trace
     * file feeds the core block-by-block with one decoded block
     * resident instead of the whole iteration.
     */
    void setSource(TraceSource *src);

    /** Routes this core's ControlRecord events to @p tr (null = off). */
    void attachTrace(TraceCollector *tr) { tr_ = tr; }

    /**
     * Registers this core's milli-IPC rate series with @p tm (null =
     * detach) and makes step() offer the local clock to the sampler —
     * the cores collectively drive the whole machine's sampling, since
     * System::drive() interleaves them in local-time order.
     */
    void attachTelemetry(TelemetrySampler *tm);

    /** True when the feed is exhausted (may decode the next block). */
    bool
    done()
    {
        if (run_pos_ < run_len_)
            return false; // staged records remain (batched kernel)
        return doneSlow();
    }

    /** Current issue-stage time; the System schedules on this. */
    Tick time() const { return issue_clock_; }

    /**
     * Tick at which everything issued so far has retired; the iteration
     * "ends" for this core at finishTime() of its last record.
     */
    Tick finishTime() const;

    /** Processes the next trace record. */
    void step();

    /**
     * Batched entry point: processes up to @p max_records records from
     * the staged run (refilling it from the source at block boundaries)
     * and returns how many were executed — 0 means the feed is
     * exhausted.  One call touches at most one staged run, so a driver
     * that wants exactly N records loops until its quota is consumed;
     * System::drive() relies on this to keep the multi-core interleave
     * identical to the legacy kernel's.
     */
    std::size_t stepRun(std::size_t max_records);

    /** Runs this core alone to completion (single-core tests). */
    void runToCompletion();

    std::uint64_t instructionsRetired() const { return instrs_; }
    unsigned id() const { return id_; }
    KernelMode kernel() const { return kernel_; }
    StatGroup &stats() { return stats_; }

    /**
     * Advances the local clock to at least @p t (barrier between
     * iterations: SPMD workers resume together).
     */
    void syncTo(Tick t);

    /**
     * Checkpoint visitor: clocks, ROB/LSQ contents and retirement
     * bookkeeping.  Checkpoints are taken at iteration boundaries, so
     * the staged batched-kernel run must be fully drained — asserted on
     * save, and cleared on load (the resumed run re-stages from its own
     * trace source, which the harness re-materialises per iteration).
     */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        assert(run_pos_ >= run_len_ && "checkpoint inside a staged run");
        if constexpr (Ar::kLoading) {
            run_ = nullptr;
            run_pos_ = run_len_ = 0;
        }
        ar.scalar(issue_clock_);
        ar.scalar(issued_this_cycle_);
        ar.scalar(retire_clock_);
        rob_.visitState(ar);
        ar.scalar(rob_slots_);
        lsq_.visitState(ar);
        ar.scalar(instrs_);
        ar.scalar(last_completion_);
        stats_.visitState(ar);
    }

  private:
    struct RobEntry {
        Tick completion = 0;
        std::uint32_t slots = 0;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(completion);
            ar.scalar(slots);
        }
    };

    /** The timing model for one record; shared by both kernels. */
    void execute(const TraceRecord &rec);

    /** Stages the source's next run; false when the feed is dry. */
    bool refillRun();

    bool doneSlow();

    void advanceIssue(std::uint64_t instr_count);
    void reserveRobSlots(std::uint32_t slots);
    void reserveLsqSlot();

    unsigned id_;
    CoreConfig cfg_;
    MemorySystem *ms_;
    KernelMode kernel_;
    TraceSource *src_ = nullptr;
    BufferSource buffer_source_; ///< Backs setTrace(); src_ points here.
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    TelemetrySampler *tm_ = nullptr; ///< Null unless sampling is enabled.

    /** Staged run (batched kernel): a view into the source's storage,
     *  valid until the next takeBlock() on that source. */
    const TraceRecord *run_ = nullptr;
    std::size_t run_pos_ = 0;
    std::size_t run_len_ = 0;

    Tick issue_clock_ = 0;
    unsigned issued_this_cycle_ = 0;
    Tick retire_clock_ = 0;

    Ring<RobEntry> rob_;
    std::uint64_t rob_slots_ = 0;
    Ring<Tick> lsq_;

    std::uint64_t instrs_ = 0;
    Tick last_completion_ = 0;
    StatGroup stats_;
    // Per-record handles, declared once (sim/counter.h).
    Counter &c_loads_;
    Counter &c_stores_;
    Counter &c_load_cycles_;
    Counter &c_l2_demand_misses_;
    Counter &c_control_records_;
    Counter &c_rob_stall_cycles_;
    Counter &c_lsq_stall_cycles_;
};

} // namespace rnr

#endif // RNR_CPU_CORE_H
