#include "cpu/core.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "sim/timeseries.h"

namespace rnr {

CoreModel::CoreModel(unsigned id, const CoreConfig &cfg, MemorySystem *ms,
                     KernelMode kernel)
    : id_(id), cfg_(cfg), ms_(ms), kernel_(kernel),
      rob_(cfg.rob_size), lsq_(cfg.lsq_size),
      stats_("core" + std::to_string(id)),
      c_loads_(stats_.declare("loads")),
      c_stores_(stats_.declare("stores")),
      c_load_cycles_(stats_.declare("load_cycles")),
      c_l2_demand_misses_(stats_.declare("l2_demand_misses")),
      c_control_records_(stats_.declare("control_records")),
      c_rob_stall_cycles_(stats_.declare("rob_stall_cycles")),
      c_lsq_stall_cycles_(stats_.declare("lsq_stall_cycles"))
{
}

void
CoreModel::setTrace(const TraceBuffer *trace)
{
    buffer_source_ = BufferSource(trace);
    src_ = trace ? &buffer_source_ : nullptr;
    run_ = nullptr;
    run_pos_ = run_len_ = 0;
}

void
CoreModel::setSource(TraceSource *src)
{
    src_ = src;
    run_ = nullptr;
    run_pos_ = run_len_ = 0;
}

void
CoreModel::attachTelemetry(TelemetrySampler *tm)
{
    tm_ = tm;
    if (tm)
        tm->addRate("core" + std::to_string(id_) + ".ipc_milli",
                    [this] { return instrs_; });
}

bool
CoreModel::refillRun()
{
    if (!src_)
        return false;
    std::size_t n = 0;
    const TraceRecord *run = src_->takeBlock(n);
    if (!run || n == 0)
        return false;
    run_ = run;
    run_pos_ = 0;
    run_len_ = n;
    return true;
}

bool
CoreModel::doneSlow()
{
    if (!src_)
        return true;
    if (kernel_ == KernelMode::Legacy)
        return src_->done();
    return !refillRun();
}

Tick
CoreModel::finishTime() const
{
    Tick t = std::max(issue_clock_, retire_clock_);
    t = std::max(t, last_completion_);
    for (std::size_t i = 0, n = rob_.size(); i < n; ++i)
        t = std::max(t, rob_.at(i).completion);
    return t;
}

void
CoreModel::syncTo(Tick t)
{
    issue_clock_ = std::max(issue_clock_, t);
    retire_clock_ = std::max(retire_clock_, t);
    issued_this_cycle_ = 0;
    rob_.clear();
    rob_slots_ = 0;
    lsq_.clear();
}

void
CoreModel::advanceIssue(std::uint64_t instr_count)
{
    // Issue at most issue_width instructions per cycle.
    const std::uint64_t total = issued_this_cycle_ + instr_count;
    issue_clock_ += total / cfg_.issue_width;
    issued_this_cycle_ = static_cast<unsigned>(total % cfg_.issue_width);
}

void
CoreModel::reserveRobSlots(std::uint32_t slots)
{
    while (rob_slots_ + slots > cfg_.rob_size && !rob_.empty()) {
        const RobEntry head = rob_.front();
        rob_.pop_front();
        rob_slots_ -= head.slots;
        // In-order retirement: the head's completion gates retire time,
        // then retiring its slots consumes retire bandwidth.
        retire_clock_ = std::max(retire_clock_, head.completion) +
                        head.slots / cfg_.retire_width;
        if (retire_clock_ > issue_clock_) {
            c_rob_stall_cycles_ += retire_clock_ - issue_clock_;
            issue_clock_ = retire_clock_;
            issued_this_cycle_ = 0;
        }
    }
}

void
CoreModel::reserveLsqSlot()
{
    while (!lsq_.empty() && lsq_.front() <= issue_clock_)
        lsq_.pop_front();
    if (lsq_.size() >= cfg_.lsq_size) {
        const Tick wait = lsq_.front();
        if (wait > issue_clock_) {
            c_lsq_stall_cycles_ += wait - issue_clock_;
            issue_clock_ = wait;
            issued_this_cycle_ = 0;
        }
        while (!lsq_.empty() && lsq_.front() <= issue_clock_)
            lsq_.pop_front();
    }
}

void
CoreModel::execute(const TraceRecord &rec)
{
    if (rec.gap) {
        // Plain instructions: charge issue bandwidth and ROB slots; they
        // complete quickly so they are folded into the next memory op's
        // ROB entry rather than tracked one by one.
        advanceIssue(rec.gap);
        instrs_ += rec.gap;
    }

    if (rec.kind == RecordKind::Control) {
        // An RnR API call is a handful of instructions writing special
        // registers; charge a small fixed cost.
        advanceIssue(2);
        instrs_ += 2;
        ms_->control(id_, rec, issue_clock_);
        ++c_control_records_;
        if (tr_)
            tr_->emit(static_cast<std::uint16_t>(id_),
                      TraceEventType::ControlRecord, issue_clock_,
                      rec.addr, static_cast<std::uint64_t>(rec.ctrl), 0,
                      static_cast<std::uint16_t>(id_));
        return;
    }

    const bool is_store = rec.kind == RecordKind::Store;
    reserveRobSlots(rec.gap + 1);
    reserveLsqSlot();
    advanceIssue(1);
    instrs_ += 1;

    const DemandResult res =
        ms_->demandAccess(id_, rec.addr, is_store, rec.pc, issue_clock_);

    ++(is_store ? c_stores_ : c_loads_);
    if (!is_store)
        c_load_cycles_ += res.done - issue_clock_;
    if (res.l2_miss)
        ++c_l2_demand_misses_;

    // Stores complete from the core's perspective once issued (the write
    // buffer hides their latency); loads hold their ROB/LSQ entries until
    // data returns.
    const Tick completion = is_store ? issue_clock_ + 1 : res.done;
    rob_.push_back({completion, rec.gap + 1});
    rob_slots_ += rec.gap + 1;
    lsq_.push_back(completion);
    last_completion_ = std::max(last_completion_, completion);
}

void
CoreModel::step()
{
    assert(!done());
    if (kernel_ == KernelMode::Legacy) {
        if (tm_)
            tm_->maybeSample(issue_clock_);
        execute(src_->take());
        return;
    }
    if (run_pos_ >= run_len_ && !refillRun())
        return; // contract violation (step() past done()); be inert
    if (tm_)
        tm_->maybeSample(issue_clock_);
    execute(run_[run_pos_++]);
}

std::size_t
CoreModel::stepRun(std::size_t max_records)
{
    if (kernel_ == KernelMode::Legacy) {
        std::size_t i = 0;
        for (; i < max_records && !done(); ++i)
            step();
        return i;
    }
    if (run_pos_ >= run_len_ && !refillRun())
        return 0;
    const std::size_t n = std::min(max_records, run_len_ - run_pos_);
    const TraceRecord *rec = run_ + run_pos_;
    run_pos_ += n;
    if (tm_) {
        // Sampling stays at the same logical point as step(): once per
        // record, before it executes, at the pre-record clock.
        for (std::size_t i = 0; i < n; ++i) {
            tm_->maybeSample(issue_clock_);
            execute(rec[i]);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i)
            execute(rec[i]);
    }
    return n;
}

void
CoreModel::runToCompletion()
{
    while (stepRun(static_cast<std::size_t>(-1)) != 0) {
    }
}

} // namespace rnr
