#include "cpu/system.h"

#include <algorithm>
#include <cassert>

namespace rnr {

System::System(const MachineConfig &cfg, KernelMode kernel)
    : cfg_(cfg), mem_(cfg)
{
    for (unsigned c = 0; c < cfg.cores; ++c)
        cores_.push_back(
            std::make_unique<CoreModel>(c, cfg.core, &mem_, kernel));
}

IterationResult
System::run(const std::vector<const TraceBuffer *> &traces)
{
    assert(traces.size() == cores_.size());
    // setTrace wraps each buffer in the core's own BufferSource, so the
    // feed outlives this call (tests poke core(i).done() afterwards).
    for (unsigned c = 0; c < cores_.size(); ++c)
        cores_[c]->setTrace(traces[c]);
    return drive();
}

IterationResult
System::runStreaming(const std::vector<TraceSource *> &sources)
{
    assert(sources.size() == cores_.size());
    for (unsigned c = 0; c < cores_.size(); ++c)
        cores_[c]->setSource(sources[c]);
    return drive();
}

IterationResult
System::drive()
{
    IterationResult result;
    Tick barrier = 0;
    for (auto &core : cores_)
        barrier = std::max(barrier, core->finishTime());
    for (auto &core : cores_)
        core->syncTo(barrier);
    result.start = barrier;

    std::uint64_t instrs_before = 0;
    for (auto &core : cores_)
        instrs_before += core->instructionsRetired();

    if (cores_.size() == 1) {
        // One core needs no interleaving: drain it run by run.  Under
        // the batched kernel each stepRun() call executes a whole
        // staged block with no scheduling checks in between.
        CoreModel &core = *cores_[0];
        while (core.stepRun(static_cast<std::size_t>(-1)) != 0) {
        }
    } else {
        // Interleave by local time.  Batching a few records per pick
        // keeps scheduling overhead low without letting any core run
        // far ahead.  The quota loop below consumes exactly kBatch
        // records per pick even when a staged run ends mid-quantum, so
        // the interleave — and therefore the shared LLC/DRAM request
        // order — is identical under both kernels.
        constexpr std::size_t kBatch = 8;
        for (;;) {
            CoreModel *next = nullptr;
            for (auto &core : cores_) {
                if (core->done())
                    continue;
                if (!next || core->time() < next->time())
                    next = core.get();
            }
            if (!next)
                break;
            std::size_t left = kBatch;
            while (left != 0) {
                const std::size_t did = next->stepRun(left);
                if (did == 0)
                    break;
                left -= did;
            }
        }
    }

    Tick end = barrier;
    std::uint64_t instrs_after = 0;
    for (auto &core : cores_) {
        end = std::max(end, core->finishTime());
        instrs_after += core->instructionsRetired();
    }
    result.end = end;
    result.instructions = instrs_after - instrs_before;
    return result;
}

} // namespace rnr
