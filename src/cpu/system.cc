#include "cpu/system.h"

#include <algorithm>
#include <cassert>

namespace rnr {

System::System(const MachineConfig &cfg) : cfg_(cfg), mem_(cfg)
{
    for (unsigned c = 0; c < cfg.cores; ++c)
        cores_.push_back(std::make_unique<CoreModel>(c, cfg.core, &mem_));
}

IterationResult
System::run(const std::vector<const TraceBuffer *> &traces)
{
    assert(traces.size() == cores_.size());
    // setTrace wraps each buffer in the core's own BufferSource, so the
    // feed outlives this call (tests poke core(i).done() afterwards).
    for (unsigned c = 0; c < cores_.size(); ++c)
        cores_[c]->setTrace(traces[c]);
    return drive();
}

IterationResult
System::runStreaming(const std::vector<TraceSource *> &sources)
{
    assert(sources.size() == cores_.size());
    for (unsigned c = 0; c < cores_.size(); ++c)
        cores_[c]->setSource(sources[c]);
    return drive();
}

IterationResult
System::drive()
{
    IterationResult result;
    Tick barrier = 0;
    for (auto &core : cores_)
        barrier = std::max(barrier, core->finishTime());
    for (auto &core : cores_)
        core->syncTo(barrier);
    result.start = barrier;

    std::uint64_t instrs_before = 0;
    for (auto &core : cores_)
        instrs_before += core->instructionsRetired();

    // Interleave by local time.  Batching a few records per pick keeps
    // scheduling overhead low without letting any core run far ahead.
    constexpr int kBatch = 8;
    for (;;) {
        CoreModel *next = nullptr;
        for (auto &core : cores_) {
            if (core->done())
                continue;
            if (!next || core->time() < next->time())
                next = core.get();
        }
        if (!next)
            break;
        for (int i = 0; i < kBatch && !next->done(); ++i)
            next->step();
    }

    Tick end = barrier;
    std::uint64_t instrs_after = 0;
    for (auto &core : cores_) {
        end = std::max(end, core->finishTime());
        instrs_after += core->instructionsRetired();
    }
    result.end = end;
    result.instructions = instrs_after - instrs_before;
    return result;
}

} // namespace rnr
