/**
 * @file
 * Multi-core system driver.
 *
 * Owns the cores and the memory system, and interleaves trace execution
 * across cores in local-time order so that shared resources (LLC, DRAM)
 * observe a near-globally-ordered request stream — the same effect as
 * ChampSim's lockstep O(1)-cycle loop at a fraction of the cost.
 */
#ifndef RNR_CPU_SYSTEM_H
#define RNR_CPU_SYSTEM_H

#include <memory>
#include <vector>

#include "cpu/core.h"
#include "mem/memory_system.h"
#include "sim/config.h"
#include "sim/kernel.h"
#include "trace/trace_buffer.h"

namespace rnr {

/** Cycle/instruction accounting for one barriered iteration. */
struct IterationResult {
    Tick start = 0;           ///< Barrier time at which the iteration began.
    Tick end = 0;             ///< Max finish time across cores.
    std::uint64_t instructions = 0; ///< Summed across cores.

    Tick cycles() const { return end - start; }
};

/** The whole simulated machine. */
class System
{
  public:
    /** @p kernel picks the core inner loop (default: RNR_KERNEL env);
     *  see sim/kernel.h.  Both kernels are bit-identical by contract —
     *  the legacy one exists as the verification reference. */
    explicit System(const MachineConfig &cfg,
                    KernelMode kernel = kernelModeFromEnv());

    MemorySystem &mem() { return mem_; }
    CoreModel &core(unsigned i) { return *cores_[i]; }
    unsigned coreCount() const { return static_cast<unsigned>(cores_.size()); }

    /**
     * Runs one SPMD iteration: every core consumes its buffer; cores are
     * interleaved by local time; a barrier closes the iteration (all
     * cores sync to the max finish time, like the paper's master/worker
     * join).  @p traces must have one entry per core (may be empty).
     */
    IterationResult run(const std::vector<const TraceBuffer *> &traces);

    /**
     * Streaming variant: every core pulls from its TraceSource (one per
     * core, caller-owned, alive for the duration of the call).  This is
     * how the trace store replays compressed trace files without
     * materialising an iteration's records per core.  (Named rather
     * than overloaded: a braced list of TraceBuffer pointers would
     * otherwise match both signatures via vector's iterator-pair
     * constructor.)
     */
    IterationResult runStreaming(const std::vector<TraceSource *> &sources);

    /** Fans @p tr out to the memory hierarchy, prefetchers and cores
     *  (null = detach).  Call after installing prefetchers, or rely on
     *  MemorySystem::setPrefetcher re-applying it to late installs. */
    void
    attachTrace(TraceCollector *tr)
    {
        mem_.attachTrace(tr);
        for (auto &c : cores_)
            c->attachTrace(tr);
    }

    /** Fans @p tm out the same way (null = detach): the hierarchy and
     *  the prefetchers register their probes, the cores drive the
     *  sampling from their step() clocks. */
    void
    attachTelemetry(TelemetrySampler *tm)
    {
        mem_.attachTelemetry(tm);
        for (auto &c : cores_)
            c->attachTelemetry(tm);
    }

    /** Hands the attribution collector to the memory hierarchy (null =
     *  detach); the cores never touch it — every attribution event is
     *  observed at the L2s or the prefetchers (sim/attrib.h). */
    void attachAttrib(AttribCollector *at) { mem_.attachAttrib(at); }

    /** Checkpoint visitor: every core, then the memory hierarchy.
     *  Prefetchers attach from outside (System does not own them) and
     *  get their own snapshot section via the virtual state pair. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        for (auto &c : cores_)
            c->visitState(ar);
        mem_.visitState(ar);
    }

  private:
    /** Shared interleaving driver; feeds were set by the run() overload. */
    IterationResult drive();

    MachineConfig cfg_;
    MemorySystem mem_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
};

} // namespace rnr

#endif // RNR_CPU_SYSTEM_H
