/**
 * @file
 * Synthetic graph generators standing in for the paper's Table III graph
 * inputs (see DESIGN.md "Substitutions").  Each generator reproduces the
 * structural property the evaluation leans on:
 *
 *  - urand    — uniformly random edges: no locality of any kind; the
 *               input on which every baseline prefetcher collapses.
 *  - amazon   — co-purchase network: power-law-ish degrees with strong
 *               community structure (most edges stay inside a small
 *               cluster), giving moderate reuse locality.
 *  - com-orkut— social network: denser, larger power-law communities
 *               with many cross-community edges.
 *  - roadUSA  — planar road network: near-regular degree (~2-4), edges
 *               connect spatially adjacent vertices, so index-sorted
 *               traversal has excellent locality.
 */
#ifndef RNR_WORKLOADS_GRAPH_GEN_H
#define RNR_WORKLOADS_GRAPH_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/graph.h"

namespace rnr {

/** Uniform random graph ("urand"). */
Graph makeUrandGraph(std::uint32_t vertices, std::uint32_t avg_degree,
                     std::uint64_t seed = 1);

/**
 * Community graph: vertices grouped into clusters of @p cluster_size;
 * @p in_cluster_fraction of edges stay inside the cluster, the rest are
 * preferential-attachment long links ("amazon", "com-orkut").
 */
Graph makeCommunityGraph(std::uint32_t vertices, std::uint32_t avg_degree,
                         std::uint32_t cluster_size,
                         double in_cluster_fraction,
                         std::uint64_t seed = 2);

/**
 * 2-D grid road network: width x height lattice with a sprinkle of
 * diagonal shortcuts ("roadUSA").
 */
Graph makeRoadGraph(std::uint32_t width, std::uint32_t height,
                    std::uint64_t seed = 3);

/** One named graph input of the evaluation. */
struct GraphInput {
    std::string name;
    Graph graph;
};

/** The four Table III graph inputs at the scaled sizes. */
std::vector<std::string> graphInputNames();
GraphInput makeGraphInput(const std::string &name);

} // namespace rnr

#endif // RNR_WORKLOADS_GRAPH_GEN_H
