#include "workloads/sparse.h"

#include <algorithm>
#include <cassert>

namespace rnr {

SparseMatrix
SparseMatrix::fromPattern(
    std::uint32_t n,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries)
{
    // Mirror to make the pattern symmetric, drop the diagonal (added
    // explicitly below) and deduplicate.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sym;
    sym.reserve(entries.size() * 2);
    for (auto [i, j] : entries) {
        assert(i < n && j < n);
        if (i == j)
            continue;
        sym.emplace_back(i, j);
        sym.emplace_back(j, i);
    }
    std::sort(sym.begin(), sym.end());
    sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

    SparseMatrix m;
    m.n = n;
    m.row_ptr.assign(n + 1, 0);
    for (auto [i, j] : sym) {
        (void)j;
        ++m.row_ptr[i + 1];
    }
    // +1 per row for the diagonal.
    for (std::uint32_t i = 0; i < n; ++i)
        m.row_ptr[i + 1] += m.row_ptr[i] + 1;

    m.col.resize(m.row_ptr[n]);
    m.val.resize(m.row_ptr[n]);
    std::vector<std::uint32_t> cursor(n);
    for (std::uint32_t i = 0; i < n; ++i)
        cursor[i] = m.row_ptr[i];
    std::vector<std::uint32_t> offdiag_count(n, 0);

    std::size_t k = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        bool placed_diag = false;
        while (k < sym.size() && sym[k].first == i) {
            const std::uint32_t j = sym[k].second;
            if (!placed_diag && j > i) {
                m.col[cursor[i]] = i;
                ++cursor[i];
                placed_diag = true;
            }
            m.col[cursor[i]] = j;
            m.val[cursor[i]] = -1.0;
            ++cursor[i];
            ++offdiag_count[i];
            ++k;
        }
        if (!placed_diag) {
            m.col[cursor[i]] = i;
            ++cursor[i];
        }
    }
    // Diagonal dominance: d_ii = (#offdiag) + 1.
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
            if (m.col[e] == i)
                m.val[e] = offdiag_count[i] + 1.0;
        }
    }
    return m;
}

void
SparseMatrix::multiply(const std::vector<double> &x,
                       std::vector<double> &y) const
{
    assert(x.size() == n);
    y.assign(n, 0.0);
    for (std::uint32_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::uint32_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e)
            acc += val[e] * x[col[e]];
        y[i] = acc;
    }
}

std::uint64_t
SparseMatrix::bytes() const
{
    return row_ptr.size() * sizeof(std::uint32_t) +
           col.size() * sizeof(std::uint32_t) +
           val.size() * sizeof(double);
}

} // namespace rnr
