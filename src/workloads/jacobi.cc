#include "workloads/jacobi.h"

#include <cmath>

namespace rnr {

JacobiWorkload::JacobiWorkload(SparseMatrix matrix, WorkloadOptions opts)
    : Workload(opts), A_(std::move(matrix))
{
    const std::uint32_t n = A_.n;
    diag_.assign(n, 1.0);
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t e = A_.row_ptr[i]; e < A_.row_ptr[i + 1]; ++e) {
            if (A_.col[e] == i)
                diag_[i] = A_.val[e];
        }
    }
    // b = A * ones, so x converges to all-ones.
    std::vector<double> ones(n, 1.0);
    A_.multiply(ones, b_);

    x_[0].assign(n, 0.0);
    x_[1].assign(n, 0.0);

    row_starts_.resize(opts_.cores + 1);
    for (unsigned c = 0; c <= opts_.cores; ++c)
        row_starts_[c] = static_cast<std::uint32_t>(
            std::uint64_t{n} * c / opts_.cores);

    rowptr_base_ = space_.allocate("jb_row_ptr",
                                   (n + 1) * sizeof(std::uint32_t));
    col_base_ = space_.allocate("jb_col",
                                A_.col.size() * sizeof(std::uint32_t));
    val_base_ = space_.allocate("jb_val",
                                A_.val.size() * sizeof(double));
    b_base_ = space_.allocate("jb_b", n * sizeof(double));
    x_base_[0] = space_.allocate("jb_x0", n * sizeof(double));
    x_base_[1] = space_.allocate("jb_x1", n * sizeof(double));
}

std::uint64_t
JacobiWorkload::inputBytes() const
{
    return A_.bytes() + 3 * A_.n * sizeof(double);
}

std::uint64_t
JacobiWorkload::targetBytes() const
{
    return A_.n * sizeof(double);
}

IndexSniffer
JacobiWorkload::impSniffer(unsigned core) const
{
    IndexSniffer s;
    const std::uint32_t e0 = A_.row_ptr[row_starts_[core]];
    const std::uint32_t e1 = A_.row_ptr[row_starts_[core + 1]];
    s.index_base = col_base_ + e0 * sizeof(std::uint32_t);
    s.index_count = e1 - e0;
    s.index_elem_bytes = sizeof(std::uint32_t);
    s.value_of = [this, e0](std::uint64_t i) { return A_.col[e0 + i]; };
    return s;
}

void
JacobiWorkload::emitIteration(unsigned iter, bool is_last,
                              std::vector<TraceBuffer> &bufs)
{
    retargetAll(bufs);
    const std::uint32_t n = A_.n;
    const Addr cur_base = x_base_[cur_];
    const Addr next_base = x_base_[cur_ ^ 1];
    std::vector<double> &xc = x_[cur_];
    std::vector<double> &xn = x_[cur_ ^ 1];

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (iter == 0) {
            rt.init(targetBytes());
            rt.addrBaseSet(x_base_[0], n * sizeof(double));
            rt.addrBaseSet(x_base_[1], n * sizeof(double));
            if (opts_.window_size)
                rt.windowSizeSet(opts_.window_size);
            rt.addrEnable(cur_base);
            rt.start();
        } else {
            rt.replay();
        }
    }

    double delta = 0.0;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint32_t i = row_starts_[c]; i < row_starts_[c + 1];
             ++i) {
            t.load(rowptr_base_ + i * sizeof(std::uint32_t), PcRowPtr);
            t.instr(3);
            double acc = 0.0;
            for (std::uint32_t e = A_.row_ptr[i]; e < A_.row_ptr[i + 1];
                 ++e) {
                if (A_.col[e] == i)
                    continue; // diagonal handled separately
                t.load(col_base_ + e * sizeof(std::uint32_t), PcCol);
                t.load(val_base_ + e * sizeof(double), PcVal);
                t.instr(2);
                t.load(cur_base + A_.col[e] * sizeof(double), PcXRead);
                t.instr(4);
                acc += A_.val[e] * xc[A_.col[e]];
            }
            t.load(b_base_ + i * sizeof(double), PcB);
            t.instr(4);
            const double next = (b_[i] - acc) / diag_[i];
            delta = std::max(delta, std::fabs(next - xc[i]));
            xn[i] = next;
            t.store(next_base + i * sizeof(double), PcXStore);
            t.instr(2);
        }
    }
    last_delta_ = delta;

    // Swap x_curr/x_next (the Algorithm 1 base-exchange protocol).
    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (is_last) {
            rt.endState();
            rt.end();
        } else {
            rt.addrDisable(cur_base);
            rt.addrEnable(next_base);
        }
    }
    cur_ ^= 1;
}

} // namespace rnr
