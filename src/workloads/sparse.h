/**
 * @file
 * Compressed-sparse-row matrix container for the spCG workload.
 */
#ifndef RNR_WORKLOADS_SPARSE_H
#define RNR_WORKLOADS_SPARSE_H

#include <cstdint>
#include <utility>
#include <vector>

namespace rnr {

/** Square sparse matrix in CSR form. */
struct SparseMatrix {
    std::uint32_t n = 0;
    std::vector<std::uint32_t> row_ptr; ///< size n+1.
    std::vector<std::uint32_t> col;
    std::vector<double> val;

    std::uint64_t nnz() const { return col.size(); }

    /**
     * Builds a symmetric positive-definite CSR matrix from a structural
     * pattern: the given off-diagonal entries (i, j) are mirrored, given
     * small negative values, and the diagonal is set to dominate
     * (Laplacian-style), which guarantees SPD so CG converges.
     */
    static SparseMatrix fromPattern(
        std::uint32_t n,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> entries);

    /** y = A * x (host-side math used alongside the traced kernel). */
    void multiply(const std::vector<double> &x,
                  std::vector<double> &y) const;

    /** Bytes of the CSR arrays. */
    std::uint64_t bytes() const;

    /** Checkpoint visitor: the complete CSR (input snapshots fork the
     *  generated matrix across sweep configs instead of regenerating). */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(n);
        ar.pod(row_ptr);
        ar.pod(col);
        ar.pod(val);
    }
};

} // namespace rnr

#endif // RNR_WORKLOADS_SPARSE_H
