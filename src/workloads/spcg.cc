#include "workloads/spcg.h"

#include <cassert>

namespace rnr {

SpcgWorkload::SpcgWorkload(SparseMatrix matrix, WorkloadOptions opts)
    : Workload(opts), A_(std::move(matrix))
{
    const std::uint32_t n = A_.n;
    // Solve A x = b with b = A * ones (so x converges to ones).
    std::vector<double> ones(n, 1.0), b;
    A_.multiply(ones, b);

    x_.assign(n, 0.0);
    r_ = b;        // r = b - A*0
    p_ = r_;
    q_.assign(n, 0.0);
    rr_ = 0.0;
    for (double v : r_)
        rr_ += v * v;

    row_starts_.resize(opts_.cores + 1);
    for (unsigned c = 0; c <= opts_.cores; ++c)
        row_starts_[c] = static_cast<std::uint32_t>(
            std::uint64_t{n} * c / opts_.cores);

    rowptr_base_ = space_.allocate("cg_row_ptr",
                                   (n + 1) * sizeof(std::uint32_t));
    col_base_ = space_.allocate("cg_col",
                                A_.col.size() * sizeof(std::uint32_t));
    val_base_ = space_.allocate("cg_val",
                                A_.val.size() * sizeof(double));
    x_base_ = space_.allocate("cg_x", n * sizeof(double));
    r_base_ = space_.allocate("cg_r", n * sizeof(double));
    p_base_ = space_.allocate("cg_p", n * sizeof(double));
    q_base_ = space_.allocate("cg_q", n * sizeof(double));
}

std::uint64_t
SpcgWorkload::inputBytes() const
{
    return A_.bytes() + 4 * A_.n * sizeof(double);
}

std::uint64_t
SpcgWorkload::targetBytes() const
{
    return A_.n * sizeof(double);
}

IndexSniffer
SpcgWorkload::impSniffer(unsigned core) const
{
    // A[B[i]] with A = p and B = the CSR column array.
    IndexSniffer s;
    const std::uint32_t e0 = A_.row_ptr[row_starts_[core]];
    const std::uint32_t e1 = A_.row_ptr[row_starts_[core + 1]];
    s.index_base = col_base_ + e0 * sizeof(std::uint32_t);
    s.index_count = e1 - e0;
    s.index_elem_bytes = sizeof(std::uint32_t);
    s.value_of = [this, e0](std::uint64_t i) { return A_.col[e0 + i]; };
    return s;
}

void
SpcgWorkload::emitIteration(unsigned iter, bool is_last,
                            std::vector<TraceBuffer> &bufs)
{
    retargetAll(bufs);
    const std::uint32_t n = A_.n;

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (iter == 0) {
            rt.init(targetBytes());
            rt.addrBaseSet(p_base_, n * sizeof(double));
            if (opts_.window_size)
                rt.windowSizeSet(opts_.window_size);
            rt.addrEnable(p_base_);
            rt.start();
        } else {
            rt.replay();
        }
    }

    // ---- q = A * p (the traced SpMV kernel) ----
    double pq = 0.0;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint32_t i = row_starts_[c]; i < row_starts_[c + 1];
             ++i) {
            t.load(rowptr_base_ + i * sizeof(std::uint32_t), PcRowPtr);
            t.instr(4);
            double acc = 0.0;
            for (std::uint32_t e = A_.row_ptr[i]; e < A_.row_ptr[i + 1];
                 ++e) {
                t.load(col_base_ + e * sizeof(std::uint32_t), PcCol);
                t.load(val_base_ + e * sizeof(double), PcVal);
                t.instr(3);
                t.load(p_base_ + A_.col[e] * sizeof(double), PcPVec);
                t.instr(4);
                acc += A_.val[e] * p_[A_.col[e]];
            }
            q_[i] = acc;
            t.store(q_base_ + i * sizeof(double), PcQStore);
            t.instr(3);
        }
    }

    // ---- alpha = rr / (p . q) (streaming dot) ----
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint32_t i = row_starts_[c]; i < row_starts_[c + 1];
             ++i) {
            t.load(p_base_ + i * sizeof(double), PcDotP);
            t.load(q_base_ + i * sizeof(double), PcDotQ);
            t.instr(3);
            pq += p_[i] * q_[i];
        }
    }
    const double alpha = pq != 0.0 ? rr_ / pq : 0.0;

    // ---- x += alpha p; r -= alpha q; rr' = r.r ----
    double rr_new = 0.0;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint32_t i = row_starts_[c]; i < row_starts_[c + 1];
             ++i) {
            t.load(x_base_ + i * sizeof(double), PcX);
            t.load(p_base_ + i * sizeof(double), PcDotP);
            t.store(x_base_ + i * sizeof(double), PcX);
            t.load(r_base_ + i * sizeof(double), PcR);
            t.load(q_base_ + i * sizeof(double), PcDotQ);
            t.store(r_base_ + i * sizeof(double), PcR);
            t.instr(8);
            x_[i] += alpha * p_[i];
            r_[i] -= alpha * q_[i];
            rr_new += r_[i] * r_[i];
        }
    }
    const double beta = rr_ != 0.0 ? rr_new / rr_ : 0.0;
    rr_ = rr_new;

    // ---- p = r + beta p ----
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint32_t i = row_starts_[c]; i < row_starts_[c + 1];
             ++i) {
            t.load(r_base_ + i * sizeof(double), PcR);
            t.load(p_base_ + i * sizeof(double), PcPUpdate);
            t.store(p_base_ + i * sizeof(double), PcPUpdate);
            t.instr(3);
            p_[i] = r_[i] + beta * p_[i];
        }
    }

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (is_last) {
            rt.endState();
            rt.end();
        }
    }
}

} // namespace rnr
