/**
 * @file
 * Sparse conjugate-gradient solver (the paper's spCG, from the Adept
 * benchmark) with a traced SpMV kernel.
 *
 * Per CG iteration (rows partitioned contiguously across cores):
 *   q = A*p          — the SpMV kernel; p[col[e]] is the irregular RnR
 *                      target read, row_ptr/col/val stream;
 *   alpha = rr/p.q   — streaming dot product;
 *   x += alpha p; r -= alpha q;
 *   beta = rr'/rr; p = r + beta p.
 * The p vector lives at a fixed base across iterations (unlike
 * PageRank's swap), so the recorded sequence replays against the same
 * boundary register every time.  Real CG math runs alongside tracing, so
 * the solver genuinely converges on the SPD test matrices.
 */
#ifndef RNR_WORKLOADS_SPCG_H
#define RNR_WORKLOADS_SPCG_H

#include "workloads/sparse.h"
#include "workloads/workload.h"

namespace rnr {

class SpcgWorkload : public Workload
{
  public:
    SpcgWorkload(SparseMatrix matrix, WorkloadOptions opts);

    std::string name() const override { return "spcg"; }
    void emitIteration(unsigned iter, bool is_last,
                       std::vector<TraceBuffer> &bufs) override;
    std::uint64_t inputBytes() const override;
    std::uint64_t targetBytes() const override;
    IndexSniffer impSniffer(unsigned core) const override;

    /** ||r||^2 after the last emitted iteration. */
    double residualNorm2() const { return rr_; }
    const std::vector<double> &solution() const { return x_; }
    const SparseMatrix &matrix() const { return A_; }

  private:
    enum Site : std::uint32_t {
        PcRowPtr = 201,
        PcCol,
        PcVal,
        PcPVec, ///< the irregular p[col[e]] read (target)
        PcQStore,
        PcDotP,
        PcDotQ,
        PcX,
        PcR,
        PcPUpdate,
    };

    SparseMatrix A_;
    std::vector<double> x_, r_, p_, q_;
    double rr_ = 0.0;
    std::vector<std::uint32_t> row_starts_; ///< per-core row ranges.

    Addr rowptr_base_ = 0, col_base_ = 0, val_base_ = 0;
    Addr x_base_ = 0, r_base_ = 0, p_base_ = 0, q_base_ = 0;
};

} // namespace rnr

#endif // RNR_WORKLOADS_SPCG_H
