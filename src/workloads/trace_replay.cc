#include "workloads/trace_replay.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "tracestore/trace_file.h"

namespace rnr {

namespace {

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::is_regular_file(path, ec);
}

std::string
perCorePath(const std::string &prefix, unsigned core)
{
    return prefix + ".c" + std::to_string(core) + ".rnrt";
}

} // namespace

unsigned
TraceFileWorkload::detectCores(const std::string &input)
{
    if (fileExists(input))
        return 1;
    unsigned n = 0;
    while (fileExists(perCorePath(input, n)))
        ++n;
    return n;
}

TraceFileWorkload::TraceFileWorkload(std::string input, WorkloadOptions opts)
    : Workload(opts), input_(std::move(input))
{
    single_file_ = fileExists(input_);
    if (single_file_ && opts_.cores != 1)
        throw std::runtime_error(input_ +
                                 " is a single trace file; run it with "
                                 "1 core or provide per-core files");

    Addr min_addr = 0, max_addr = 0;
    bool have_mem = false;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        TraceFileStats stats;
        const std::string path = corePath(c);
        if (TraceIoResult r = readAnyTraceFileStats(path, stats); !r)
            throw std::runtime_error(path + ": " + r.message());
        if (stats.loads + stats.stores > 0) {
            if (!have_mem || stats.min_addr < min_addr)
                min_addr = stats.min_addr;
            if (!have_mem || stats.max_addr > max_addr)
                max_addr = stats.max_addr;
            have_mem = true;
        }
    }
    if (!have_mem)
        throw std::runtime_error(input_ + ": trace has no memory records");
    base_addr_ = min_addr;
    // Span covers through the last accessed byte's cache block.
    span_bytes_ = max_addr - min_addr + 64;
}

std::string
TraceFileWorkload::corePath(unsigned core) const
{
    return single_file_ ? input_ : perCorePath(input_, core);
}

void
TraceFileWorkload::emitIteration(unsigned iter, bool is_last,
                                 std::vector<TraceBuffer> &bufs)
{
    retargetAll(bufs);
    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (iter == 0) {
            rt.init(span_bytes_);
            rt.addrBaseSet(base_addr_, span_bytes_);
            if (opts_.window_size)
                rt.windowSizeSet(opts_.window_size);
            rt.addrEnable(base_addr_);
            rt.start();
        } else {
            rt.replay();
        }
        if (TraceIoResult r = readAnyTraceFile(corePath(c), bufs[c]); !r)
            throw std::runtime_error(corePath(c) + ": " + r.message());
        if (is_last) {
            rt.addrDisable(base_addr_);
            rt.endState();
            rt.end();
        }
    }
}

} // namespace rnr
