#include "workloads/pagerank.h"

#include <cmath>

namespace rnr {

PageRankWorkload::PageRankWorkload(Graph graph, WorkloadOptions opts,
                                   double alpha)
    : Workload(opts), alpha_(alpha)
{
    // Partition on the undirected structure, then relabel so each core's
    // vertices are contiguous (the SPMD setup of Section VI).
    parts_ = partitionGraph(graph, opts.cores);
    Graph out = graph.relabel(parts_.order);
    in_graph_ = out.transpose();
    out_graph_ = std::move(out);
    degree_ = out_graph_.outDegrees();

    const std::uint32_t V = in_graph_.num_vertices;
    off_base_ = space_.allocate("pr_offsets",
                                (V + 1) * sizeof(std::uint32_t));
    edge_base_ = space_.allocate("pr_in_edges",
                                 in_graph_.edges.size() *
                                     sizeof(std::uint32_t));
    deg_base_ = space_.allocate("pr_degree", V * sizeof(std::uint32_t));
    value_base_[0] = space_.allocate("pr_pcurr", V * sizeof(double));
    value_base_[1] = space_.allocate("pr_pnext", V * sizeof(double));

    // p_curr starts at (1/|V|)/deg (scaled ranks); p_next at zero.
    values_[0].assign(V, 0.0);
    values_[1].assign(V, 0.0);
    for (std::uint32_t v = 0; v < V; ++v) {
        values_[0][v] = (1.0 / V) / std::max(1u, degree_[v]);
    }
}

std::uint64_t
PageRankWorkload::inputBytes() const
{
    return in_graph_.bytes() +
           degree_.size() * sizeof(std::uint32_t) +
           2 * values_[0].size() * sizeof(double);
}

std::uint64_t
PageRankWorkload::targetBytes() const
{
    return values_[0].size() * sizeof(double);
}

DropletHint
PageRankWorkload::dropletHint(unsigned core) const
{
    DropletHint hint;
    const std::uint32_t first = parts_.starts[core];
    const std::uint32_t j0 = in_graph_.offsets[first];
    const std::uint32_t j1 = in_graph_.offsets[parts_.starts[core + 1]];
    hint.edge_base = edge_base_ + j0 * sizeof(std::uint32_t);
    hint.edge_count = j1 - j0;
    hint.edge_elem_bytes = sizeof(std::uint32_t);
    // Capture `this` so the hint tracks the p_curr/p_next swap: the
    // hardware dereferences into whichever array the iteration being
    // simulated reads (the software updates DROPLET's base register at
    // the same point it swaps RnR's boundary enables).
    hint.target_of = [this, j0](std::uint64_t e) {
        return sim_cur_base_ + in_graph_.edges[j0 + e] * sizeof(double);
    };
    return hint;
}

IndexSniffer
PageRankWorkload::impSniffer(unsigned core) const
{
    // A[B[i]] with A = p_curr (8 B elements) and B = the in-edge array.
    IndexSniffer s;
    const std::uint32_t j0 = in_graph_.offsets[parts_.starts[core]];
    const std::uint32_t j1 = in_graph_.offsets[parts_.starts[core + 1]];
    s.index_base = edge_base_ + j0 * sizeof(std::uint32_t);
    s.index_count = j1 - j0;
    s.index_elem_bytes = sizeof(std::uint32_t);
    s.value_of = [this, j0](std::uint64_t i) {
        return in_graph_.edges[j0 + i];
    };
    return s;
}

void
PageRankWorkload::emitIteration(unsigned iter, bool is_last,
                                std::vector<TraceBuffer> &bufs)
{
    retargetAll(bufs);
    const std::uint32_t V = in_graph_.num_vertices;
    const Addr cur_base = value_base_[cur_];
    const Addr next_base = value_base_[cur_ ^ 1];
    sim_cur_base_ = cur_base;
    std::vector<double> &pcurr = values_[cur_];
    std::vector<double> &pnext = values_[cur_ ^ 1];

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (iter == 0) {
            rt.init(targetBytes());
            rt.addrBaseSet(value_base_[0], V * sizeof(double));
            rt.addrBaseSet(value_base_[1], V * sizeof(double));
            if (opts_.window_size)
                rt.windowSizeSet(opts_.window_size);
            rt.addrEnable(cur_base);
            rt.start();
        } else {
            rt.replay();
        }
    }

    double diff = 0.0;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        const std::uint32_t d0 = parts_.starts[c];
        const std::uint32_t d1 = parts_.starts[c + 1];

        // ---- Edge (PRUpdate) phase ----
        for (std::uint32_t d = d0; d < d1; ++d) {
            t.load(off_base_ + d * sizeof(std::uint32_t), PcOffsets);
            t.instr(4);
            double acc = 0.0;
            for (std::uint32_t j = in_graph_.offsets[d];
                 j < in_graph_.offsets[d + 1]; ++j) {
                t.load(edge_base_ + j * sizeof(std::uint32_t), PcEdges);
                t.instr(3);
                const std::uint32_t s = in_graph_.edges[j];
                t.load(cur_base + s * sizeof(double), PcVertexValue);
                t.instr(4);
                acc += pcurr[s];
            }
            pnext[d] += acc;
            t.store(next_base + d * sizeof(double), PcNextStore);
            t.instr(3);
        }

        // ---- Normalise (PRNormalize) phase ----
        for (std::uint32_t v = d0; v < d1; ++v) {
            t.load(next_base + v * sizeof(double), PcNormLoad);
            t.load(deg_base_ + v * sizeof(std::uint32_t), PcDegree);
            t.instr(8);
            const double scaled =
                (alpha_ * pnext[v] + (1.0 - alpha_) / V) /
                std::max(1u, degree_[v]);
            t.load(cur_base + v * sizeof(double), PcDiffLoad);
            t.instr(4);
            diff += std::fabs(scaled - pcurr[v]);
            pcurr[v] = 0.0;
            t.store(cur_base + v * sizeof(double), PcCurrZero);
            pnext[v] = scaled;
            t.store(next_base + v * sizeof(double), PcNormStore);
            t.instr(2);
        }
    }
    last_diff_ = diff;

    // ---- Iteration epilogue: Algorithm 1 lines 31-36 ----
    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (is_last) {
            rt.endState();
            rt.end();
        } else {
            rt.addrDisable(cur_base);
            rt.addrEnable(next_base);
        }
    }
    cur_ ^= 1;
}

} // namespace rnr
