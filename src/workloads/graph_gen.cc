#include "workloads/graph_gen.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace rnr {

Graph
makeUrandGraph(std::uint32_t vertices, std::uint32_t avg_degree,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    const std::uint64_t target = std::uint64_t{vertices} * avg_degree;
    edges.reserve(target);
    for (std::uint64_t e = 0; e < target; ++e) {
        const auto src = static_cast<std::uint32_t>(rng.below(vertices));
        const auto dst = static_cast<std::uint32_t>(rng.below(vertices));
        if (src != dst)
            edges.emplace_back(src, dst);
    }
    return Graph::fromEdgeList(vertices, std::move(edges));
}

Graph
makeCommunityGraph(std::uint32_t vertices, std::uint32_t avg_degree,
                   std::uint32_t cluster_size, double in_cluster_fraction,
                   std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    const std::uint64_t target = std::uint64_t{vertices} * avg_degree;
    edges.reserve(target);
    for (std::uint64_t e = 0; e < target; ++e) {
        const auto src = static_cast<std::uint32_t>(rng.below(vertices));
        std::uint32_t dst;
        if (rng.uniform() < in_cluster_fraction) {
            // Stay within the source's cluster.
            const std::uint32_t cluster = src / cluster_size;
            const std::uint32_t base = cluster * cluster_size;
            const std::uint32_t span =
                std::min(cluster_size, vertices - base);
            dst = base + static_cast<std::uint32_t>(rng.below(span));
        } else {
            // Long link with preferential attachment: squaring a uniform
            // variate skews the target toward low ids, yielding a
            // power-law-ish in-degree tail like real social graphs.
            const double u = rng.uniform();
            dst = static_cast<std::uint32_t>(u * u * vertices);
            if (dst >= vertices)
                dst = vertices - 1;
        }
        if (src != dst)
            edges.emplace_back(src, dst);
    }
    return Graph::fromEdgeList(vertices, std::move(edges));
}

Graph
makeRoadGraph(std::uint32_t width, std::uint32_t height, std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint32_t vertices = width * height;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(std::uint64_t{vertices} * 4);
    auto id = [width](std::uint32_t x, std::uint32_t y) {
        return y * width + x;
    };
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            const std::uint32_t v = id(x, y);
            if (x + 1 < width) {
                edges.emplace_back(v, id(x + 1, y));
                edges.emplace_back(id(x + 1, y), v);
            }
            if (y + 1 < height) {
                edges.emplace_back(v, id(x, y + 1));
                edges.emplace_back(id(x, y + 1), v);
            }
            // Occasional shortcut to a nearby (but not adjacent) vertex,
            // like highway ramps; keeps degree near-regular.
            if (rng.uniform() < 0.05) {
                const std::uint32_t dx =
                    static_cast<std::uint32_t>(rng.below(8));
                const std::uint32_t dy =
                    static_cast<std::uint32_t>(rng.below(8));
                const std::uint32_t tx = std::min(x + dx, width - 1);
                const std::uint32_t ty = std::min(y + dy, height - 1);
                if (id(tx, ty) != v) {
                    edges.emplace_back(v, id(tx, ty));
                    edges.emplace_back(id(tx, ty), v);
                }
            }
        }
    }
    return Graph::fromEdgeList(vertices, std::move(edges));
}

std::vector<std::string>
graphInputNames()
{
    return {"urand", "amazon", "com-orkut", "roadUSA"};
}

GraphInput
makeGraphInput(const std::string &name)
{
    // Scaled sizes: DESIGN.md section 4 — the irregular vertex-value
    // array must exceed the scaled LLC several-fold.
    if (name == "urand")
        return {name, makeUrandGraph(1u << 16, 16, 11)};
    if (name == "amazon")
        return {name, makeCommunityGraph(1u << 16, 6, 64, 0.75, 12)};
    if (name == "com-orkut")
        return {name, makeCommunityGraph(1u << 16, 24, 256, 0.55, 13)};
    if (name == "roadUSA")
        return {name, makeRoadGraph(360, 360, 14)};
    throw std::invalid_argument("unknown graph input: " + name);
}

} // namespace rnr
