/**
 * @file
 * Compressed-sparse-row graph container used by the graph workloads
 * (PageRank, Hyper-ANF) and the partitioner.
 */
#ifndef RNR_WORKLOADS_GRAPH_H
#define RNR_WORKLOADS_GRAPH_H

#include <cstdint>
#include <utility>
#include <vector>

namespace rnr {

/** Directed graph in CSR form (out-edges). */
struct Graph {
    std::uint32_t num_vertices = 0;
    /** offsets[v]..offsets[v+1] index into edges; size V+1. */
    std::vector<std::uint32_t> offsets;
    /** Edge targets, sorted per source. */
    std::vector<std::uint32_t> edges;

    std::uint64_t numEdges() const { return edges.size(); }

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return offsets[v + 1] - offsets[v];
    }

    /** Builds a CSR graph from an edge list (duplicates removed). */
    static Graph fromEdgeList(
        std::uint32_t num_vertices,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list);

    /** Reverses every edge (out-CSR -> in-CSR for pull algorithms). */
    Graph transpose() const;

    /** Out-degree of every vertex (PageRank contributions). */
    std::vector<std::uint32_t> outDegrees() const;

    /**
     * Relabels vertices so that @p order[i] becomes vertex i; used after
     * partitioning to make each partition's vertices contiguous.
     */
    Graph relabel(const std::vector<std::uint32_t> &order) const;

    /** Bytes of the CSR arrays (Fig 13 storage-overhead denominator). */
    std::uint64_t bytes() const;

    /** Checkpoint visitor: the complete CSR (input snapshots fork the
     *  generated graph across sweep configs instead of regenerating). */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(num_vertices);
        ar.pod(offsets);
        ar.pod(edges);
    }
};

} // namespace rnr

#endif // RNR_WORKLOADS_GRAPH_H
