#include "workloads/sparse_gen.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace rnr {

SparseMatrix
makeStencilMatrix(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz)
{
    const std::uint32_t n = nx * ny * nz;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    entries.reserve(std::uint64_t{n} * 3);
    auto id = [nx, ny](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
        return (z * ny + y) * nx + x;
    };
    for (std::uint32_t z = 0; z < nz; ++z) {
        for (std::uint32_t y = 0; y < ny; ++y) {
            for (std::uint32_t x = 0; x < nx; ++x) {
                const std::uint32_t v = id(x, y, z);
                if (x + 1 < nx)
                    entries.emplace_back(v, id(x + 1, y, z));
                if (y + 1 < ny)
                    entries.emplace_back(v, id(x, y + 1, z));
                if (z + 1 < nz)
                    entries.emplace_back(v, id(x, y, z + 1));
            }
        }
    }
    return SparseMatrix::fromPattern(n, std::move(entries));
}

SparseMatrix
makeBandedScatterMatrix(std::uint32_t n, std::uint32_t band_halfwidth,
                        std::uint32_t per_row, double scatter_fraction,
                        std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    entries.reserve(std::uint64_t{n} * per_row);
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t k = 0; k < per_row; ++k) {
            std::uint32_t j;
            if (rng.uniform() < scatter_fraction) {
                j = static_cast<std::uint32_t>(rng.below(n));
            } else {
                const std::int64_t d =
                    static_cast<std::int64_t>(
                        rng.below(2 * band_halfwidth + 1)) -
                    band_halfwidth;
                const std::int64_t jj = static_cast<std::int64_t>(i) + d;
                if (jj < 0 || jj >= static_cast<std::int64_t>(n))
                    continue;
                j = static_cast<std::uint32_t>(jj);
            }
            if (j != i)
                entries.emplace_back(i, j);
        }
    }
    return SparseMatrix::fromPattern(n, std::move(entries));
}

SparseMatrix
makeKktMatrix(std::uint32_t n, std::uint32_t block, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    const std::uint32_t half = n / 2;
    // Hessian block: banded couplings among the first half.
    for (std::uint32_t i = 0; i < half; ++i) {
        for (std::uint32_t k = 1; k <= 3; ++k) {
            if (i + k < half)
                entries.emplace_back(i, i + k);
        }
        // Block-local dense coupling.
        const std::uint32_t b = (i / block) * block;
        for (std::uint32_t k = 0; k < 4; ++k) {
            const std::uint32_t j =
                b + static_cast<std::uint32_t>(rng.below(block));
            if (j < half && j != i)
                entries.emplace_back(i, j);
        }
    }
    // Constraint block: each constraint row couples to a few scattered
    // primal variables (the far-away "arrow" structure).
    for (std::uint32_t i = half; i < n; ++i) {
        for (std::uint32_t k = 0; k < 6; ++k) {
            const std::uint32_t j =
                static_cast<std::uint32_t>(rng.below(half));
            entries.emplace_back(i, j);
        }
    }
    return SparseMatrix::fromPattern(n, std::move(entries));
}

SparseMatrix
makeClusteredMatrix(std::uint32_t n, std::uint32_t cluster,
                    std::uint32_t per_row, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    entries.reserve(std::uint64_t{n} * per_row);
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t b = (i / cluster) * cluster;
        const std::uint32_t span = std::min(cluster, n - b);
        for (std::uint32_t k = 0; k < per_row; ++k) {
            std::uint32_t j;
            if (rng.uniform() < 0.85) {
                j = b + static_cast<std::uint32_t>(rng.below(span));
            } else {
                j = static_cast<std::uint32_t>(rng.below(n));
            }
            if (j != i)
                entries.emplace_back(i, j);
        }
    }
    return SparseMatrix::fromPattern(n, std::move(entries));
}

std::vector<std::string>
matrixInputNames()
{
    return {"atmosmodj", "bbmat", "nlpkkt80", "pdb1HYS"};
}

MatrixInput
makeMatrixInput(const std::string &name)
{
    if (name == "atmosmodj")
        return {name, makeStencilMatrix(32, 32, 48)};
    if (name == "bbmat")
        return {name, makeBandedScatterMatrix(40000, 96, 16, 0.25)};
    if (name == "nlpkkt80")
        return {name, makeKktMatrix(52000, 16)};
    if (name == "pdb1HYS")
        return {name, makeClusteredMatrix(36000, 128, 28)};
    throw std::invalid_argument("unknown matrix input: " + name);
}

} // namespace rnr
