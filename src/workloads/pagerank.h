/**
 * @file
 * Vertex-centric pull PageRank, following the paper's Algorithm 1
 * (Ligra-derived) including its RnR instrumentation and the p_curr /
 * p_next base swap at the end of every iteration.
 *
 * Each core owns a contiguous destination-vertex range (METIS-equivalent
 * partitioning with relabelling).  Per iteration, core c:
 *   1. edge phase — for each owned d: reads offsets[d], then for every
 *      in-edge (s,d) reads in_edges[j] (streaming) and p_curr[s]
 *      (irregular, the RnR target), accumulating into p_next[d];
 *   2. normalise phase (PRNormalize) — streaming pass computing
 *      p_next = (alpha*p_next + (1-alpha)/|V|)/deg and the L1 diff,
 *      and zeroing p_curr.
 * The real rank values are computed alongside trace emission.
 */
#ifndef RNR_WORKLOADS_PAGERANK_H
#define RNR_WORKLOADS_PAGERANK_H

#include "workloads/graph.h"
#include "workloads/partition.h"
#include "workloads/workload.h"

namespace rnr {

class PageRankWorkload : public Workload
{
  public:
    PageRankWorkload(Graph graph, WorkloadOptions opts,
                     double alpha = 0.85);

    std::string name() const override { return "pagerank"; }
    void emitIteration(unsigned iter, bool is_last,
                       std::vector<TraceBuffer> &bufs) override;
    std::uint64_t inputBytes() const override;
    std::uint64_t targetBytes() const override;
    DropletHint dropletHint(unsigned core) const override;
    IndexSniffer impSniffer(unsigned core) const override;

    /** Replay path: emitIteration() normally advances sim_cur_base_
     *  (the p_curr/p_next swap DROPLET's hint chases); when iterations
     *  replay from stored traces the swap must happen here instead. */
    void
    beginReplayIteration(unsigned iter) override
    {
        sim_cur_base_ = value_base_[iter & 1];
    }

    /** Scaled rank (rank/deg) of vertex @p v after the last iteration. */
    double rank(std::uint32_t v) const { return values_[cur_][v]; }
    /** Sum of |p_next - p_curr| over the last iteration. */
    double lastDiff() const { return last_diff_; }
    const Graph &inGraph() const { return in_graph_; }
    const Partitioning &partitioning() const { return parts_; }

  private:
    /** Access-site ids ("PCs") for the tracer. */
    enum Site : std::uint32_t {
        PcOffsets = 1,
        PcEdges,
        PcVertexValue, ///< the irregular p_curr[s] read
        PcNextStore,
        PcNormLoad,
        PcDegree,
        PcDiffLoad,
        PcCurrZero,
        PcNormStore,
    };

    Graph in_graph_;     ///< In-edge CSR (pull direction), relabelled.
    Graph out_graph_;    ///< Out-edge CSR for DROPLET's hint.
    Partitioning parts_;
    std::vector<std::uint32_t> degree_;
    double alpha_;

    Addr off_base_ = 0, edge_base_ = 0, deg_base_ = 0;
    Addr value_base_[2] = {0, 0}; ///< p_curr / p_next array bases.
    unsigned cur_ = 0;            ///< Which of the two is p_curr.
    /** p_curr base of the most recently emitted iteration — what the
     *  simulator (and DROPLET's base register) sees while running it. */
    Addr sim_cur_base_ = 0;

    std::vector<double> values_[2];
    double last_diff_ = 0.0;
};

} // namespace rnr

#endif // RNR_WORKLOADS_PAGERANK_H
