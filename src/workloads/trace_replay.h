/**
 * @file
 * Trace-file workload: replays an on-disk trace as if it were one of
 * the in-process SPMD kernels.
 *
 * This is the consumer end of `trace_tools convert`: a ChampSim trace
 * imported to our format (or any v1/v2 trace file) becomes a runnable
 * workload — app "tracefile", input = the file path (single core) or a
 * prefix with `<prefix>.c<K>.rnrt` per-core files.  Every "iteration"
 * replays the same file, which matches how record-and-replay is
 * evaluated: iteration 0 records, later iterations replay the
 * identical access stream.
 *
 * The file carries only loads/stores/gaps; the RnR API calls of
 * Algorithm 1 are injected here per iteration (init + AddrBase over
 * the file's observed address span + start on iteration 0, replay
 * afterwards, teardown at the end), so the RnR prefetcher drives a
 * foreign trace exactly as it drives the native kernels.
 */
#ifndef RNR_WORKLOADS_TRACE_REPLAY_H
#define RNR_WORKLOADS_TRACE_REPLAY_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace rnr {

class TraceFileWorkload : public Workload
{
  public:
    /**
     * @param input path of a trace file (one core), or a prefix such
     *   that `<input>.c<K>.rnrt` exists for cores 0..opts.cores-1.
     * Throws std::runtime_error when a per-core file is missing or
     * unreadable (the constructor summarises every file up front).
     */
    TraceFileWorkload(std::string input, WorkloadOptions opts);

    /** Cores the on-disk layout provides: 1 when @p input is itself a
     *  file, else the count of consecutive `<input>.c<K>.rnrt` files
     *  (0 when neither exists). */
    static unsigned detectCores(const std::string &input);

    std::string name() const override { return "tracefile"; }
    void emitIteration(unsigned iter, bool is_last,
                       std::vector<TraceBuffer> &bufs) override;
    std::uint64_t inputBytes() const override { return span_bytes_; }
    std::uint64_t targetBytes() const override { return span_bytes_; }

  private:
    std::string corePath(unsigned core) const;

    std::string input_;
    bool single_file_ = false;
    std::uint64_t span_bytes_ = 0; ///< Observed address span of the trace.
    Addr base_addr_ = 0;           ///< Lowest load/store address.
};

} // namespace rnr

#endif // RNR_WORKLOADS_TRACE_REPLAY_H
