#include "workloads/labelprop.h"

#include <unordered_set>

namespace rnr {

LabelPropWorkload::LabelPropWorkload(Graph graph, WorkloadOptions opts)
    : Workload(opts)
{
    parts_ = partitionGraph(graph, opts.cores);
    in_graph_ = graph.relabel(parts_.order).transpose();

    const std::uint32_t V = in_graph_.num_vertices;
    labels_.resize(V);
    for (std::uint32_t v = 0; v < V; ++v)
        labels_[v] = v;

    off_base_ = space_.allocate("lp_offsets",
                                (V + 1) * sizeof(std::uint32_t));
    edge_base_ = space_.allocate("lp_in_edges",
                                 in_graph_.edges.size() *
                                     sizeof(std::uint32_t));
    label_base_ = space_.allocate("lp_labels",
                                  V * sizeof(std::uint32_t));
}

std::uint64_t
LabelPropWorkload::inputBytes() const
{
    return in_graph_.bytes() + labels_.size() * sizeof(std::uint32_t);
}

std::uint64_t
LabelPropWorkload::targetBytes() const
{
    return labels_.size() * sizeof(std::uint32_t);
}

DropletHint
LabelPropWorkload::dropletHint(unsigned core) const
{
    DropletHint hint;
    const std::uint32_t j0 = in_graph_.offsets[parts_.starts[core]];
    const std::uint32_t j1 = in_graph_.offsets[parts_.starts[core + 1]];
    hint.edge_base = edge_base_ + j0 * sizeof(std::uint32_t);
    hint.edge_count = j1 - j0;
    hint.edge_elem_bytes = sizeof(std::uint32_t);
    hint.target_of = [this, j0](std::uint64_t e) {
        return label_base_ +
               in_graph_.edges[j0 + e] * sizeof(std::uint32_t);
    };
    return hint;
}

IndexSniffer
LabelPropWorkload::impSniffer(unsigned core) const
{
    // A[B[i]] with A = labels (4 B elements) and B = the in-edge array.
    IndexSniffer s;
    const std::uint32_t j0 = in_graph_.offsets[parts_.starts[core]];
    const std::uint32_t j1 = in_graph_.offsets[parts_.starts[core + 1]];
    s.index_base = edge_base_ + j0 * sizeof(std::uint32_t);
    s.index_count = j1 - j0;
    s.index_elem_bytes = sizeof(std::uint32_t);
    s.value_of = [this, j0](std::uint64_t i) {
        return in_graph_.edges[j0 + i];
    };
    return s;
}

std::uint64_t
LabelPropWorkload::distinctLabels() const
{
    std::unordered_set<std::uint32_t> distinct(labels_.begin(),
                                               labels_.end());
    return distinct.size();
}

void
LabelPropWorkload::emitIteration(unsigned iter, bool is_last,
                                 std::vector<TraceBuffer> &bufs)
{
    retargetAll(bufs);

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (iter == 0) {
            rt.init(targetBytes());
            rt.addrBaseSet(label_base_,
                           labels_.size() * sizeof(std::uint32_t));
            if (opts_.window_size)
                rt.windowSizeSet(opts_.window_size);
            rt.addrEnable(label_base_);
            rt.start();
        } else {
            rt.replay();
        }
    }

    std::uint64_t changed = 0;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint32_t d = parts_.starts[c];
             d < parts_.starts[c + 1]; ++d) {
            t.load(off_base_ + d * sizeof(std::uint32_t), PcOffsets);
            t.instr(3);
            t.load(label_base_ + d * sizeof(std::uint32_t), PcLabelSelf);
            t.instr(2);
            std::uint32_t best = labels_[d];
            for (std::uint32_t j = in_graph_.offsets[d];
                 j < in_graph_.offsets[d + 1]; ++j) {
                t.load(edge_base_ + j * sizeof(std::uint32_t), PcEdges);
                t.instr(2);
                const std::uint32_t s = in_graph_.edges[j];
                t.load(label_base_ + s * sizeof(std::uint32_t),
                       PcLabelRead);
                t.instr(3);
                best = std::min(best, labels_[s]);
            }
            if (best != labels_[d]) {
                labels_[d] = best;
                ++changed;
            }
            t.store(label_base_ + d * sizeof(std::uint32_t),
                    PcLabelStore);
            t.instr(2);
        }
    }
    last_changed_ = changed;

    for (unsigned c = 0; c < opts_.cores; ++c) {
        if (is_last) {
            runtimes_[c]->endState();
            runtimes_[c]->end();
        }
    }
}

} // namespace rnr
