#include "workloads/partition.h"

#include <algorithm>
#include <deque>

namespace rnr {

Partitioning
partitionGraph(const Graph &g, unsigned parts)
{
    const std::uint32_t V = g.num_vertices;
    Partitioning out;
    out.partition.assign(V, ~0u);

    // Seeds spread evenly across the id space (spatial graphs lay ids
    // out spatially, so this spreads seeds geographically too).
    std::vector<std::deque<std::uint32_t>> frontier(parts);
    std::vector<std::uint32_t> sizes(parts, 0);
    for (unsigned p = 0; p < parts; ++p) {
        std::uint32_t seed = static_cast<std::uint32_t>(
            (std::uint64_t{V} * p) / parts);
        while (seed < V && out.partition[seed] != ~0u)
            ++seed;
        if (seed < V) {
            out.partition[seed] = p;
            ++sizes[p];
            frontier[p].push_back(seed);
        }
    }

    // Region growing: repeatedly expand the smallest partition.
    std::uint32_t assigned =
        static_cast<std::uint32_t>(std::count_if(
            out.partition.begin(), out.partition.end(),
            [](std::uint32_t x) { return x != ~0u; }));
    std::uint32_t scan = 0; // fallback cursor for disconnected vertices
    while (assigned < V) {
        // Pick the smallest partition that still has a frontier; if all
        // frontiers are empty, restart from an unassigned vertex.
        unsigned best = parts;
        for (unsigned p = 0; p < parts; ++p) {
            if (frontier[p].empty())
                continue;
            if (best == parts || sizes[p] < sizes[best])
                best = p;
        }
        if (best == parts) {
            while (scan < V && out.partition[scan] != ~0u)
                ++scan;
            if (scan >= V)
                break;
            unsigned smallest = 0;
            for (unsigned p = 1; p < parts; ++p) {
                if (sizes[p] < sizes[smallest])
                    smallest = p;
            }
            out.partition[scan] = smallest;
            ++sizes[smallest];
            ++assigned;
            frontier[smallest].push_back(scan);
            continue;
        }

        const std::uint32_t v = frontier[best].front();
        frontier[best].pop_front();
        for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
            const std::uint32_t w = g.edges[e];
            if (out.partition[w] == ~0u) {
                out.partition[w] = best;
                ++sizes[best];
                ++assigned;
                frontier[best].push_back(w);
            }
        }
    }

    // Relabel order: concatenate partitions, preserving id order within
    // a partition (keeps spatial graphs spatially sorted).
    out.order.reserve(V);
    out.starts.assign(parts + 1, 0);
    for (unsigned p = 0; p < parts; ++p) {
        out.starts[p] = static_cast<std::uint32_t>(out.order.size());
        for (std::uint32_t v = 0; v < V; ++v) {
            if (out.partition[v] == p)
                out.order.push_back(v);
        }
    }
    out.starts[parts] = V;
    return out;
}

double
Partitioning::edgeCut(const Graph &g) const
{
    if (g.numEdges() == 0)
        return 0.0;
    std::uint64_t cut = 0;
    for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
        for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
            if (partition[v] != partition[g.edges[e]])
                ++cut;
        }
    }
    return static_cast<double>(cut) / static_cast<double>(g.numEdges());
}

} // namespace rnr
