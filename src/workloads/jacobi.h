/**
 * @file
 * Jacobi iterative solver — the second iterative-solver family the
 * paper's introduction motivates.
 *
 *   x_next[i] = (b[i] - sum_{j != i} A_ij * x_curr[j]) / A_ii
 *
 * Unlike spCG's fixed-base p vector, Jacobi swaps x_curr/x_next every
 * iteration, so this workload exercises the same AddrBase enable/
 * disable swap protocol as Algorithm 1's PageRank, but in the sparse-
 * matrix domain.  Converges for the diagonally dominant matrices the
 * generators produce.
 */
#ifndef RNR_WORKLOADS_JACOBI_H
#define RNR_WORKLOADS_JACOBI_H

#include "workloads/sparse.h"
#include "workloads/workload.h"

namespace rnr {

class JacobiWorkload : public Workload
{
  public:
    JacobiWorkload(SparseMatrix matrix, WorkloadOptions opts);

    std::string name() const override { return "jacobi"; }
    void emitIteration(unsigned iter, bool is_last,
                       std::vector<TraceBuffer> &bufs) override;
    std::uint64_t inputBytes() const override;
    std::uint64_t targetBytes() const override;
    IndexSniffer impSniffer(unsigned core) const override;

    /** Max-norm of x_next - x_curr over the last iteration. */
    double lastDelta() const { return last_delta_; }
    const std::vector<double> &solution() const { return x_[cur_]; }
    const SparseMatrix &matrix() const { return A_; }

  private:
    enum Site : std::uint32_t {
        PcRowPtr = 401,
        PcCol,
        PcVal,
        PcXRead, ///< irregular x_curr[col[e]] (the RnR target)
        PcB,
        PcXStore,
    };

    SparseMatrix A_;
    std::vector<double> diag_;
    std::vector<double> b_;
    std::vector<double> x_[2];
    unsigned cur_ = 0;
    double last_delta_ = 0.0;
    std::vector<std::uint32_t> row_starts_;

    Addr rowptr_base_ = 0, col_base_ = 0, val_base_ = 0, b_base_ = 0;
    Addr x_base_[2] = {0, 0};
};

} // namespace rnr

#endif // RNR_WORKLOADS_JACOBI_H
