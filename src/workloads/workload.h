/**
 * @file
 * Common interface of the traced SPMD workloads.
 *
 * A workload owns the input data, the simulated address-space layout, a
 * per-core Tracer and a per-core RnrRuntime.  emitIteration() runs one
 * algorithm iteration natively (producing real numerical results) while
 * emitting the memory trace each core's slice generates, including the
 * RnR API calls at the positions Algorithm 1 places them:
 *
 *   iteration 0:        init / AddrBase.set / enable / start  -> Record
 *   iterations 1..n-1:  replay (+ base swap where applicable) -> Replay
 *   last iteration end: PrefetchState.end / RnR.end           -> Idle
 */
#ifndef RNR_WORKLOADS_WORKLOAD_H
#define RNR_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rnr_runtime.h"
#include "prefetch/droplet.h"
#include "prefetch/imp.h"
#include "trace/trace_buffer.h"
#include "trace/tracer.h"

namespace rnr {

/** Configuration shared by every workload. */
struct WorkloadOptions {
    unsigned cores = 4;
    /** Emit the RnR API calls (false = plain trace for baselines that
     *  must not see control records; the records are harmless to other
     *  prefetchers, so the default is to emit them). */
    bool use_rnr = true;
    /** Nonzero overrides the hardware-default window size (Fig 14). */
    std::uint32_t window_size = 0;
};

/** Base class wiring tracers, runtimes and the address space. */
class Workload
{
  public:
    explicit Workload(WorkloadOptions opts);
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * Emits the trace of iteration @p iter into @p bufs (one per core),
     * running the real computation as a side effect.
     * @param is_last emit the RnR teardown calls at the iteration end.
     */
    virtual void emitIteration(unsigned iter, bool is_last,
                               std::vector<TraceBuffer> &bufs) = 0;

    /** Bytes of all input arrays (off-chip traffic / Fig 13 basis). */
    virtual std::uint64_t inputBytes() const = 0;

    /** Bytes of the irregularly-accessed target structure(s). */
    virtual std::uint64_t targetBytes() const = 0;

    /**
     * Prepares workload-held simulation state for replaying iteration
     * @p iter from a stored trace *without* running emitIteration().
     *
     * Most workloads need nothing: their dropletHint()/impSniffer()
     * closures read only static structure (edges, column indices).
     * PageRank is the exception — its hint chases the p_curr base that
     * emitIteration() swaps every iteration — so it overrides this.
     * The trace-store replay path calls it before each iteration.
     */
    virtual void
    beginReplayIteration(unsigned iter)
    {
        (void)iter;
    }

    /** Edge->vertex indirection for DROPLET; empty when inapplicable. */
    virtual DropletHint dropletHint(unsigned core) const
    {
        (void)core;
        return {};
    }

    /** Index-array value capture for IMP; empty when inapplicable. */
    virtual IndexSniffer impSniffer(unsigned core) const
    {
        (void)core;
        return {};
    }

    unsigned cores() const { return opts_.cores; }
    AddressSpace &space() { return space_; }
    const WorkloadOptions &options() const { return opts_; }

  protected:
    /**
     * Points every tracer at this iteration's buffers.
     *
     * Also clears each buffer and reserves it to the record count of the
     * iteration the tracer emitted last — successive iterations of these
     * SPMD kernels trace nearly identical record counts, so the first
     * push after iteration 0 never reallocates mid-trace.
     */
    void retargetAll(std::vector<TraceBuffer> &bufs);

    WorkloadOptions opts_;
    AddressSpace space_;
    std::vector<std::unique_ptr<Tracer>> tracers_;
    std::vector<std::unique_ptr<RnrRuntime>> runtimes_;
    /** Per-core record count of the previously emitted iteration. */
    std::vector<std::size_t> prev_records_;
};

} // namespace rnr

#endif // RNR_WORKLOADS_WORKLOAD_H
