#include "workloads/workload.h"

#include <cassert>

namespace rnr {

Workload::Workload(WorkloadOptions opts) : opts_(opts)
{
    for (unsigned c = 0; c < opts_.cores; ++c) {
        tracers_.push_back(std::make_unique<Tracer>(nullptr));
        runtimes_.push_back(std::make_unique<RnrRuntime>(
            tracers_.back().get(), &space_, "core" + std::to_string(c),
            opts_.use_rnr));
    }
}

void
Workload::retargetAll(std::vector<TraceBuffer> &bufs)
{
    assert(bufs.size() == opts_.cores);
    for (unsigned c = 0; c < opts_.cores; ++c)
        tracers_[c]->retarget(&bufs[c]);
}

} // namespace rnr
