#include "workloads/workload.h"

#include <cassert>

namespace rnr {

Workload::Workload(WorkloadOptions opts)
    : opts_(opts), prev_records_(opts.cores, 0)
{
    for (unsigned c = 0; c < opts_.cores; ++c) {
        tracers_.push_back(std::make_unique<Tracer>(nullptr));
        runtimes_.push_back(std::make_unique<RnrRuntime>(
            tracers_.back().get(), &space_, "core" + std::to_string(c),
            opts_.use_rnr));
    }
}

void
Workload::retargetAll(std::vector<TraceBuffer> &bufs)
{
    assert(bufs.size() == opts_.cores);
    for (unsigned c = 0; c < opts_.cores; ++c) {
        // Sample the last iteration's size before clearing: callers
        // commonly pass the same buffers every iteration.
        if (const TraceBuffer *prev = tracers_[c]->buffer())
            if (prev->size() > 0)
                prev_records_[c] = prev->size();
        bufs[c].clear();
        bufs[c].reserve(prev_records_[c]);
        tracers_[c]->retarget(&bufs[c]);
    }
}

} // namespace rnr
