#include "workloads/hyperanf.h"

#include <bit>

#include "sim/rng.h"

namespace rnr {

HyperAnfWorkload::HyperAnfWorkload(const Graph &graph, WorkloadOptions opts,
                                   std::uint64_t seed)
    : Workload(opts)
{
    // Flatten the CSR into an explicit (src, dst) edge list — the edge-
    // centric representation x-stream streams from disk/memory.
    edge_list_.reserve(graph.numEdges());
    for (std::uint32_t v = 0; v < graph.num_vertices; ++v) {
        for (std::uint32_t e = graph.offsets[v]; e < graph.offsets[v + 1];
             ++e)
            edge_list_.push_back({v, graph.edges[e]});
    }

    // FM sketch init: each vertex sets one geometrically distributed bit
    // (P(bit b) = 2^-(b+1)), representing its own id.
    Rng rng(seed);
    sketches_.resize(graph.num_vertices);
    for (auto &s : sketches_) {
        const unsigned b = std::countr_zero(rng.next64() | (1ull << 63));
        s = 1ull << std::min(b, 62u);
    }

    // Contiguous edge partitions per core (streaming partitions).
    edge_starts_.resize(opts_.cores + 1);
    for (unsigned c = 0; c <= opts_.cores; ++c)
        edge_starts_[c] = edge_list_.size() * c / opts_.cores;

    edge_base_ = space_.allocate("anf_edges",
                                 edge_list_.size() * sizeof(EdgePair));
    sketch_base_ = space_.allocate("anf_sketches",
                                   sketches_.size() *
                                       sizeof(std::uint64_t));
}

std::uint64_t
HyperAnfWorkload::inputBytes() const
{
    return edge_list_.size() * sizeof(EdgePair) +
           sketches_.size() * sizeof(std::uint64_t);
}

std::uint64_t
HyperAnfWorkload::targetBytes() const
{
    return sketches_.size() * sizeof(std::uint64_t);
}

DropletHint
HyperAnfWorkload::dropletHint(unsigned core) const
{
    DropletHint hint;
    const std::uint64_t e0 = edge_starts_[core];
    hint.edge_base = edge_base_ + e0 * sizeof(EdgePair);
    hint.edge_count = edge_starts_[core + 1] - e0;
    hint.edge_elem_bytes = sizeof(EdgePair);
    const Addr sketch_base = sketch_base_;
    const std::vector<EdgePair> *edges = &edge_list_;
    hint.target_of = [edges, sketch_base, e0](std::uint64_t e) {
        return sketch_base +
               (*edges)[e0 + e].dst * sizeof(std::uint64_t);
    };
    return hint;
}

double
HyperAnfWorkload::estimate(std::uint32_t v) const
{
    // FM estimate: 2^R / phi, R = index of the lowest zero bit.
    const unsigned r = std::countr_one(sketches_[v]);
    return static_cast<double>(1ull << std::min(r, 62u)) / 0.77351;
}

double
HyperAnfWorkload::neighbourhoodFunction() const
{
    double sum = 0.0;
    for (std::uint32_t v = 0;
         v < static_cast<std::uint32_t>(sketches_.size()); ++v)
        sum += estimate(v);
    return sum;
}

void
HyperAnfWorkload::emitIteration(unsigned iter, bool is_last,
                                std::vector<TraceBuffer> &bufs)
{
    retargetAll(bufs);

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (iter == 0) {
            rt.init(targetBytes());
            rt.addrBaseSet(sketch_base_,
                           sketches_.size() * sizeof(std::uint64_t));
            if (opts_.window_size)
                rt.windowSizeSet(opts_.window_size);
            rt.addrEnable(sketch_base_);
            rt.start();
        } else {
            rt.replay();
        }
    }

    std::uint64_t changed = 0;
    for (unsigned c = 0; c < opts_.cores; ++c) {
        Tracer &t = *tracers_[c];
        for (std::uint64_t e = edge_starts_[c]; e < edge_starts_[c + 1];
             ++e) {
            const EdgePair &pair = edge_list_[e];
            t.load(edge_base_ + e * sizeof(EdgePair), PcEdgePair);
            t.instr(3);
            t.load(sketch_base_ + pair.src * sizeof(std::uint64_t),
                   PcSketchSrc);
            t.instr(3);
            t.load(sketch_base_ + pair.dst * sizeof(std::uint64_t),
                   PcSketchDst);
            t.instr(4);
            const std::uint64_t merged =
                sketches_[pair.dst] | sketches_[pair.src];
            if (merged != sketches_[pair.dst]) {
                sketches_[pair.dst] = merged;
                ++changed;
            }
            t.store(sketch_base_ + pair.dst * sizeof(std::uint64_t),
                    PcSketchStore);
            t.instr(3);
        }
    }
    last_changed_ = changed;

    for (unsigned c = 0; c < opts_.cores; ++c) {
        RnrRuntime &rt = *runtimes_[c];
        if (is_last) {
            rt.endState();
            rt.end();
        }
    }
}

} // namespace rnr
