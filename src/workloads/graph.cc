#include "workloads/graph.h"

#include <algorithm>
#include <cassert>

namespace rnr {

Graph
Graph::fromEdgeList(
    std::uint32_t num_vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list)
{
    std::sort(edge_list.begin(), edge_list.end());
    edge_list.erase(std::unique(edge_list.begin(), edge_list.end()),
                    edge_list.end());

    Graph g;
    g.num_vertices = num_vertices;
    g.offsets.assign(num_vertices + 1, 0);
    for (const auto &[src, dst] : edge_list) {
        assert(src < num_vertices && dst < num_vertices);
        ++g.offsets[src + 1];
    }
    for (std::uint32_t v = 0; v < num_vertices; ++v)
        g.offsets[v + 1] += g.offsets[v];
    g.edges.reserve(edge_list.size());
    for (const auto &[src, dst] : edge_list) {
        (void)src;
        g.edges.push_back(dst);
    }
    return g;
}

Graph
Graph::transpose() const
{
    Graph t;
    t.num_vertices = num_vertices;
    t.offsets.assign(num_vertices + 1, 0);
    for (std::uint32_t dst : edges)
        ++t.offsets[dst + 1];
    for (std::uint32_t v = 0; v < num_vertices; ++v)
        t.offsets[v + 1] += t.offsets[v];
    t.edges.resize(edges.size());
    std::vector<std::uint32_t> cursor(t.offsets.begin(),
                                      t.offsets.end() - 1);
    for (std::uint32_t src = 0; src < num_vertices; ++src) {
        for (std::uint32_t e = offsets[src]; e < offsets[src + 1]; ++e)
            t.edges[cursor[edges[e]]++] = src;
    }
    return t;
}

std::vector<std::uint32_t>
Graph::outDegrees() const
{
    std::vector<std::uint32_t> deg(num_vertices);
    for (std::uint32_t v = 0; v < num_vertices; ++v)
        deg[v] = degree(v);
    return deg;
}

Graph
Graph::relabel(const std::vector<std::uint32_t> &order) const
{
    assert(order.size() == num_vertices);
    // order[i] = old id that becomes new id i; build the inverse map.
    std::vector<std::uint32_t> new_id(num_vertices);
    for (std::uint32_t i = 0; i < num_vertices; ++i)
        new_id[order[i]] = i;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
    edge_list.reserve(edges.size());
    for (std::uint32_t src = 0; src < num_vertices; ++src) {
        for (std::uint32_t e = offsets[src]; e < offsets[src + 1]; ++e)
            edge_list.emplace_back(new_id[src], new_id[edges[e]]);
    }
    return fromEdgeList(num_vertices, std::move(edge_list));
}

std::uint64_t
Graph::bytes() const
{
    return offsets.size() * sizeof(std::uint32_t) +
           edges.size() * sizeof(std::uint32_t);
}

} // namespace rnr
