/**
 * @file
 * Label-propagation connected components / community detection — one of
 * the repeating-irregular applications the paper's introduction
 * motivates (graph clustering via parallel label propagation [31]).
 *
 * Min-label propagation: every vertex repeatedly adopts the minimum
 * label among itself and its in-neighbours, converging to per-component
 * minima.  The per-iteration access sequence over the label array is
 * irregular (indexed by the edge array) and identical every iteration —
 * the RnR sweet spot — and the label array lives at one fixed base
 * (no p_curr/p_next swap), covering the in-place update variant of the
 * programming interface.
 */
#ifndef RNR_WORKLOADS_LABELPROP_H
#define RNR_WORKLOADS_LABELPROP_H

#include "workloads/graph.h"
#include "workloads/partition.h"
#include "workloads/workload.h"

namespace rnr {

class LabelPropWorkload : public Workload
{
  public:
    LabelPropWorkload(Graph graph, WorkloadOptions opts);

    std::string name() const override { return "labelprop"; }
    void emitIteration(unsigned iter, bool is_last,
                       std::vector<TraceBuffer> &bufs) override;
    std::uint64_t inputBytes() const override;
    std::uint64_t targetBytes() const override;
    DropletHint dropletHint(unsigned core) const override;
    IndexSniffer impSniffer(unsigned core) const override;

    std::uint32_t label(std::uint32_t v) const { return labels_[v]; }
    /** Labels changed during the last iteration (0 = converged). */
    std::uint64_t lastChanged() const { return last_changed_; }
    /** Number of distinct labels (components) currently present. */
    std::uint64_t distinctLabels() const;
    const Graph &inGraph() const { return in_graph_; }

  private:
    enum Site : std::uint32_t {
        PcOffsets = 301,
        PcEdges,
        PcLabelRead, ///< irregular labels[s] (the RnR target)
        PcLabelSelf,
        PcLabelStore,
    };

    Graph in_graph_;
    Partitioning parts_;
    std::vector<std::uint32_t> labels_;
    std::uint64_t last_changed_ = 0;

    Addr off_base_ = 0, edge_base_ = 0, label_base_ = 0;
};

} // namespace rnr

#endif // RNR_WORKLOADS_LABELPROP_H
