/**
 * @file
 * Balanced locality-aware graph partitioner — the METIS stand-in for the
 * paper's 4-way SPMD partitioning (see DESIGN.md "Substitutions").
 *
 * Uses multi-seed BFS region growing: each partition grows from a seed in
 * rounds, always expanding the currently smallest partition along the
 * frontier, which (like METIS's objective) keeps partitions balanced and
 * edge-cut low for graphs with any community or spatial structure.
 */
#ifndef RNR_WORKLOADS_PARTITION_H
#define RNR_WORKLOADS_PARTITION_H

#include <cstdint>
#include <vector>

#include "workloads/graph.h"

namespace rnr {

/** Vertex-range assignment after relabelling. */
struct Partitioning {
    /** partition[v_old] = owning part of original vertex v_old. */
    std::vector<std::uint32_t> partition;
    /** order[i] = original id of new vertex i (part-contiguous). */
    std::vector<std::uint32_t> order;
    /** New-id range [starts[p], starts[p+1]) belongs to part p. */
    std::vector<std::uint32_t> starts;

    /** Fraction of edges crossing partitions (quality probe). */
    double edgeCut(const Graph &g) const;
};

/** Partitions @p g into @p parts balanced BFS regions. */
Partitioning partitionGraph(const Graph &g, unsigned parts);

} // namespace rnr

#endif // RNR_WORKLOADS_PARTITION_H
