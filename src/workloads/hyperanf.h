/**
 * @file
 * Edge-centric Hyper-ANF (neighbourhood-function approximation) in the
 * x-stream style the paper evaluates.
 *
 * Every vertex carries a Flajolet-Martin sketch word (the HyperLogLog
 * ancestor used by the original ANF; union is a bitwise OR, which keeps
 * the traced kernel identical in shape to HyperANF's register-max merge
 * while staying one word per vertex — see DESIGN.md "Substitutions").
 * Each iteration streams the edge list (partitioned contiguously across
 * cores, as x-stream does) and merges hc[src] into hc[dst]; the two
 * sketch reads are the irregular RnR target.
 */
#ifndef RNR_WORKLOADS_HYPERANF_H
#define RNR_WORKLOADS_HYPERANF_H

#include "workloads/graph.h"
#include "workloads/workload.h"

namespace rnr {

class HyperAnfWorkload : public Workload
{
  public:
    HyperAnfWorkload(const Graph &graph, WorkloadOptions opts,
                     std::uint64_t seed = 42);

    std::string name() const override { return "hyperanf"; }
    void emitIteration(unsigned iter, bool is_last,
                       std::vector<TraceBuffer> &bufs) override;
    std::uint64_t inputBytes() const override;
    std::uint64_t targetBytes() const override;
    DropletHint dropletHint(unsigned core) const override;

    /** Estimated neighbourhood size of @p v at the current radius. */
    double estimate(std::uint32_t v) const;
    /** Sum of estimates over all vertices (the neighbourhood function). */
    double neighbourhoodFunction() const;
    /** Sketches that changed during the last iteration. */
    std::uint64_t lastChanged() const { return last_changed_; }

  private:
    enum Site : std::uint32_t {
        PcEdgePair = 101, ///< streaming (src, dst) load
        PcSketchSrc,      ///< irregular hc[src] read (target)
        PcSketchDst,      ///< irregular hc[dst] read (target)
        PcSketchStore,
    };

    struct EdgePair {
        std::uint32_t src;
        std::uint32_t dst;
    };

    std::vector<EdgePair> edge_list_;
    std::vector<std::uint64_t> sketches_;
    std::vector<std::uint64_t> edge_starts_; ///< per-core edge ranges.

    Addr edge_base_ = 0;
    Addr sketch_base_ = 0;
    std::uint64_t last_changed_ = 0;
};

} // namespace rnr

#endif // RNR_WORKLOADS_HYPERANF_H
