/**
 * @file
 * Synthetic sparse-matrix generators standing in for the paper's
 * SuiteSparse inputs (see DESIGN.md "Substitutions").  Each reproduces
 * the sparsity *character* of its namesake:
 *
 *  - atmosmodj — 3-D atmospheric model: 7-point stencil, tightly banded,
 *                excellent column locality.
 *  - bbmat     — CFD Beam-Warming matrix: moderate bandwidth with
 *                scattered off-band entries.
 *  - nlpkkt80  — KKT optimisation system: 2x2 block structure plus
 *                far-away constraint coupling (arrow-ish), mixed
 *                locality.
 *  - pdb1HYS   — protein structure: dense clusters (residue contact
 *                blocks) with long-range contacts, high nnz/row.
 */
#ifndef RNR_WORKLOADS_SPARSE_GEN_H
#define RNR_WORKLOADS_SPARSE_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/sparse.h"

namespace rnr {

SparseMatrix makeStencilMatrix(std::uint32_t nx, std::uint32_t ny,
                               std::uint32_t nz);
SparseMatrix makeBandedScatterMatrix(std::uint32_t n,
                                     std::uint32_t band_halfwidth,
                                     std::uint32_t per_row,
                                     double scatter_fraction,
                                     std::uint64_t seed = 21);
SparseMatrix makeKktMatrix(std::uint32_t n, std::uint32_t block,
                           std::uint64_t seed = 22);
SparseMatrix makeClusteredMatrix(std::uint32_t n,
                                 std::uint32_t cluster,
                                 std::uint32_t per_row,
                                 std::uint64_t seed = 23);

/** One named matrix input of the evaluation. */
struct MatrixInput {
    std::string name;
    SparseMatrix matrix;
};

/** The four Table III matrix inputs at the scaled sizes. */
std::vector<std::string> matrixInputNames();
MatrixInput makeMatrixInput(const std::string &name);

} // namespace rnr

#endif // RNR_WORKLOADS_SPARSE_GEN_H
