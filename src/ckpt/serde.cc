#include "ckpt/serde.h"

namespace rnr {
namespace ckpt {

const char *
toString(CkptIoStatus s)
{
    switch (s) {
    case CkptIoStatus::Ok: return "ok";
    case CkptIoStatus::OpenFail: return "open-fail";
    case CkptIoStatus::WriteFail: return "write-fail";
    case CkptIoStatus::BadMagic: return "bad-magic";
    case CkptIoStatus::BadVersion: return "bad-version";
    case CkptIoStatus::Truncated: return "truncated";
    case CkptIoStatus::BadChecksum: return "bad-checksum";
    case CkptIoStatus::BadSection: return "bad-section";
    case CkptIoStatus::KeyMismatch: return "key-mismatch";
    }
    return "unknown";
}

std::string
CkptIoResult::message() const
{
    std::string m = toString(status);
    if (!detail.empty()) {
        m += ": ";
        m += detail;
    }
    return m;
}

} // namespace ckpt
} // namespace rnr
