#include "ckpt/switch_schedule.h"

#include <algorithm>
#include <vector>

#include "ckpt/serde.h"
#include "core/rnr_prefetcher.h"
#include "mem/memory_system.h"
#include "sim/config.h"
#include "sim/rng.h"

namespace rnr {
namespace ckpt {

namespace {

/** Per-tenant layout: disjoint target ranges and metadata tables. */
constexpr Addr kTargetBase = 0x10000000;
constexpr Addr kTargetStride = 0x04000000;
constexpr Addr kSeqBase = 0x70000000;
constexpr Addr kDivStride = 0x01000000;
constexpr Addr kTableStride = 0x02000000;

/** Ticks between accesses; generous enough to keep misses ordered. */
constexpr Tick kAccessGap = 800;

/** A machine small enough that cross-tenant cache pollution is real. */
MachineConfig
stormMachine()
{
    MachineConfig m = MachineConfig::scaledDefault();
    m.cores = 1;
    m.l1d.size_bytes = 4 * 1024;
    m.l2.size_bytes = 16 * 1024;
    m.llc.size_bytes = 128 * 1024;
    return m;
}

std::vector<std::uint8_t>
saveTenant(RnrPrefetcher &pf)
{
    Ser s;
    pf.visitState(s);
    return s.take();
}

void
loadTenant(RnrPrefetcher &pf, const std::vector<std::uint8_t> &blob)
{
    Deser d(blob);
    pf.visitState(d);
}

/** The four Fig 11 timeliness counters, for delta accounting across a
 *  quantum (restores may roll the absolute values back). */
struct TimelinessSnap {
    std::uint64_t ontime, early, late, oow;

    static TimelinessSnap
    capture(const RnrPrefetcher &pf)
    {
        return {pf.ctr().pf_ontime.value(), pf.ctr().pf_early.value(),
                pf.ctr().pf_late.value(),
                pf.ctr().pf_out_of_window.value()};
    }
};

} // namespace

double
SwitchStormResult::accuracy() const
{
    return pf_issued ? static_cast<double>(pf_useful) /
                           static_cast<double>(pf_issued)
                     : 0.0;
}

double
SwitchStormResult::hitRate() const
{
    return replay_accesses ? static_cast<double>(replay_hits) /
                                 static_cast<double>(replay_accesses)
                           : 0.0;
}

SwitchStormResult
runSwitchStorm(const SwitchStormConfig &cfg)
{
    SwitchStormResult res;
    res.arch_state_bytes = RnrPrefetcher::contextSwitchBytes();

    MemorySystem ms(stormMachine());
    RnrPrefetcher::Options opts;
    opts.window_size = cfg.window_size;
    RnrPrefetcher pf(opts);
    ms.setPrefetcher(0, &pf);

    Tick now = 0;
    auto ctl = [&](RnrOp op, Addr p0 = 0, std::uint64_t p1 = 0) {
        pf.onControl(TraceRecord::control(op, p0, p1), now);
    };
    auto access = [&](Addr a) {
        const DemandResult r = ms.demandAccess(0, a, false, 1, now);
        now += kAccessGap;
        return r;
    };

    // Deterministic per-tenant traversal patterns.
    const std::uint64_t span_bytes =
        std::uint64_t{cfg.span_blocks} * kBlockSize;
    std::vector<std::vector<Addr>> pattern(cfg.tenants);
    for (unsigned t = 0; t < cfg.tenants; ++t) {
        Rng rng(cfg.seed + t * 0x9e3779b97f4a7c15ull);
        const Addr base = kTargetBase + Addr{t} * kTargetStride;
        pattern[t].reserve(cfg.seq_len);
        for (unsigned i = 0; i < cfg.seq_len; ++i)
            pattern[t].push_back(
                base + (rng.next64() % cfg.span_blocks) * kBlockSize);
    }

    // The pristine engine state every tenant starts from.
    const std::vector<std::uint8_t> pristine = saveTenant(pf);

    // ---- Record phase: each tenant records uninterrupted, then its
    // paused post-record state becomes the tenant's initial buffer.
    std::vector<std::vector<std::uint8_t>> replay0(cfg.tenants);
    for (unsigned t = 0; t < cfg.tenants; ++t) {
        loadTenant(pf, pristine);
        const Addr base = kTargetBase + Addr{t} * kTargetStride;
        ctl(RnrOp::Init, kSeqBase + Addr{t} * kTableStride,
            kSeqBase + kDivStride + Addr{t} * kTableStride);
        ctl(RnrOp::AddrBaseSet, base, span_bytes);
        ctl(RnrOp::AddrEnable, base);
        ctl(RnrOp::Start);
        for (Addr a : pattern[t])
            access(a);
        res.recorded_entries += pf.sequence().size();
        ctl(RnrOp::Pause); // paused_from = Record
        replay0[t] = saveTenant(pf);
    }

    // Drop the record-phase cache contents so replay-phase hits come
    // from replay prefetching (or genuine reuse), not record warmth.
    ms.l1d(0).reset();
    ms.l2(0).reset();
    ms.llc().reset();
    ms.resetTiming();

    const std::uint64_t issued0 =
        ms.l2(0).ctr().prefetches_issued.value();
    const std::uint64_t useful0 =
        ms.l2(0).ctr().prefetch_useful.value() +
        ms.l2(0).ctr().demand_merged_into_prefetch.value();

    // ---- Replay storm: round-robin quanta across the tenants.
    std::vector<std::vector<std::uint8_t>> live = replay0;
    std::vector<bool> replay_started(cfg.tenants, false);
    std::vector<unsigned> cursor(cfg.tenants, 0);
    const unsigned quantum = std::max(1u, cfg.quantum);
    bool work_left = true;
    while (work_left) {
        work_left = false;
        for (unsigned t = 0; t < cfg.tenants; ++t) {
            if (cursor[t] >= cfg.seq_len)
                continue;
            work_left = true;

            // Switch-in.  With save/restore the tenant continues from
            // its own buffer; without, the post-record state is all
            // software can reconstruct, so replay restarts at entry 0.
            if (cfg.save_restore) {
                loadTenant(pf, live[t]);
                ctl(RnrOp::Resume);
                if (!replay_started[t]) {
                    ctl(RnrOp::Replay);
                    replay_started[t] = true;
                }
            } else {
                loadTenant(pf, replay0[t]);
                ctl(RnrOp::Resume);
                ctl(RnrOp::Replay);
            }
            const TimelinessSnap in = TimelinessSnap::capture(pf);

            const unsigned end =
                std::min(cursor[t] + quantum, cfg.seq_len);
            for (; cursor[t] < end; ++cursor[t]) {
                const DemandResult r = access(pattern[t][cursor[t]]);
                ++res.replay_accesses;
                if (r.l1_hit || r.l2_hit)
                    ++res.replay_hits;
            }

            // Switch-out.
            ctl(RnrOp::Pause);
            const TimelinessSnap out = TimelinessSnap::capture(pf);
            res.pf_ontime += out.ontime - in.ontime;
            res.pf_early += out.early - in.early;
            res.pf_late += out.late - in.late;
            res.pf_out_of_window += out.oow - in.oow;
            if (cfg.save_restore) {
                live[t] = saveTenant(pf);
                res.state_bytes_per_switch = std::max(
                    res.state_bytes_per_switch,
                    static_cast<std::uint64_t>(live[t].size()));
            }
            ++res.switches;
        }
    }

    res.pf_issued =
        ms.l2(0).ctr().prefetches_issued.value() - issued0;
    res.pf_useful = ms.l2(0).ctr().prefetch_useful.value() +
                    ms.l2(0).ctr().demand_merged_into_prefetch.value() -
                    useful0;
    return res;
}

} // namespace ckpt
} // namespace rnr
