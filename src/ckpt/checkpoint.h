/**
 * @file
 * `rnr-ckpt-v1` snapshot codec: a versioned, checksummed container of
 * named sections, each an exact-u64 archive (ckpt/serde.h).
 *
 * Two snapshot flavours share the format:
 *
 *  - *input snapshots* (window 0, full_key empty, Input section only) —
 *    the serialized generated workload input (CSR graph / matrix),
 *    keyed by ExperimentConfig::workloadKey().  This is the
 *    checkpoint-fork sweep's unit of sharing: the warm-up (input
 *    generation) runs once, every other config of the same workload key
 *    forks the snapshot instead.
 *
 *  - *full snapshots* (window k >= 1, full_key set) — the complete
 *    simulation state at an iteration boundary: every cache, MSHR,
 *    DRAM queue, TLB, core, prefetcher (including the whole RnR
 *    tables/FSM) plus the harness's per-iteration results so far.
 *    Restoring and continuing is bit-identical to the uninterrupted
 *    run (tests/ckpt/checkpoint_test.cc enforces it for both
 *    RNR_KERNEL modes).
 *
 * Wire layout (all integers 8 LE bytes, strings length-prefixed):
 *
 *   "RNRCKPT1"                magic, 8 raw bytes
 *   u64  version = 1
 *   str  workload_key
 *   str  full_key             empty = input-only snapshot
 *   u64  window               completed iterations at capture
 *   u64  section_count
 *   section_count x { u64 id, u64 byte_len, payload }
 *   u64  checksum             FNV-1a64 of every preceding byte
 *
 * Readers validate magic, version and checksum before touching any
 * payload; every failure is a typed CkptIoStatus, never a crash —
 * CheckpointStore (ckpt/ckpt_store.h) quarantines on any of them.
 */
#ifndef RNR_CKPT_CHECKPOINT_H
#define RNR_CKPT_CHECKPOINT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serde.h"

namespace rnr {
namespace ckpt {

/** Thrown by restore paths when a snapshot fails to decode; the
 *  caller quarantines the snapshot and re-produces it (mirrors the
 *  trace store's corrupt-entry handling). */
struct CorruptSnapshot : std::runtime_error {
    explicit CorruptSnapshot(const CkptIoResult &r)
        : std::runtime_error(r.message()), status(r.status)
    {
    }
    CkptIoStatus status;
};

/** X-macro over the section registry: X(name, id).  Ids are wire ABI —
 *  append only.  toString()/sectionName() and the SnapshotCoversEvery-
 *  Section test iterate this list, so adding a section updates the
 *  enum, the names and the coverage assertion in one edit. */
#define RNR_CKPT_SECTIONS(X)                                                  \
    X(Meta, 1)        /* kernel mode, cores, total iterations        */       \
    X(Input, 2)       /* generated workload input (CSR arrays)       */       \
    X(Workload, 3)    /* workload-held replay state (reserved)       */       \
    X(System, 4)      /* cores + caches + TLBs + DRAM (System tree)  */       \
    X(Prefetchers, 5) /* per-core prefetcher state (virtual pairs)   */       \
    X(Harness, 6)     /* per-iteration IterStats booked so far       */

enum class SectionId : std::uint64_t {
#define RNR_CKPT_SECTION_ENUM(name, id) name = id,
    RNR_CKPT_SECTIONS(RNR_CKPT_SECTION_ENUM)
#undef RNR_CKPT_SECTION_ENUM
};

/** "Meta", "Input", ... (registry spelling); "?" when unknown. */
const char *toString(SectionId id);

/** Every registered section id, in X-macro order. */
const std::vector<SectionId> &allSectionIds();

inline constexpr char kCkptMagic[8] = {'R', 'N', 'R', 'C',
                                       'K', 'P', 'T', '1'};
inline constexpr std::uint64_t kCkptVersion = 1;

/** Identity of a snapshot (who it belongs to, when it was taken). */
struct SnapshotHeader {
    std::string workload_key; ///< ExperimentConfig::workloadKey().
    std::string full_key;     ///< key(); empty = input-only snapshot.
    std::uint64_t window = 0; ///< Completed iterations at capture.
};

/** One section's place in a parsed snapshot. */
struct SectionInfo {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;
};

/** Everything `trace_tools ckpt inspect` prints about a snapshot. */
struct SnapshotInfo {
    SnapshotHeader header;
    std::vector<SectionInfo> sections;
    std::uint64_t total_bytes = 0;
    std::uint64_t checksum = 0;
};

/**
 * Assembles a snapshot: open sections one at a time, write fields into
 * the returned Ser, then finish() to get the checksummed blob.
 *
 *     SnapshotWriter w({wkey, key, 2});
 *     sys.visitState(w.section(SectionId::System));
 *     std::vector<std::uint8_t> blob = w.finish();
 */
class SnapshotWriter
{
  public:
    explicit SnapshotWriter(SnapshotHeader header)
        : header_(std::move(header))
    {
    }

    /** Begins section @p id (closing any open one) and returns the
     *  archive its fields go into.  Each id may be opened once. */
    Ser &section(SectionId id);

    /** Closes the open section and returns the full checksummed blob.
     *  The writer is spent afterwards. */
    std::vector<std::uint8_t> finish();

  private:
    void closeSection();

    SnapshotHeader header_;
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
        sections_;
    Ser cur_;
    bool open_ = false;
    std::uint64_t cur_id_ = 0;
};

/**
 * Parses and validates a snapshot blob (magic, version, checksum,
 * section table), then hands out per-section Deser views.  The blob
 * must outlive the reader and its Desers (views, not copies).
 */
class SnapshotReader
{
  public:
    /** Validates the container; any failure is typed and the reader
     *  stays unusable.  Checks everything up front so a later
     *  section() cannot fail structurally. */
    CkptIoResult parse(const std::vector<std::uint8_t> &blob);

    const SnapshotHeader &header() const { return header_; }
    const std::vector<SectionInfo> &sections() const { return sections_; }
    std::uint64_t checksum() const { return checksum_; }

    bool hasSection(SectionId id) const;

    /** Bounds-checked archive over @p id's payload; an absent section
     *  yields an empty archive (first read latches Truncated). */
    Deser section(SectionId id) const;

  private:
    SnapshotHeader header_;
    std::vector<SectionInfo> sections_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> offsets_;
    const std::uint8_t *data_ = nullptr;
    std::uint64_t checksum_ = 0;
};

/** Parses just the container metadata (header, section table, sizes)
 *  of @p path — the `trace_tools ckpt inspect` backend. */
CkptIoResult inspectSnapshotFile(const std::string &path,
                                 SnapshotInfo &out);

/** Publishes @p blob at @p path with the store discipline: write to a
 *  process-unique temp file in the same directory, fsync, rename. */
CkptIoResult writeSnapshotFile(const std::string &path,
                               const std::vector<std::uint8_t> &blob);

/** Reads the whole file; open/short-read failures are typed. */
CkptIoResult readSnapshotFile(const std::string &path,
                              std::vector<std::uint8_t> &out);

} // namespace ckpt
} // namespace rnr

#endif // RNR_CKPT_CHECKPOINT_H
