/**
 * @file
 * Exact-u64 binary archive pair for the checkpoint subsystem.
 *
 * `Ser` appends fields to a byte buffer; `Deser` reads them back with
 * bounds checking.  Every scalar — integer of any width, enum, bool,
 * double — travels as exactly 8 little-endian bytes, so u64 counters
 * round-trip exactly (never through a double or text) and a field list
 * has one unambiguous wire size.  Bulk data (`pod()`) is a u64 count
 * followed by the raw little-endian element bytes.
 *
 * The two classes expose the *same member names and shapes*, so a
 * component serialises and deserialises through one shared visitor:
 *
 *     template <class Ar> void visitState(Ar &ar) {
 *         ar.scalar(clock_);
 *         ar.pod(table_);
 *         stats_.visitState(ar);
 *     }
 *
 * One field list drives both directions — save and load cannot drift
 * apart, which is the whole point (the same trick as the
 * RNR_ITER_STAT_FIELDS X-macro, applied to binary state).  Components
 * that sit behind a virtual interface (Prefetcher) project the visitor
 * through `saveState(Ser&)`/`loadState(Deser&)` using
 * RNR_CKPT_DEFINE_STATE below.
 *
 * A failed read (truncated input) latches an error: every subsequent
 * scalar yields zero and the caller checks `deser.ok()` once at the
 * end, so visitors stay free of per-field error plumbing.
 */
#ifndef RNR_CKPT_SERDE_H
#define RNR_CKPT_SERDE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace rnr {
namespace ckpt {

/** Why a snapshot could not be written or read back. */
enum class CkptIoStatus : std::uint8_t {
    Ok,
    OpenFail,    ///< file could not be opened/created (errno in detail)
    WriteFail,   ///< short write / fsync / rename failure
    BadMagic,    ///< not a checkpoint file
    BadVersion,  ///< newer (or garbage) format version
    Truncated,   ///< ran out of bytes mid-field
    BadChecksum, ///< payload bytes do not match the FNV-1a trailer
    BadSection,  ///< malformed section table or section payload
    KeyMismatch, ///< snapshot belongs to a different experiment key
};

const char *toString(CkptIoStatus s);

/** Typed outcome of a snapshot I/O operation. */
struct CkptIoResult {
    CkptIoStatus status = CkptIoStatus::Ok;
    std::string detail;

    bool ok() const { return status == CkptIoStatus::Ok; }
    /** "bad-checksum: <detail>" (or "ok"). */
    std::string message() const;

    static CkptIoResult
    fail(CkptIoStatus s, std::string d = {})
    {
        return CkptIoResult{s, std::move(d)};
    }
};

/** FNV-1a 64-bit, the repo's standard content hash (trace store keys
 *  use the same function); doubles as the snapshot checksum. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t n,
        std::uint64_t h = 1469598103934665603ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Saving archive: appends exact-u64 fields to an in-memory buffer. */
class Ser
{
  public:
    static constexpr bool kLoading = false;

    /** Arithmetic / enum / bool / double field, written as 8 LE bytes.
     *  Takes a mutable reference only so the signature matches Deser's
     *  inside a shared visitState; the value is not modified. */
    template <typename T>
    void
    scalar(T &v)
    {
        putU64(encode(v));
    }

    /** Rvalue-friendly overload for computed values (sizes, flags). */
    template <typename T>
    void
    scalar(const T &v)
    {
        putU64(encode(const_cast<T &>(v)));
    }

    /** Raw bytes, verbatim. */
    void
    raw(const void *p, std::size_t n)
    {
        const std::uint8_t *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /** Trivially-copyable vector: u64 count + raw element bytes.  The
     *  elements are stored in host (little-endian) layout — the bulk
     *  path for multi-megabyte tables (cache arrays, CSR inputs). */
    template <typename T>
    void
    pod(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = v.size();
        scalar(n);
        raw(v.data(), v.size() * sizeof(T));
    }

    /** Length-prefixed string. */
    void
    str(std::string &s)
    {
        std::uint64_t n = s.size();
        scalar(n);
        raw(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::size_t size() const { return buf_.size(); }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    template <typename T>
    static std::uint64_t
    encode(T &v)
    {
        if constexpr (std::is_same_v<T, double>) {
            std::uint64_t u;
            std::memcpy(&u, &v, sizeof u);
            return u;
        } else if constexpr (std::is_enum_v<T>) {
            return static_cast<std::uint64_t>(
                static_cast<std::underlying_type_t<T>>(v));
        } else if constexpr (std::is_signed_v<T>) {
            // Sign-extend through i64 so negatives round-trip exactly.
            return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
        } else {
            return static_cast<std::uint64_t>(v);
        }
    }

    void
    putU64(std::uint64_t u)
    {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(u >> (8 * i));
        raw(b, 8);
    }

    std::vector<std::uint8_t> buf_;
};

/** Loading archive: bounds-checked reads over a byte span.  The first
 *  short read latches `Truncated`; later reads return zeroes so a
 *  visitor never indexes garbage, and the caller checks ok() once. */
class Deser
{
  public:
    static constexpr bool kLoading = true;

    Deser(const std::uint8_t *data, std::size_t n) : p_(data), n_(n) {}
    explicit Deser(const std::vector<std::uint8_t> &buf)
        : Deser(buf.data(), buf.size())
    {
    }

    template <typename T>
    void
    scalar(T &v)
    {
        const std::uint64_t u = takeU64();
        if constexpr (std::is_same_v<T, double>) {
            std::memcpy(&v, &u, sizeof v);
        } else if constexpr (std::is_enum_v<T>) {
            v = static_cast<T>(
                static_cast<std::underlying_type_t<T>>(u));
        } else if constexpr (std::is_signed_v<T>) {
            v = static_cast<T>(static_cast<std::int64_t>(u));
        } else {
            v = static_cast<T>(u);
        }
    }

    void
    raw(void *out, std::size_t n)
    {
        if (!take(out, n))
            std::memset(out, 0, n);
    }

    template <typename T>
    void
    pod(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = 0;
        scalar(n);
        if (n > remaining() / sizeof(T)) {
            fail("pod count " + std::to_string(n) + " exceeds " +
                 std::to_string(remaining()) + " remaining bytes");
            v.clear();
            return;
        }
        v.resize(static_cast<std::size_t>(n));
        take(v.data(), v.size() * sizeof(T));
    }

    void
    str(std::string &s)
    {
        std::uint64_t n = 0;
        scalar(n);
        if (n > remaining()) {
            fail("string length " + std::to_string(n) + " exceeds " +
                 std::to_string(remaining()) + " remaining bytes");
            s.clear();
            return;
        }
        s.resize(static_cast<std::size_t>(n));
        take(s.data(), s.size());
    }

    bool ok() const { return !failed_; }
    std::size_t remaining() const { return n_ - pos_; }
    std::size_t pos() const { return pos_; }
    const std::string &error() const { return error_; }

    /** Marks the archive failed (also used by codec-level validation). */
    void
    fail(std::string why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = std::move(why);
        }
    }

    /** Ok, or Truncated carrying the first failure's detail. */
    CkptIoResult
    result() const
    {
        if (!failed_)
            return CkptIoResult{};
        return CkptIoResult::fail(CkptIoStatus::Truncated, error_);
    }

  private:
    bool
    take(void *out, std::size_t n)
    {
        if (failed_ || n > remaining()) {
            fail("read of " + std::to_string(n) + " bytes at offset " +
                 std::to_string(pos_) + " of " + std::to_string(n_));
            return false;
        }
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
        return true;
    }

    std::uint64_t
    takeU64()
    {
        std::uint8_t b[8];
        if (!take(b, 8))
            return 0;
        std::uint64_t u = 0;
        for (int i = 0; i < 8; ++i)
            u |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return u;
    }

    const std::uint8_t *p_;
    std::size_t n_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

/** Archives one value through whichever protocol it supports: scalars
 *  via scalar(), anything else via its own visitState().  Lets generic
 *  containers (Ring<T>) hold both plain ticks and visitor structs. */
template <class Ar, typename T>
void
visitValue(Ar &ar, T &v)
{
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>)
        ar.scalar(v);
    else
        v.visitState(ar);
}

/**
 * Validates a just-read element count against the bytes actually left
 * in the archive (each element costs at least @p min_bytes_per_elem),
 * so a corrupt count can neither over-allocate nor spin a fill loop.
 * Always true on the saving side.
 */
template <class Ar>
bool
checkCount(Ar &ar, std::uint64_t n, std::size_t min_bytes_per_elem)
{
    if constexpr (Ar::kLoading) {
        const std::size_t per =
            min_bytes_per_elem ? min_bytes_per_elem : 1;
        if (n > ar.remaining() / per) {
            ar.fail("element count " + std::to_string(n) +
                    " exceeds remaining bytes");
            return false;
        }
    }
    (void)ar;
    (void)n;
    return true;
}

/** Element-wise vector field: u64 count + one visitValue per element.
 *  For element types with padding or their own visitState — the
 *  padding-free bulk alternative is Ser/Deser::pod(). */
template <class Ar, typename T>
void
seq(Ar &ar, std::vector<T> &v)
{
    std::uint64_t n = v.size();
    ar.scalar(n);
    if constexpr (Ar::kLoading) {
        if (!checkCount(ar, n, 8)) {
            v.clear();
            return;
        }
        v.assign(static_cast<std::size_t>(n), T{});
    }
    for (auto &e : v)
        visitValue(ar, e);
}

/** Scalar list field (std::list order preserved): u64 count + elements
 *  front-to-back.  Used for the LRU/FIFO order lists that accompany the
 *  prefetchers' hash tables. */
template <class Ar, class List>
void
scalarList(Ar &ar, List &l)
{
    std::uint64_t n = l.size();
    ar.scalar(n);
    if constexpr (Ar::kLoading) {
        l.clear();
        if (!checkCount(ar, n, 8))
            return;
        for (std::uint64_t i = 0; i < n; ++i) {
            typename List::value_type v{};
            ar.scalar(v);
            l.push_back(v);
        }
    } else {
        for (auto &v : l)
            ar.scalar(v);
    }
}

/** Scalar-keyed map field: u64 count + (key, value) scalar pairs in the
 *  map's iteration order.  Loading rebuilds via operator[], so the
 *  restored map has identical contents; hash-map iteration order may
 *  differ from the original, which is fine for key-only lookups (every
 *  serialized map in the simulator is one). */
template <class Ar, class Map>
void
kvMap(Ar &ar, Map &m)
{
    std::uint64_t n = m.size();
    ar.scalar(n);
    if constexpr (Ar::kLoading) {
        m.clear();
        if (!checkCount(ar, n, 16))
            return;
        for (std::uint64_t i = 0; i < n; ++i) {
            typename Map::key_type k{};
            typename Map::mapped_type v{};
            ar.scalar(k);
            ar.scalar(v);
            m[k] = v;
        }
    } else {
        for (auto &kv : m) {
            ar.scalar(kv.first);
            ar.scalar(kv.second);
        }
    }
}

} // namespace ckpt
} // namespace rnr

/**
 * Declares the concrete save/load pair on a class whose state lives in
 * a `template <class Ar> void visitState(Ar&)` member.  Virtual
 * components (Prefetcher hierarchy) add `override`.
 */
#define RNR_CKPT_DECLARE_STATE()                                             \
    void saveState(::rnr::ckpt::Ser &ar) const;                              \
    void loadState(::rnr::ckpt::Deser &ar)

#define RNR_CKPT_DECLARE_STATE_OVERRIDE()                                    \
    void saveState(::rnr::ckpt::Ser &ar) const override;                     \
    void loadState(::rnr::ckpt::Deser &ar) override

/** Defines the pair declared above, forwarding both directions to the
 *  one shared visitState so the field lists cannot diverge. */
#define RNR_CKPT_DEFINE_STATE(Class)                                         \
    void Class::saveState(::rnr::ckpt::Ser &ar) const                        \
    {                                                                        \
        const_cast<Class *>(this)->visitState(ar);                           \
    }                                                                        \
    void Class::loadState(::rnr::ckpt::Deser &ar) { visitState(ar); }

#endif // RNR_CKPT_SERDE_H
