#include "ckpt/ckpt_store.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "ckpt/checkpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace fs = std::filesystem;

namespace rnr {
namespace ckpt {

namespace {

/** Null when RNR_METRICS=0; mirrors the store's own counters so one
 *  farm-wide scrape sees snapshot activity without a store handle. */
struct CkptMetrics {
    obs::Counter *warmups;
    obs::Counter *forks;
    obs::Counter *saves;
    obs::Counter *restores;
    obs::Counter *quarantines;
    CkptMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        warmups = reg.counter("rnr_ckpt_warmups_total");
        forks = reg.counter("rnr_ckpt_forks_total");
        saves = reg.counter("rnr_ckpt_saves_total");
        restores = reg.counter("rnr_ckpt_restores_total");
        quarantines = reg.counter("rnr_ckpt_quarantines_total");
    }
};

CkptMetrics &
ckptMetrics()
{
    static CkptMetrics m;
    return m;
}

/** In-flight / lock-file slot name for (key, window). */
std::string
slotName(const std::string &key, std::uint64_t window)
{
    return ckptHashName(key) + ".w" + std::to_string(window);
}

std::string
produceLockPath(const std::string &slot)
{
    return CheckpointStore::rootPath() + "/" + slot + ".lock";
}

/** The header key a snapshot is addressed by: the full key when set,
 *  else the workload key (input snapshots). */
const std::string &
addressKey(const SnapshotHeader &h)
{
    return h.full_key.empty() ? h.workload_key : h.full_key;
}

} // namespace

std::string
ckptHashName(const std::string &key)
{
    const std::uint64_t h = fnv1a64(key.data(), key.size());
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

CheckpointStore &
CheckpointStore::instance()
{
    static CheckpointStore store;
    return store;
}

bool
CheckpointStore::enabled()
{
    const char *p = std::getenv("RNR_CKPT");
    return !(p && std::string(p) == "0");
}

std::string
CheckpointStore::rootPath()
{
    if (const char *p = std::getenv("RNR_CKPT_DIR"); p && *p)
        return p;
    return "rnr_ckpt";
}

std::string
CheckpointStore::snapshotPath(const std::string &key, std::uint64_t window)
{
    return rootPath() + "/" + slotName(key, window) + ".ckpt";
}

bool
CheckpointStore::openSnapshotLocked(const std::string &key,
                                    std::uint64_t window,
                                    std::vector<std::uint8_t> &blob)
{
    const std::string path = snapshotPath(key, window);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return false;

    std::vector<std::uint8_t> data;
    std::string why;
    if (CkptIoResult r = readSnapshotFile(path, data); !r.ok()) {
        why = r.message();
    } else {
        SnapshotReader reader;
        if (CkptIoResult r2 = reader.parse(data); !r2.ok())
            why = r2.message();
        else if (addressKey(reader.header()) != key)
            // Hash collision: the slot belongs to another key.  Miss,
            // but do NOT quarantine — the other key's snapshot is fine.
            return false;
        else if (reader.header().window != window)
            why = "header window " +
                  std::to_string(reader.header().window) +
                  " does not match slot";
    }
    if (!why.empty()) {
        obs::LogLine(obs::LogLevel::Warn, "ckpt")
            .msg("dropping corrupt snapshot")
            .kv("path", path)
            .kv("why", why);
        fs::remove(path, ec);
        ++quarantines_;
        if (obs::Counter *c = ckptMetrics().quarantines)
            c->add();
        return false;
    }
    blob = std::move(data);
    return true;
}

CheckpointStore::Acquire
CheckpointStore::acquire(const std::string &key, std::uint64_t window,
                         std::vector<std::uint8_t> &blob)
{
    const std::string slot = slotName(key, window);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (openSnapshotLocked(key, window, blob))
            return Acquire::Hit;
        if (!inflight_.insert(slot).second) {
            // A thread of this process is already producing.
            cv_.wait(lock);
            continue;
        }
        // In-process owner; now contend with other *processes* (farm
        // workers) for the same snapshot through an advisory flock.
        std::error_code ec;
        fs::create_directories(rootPath(), ec);
        auto fl = std::make_unique<FileLock>(produceLockPath(slot),
                                             FileLock::Mode::Try);
        if (fl->held()) {
            locks_[slot] = std::move(fl);
            return Acquire::Owner;
        }
        // Another process holds the lock (or flock is unsupported).
        // Wait without wedging this process's other threads: drop mu_,
        // block on the lock, re-check from scratch.
        inflight_.erase(slot);
        cv_.notify_all();
        lock.unlock();
        FileLock waiter(produceLockPath(slot), FileLock::Mode::Block);
        const bool waited = waiter.held();
        waiter.release();
        lock.lock();
        if (!waited) {
            // flock unsupported (exotic fs, Windows): degrade to the
            // single-process guarantee and produce ourselves.
            if (inflight_.insert(slot).second)
                return Acquire::Owner;
            cv_.wait(lock);
        }
        // Re-loop: the other process published (-> Hit) or abandoned
        // (-> we become the owner on the next iteration).
    }
}

void
CheckpointStore::releaseOwnership(const std::string &slot)
{
    bool held_flock = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        held_flock = locks_.erase(slot) != 0; // drops the flock, if any
        inflight_.erase(slot);
    }
    if (held_flock) {
        // We held the flock, so no other process does: the lock file
        // is ours to remove.  A waiter racing on the old inode at
        // worst produces redundantly, and publish stays an atomic
        // rename either way.
        std::error_code ec;
        fs::remove(produceLockPath(slot), ec);
    }
    cv_.notify_all();
}

bool
CheckpointStore::publish(const std::string &key, std::uint64_t window,
                         const std::vector<std::uint8_t> &blob)
{
    const std::string path = snapshotPath(key, window);
    const CkptIoResult r = writeSnapshotFile(path, blob);
    if (r.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++saves_;
        if (obs::Counter *c = ckptMetrics().saves)
            c->add();
    } else {
        obs::LogLine(obs::LogLevel::Warn, "ckpt")
            .msg("snapshot publish failed")
            .kv("path", path)
            .kv("why", r.message());
    }
    releaseOwnership(slotName(key, window));
    return r.ok();
}

void
CheckpointStore::abandon(const std::string &key, std::uint64_t window)
{
    releaseOwnership(slotName(key, window));
}

bool
CheckpointStore::tryLoad(const std::string &key, std::uint64_t window,
                         std::vector<std::uint8_t> &blob)
{
    std::lock_guard<std::mutex> lock(mu_);
    return openSnapshotLocked(key, window, blob);
}

void
CheckpointStore::invalidate(const std::string &key, std::uint64_t window)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    fs::remove(snapshotPath(key, window), ec);
    ++quarantines_;
    if (obs::Counter *c = ckptMetrics().quarantines)
        c->add();
}

std::uint64_t
CheckpointStore::warmups() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return warmups_;
}

std::uint64_t
CheckpointStore::forks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return forks_;
}

std::uint64_t
CheckpointStore::saves() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return saves_;
}

std::uint64_t
CheckpointStore::restores() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return restores_;
}

std::uint64_t
CheckpointStore::quarantines() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return quarantines_;
}

void
CheckpointStore::noteWarmup()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++warmups_;
    if (obs::Counter *c = ckptMetrics().warmups)
        c->add();
}

void
CheckpointStore::noteFork()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++forks_;
    if (obs::Counter *c = ckptMetrics().forks)
        c->add();
}

void
CheckpointStore::noteRestore()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++restores_;
    if (obs::Counter *c = ckptMetrics().restores)
        c->add();
}

void
CheckpointStore::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.clear();
    locks_.clear();
    warmups_ = forks_ = saves_ = restores_ = quarantines_ = 0;
}

} // namespace ckpt
} // namespace rnr
