/**
 * @file
 * Checkpoint-fork of generated workload inputs.
 *
 * Generating an input (CSR graph / matrix synthesis) is the shared
 * warm-up of every sweep: the 6+ prefetcher configs of one figure row
 * all construct the identical input before simulating.  These helpers
 * make that warm-up run once per workload key — the first caller
 * generates natively and publishes an *input snapshot* (window 0,
 * Input section only) to the CheckpointStore; everyone else *forks*
 * it, from the in-process memo when the sweep shares this process and
 * from the snapshot file when it spans farm worker processes.
 *
 * The forked input is bit-identical to a generated one (the snapshot
 * carries the exact CSR arrays), so sweep JSON is byte-identical with
 * the store on or off — CI compares both.  RNR_CKPT=0 bypasses
 * everything and generates natively.
 *
 * Accounting (CheckpointStore counters, surfaced on the sweep's
 * stderr line and in the JSON "host" object):
 *   warmups — inputs generated natively (memo + store both missed);
 *   forks   — inputs served from the memo or a snapshot.
 */
#ifndef RNR_CKPT_INPUT_FORK_H
#define RNR_CKPT_INPUT_FORK_H

#include "harness/experiment.h"
#include "workloads/graph.h"
#include "workloads/sparse.h"

namespace rnr {
namespace ckpt {

/** The graph input for @p cfg, forked when possible. */
Graph forkGraphInput(const ExperimentConfig &cfg);

/** The matrix input for @p cfg, forked when possible. */
SparseMatrix forkMatrixInput(const ExperimentConfig &cfg);

/** Drops the in-process input memo (tests that repoint $RNR_CKPT_DIR
 *  or assert exact warm-up/fork counts). */
void resetInputForkForTest();

} // namespace ckpt
} // namespace rnr

#endif // RNR_CKPT_INPUT_FORK_H
