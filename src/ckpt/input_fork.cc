#include "ckpt/input_fork.h"

#include <map>
#include <mutex>
#include <utility>

#include "ckpt/checkpoint.h"
#include "ckpt/ckpt_store.h"
#include "obs/log.h"
#include "workloads/graph_gen.h"
#include "workloads/sparse_gen.h"

namespace rnr {
namespace ckpt {

namespace {

/** Input-section payload tags (wire ABI — append only). */
constexpr std::uint64_t kGraphTag = 1;
constexpr std::uint64_t kMatrixTag = 2;

std::mutex g_memo_mu;
std::map<std::string, Graph> g_graph_memo;     ///< by input name
std::map<std::string, SparseMatrix> g_matrix_memo;

template <class Input>
std::vector<std::uint8_t>
encodeInput(const std::string &wkey, std::uint64_t tag,
            const std::string &name, Input &input)
{
    SnapshotWriter w(SnapshotHeader{wkey, "", 0});
    Ser &s = w.section(SectionId::Input);
    std::uint64_t t = tag;
    s.scalar(t);
    std::string n = name;
    s.str(n);
    input.visitState(s);
    return w.finish();
}

/** Decodes an input snapshot's payload; false = wrong shape (the
 *  caller quarantines).  The container itself was already validated
 *  by CheckpointStore. */
template <class Input>
bool
decodeInput(const std::vector<std::uint8_t> &blob, std::uint64_t tag,
            const std::string &name, Input &out, std::string &why)
{
    SnapshotReader reader;
    if (CkptIoResult r = reader.parse(blob); !r.ok()) {
        why = r.message();
        return false;
    }
    if (!reader.hasSection(SectionId::Input)) {
        why = "no Input section";
        return false;
    }
    Deser d = reader.section(SectionId::Input);
    std::uint64_t t = 0;
    d.scalar(t);
    std::string n;
    d.str(n);
    if (d.ok() && (t != tag || n != name)) {
        why = "payload is " + n + " (tag " + std::to_string(t) + ")";
        return false;
    }
    out = Input{};
    out.visitState(d);
    if (!d.ok()) {
        why = d.result().message();
        return false;
    }
    return true;
}

/**
 * Memo -> snapshot -> generate, in that order.  @p memo keys by input
 * name (generation depends only on the name); the store keys by
 * workloadKey() (the fork-sweep's unit of sharing).
 */
template <class Input, class Generate>
Input
forkInput(const ExperimentConfig &cfg, std::uint64_t tag,
          std::map<std::string, Input> &memo, Generate generate)
{
    if (!CheckpointStore::enabled())
        return generate(cfg.input);

    CheckpointStore &store = CheckpointStore::instance();
    {
        std::lock_guard<std::mutex> lock(g_memo_mu);
        auto it = memo.find(cfg.input);
        if (it != memo.end()) {
            store.noteFork();
            return it->second;
        }
    }

    // One span per fork-or-generate operation: rejected-snapshot
    // retries and the store's own drop/publish records share an id.
    obs::SpanScope span;
    const std::string wkey = cfg.workloadKey();
    std::vector<std::uint8_t> blob;
    for (;;) {
        if (store.acquire(wkey, 0, blob) ==
            CheckpointStore::Acquire::Hit) {
            Input forked;
            std::string why;
            if (decodeInput(blob, tag, cfg.input, forked, why)) {
                store.noteFork();
                std::lock_guard<std::mutex> lock(g_memo_mu);
                return memo.emplace(cfg.input, std::move(forked))
                    .first->second;
            }
            obs::LogLine(obs::LogLevel::Warn, "ckpt")
                .msg("input snapshot rejected; regenerating")
                .kv("workload", wkey)
                .kv("why", why);
            store.invalidate(wkey, 0);
            continue; // re-acquire: we likely become the owner
        }
        // Owner: the warm-up.  Generate natively, publish the
        // snapshot for other processes, memoize for this one.  A
        // throwing generator must release ownership or waiters wedge.
        Input generated;
        try {
            generated = generate(cfg.input);
        } catch (...) {
            store.abandon(wkey, 0);
            throw;
        }
        store.noteWarmup();
        store.publish(wkey, 0,
                      encodeInput(wkey, tag, cfg.input, generated));
        std::lock_guard<std::mutex> lock(g_memo_mu);
        return memo.emplace(cfg.input, std::move(generated))
            .first->second;
    }
}

} // namespace

Graph
forkGraphInput(const ExperimentConfig &cfg)
{
    return forkInput<Graph>(
        cfg, kGraphTag, g_graph_memo,
        [](const std::string &name) { return makeGraphInput(name).graph; });
}

SparseMatrix
forkMatrixInput(const ExperimentConfig &cfg)
{
    return forkInput<SparseMatrix>(cfg, kMatrixTag, g_matrix_memo,
                                   [](const std::string &name) {
                                       return makeMatrixInput(name).matrix;
                                   });
}

void
resetInputForkForTest()
{
    std::lock_guard<std::mutex> lock(g_memo_mu);
    g_graph_memo.clear();
    g_matrix_memo.clear();
}

} // namespace ckpt
} // namespace rnr
