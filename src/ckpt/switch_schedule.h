/**
 * @file
 * Context-switch storm scenarios for RnR (Section IV-C).
 *
 * The paper argues that RnR survives context switches because its
 * architectural state is small enough for the OS to save and restore
 * alongside the rest of the thread context (contextSwitchBytes()).
 * This module turns that claim into a measurable scenario: several
 * ASID-tagged tenants share one core's RnR engine, the scheduler
 * round-robins them on a configurable quantum, and on every switch the
 * outgoing tenant's RnR state is either
 *
 *   - saved to its per-tenant buffer and restored on switch-in
 *     (save_restore = true, the paper's design), or
 *   - dropped, so the incoming tenant restarts its replay from the
 *     beginning of its sequence (save_restore = false, the strawman
 *     where RnR state does not travel with the thread).
 *
 * Each tenant first records its own miss sequence over a private
 * target range, then the storm replays every tenant's traversal under
 * preemption.  The A/B difference shows up exactly where the paper
 * predicts: the state-losing baseline re-issues the head of its
 * sequence every quantum (accuracy loss) and never reaches the tail
 * in-window (timeliness loss), while the save/restore schedule matches
 * an unpreempted replay.
 *
 * Used by tests/ckpt/switch_schedule_test.cc and the Fig 15 harness
 * (bench/fig15_switch_storm.cc).
 */
#ifndef RNR_CKPT_SWITCH_SCHEDULE_H
#define RNR_CKPT_SWITCH_SCHEDULE_H

#include <cstdint>

namespace rnr {
namespace ckpt {

/** One context-switch storm's shape. */
struct SwitchStormConfig {
    /** Concurrent address spaces sharing the core's RnR engine. */
    unsigned tenants = 4;
    /** Demand accesses per scheduling quantum (switch period). */
    unsigned quantum = 32;
    /** Recorded misses per tenant (length of each replay). */
    unsigned seq_len = 256;
    /** RnR window size in blocks (0 = the paper default). */
    std::uint32_t window_size = 16;
    /** Span of each tenant's target range, in blocks. */
    unsigned span_blocks = 1024;
    /** Pattern seed (tenant t derives its own stream from it). */
    std::uint64_t seed = 1;
    /** True = RnR state travels with the tenant (the paper's design);
     *  false = state is lost on every switch (strawman baseline). */
    bool save_restore = true;
};

/** What one storm did; all counters cover the replay phase only. */
struct SwitchStormResult {
    std::uint64_t switches = 0;          ///< Switch-outs performed.
    std::uint64_t recorded_entries = 0;  ///< Sum over tenants.
    /** Largest serialized per-tenant state, i.e. what the simulator
     *  moves per switch.  The paper's architectural payload — what
     *  real hardware would expose to the OS — is arch_state_bytes. */
    std::uint64_t state_bytes_per_switch = 0;
    std::uint64_t arch_state_bytes = 0;  ///< contextSwitchBytes().
    std::uint64_t pf_issued = 0;         ///< L2 prefetches issued.
    std::uint64_t pf_useful = 0;         ///< Hit or merged-into.
    std::uint64_t pf_ontime = 0;
    std::uint64_t pf_early = 0;
    std::uint64_t pf_late = 0;
    std::uint64_t pf_out_of_window = 0;
    std::uint64_t replay_accesses = 0;
    std::uint64_t replay_hits = 0;       ///< L1 or L2 demand hits.

    /** Useful fraction of issued prefetches (0 when none issued). */
    double accuracy() const;
    /** Demand hit rate over the replay phase (0 when no accesses). */
    double hitRate() const;
};

/**
 * Runs one storm to completion.  Deterministic: the result is a pure
 * function of the config (fixed tenant patterns, fixed interleaving),
 * so A/B comparisons isolate the save_restore flag.
 */
SwitchStormResult runSwitchStorm(const SwitchStormConfig &cfg);

} // namespace ckpt
} // namespace rnr

#endif // RNR_CKPT_SWITCH_SCHEDULE_H
