/**
 * @file
 * On-disk snapshot store shared by all benches and farm workers.
 *
 * CheckpointStore gives rnr-ckpt-v1 snapshots (ckpt/checkpoint.h) the
 * same lifecycle TraceStore gives traces: keyed, persistent, shared and
 * safe.  The checkpoint-fork sweep leans on it — the shared warm-up of
 * a sweep runs once, publishes an input snapshot, and every other
 * config with the same ExperimentConfig::workloadKey() forks the
 * snapshot instead of regenerating, in-process and across farm worker
 * processes.
 *
 * Keying — the caller passes whatever key string identifies the
 * snapshot: workloadKey() for input snapshots (window 0), the full
 * key() for mid-run full snapshots (prefetcher state is config
 * specific).  Files are content-addressed by an FNV-1a64 hash of the
 * key; the snapshot header stores the full key so a hash collision
 * reads as a miss, never as wrong data.
 *
 * Layout under rootPath() ($RNR_CKPT_DIR, default "rnr_ckpt"):
 *   <hash16>.w<window>.ckpt   one rnr-ckpt-v1 blob
 *   <hash16>.w<window>.lock   advisory flock while producing
 *
 * Discipline (mirrors tracestore/trace_store.h):
 *  - single-flight production: concurrent experiments needing the same
 *    snapshot block on one producer — within a process via a condition
 *    variable, across processes (farm workers) via an advisory flock —
 *    so N workers warm up a shared workload once, not N times;
 *  - atomic publish: blobs are written to a process-unique temp file
 *    and renamed into place (ckpt::writeSnapshotFile), so readers
 *    never observe a torn snapshot;
 *  - corrupt-entry tolerance: a snapshot that fails validation
 *    (magic/version/checksum/sections) is quarantined (removed) and
 *    re-produced, never fatal.
 *
 * Environment:
 *   RNR_CKPT=0           disable the store (every config warms up)
 *   RNR_CKPT_DIR=<path>  move the snapshots (default "rnr_ckpt")
 */
#ifndef RNR_CKPT_CKPT_STORE_H
#define RNR_CKPT_CKPT_STORE_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "harness/file_lock.h"

namespace rnr {
namespace ckpt {

/** Process-wide, thread-safe snapshot store. */
class CheckpointStore
{
  public:
    /** The process-wide instance used by the runner. */
    static CheckpointStore &instance();

    /** False iff $RNR_CKPT is exactly "0". */
    static bool enabled();

    /** Snapshot directory ($RNR_CKPT_DIR or "rnr_ckpt"). */
    static std::string rootPath();

    /** Snapshot file path for (@p key, @p window) under rootPath(). */
    static std::string snapshotPath(const std::string &key,
                                    std::uint64_t window);

    enum class Acquire {
        Hit,   ///< @p blob filled with a validated snapshot.
        Owner, ///< Caller must produce, then publish() or abandon().
    };

    /**
     * Single-flight snapshot acquisition for (@p key, @p window).  A
     * valid snapshot returns Hit with the blob.  Otherwise the first
     * caller becomes the Owner (and must produce the snapshot);
     * concurrent callers — threads of this process and other farm
     * worker processes alike — block until the owner publishes (then
     * Hit) or abandons (then one waiter is promoted to Owner).  A
     * corrupt snapshot found here is quarantined and treated as a
     * miss; a header whose key differs (hash collision) is a plain
     * miss for the caller and leaves the other key's snapshot intact.
     */
    Acquire acquire(const std::string &key, std::uint64_t window,
                    std::vector<std::uint8_t> &blob);

    /** Installs the owner's snapshot atomically and wakes waiters.
     *  False on I/O failure (ownership is released either way). */
    bool publish(const std::string &key, std::uint64_t window,
                 const std::vector<std::uint8_t> &blob);

    /** Owner abort: releases ownership so a waiter can produce. */
    void abandon(const std::string &key, std::uint64_t window);

    /** Non-blocking lookup: fills @p blob iff a validated snapshot
     *  for (@p key, @p window) exists.  Quarantines corrupt files. */
    bool tryLoad(const std::string &key, std::uint64_t window,
                 std::vector<std::uint8_t> &blob);

    /** Quarantines the (@p key, @p window) snapshot (corrupt at a
     *  deeper layer than the container, e.g. a section that fails to
     *  decode): the file is removed and the counter bumped. */
    void invalidate(const std::string &key, std::uint64_t window);

    // -- observability (monotonic per process) --
    std::uint64_t warmups() const;     ///< Snapshots produced natively.
    std::uint64_t forks() const;       ///< Runs served from a snapshot.
    std::uint64_t saves() const;       ///< Snapshots published.
    std::uint64_t restores() const;    ///< Full snapshots restored.
    std::uint64_t quarantines() const; ///< Corrupt snapshots removed.

    /** Warm-up/fork accounting hooks for the runner (the store cannot
     *  see an in-process memo hit, so the runner reports both). */
    void noteWarmup();
    void noteFork();
    void noteRestore();

    /** Resets counters and in-flight state (tests that repoint
     *  $RNR_CKPT_DIR mid-process). */
    void resetForTest();

  private:
    CheckpointStore() = default;

    /** Reads + validates the snapshot; false = miss (with quarantine
     *  on corruption).  Caller holds mu_. */
    bool openSnapshotLocked(const std::string &key, std::uint64_t window,
                            std::vector<std::uint8_t> &blob);
    void releaseOwnership(const std::string &slot);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::set<std::string> inflight_; ///< "<hash16>.w<window>" slots.
    /** Cross-process production locks held by this process. */
    std::map<std::string, std::unique_ptr<FileLock>> locks_;
    std::uint64_t warmups_ = 0;
    std::uint64_t forks_ = 0;
    std::uint64_t saves_ = 0;
    std::uint64_t restores_ = 0;
    std::uint64_t quarantines_ = 0;
};

/** File-name stem for @p key: 16 hex digits of FNV-1a64. */
std::string ckptHashName(const std::string &key);

} // namespace ckpt
} // namespace rnr

#endif // RNR_CKPT_CKPT_STORE_H
