#include "ckpt/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fs = std::filesystem;

namespace rnr {
namespace ckpt {

const char *
toString(SectionId id)
{
    switch (id) {
#define RNR_CKPT_SECTION_NAME(name, value)                                    \
    case SectionId::name:                                                     \
        return #name;
        RNR_CKPT_SECTIONS(RNR_CKPT_SECTION_NAME)
#undef RNR_CKPT_SECTION_NAME
    }
    return "?";
}

const std::vector<SectionId> &
allSectionIds()
{
    static const std::vector<SectionId> ids = {
#define RNR_CKPT_SECTION_ID(name, value) SectionId::name,
        RNR_CKPT_SECTIONS(RNR_CKPT_SECTION_ID)
#undef RNR_CKPT_SECTION_ID
    };
    return ids;
}

// ---- SnapshotWriter ----

Ser &
SnapshotWriter::section(SectionId id)
{
    closeSection();
    cur_ = Ser();
    cur_id_ = static_cast<std::uint64_t>(id);
    open_ = true;
    return cur_;
}

void
SnapshotWriter::closeSection()
{
    if (!open_)
        return;
    sections_.emplace_back(cur_id_, cur_.take());
    open_ = false;
}

std::vector<std::uint8_t>
SnapshotWriter::finish()
{
    closeSection();

    Ser out;
    out.raw(kCkptMagic, sizeof kCkptMagic);
    out.scalar(kCkptVersion);
    out.str(header_.workload_key);
    out.str(header_.full_key);
    out.scalar(header_.window);
    std::uint64_t count = sections_.size();
    out.scalar(count);
    for (auto &s : sections_) {
        out.scalar(s.first);
        std::uint64_t len = s.second.size();
        out.scalar(len);
        out.raw(s.second.data(), s.second.size());
    }
    const std::uint64_t sum = fnv1a64(out.buffer().data(), out.size());
    out.scalar(sum);
    return out.take();
}

// ---- SnapshotReader ----

CkptIoResult
SnapshotReader::parse(const std::vector<std::uint8_t> &blob)
{
    data_ = nullptr;
    sections_.clear();
    offsets_.clear();

    if (blob.size() < sizeof kCkptMagic + 8)
        return CkptIoResult::fail(CkptIoStatus::Truncated,
                                  "blob smaller than magic + checksum");
    if (std::memcmp(blob.data(), kCkptMagic, sizeof kCkptMagic) != 0)
        return CkptIoResult::fail(CkptIoStatus::BadMagic,
                                  "not an rnr-ckpt-v1 snapshot");

    // Checksum covers everything before the trailing u64.
    const std::size_t body = blob.size() - 8;
    const std::uint64_t want = fnv1a64(blob.data(), body);
    std::uint64_t got = 0;
    for (int i = 0; i < 8; ++i)
        got |= static_cast<std::uint64_t>(blob[body + i]) << (8 * i);
    if (want != got)
        return CkptIoResult::fail(CkptIoStatus::BadChecksum,
                                  "payload bytes do not match trailer");
    checksum_ = got;

    Deser d(blob.data() + sizeof kCkptMagic, body - sizeof kCkptMagic);
    std::uint64_t version = 0;
    d.scalar(version);
    if (d.ok() && version != kCkptVersion)
        return CkptIoResult::fail(CkptIoStatus::BadVersion,
                                  "version " + std::to_string(version));
    d.str(header_.workload_key);
    d.str(header_.full_key);
    d.scalar(header_.window);
    std::uint64_t count = 0;
    d.scalar(count);
    if (!d.ok())
        return d.result();
    for (std::uint64_t i = 0; i < count; ++i) {
        SectionInfo info;
        d.scalar(info.id);
        d.scalar(info.bytes);
        if (!d.ok())
            return d.result();
        if (info.bytes > d.remaining())
            return CkptIoResult::fail(
                CkptIoStatus::BadSection,
                std::string(toString(static_cast<SectionId>(info.id))) +
                    " section overruns the blob");
        // Record the payload position, then skip over it.
        const std::size_t at = sizeof kCkptMagic + d.pos();
        offsets_.emplace_back(at, info.bytes);
        sections_.push_back(info);
        std::vector<std::uint8_t> skip(
            static_cast<std::size_t>(info.bytes));
        if (info.bytes)
            d.raw(skip.data(), skip.size());
    }
    if (!d.ok())
        return d.result();
    if (d.remaining() != 0)
        return CkptIoResult::fail(CkptIoStatus::BadSection,
                                  "trailing bytes after section table");
    data_ = blob.data();
    return {};
}

bool
SnapshotReader::hasSection(SectionId id) const
{
    for (const SectionInfo &s : sections_)
        if (s.id == static_cast<std::uint64_t>(id))
            return true;
    return false;
}

Deser
SnapshotReader::section(SectionId id) const
{
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        if (sections_[i].id == static_cast<std::uint64_t>(id) && data_)
            return Deser(data_ + offsets_[i].first,
                         static_cast<std::size_t>(offsets_[i].second));
    }
    return Deser(nullptr, 0);
}

// ---- File I/O ----

CkptIoResult
readSnapshotFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return CkptIoResult::fail(CkptIoStatus::OpenFail, path);
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(size < 0 ? 0 : size));
    if (!out.empty())
        in.read(reinterpret_cast<char *>(out.data()),
                static_cast<std::streamsize>(out.size()));
    if (!in)
        return CkptIoResult::fail(CkptIoStatus::Truncated,
                                  path + ": short read");
    return {};
}

CkptIoResult
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &blob)
{
    std::error_code ec;
    const fs::path target(path);
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec);

#ifndef _WIN32
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        return CkptIoResult::fail(CkptIoStatus::OpenFail,
                                  tmp + ": " + std::strerror(errno));
    std::size_t off = 0;
    while (off < blob.size()) {
        const ssize_t n =
            ::write(fd, blob.data() + off, blob.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string why = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return CkptIoResult::fail(CkptIoStatus::WriteFail,
                                      tmp + ": " + why);
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return CkptIoResult::fail(CkptIoStatus::WriteFail,
                                  tmp + ": fsync: " + why);
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string why = std::strerror(errno);
        ::unlink(tmp.c_str());
        return CkptIoResult::fail(CkptIoStatus::WriteFail,
                                  path + ": rename: " + why);
    }
#else
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    if (!outf)
        return CkptIoResult::fail(CkptIoStatus::OpenFail, path);
    outf.write(reinterpret_cast<const char *>(blob.data()),
               static_cast<std::streamsize>(blob.size()));
    if (!outf)
        return CkptIoResult::fail(CkptIoStatus::WriteFail, path);
#endif
    return {};
}

CkptIoResult
inspectSnapshotFile(const std::string &path, SnapshotInfo &out)
{
    std::vector<std::uint8_t> blob;
    if (CkptIoResult r = readSnapshotFile(path, blob); !r.ok())
        return r;
    SnapshotReader reader;
    if (CkptIoResult r = reader.parse(blob); !r.ok())
        return r;
    out.header = reader.header();
    out.sections = reader.sections();
    out.total_bytes = blob.size();
    out.checksum = reader.checksum();
    return {};
}

} // namespace ckpt
} // namespace rnr
