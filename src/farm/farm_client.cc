#include "farm/farm_client.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "farm/farm_protocol.h"
#include "harness/json_write.h"
#include "harness/result_cache.h"

namespace rnr {

std::string
formatFarmStatus(const FarmStatus &s)
{
    std::ostringstream os;
    os << "workers " << s.busy << "/" << s.workers << " busy | queued "
       << s.queued << ", in-flight " << s.inflight << " | done "
       << s.done << " (" << s.simulated << " simulated, " << s.cached
       << " cached, " << s.poisoned << " poisoned)";
    if (s.retried > 0 || s.worker_deaths > 0)
        os << " | " << s.worker_deaths << " worker death(s), "
           << s.retried << " retried";
    if (s.draining)
        os << " | draining";
    return os.str();
}

FarmClient::~FarmClient()
{
    close();
}

void
FarmClient::close()
{
#ifndef _WIN32
    if (fd_ >= 0)
        ::close(fd_);
#endif
    fd_ = -1;
}

bool
FarmClient::connect(const std::string &socket_path, std::string *error)
{
#ifdef _WIN32
    (void)socket_path;
    connect_errno_ = ENOSYS;
    if (error)
        *error = "the simulation farm is not supported on this platform";
    return false;
#else
    close();
    connect_errno_ = 0;
    std::signal(SIGPIPE, SIG_IGN);
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + socket_path;
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        connect_errno_ = errno;
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        connect_errno_ = errno;
        if (error) {
            // The two "daemon is not running" shapes get recognisable
            // one-liners so the CLI can exit typed instead of cryptic.
            if (connect_errno_ == ENOENT)
                *error = "no daemon socket at " + socket_path +
                         " (is rnr_farmd running?)";
            else if (connect_errno_ == ECONNREFUSED)
                *error = "stale daemon socket at " + socket_path +
                         ": connection refused (is rnr_farmd running?)";
            else
                *error = "connect " + socket_path + ": " +
                         std::strerror(connect_errno_);
        }
        ::close(fd);
        return false;
    }
    fd_ = fd;

    std::ostringstream hello;
    hello << "{\"type\": \"hello\", \"protocol\": \"" << kFarmProtocol
          << "\"}";
    std::string reply, err;
    if (!farmWriteFrame(fd_, hello.str()) ||
        !farmReadFrame(fd_, reply, &err)) {
        if (error)
            *error = "handshake failed: " +
                     (err.empty() ? "connection closed" : err);
        close();
        return false;
    }
    JsonValue msg;
    const JsonValue *type = nullptr;
    if (!parseJson(reply, msg, &err) ||
        !(type = msg.find("type")) || type->text != "hello") {
        if (error)
            *error = "unexpected handshake reply";
        close();
        return false;
    }
    return true;
#endif
}

bool
FarmClient::submit(const std::vector<ExperimentConfig> &cells,
                   const std::vector<int> &priorities, std::string *error,
                   const std::string &trace_dir)
{
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }
    std::ostringstream os;
    os << "{\"type\": \"submit\"";
    if (!trace_dir.empty())
        os << ", \"trace_dir\": " << jsonQuote(trace_dir);
    os << ", \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os << ", ";
        std::string cfg = farmConfigJson(cells[i]);
        if (i < priorities.size() && priorities[i] != 0) {
            // Graft the priority into the config object.
            cfg.insert(cfg.size() - 1, ", \"priority\": " +
                                           std::to_string(priorities[i]));
        }
        os << cfg;
    }
    os << "]}";
    if (!farmWriteFrame(fd_, os.str())) {
        if (error)
            *error = "submit failed (daemon gone?)";
        close();
        return false;
    }
    return true;
}

bool
FarmClient::next(Reply &out, std::string *error)
{
    out = Reply();
    std::string payload, err;
    if (!farmReadFrame(fd_, payload, &err)) {
        if (error)
            *error = err.empty() ? "connection closed by daemon" : err;
        close();
        return false;
    }
    JsonValue msg;
    if (!parseJson(payload, msg, &err)) {
        if (error)
            *error = "bad frame from daemon: " + err;
        close();
        return false;
    }
    const JsonValue *type = msg.find("type");
    const std::string t = type ? type->text : "";
    if (t == "batch-done") {
        out.batch_done = true;
        return true;
    }
    if (t == "error") {
        const JsonValue *m = msg.find("message");
        if (error)
            *error = "daemon error: " +
                     (m ? m->text : std::string("(no message)"));
        return false;
    }
    if (t != "result") {
        if (error)
            *error = "unexpected message '" + t + "'";
        return false;
    }
    if (const JsonValue *v = msg.find("index"))
        out.index = static_cast<std::size_t>(v->asU64());
    if (const JsonValue *v = msg.find("attempts"))
        out.outcome.attempts = static_cast<int>(v->asU64());
    if (const JsonValue *v = msg.find("cached"))
        out.outcome.was_cached = v->boolean;
    const JsonValue *status = msg.find("status");
    if (status && status->text == "poisoned") {
        out.outcome.status = CellOutcome::Status::Poisoned;
        if (const JsonValue *v = msg.find("error"))
            out.outcome.error = v->text;
        return true;
    }
    const JsonValue *data = msg.find("data");
    if (!data || !farmParseResultData(data->text, out.outcome.result)) {
        if (error)
            *error = "result with unparseable data field";
        return false;
    }
    return true;
}

bool
FarmClient::status(FarmStatus &out, std::string *error)
{
    out = FarmStatus();
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }
    std::string payload, err;
    if (!farmWriteFrame(fd_, "{\"type\": \"status\"}") ||
        !farmReadFrame(fd_, payload, &err)) {
        if (error)
            *error = err.empty() ? "daemon closed the connection" : err;
        close();
        return false;
    }
    JsonValue msg;
    const JsonValue *type = nullptr;
    if (!parseJson(payload, msg, &err) || !(type = msg.find("type")) ||
        type->text != "status-reply") {
        if (error)
            *error = "unexpected status reply";
        return false;
    }
    if (const JsonValue *v = msg.find("workers"))
        out.workers = static_cast<unsigned>(v->asU64());
    if (const JsonValue *v = msg.find("busy"))
        out.busy = static_cast<unsigned>(v->asU64());
    if (const JsonValue *v = msg.find("queued"))
        out.queued = v->asU64();
    if (const JsonValue *v = msg.find("inflight"))
        out.inflight = v->asU64();
    if (const JsonValue *v = msg.find("done"))
        out.done = v->asU64();
    if (const JsonValue *v = msg.find("simulated"))
        out.simulated = v->asU64();
    if (const JsonValue *v = msg.find("cached"))
        out.cached = v->asU64();
    if (const JsonValue *v = msg.find("poisoned"))
        out.poisoned = v->asU64();
    if (const JsonValue *v = msg.find("retried"))
        out.retried = v->asU64();
    if (const JsonValue *v = msg.find("worker_deaths"))
        out.worker_deaths = v->asU64();
    if (const JsonValue *v = msg.find("draining"))
        out.draining = v->boolean;
    return true;
}

bool
FarmClient::metrics(std::string &out, std::string *error, bool prometheus)
{
    out.clear();
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }
    const std::string req =
        prometheus
            ? "{\"type\": \"metrics\", \"format\": \"prometheus\"}"
            : "{\"type\": \"metrics\"}";
    std::string payload, err;
    if (!farmWriteFrame(fd_, req) ||
        !farmReadFrame(fd_, payload, &err)) {
        if (error)
            *error = err.empty() ? "daemon closed the connection" : err;
        close();
        return false;
    }
    JsonValue msg;
    const JsonValue *type = nullptr;
    if (!parseJson(payload, msg, &err) || !(type = msg.find("type")) ||
        type->text != "metrics-reply") {
        if (error)
            *error = "unexpected metrics reply";
        return false;
    }
    if (prometheus) {
        const JsonValue *text = msg.find("text");
        if (!text) {
            if (error)
                *error = "metrics reply without text field";
            return false;
        }
        out = text->text;
        return true;
    }
    // The reply embeds the rnr-metrics-v1 object verbatim as the last
    // field, so the object's raw text is the span between the (already
    // validated) "metrics" key and the frame's closing brace.
    static const char kKey[] = "\"metrics\": ";
    const std::size_t at = payload.find(kKey);
    if (at == std::string::npos || !msg.find("metrics")) {
        if (error)
            *error = "metrics reply without metrics field";
        return false;
    }
    const std::size_t from = at + sizeof(kKey) - 1;
    out = payload.substr(from, payload.size() - 1 - from);
    return true;
}

bool
FarmClient::drain(std::string *error)
{
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }
    std::string payload, err;
    if (!farmWriteFrame(fd_, "{\"type\": \"drain\"}") ||
        !farmReadFrame(fd_, payload, &err)) {
        if (error)
            *error = err.empty() ? "daemon closed the connection" : err;
        close();
        return false;
    }
    JsonValue msg;
    const JsonValue *type = nullptr;
    if (!parseJson(payload, msg, &err) || !(type = msg.find("type")) ||
        type->text != "drain-ok") {
        if (error)
            *error = "unexpected drain reply";
        return false;
    }
    return true;
}

void
FarmClientBackend::run(const std::vector<ExperimentConfig> &cells,
                       const std::vector<int> &priorities,
                       const CellDoneFn &done)
{
    FarmClient client;
    std::string error;
    if (!client.connect(socket_, &error))
        throw std::runtime_error("farm backend: " + error);
    if (!client.submit(cells, priorities, &error))
        throw std::runtime_error("farm backend: " + error);

    std::size_t received = 0;
    while (received < cells.size()) {
        FarmClient::Reply reply;
        if (!client.next(reply, &error))
            throw std::runtime_error("farm backend: " + error);
        if (reply.batch_done)
            continue; // e.g. after an all-cached sub-batch
        if (reply.index >= cells.size())
            throw std::runtime_error(
                "farm backend: result index out of range");
        ++received;
        if (reply.outcome.status == CellOutcome::Status::Done) {
            reply.outcome.result.config = cells[reply.index];
            // Warm this process's memo so the bench's print-phase
            // runExperiment() calls never touch the socket.
            ResultCache::instance().noteExternal(
                cells[reply.index].key(), reply.outcome.result);
        }
        done(reply.index, std::move(reply.outcome));
    }
}

} // namespace rnr
