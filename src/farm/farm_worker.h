/**
 * @file
 * Farm worker process: the execution half of rnr_farmd.
 *
 * The daemon never simulates in-process — a cell that segfaults or
 * spins must only take down something disposable.  Instead it
 * fork/execs *its own binary* with the magic argv
 *
 *     <exe> __rnr-farm-worker <fd>
 *
 * where <fd> is the worker's end of a socketpair.  Any binary whose
 * main() starts with farmWorkerMaybeExec(argc, argv) can therefore
 * serve as a worker: rnr_farmd itself, trace_tools, and the farm test
 * binary all do.  The hook is a no-op for every other argv, costs
 * nothing, and keeps the worker's code path byte-identical to the
 * host's (same runExperiment, same caches) — which is what makes farm
 * results bit-identical to in-process results.
 *
 * The worker loop is a trivial request/reply: read a "cell" frame,
 * simulate via runExperiment() (which persists to the shared result
 * cache file under its flock), reply "cell-done" (or "cell-error" for
 * a clean C++ exception), repeat until "quit" or EOF.  Crashes and
 * hangs need no worker-side handling at all — the daemon sees the
 * socket die or the deadline pass, SIGKILLs, respawns, and retries the
 * cell once before poisoning it.
 *
 * Failure-injection hooks (tests only; see docs/HARNESS.md §15):
 *   RNR_FARM_TEST_ABORT_KEY=<substr>  abort() before simulating any
 *                                     cell whose key contains <substr>
 *   RNR_FARM_TEST_HANG_KEY=<substr>   sleep forever instead
 */
#ifndef RNR_FARM_FARM_WORKER_H
#define RNR_FARM_FARM_WORKER_H

#include <string>

namespace rnr {

/** argv[1] that marks a process as a farm worker. */
constexpr const char *kFarmWorkerArg = "__rnr-farm-worker";

/**
 * If argv says this process is a farm worker, runs the worker loop and
 * _exits — never returns.  Otherwise returns immediately.  Call first
 * thing in main() of any binary the daemon may exec as a worker.
 */
void farmWorkerMaybeExec(int argc, char **argv);

/** The worker request/reply loop on @p fd; returns the exit code. */
int farmWorkerMain(int fd);

/** Absolute path of the running executable ("" if undiscoverable). */
std::string farmSelfExePath();

} // namespace rnr

#endif // RNR_FARM_FARM_WORKER_H
