#include "farm/farm_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#ifndef _WIN32
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "farm/farm_protocol.h"
#include "farm/farm_worker.h"
#include "harness/json_write.h"
#include "harness/result_cache.h"
#include "harness/scheduler.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace rnr {

namespace {

double
envDouble(const char *name, double fallback)
{
    if (const char *p = std::getenv(name)) {
        const double v = std::strtod(p, nullptr);
        if (v > 0)
            return v;
    }
    return fallback;
}

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    if (const char *p = std::getenv(name)) {
        const long v = std::strtol(p, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

} // namespace

FarmOptions
FarmOptions::fromEnv()
{
    FarmOptions o;
    if (const char *p = std::getenv("RNR_FARM_SOCKET"))
        o.socket_path = p;
    if (o.socket_path.empty())
        o.socket_path = "rnr_farm.sock";
    o.workers = envUnsigned("RNR_FARM_WORKERS", 2);
    o.timeout_sec = envDouble("RNR_FARM_TIMEOUT_SEC", 300.0);
    return o;
}

#ifndef _WIN32

namespace {

using Clock = std::chrono::steady_clock;

/** Hard cap on worker respawns, against an exec-failure storm. */
constexpr unsigned kMaxRespawns = 100;

struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t cell = 0; ///< 0 = idle
    Clock::time_point deadline{};
    Clock::time_point dispatched{}; ///< when `cell` was written out
    FrameBuffer rx;
    bool dead = false; ///< permanently (respawn cap hit)
};

struct Client {
    int fd = -1;
    FrameBuffer rx;
    std::uint64_t outstanding = 0; ///< results owed before batch-done
    std::uint64_t batch_poisoned = 0;
    bool gone = false;
};

struct Cell {
    std::uint64_t id = 0;
    ExperimentConfig cfg;
    std::string key;
    int attempts = 0;
    /** Correlation directory from a traced submit; "" = untraced. */
    std::string trace_dir;
    /** (client fd, client-side batch index) pairs to notify. */
    std::vector<std::pair<int, std::uint64_t>> subs;
};

/** Null when RNR_METRICS=0 — the shared "free when off" gate.  The
 *  counters deliberately mirror FarmTotals bump-for-bump so a scraped
 *  snapshot reconciles exactly with the `status` reply and the sweep
 *  JSON (tests/farm/farm_obs_test.cc asserts the equality). */
struct FarmMetrics {
    obs::Counter *cells_done;
    obs::Counter *cells_simulated;
    obs::Counter *cells_cached;
    obs::Counter *cells_poisoned;
    obs::Counter *cells_retried;
    obs::Counter *worker_spawns;
    obs::Counter *worker_deaths;
    obs::Counter *worker_respawns;
    obs::Counter *bytes_in;
    obs::Counter *bytes_out;
    obs::Gauge *queue_depth;
    obs::Gauge *inflight;
    obs::Histogram *cell_latency_us;
    FarmMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        cells_done = reg.counter("rnr_farm_cells_done_total");
        cells_simulated = reg.counter("rnr_farm_cells_simulated_total");
        cells_cached = reg.counter("rnr_farm_cells_cached_total");
        cells_poisoned = reg.counter("rnr_farm_cells_poisoned_total");
        cells_retried = reg.counter("rnr_farm_cells_retried_total");
        worker_spawns = reg.counter("rnr_farm_worker_spawns_total");
        worker_deaths = reg.counter("rnr_farm_worker_deaths_total");
        worker_respawns = reg.counter("rnr_farm_worker_respawns_total");
        bytes_in = reg.counter("rnr_farm_frame_bytes_in_total");
        bytes_out = reg.counter("rnr_farm_frame_bytes_out_total");
        queue_depth = reg.gauge("rnr_farm_queue_depth");
        inflight = reg.gauge("rnr_farm_inflight");
        cell_latency_us = reg.histogram("rnr_farm_cell_latency_us");
    }
};

FarmMetrics &
farmMetrics()
{
    static FarmMetrics m;
    return m;
}

/** farmWriteFrame plus bytes-out accounting (4-byte header + payload). */
bool
writeFrameCounted(int fd, const std::string &payload)
{
    if (obs::Counter *c = farmMetrics().bytes_out)
        c->add(payload.size() + 4);
    return farmWriteFrame(fd, payload);
}

/**
 * Appends one daemon-side span event to <trace_dir>/daemon_spans.jsonl.
 * Open-append-close per event is fine here: the daemon is single-
 * threaded and span recording only happens on traced submits.  The
 * wall-clock "t_us" field is what `trace_tools farm trace` uses to
 * derive queue-wait and exec durations.
 */
void
spanEvent(const Cell &cell, const char *ev, int worker = -1,
          bool cached = false, const std::string &note = "")
{
    if (cell.trace_dir.empty())
        return;
    std::ostringstream os;
    os << "{\"ev\": " << jsonQuote(ev)
       << ", \"span\": " << jsonU64(cell.id)
       << ", \"key\": " << jsonQuote(cell.key)
       << ", \"attempt\": " << cell.attempts
       << ", \"t_us\": " << jsonU64(obs::logWallClockUs());
    if (worker >= 0)
        os << ", \"worker\": " << worker;
    if (cached)
        os << ", \"cached\": true";
    if (!note.empty())
        os << ", \"note\": " << jsonQuote(note);
    os << "}";
    std::FILE *f = std::fopen(
        (cell.trace_dir + "/daemon_spans.jsonl").c_str(), "a");
    if (f) {
        std::fprintf(f, "%s\n", os.str().c_str());
        std::fclose(f);
    }
}

std::string
resultFrame(std::uint64_t index, const char *status, bool cached,
            int attempts, const std::string &data,
            const std::string &error)
{
    std::ostringstream os;
    os << "{\"type\": \"result\", \"index\": " << jsonU64(index)
       << ", \"status\": \"" << status << "\", \"cached\": "
       << jsonBool(cached) << ", \"attempts\": " << attempts
       << ", \"data\": " << jsonQuote(data) << ", \"error\": "
       << jsonQuote(error) << "}";
    return os.str();
}

} // namespace

struct FarmServer::Impl {
    FarmServer *self = nullptr;
    int listen_fd = -1;
    int wake_r = -1;
    std::vector<Worker> workers;
    std::map<int, Client> clients; ///< by fd
    std::map<std::uint64_t, Cell> cells;
    std::map<std::string, std::uint64_t> active_by_key;
    std::map<std::string, std::string> poisoned; ///< key -> error
    ShardedWorkQueue *queue = nullptr;
    std::uint64_t next_cell_id = 1;
    unsigned respawns = 0;
    bool draining = false;
    std::vector<int> drain_fds;

    FarmTotals &totals() { return self->totals_; }
    const FarmOptions &opts() { return self->opts_; }

    bool spawnWorker(Worker &w, std::string *error);
    void killWorker(Worker &w);
    void handleWorkerDeath(Worker &w, const std::string &reason);
    void retryOrPoison(std::uint64_t cell_id, const std::string &reason);
    void deliver(const Cell &cell, const char *status, bool cached,
                 int attempts, const std::string &data,
                 const std::string &error);
    void finishCell(std::uint64_t cell_id, bool cached,
                    const std::string &data, int worker);
    void pump();
    void handleWorkerFrame(Worker &w, const std::string &payload);
    void handleClientFrame(Client &c, const std::string &payload);
    void dropClient(int fd);
    void submitOne(Client &c, std::uint64_t index,
                   const ExperimentConfig &cfg, int priority,
                   const std::string &trace_dir);
    void maybeBatchDone(Client &c);
    void maybeDrainDone();
};

bool
FarmServer::Impl::spawnWorker(Worker &w, std::string *error)
{
    if (respawns >= kMaxRespawns) {
        w.dead = true;
        if (error)
            *error = "worker respawn cap reached";
        return false;
    }
    const std::string exe = farmSelfExePath();
    if (exe.empty()) {
        if (error)
            *error = "cannot resolve own executable path";
        return false;
    }
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        if (error)
            *error = std::string("socketpair: ") + std::strerror(errno);
        return false;
    }
    ++respawns;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        if (error)
            *error = std::string("fork: ") + std::strerror(errno);
        return false;
    }
    if (pid == 0) {
        // Child: exec ourselves in worker mode on the other socket end.
        ::close(sv[0]);
        ::fcntl(sv[1], F_SETFD, 0); // must survive the exec
        const std::string fd_arg = std::to_string(sv[1]);
        ::execl(exe.c_str(), exe.c_str(), kFarmWorkerArg, fd_arg.c_str(),
                static_cast<char *>(nullptr));
        std::_Exit(127);
    }
    ::close(sv[1]);
    // Daemon-side end must NOT leak into sibling workers on respawn.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    w.pid = pid;
    w.fd = sv[0];
    w.cell = 0;
    w.rx = FrameBuffer();
    w.dead = false;
    if (obs::Counter *c = farmMetrics().worker_spawns)
        c->add();
    return true;
}

void
FarmServer::Impl::killWorker(Worker &w)
{
    if (w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        int st = 0;
        while (::waitpid(w.pid, &st, 0) < 0 && errno == EINTR) {
        }
    }
    if (w.fd >= 0)
        ::close(w.fd);
    w.pid = -1;
    w.fd = -1;
}

void
FarmServer::Impl::deliver(const Cell &cell, const char *status,
                          bool cached, int attempts,
                          const std::string &data,
                          const std::string &error)
{
    for (const auto &[fd, index] : cell.subs) {
        auto it = clients.find(fd);
        if (it == clients.end() || it->second.gone)
            continue;
        Client &c = it->second;
        if (!writeFrameCounted(fd, resultFrame(index, status, cached,
                                               attempts, data, error))) {
            c.gone = true;
            continue;
        }
        if (std::strcmp(status, "poisoned") == 0)
            ++c.batch_poisoned;
        if (c.outstanding > 0)
            --c.outstanding;
        maybeBatchDone(c);
    }
}

void
FarmServer::Impl::maybeBatchDone(Client &c)
{
    if (c.gone || c.outstanding != 0)
        return;
    std::ostringstream os;
    os << "{\"type\": \"batch-done\", \"poisoned\": "
       << jsonU64(c.batch_poisoned) << "}";
    if (!writeFrameCounted(c.fd, os.str()))
        c.gone = true;
    c.batch_poisoned = 0;
}

void
FarmServer::Impl::retryOrPoison(std::uint64_t cell_id,
                                const std::string &reason)
{
    auto it = cells.find(cell_id);
    if (it == cells.end())
        return;
    Cell &cell = it->second;
    if (cell.attempts < 2) {
        // One more chance, counted so tests can assert exactly one.
        ++totals().retried;
        if (obs::Counter *c = farmMetrics().cells_retried)
            c->add();
        spanEvent(cell, "retry", -1, false, reason);
        queue->push(cell_id);
        return;
    }
    totals().poisoned++;
    totals().done++;
    if (obs::Counter *c = farmMetrics().cells_poisoned)
        c->add();
    if (obs::Counter *c = farmMetrics().cells_done)
        c->add();
    poisoned[cell.key] = reason;
    obs::LogLine(obs::LogLevel::Warn, "farm")
        .msg("poisoned cell")
        .kv("cell", cell.key)
        .kv("attempts", cell.attempts)
        .kv("why", reason);
    spanEvent(cell, "poison", -1, false, reason);
    deliver(cell, "poisoned", false, cell.attempts, "", reason);
    active_by_key.erase(cell.key);
    cells.erase(it);
}

void
FarmServer::Impl::finishCell(std::uint64_t cell_id, bool cached,
                             const std::string &data, int worker)
{
    auto it = cells.find(cell_id);
    if (it == cells.end())
        return;
    Cell &cell = it->second;
    totals().done++;
    ++(cached ? totals().cached : totals().simulated);
    if (obs::Counter *c = farmMetrics().cells_done)
        c->add();
    if (obs::Counter *c = cached ? farmMetrics().cells_cached
                                 : farmMetrics().cells_simulated)
        c->add();
    spanEvent(cell, "done", worker, cached);
    // Memoize in the daemon's own cache so later submissions (and a
    // status-quo restart from the persisted file) are warm.
    ExperimentResult r;
    r.config = cell.cfg;
    if (farmParseResultData(data, r))
        ResultCache::instance().noteExternal(cell.key, r);
    deliver(cell, "done", cached, cell.attempts, data, "");
    active_by_key.erase(cell.key);
    cells.erase(it);
}

void
FarmServer::Impl::handleWorkerDeath(Worker &w, const std::string &reason)
{
    totals().worker_deaths++;
    if (obs::Counter *c = farmMetrics().worker_deaths)
        c->add();
    const int widx = static_cast<int>(&w - workers.data());
    obs::LogLine(obs::LogLevel::Warn, "farm")
        .msg("worker death")
        .kv("worker", widx)
        .kv("pid", static_cast<std::int64_t>(w.pid))
        .kv("why", reason);
    const std::uint64_t cell = w.cell;
    killWorker(w);
    w.cell = 0;
    if (cell != 0) {
        auto cit = cells.find(cell);
        if (cit != cells.end())
            spanEvent(cit->second, "worker-death", widx, false, reason);
        retryOrPoison(cell, reason);
    }
    std::string err;
    if (!spawnWorker(w, &err)) {
        obs::LogLine(obs::LogLevel::Error, "farm")
            .msg("cannot respawn worker")
            .kv("worker", widx)
            .kv("why", err);
        w.dead = true;
        // If every worker is gone, nothing will ever run again: fail
        // the whole backlog explicitly rather than hanging clients.
        if (std::all_of(workers.begin(), workers.end(),
                        [](const Worker &x) { return x.dead; })) {
            std::size_t id;
            for (unsigned s = 0; s < queue->shards(); ++s)
                while (queue->tryPop(s, id)) {
                    auto it = cells.find(id);
                    if (it != cells.end())
                        it->second.attempts = 2;
                    retryOrPoison(id, "no live workers");
                }
        }
    } else if (obs::Counter *c = farmMetrics().worker_respawns) {
        c->add();
    }
}

void
FarmServer::Impl::pump()
{
    for (std::size_t i = 0; i < workers.size(); ++i) {
        Worker &w = workers[i];
        if (w.dead || w.fd < 0 || w.cell != 0)
            continue;
        std::size_t id;
        if (!queue->tryPop(static_cast<unsigned>(i), id))
            continue;
        auto it = cells.find(id);
        if (it == cells.end())
            continue;
        Cell &cell = it->second;
        ++cell.attempts;
        std::ostringstream os;
        os << "{\"type\": \"cell\", \"id\": " << jsonU64(id)
           << ", \"config\": " << farmConfigJson(cell.cfg);
        if (!cell.trace_dir.empty())
            os << ", \"span\": " << jsonU64(id)
               << ", \"trace_dir\": " << jsonQuote(cell.trace_dir);
        os << "}";
        // Assign before writing so a failed write retries this cell
        // through the normal death path instead of losing it.
        w.cell = id;
        w.dispatched = Clock::now();
        spanEvent(cell, "dispatch", static_cast<int>(i));
        if (!writeFrameCounted(w.fd, os.str())) {
            handleWorkerDeath(w, "worker write failed");
            continue;
        }
        w.deadline = w.dispatched + std::chrono::duration_cast<
                                        Clock::duration>(
                         std::chrono::duration<double>(
                             opts().timeout_sec));
    }
}

void
FarmServer::Impl::handleWorkerFrame(Worker &w, const std::string &payload)
{
    JsonValue msg;
    std::string err;
    if (!parseJson(payload, msg, &err)) {
        handleWorkerDeath(w, "bad worker frame: " + err);
        return;
    }
    const JsonValue *type = msg.find("type");
    const std::string t = type ? type->text : "";
    const JsonValue *id_v = msg.find("id");
    const std::uint64_t id = id_v ? id_v->asU64() : 0;
    if (id != w.cell || id == 0) {
        handleWorkerDeath(w, "worker replied for unexpected cell");
        return;
    }
    // Per-attempt dispatch-to-reply latency, whatever the outcome.
    if (obs::Histogram *h = farmMetrics().cell_latency_us)
        h->observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - w.dispatched)
                .count()));
    const int widx = static_cast<int>(&w - workers.data());
    if (t == "cell-done") {
        const JsonValue *cached = msg.find("cached");
        const JsonValue *data = msg.find("data");
        w.cell = 0;
        finishCell(id, cached && cached->boolean,
                   data ? data->text : "", widx);
    } else if (t == "cell-error") {
        // A clean C++ exception is deterministic (bad config, missing
        // input): poison immediately, no point burning a retry.
        const JsonValue *m = msg.find("message");
        w.cell = 0;
        auto it = cells.find(id);
        if (it != cells.end())
            it->second.attempts = 2;
        retryOrPoison(id, m ? m->text : "worker exception");
    } else {
        handleWorkerDeath(w, "unexpected worker message '" + t + "'");
    }
}

void
FarmServer::Impl::submitOne(Client &c, std::uint64_t index,
                            const ExperimentConfig &cfg, int priority,
                            const std::string &trace_dir)
{
    const std::string key = cfg.key();

    auto pit = poisoned.find(key);
    if (pit != poisoned.end()) {
        // Known-bad cell: answer from the poison record, don't re-run.
        if (!writeFrameCounted(c.fd, resultFrame(index, "poisoned",
                                                 false, 0, "",
                                                 pit->second)))
            c.gone = true;
        else
            ++c.batch_poisoned;
        return;
    }

    // Traced submits skip the cache shortcut on purpose: a hit would
    // answer with counters but no worker ever runs, so there would be
    // nothing to put on the merged timeline (mirrors how
    // runExperimentTraced always simulates).
    ExperimentResult hit;
    if (trace_dir.empty() && ResultCache::instance().lookup(cfg, hit)) {
        totals().done++;
        totals().cached++;
        if (obs::Counter *mc = farmMetrics().cells_done)
            mc->add();
        if (obs::Counter *mc = farmMetrics().cells_cached)
            mc->add();
        if (!writeFrameCounted(c.fd,
                               resultFrame(index, "done", true, 0,
                                           farmResultData(hit), "")))
            c.gone = true;
        return;
    }

    ++c.outstanding;
    auto ait = active_by_key.find(key);
    if (ait != active_by_key.end()) {
        // Same cell already queued/in flight (this batch or another
        // client's): subscribe instead of re-running — the cross-
        // process analogue of SweepRunner's dedup.
        cells[ait->second].subs.emplace_back(c.fd, index);
        return;
    }

    const std::uint64_t id = next_cell_id++;
    Cell cell;
    cell.id = id;
    cell.cfg = cfg;
    cell.key = key;
    cell.trace_dir = trace_dir;
    cell.subs.emplace_back(c.fd, index);
    spanEvent(cell, "submit");
    cells.emplace(id, std::move(cell));
    active_by_key.emplace(key, id);
    queue->push(id, priority);
}

void
FarmServer::Impl::handleClientFrame(Client &c, const std::string &payload)
{
    JsonValue msg;
    std::string err;
    auto sendError = [&](const std::string &code,
                         const std::string &message) {
        std::ostringstream os;
        os << "{\"type\": \"error\", \"code\": " << jsonQuote(code)
           << ", \"message\": " << jsonQuote(message) << "}";
        if (!writeFrameCounted(c.fd, os.str()))
            c.gone = true;
    };
    if (!parseJson(payload, msg, &err)) {
        sendError("bad-frame", err);
        return;
    }
    const JsonValue *type = msg.find("type");
    const std::string t = type ? type->text : "";

    if (t == "hello") {
        const JsonValue *proto = msg.find("protocol");
        if (!proto || proto->text != kFarmProtocol) {
            sendError("bad-protocol",
                      "expected " + std::string(kFarmProtocol));
            return;
        }
        std::ostringstream os;
        os << "{\"type\": \"hello\", \"protocol\": \"" << kFarmProtocol
           << "\", \"workers\": " << workers.size() << "}";
        if (!writeFrameCounted(c.fd, os.str()))
            c.gone = true;
    } else if (t == "submit") {
        if (draining) {
            sendError("draining", "daemon is draining");
            return;
        }
        const JsonValue *cells_v = msg.find("cells");
        if (!cells_v || !cells_v->isArray()) {
            sendError("bad-submit", "missing cells array");
            return;
        }
        std::string trace_dir;
        if (const JsonValue *td = msg.find("trace_dir"))
            trace_dir = td->text;
        for (std::size_t i = 0; i < cells_v->items.size(); ++i) {
            const JsonValue &cv = cells_v->items[i];
            ExperimentConfig cfg;
            if (!farmParseConfig(cv, cfg, &err)) {
                sendError("bad-config",
                          "cell " + std::to_string(i) + ": " + err);
                return;
            }
            int priority = 0;
            if (const JsonValue *p = cv.find("priority"))
                priority = static_cast<int>(p->asDouble());
            submitOne(c, i, cfg, priority, trace_dir);
            if (c.gone)
                return;
        }
        maybeBatchDone(c); // fully-cached batches finish synchronously
        pump();
    } else if (t == "status") {
        unsigned live = 0, busy = 0;
        for (const Worker &w : workers) {
            if (!w.dead && w.fd >= 0)
                ++live;
            if (w.cell != 0)
                ++busy;
        }
        std::ostringstream os;
        os << "{\"type\": \"status-reply\", \"workers\": " << live
           << ", \"busy\": " << busy
           << ", \"queued\": " << jsonU64(queue->pending())
           << ", \"inflight\": " << busy
           << ", \"done\": " << jsonU64(totals().done)
           << ", \"simulated\": " << jsonU64(totals().simulated)
           << ", \"cached\": " << jsonU64(totals().cached)
           << ", \"poisoned\": " << jsonU64(totals().poisoned)
           << ", \"retried\": " << jsonU64(totals().retried)
           << ", \"worker_deaths\": " << jsonU64(totals().worker_deaths)
           << ", \"draining\": " << jsonBool(draining) << "}";
        if (!writeFrameCounted(c.fd, os.str()))
            c.gone = true;
    } else if (t == "metrics") {
        // Refresh the point-in-time gauges so the scrape is coherent
        // with the counters it travels with.
        unsigned busy = 0;
        for (const Worker &w : workers)
            if (w.cell != 0)
                ++busy;
        if (obs::Gauge *g = farmMetrics().queue_depth)
            g->set(static_cast<std::int64_t>(queue->pending()));
        if (obs::Gauge *g = farmMetrics().inflight)
            g->set(busy);
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::instance().snapshot();
        const JsonValue *fmt = msg.find("format");
        std::ostringstream os;
        if (fmt && fmt->text == "prometheus")
            os << "{\"type\": \"metrics-reply\", \"text\": "
               << jsonQuote(obs::metricsPrometheusTextFrom(snap)) << "}";
        else
            os << "{\"type\": \"metrics-reply\", \"metrics\": "
               << obs::metricsJsonFrom(snap) << "}";
        if (!writeFrameCounted(c.fd, os.str()))
            c.gone = true;
    } else if (t == "drain") {
        draining = true;
        drain_fds.push_back(c.fd);
        maybeDrainDone();
    } else {
        sendError("bad-type", "unknown message '" + t + "'");
    }
}

void
FarmServer::Impl::maybeDrainDone()
{
    if (!draining || queue->pending() > 0)
        return;
    for (const Worker &w : workers)
        if (w.cell != 0)
            return;
    for (int fd : drain_fds)
        writeFrameCounted(fd, "{\"type\": \"drain-ok\"}");
    drain_fds.clear();
    self->requestStop();
}

void
FarmServer::Impl::dropClient(int fd)
{
    clients.erase(fd);
    ::close(fd);
    // Unsubscribe everywhere; orphaned cells still run (they warm the
    // cache for the client's retry).
    for (auto &[id, cell] : cells)
        cell.subs.erase(std::remove_if(cell.subs.begin(),
                                       cell.subs.end(),
                                       [fd](const auto &s) {
                                           return s.first == fd;
                                       }),
                        cell.subs.end());
    drain_fds.erase(std::remove(drain_fds.begin(), drain_fds.end(), fd),
                    drain_fds.end());
}

FarmServer::FarmServer(FarmOptions opts) : opts_(std::move(opts))
{
    if (opts_.socket_path.empty() || opts_.workers == 0 ||
        opts_.timeout_sec <= 0) {
        const FarmOptions env = FarmOptions::fromEnv();
        if (opts_.socket_path.empty())
            opts_.socket_path = env.socket_path;
        if (opts_.workers == 0)
            opts_.workers = env.workers;
        if (opts_.timeout_sec <= 0)
            opts_.timeout_sec = env.timeout_sec;
    }
}

FarmServer::~FarmServer()
{
    if (!impl_)
        return;
    for (Worker &w : impl_->workers)
        impl_->killWorker(w);
    for (auto &[fd, c] : impl_->clients)
        ::close(fd);
    if (impl_->listen_fd >= 0)
        ::close(impl_->listen_fd);
    if (impl_->wake_r >= 0)
        ::close(impl_->wake_r);
    if (wake_w_ >= 0)
        ::close(wake_w_);
    ::unlink(opts_.socket_path.c_str());
    delete impl_->queue;
    delete impl_;
}

bool
FarmServer::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        return false;
    };

    std::signal(SIGPIPE, SIG_IGN);

    const std::string &path = opts_.socket_path;
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return fail("socket");

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (errno != EADDRINUSE) {
            ::close(fd);
            return fail("bind " + path);
        }
        // Stale socket from a killed daemon, or a live one?  Probe.
        const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC,
                                   0);
        const bool live =
            probe >= 0 &&
            ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
        if (probe >= 0)
            ::close(probe);
        if (live) {
            ::close(fd);
            if (error)
                *error = "a daemon is already listening on " + path;
            return false;
        }
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind " + path);
        }
    }
    if (::listen(fd, 16) != 0) {
        ::close(fd);
        ::unlink(path.c_str());
        return fail("listen");
    }

    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        ::close(fd);
        ::unlink(path.c_str());
        return fail("pipe");
    }
    ::fcntl(pipefd[0], F_SETFL, O_NONBLOCK);
    ::fcntl(pipefd[1], F_SETFL, O_NONBLOCK);
    ::fcntl(pipefd[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(pipefd[1], F_SETFD, FD_CLOEXEC);

    impl_ = new Impl();
    impl_->self = this;
    impl_->listen_fd = fd;
    impl_->wake_r = pipefd[0];
    wake_w_ = pipefd[1];
    impl_->queue = new ShardedWorkQueue(opts_.workers);
    impl_->workers.resize(opts_.workers);
    for (Worker &w : impl_->workers) {
        std::string err;
        if (!impl_->spawnWorker(w, &err)) {
            if (error)
                *error = "spawn worker: " + err;
            return false;
        }
    }
    return true;
}

void
FarmServer::requestStop()
{
    stop_.store(true);
    if (wake_w_ >= 0) {
        const char b = 'x';
        // Best-effort wake; the pipe being full already wakes the loop.
        (void)!::write(wake_w_, &b, 1);
    }
}

std::vector<int>
FarmServer::workerPids() const
{
    std::vector<int> pids;
    if (impl_)
        for (const Worker &w : impl_->workers)
            if (w.pid > 0)
                pids.push_back(static_cast<int>(w.pid));
    return pids;
}

int
FarmServer::serve()
{
    if (!impl_)
        return 1;
    Impl &im = *impl_;
    char buf[65536];

    while (!stop_.load()) {
        im.pump();
        im.maybeDrainDone();
        {
            unsigned busy = 0;
            for (const Worker &w : im.workers)
                if (w.cell != 0)
                    ++busy;
            if (obs::Gauge *g = farmMetrics().queue_depth)
                g->set(static_cast<std::int64_t>(im.queue->pending()));
            if (obs::Gauge *g = farmMetrics().inflight)
                g->set(busy);
        }
        if (stop_.load())
            break;

        std::vector<pollfd> pfds;
        pfds.push_back({im.listen_fd, POLLIN, 0});
        pfds.push_back({im.wake_r, POLLIN, 0});
        std::vector<std::size_t> worker_at(im.workers.size(), SIZE_MAX);
        for (std::size_t i = 0; i < im.workers.size(); ++i)
            if (!im.workers[i].dead && im.workers[i].fd >= 0) {
                worker_at[i] = pfds.size();
                pfds.push_back({im.workers[i].fd, POLLIN, 0});
            }
        const std::size_t clients_from = pfds.size();
        std::vector<int> client_fds;
        for (const auto &[fd, c] : im.clients) {
            client_fds.push_back(fd);
            pfds.push_back({fd, POLLIN, 0});
        }

        // Wake for the nearest busy-worker deadline.
        int timeout_ms = -1;
        const auto now = Clock::now();
        for (const Worker &w : im.workers)
            if (w.cell != 0) {
                const auto left =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        w.deadline - now)
                        .count();
                const int ms =
                    left < 0 ? 0
                             : static_cast<int>(
                                   std::min<long long>(left, 60000)) +
                                   10;
                if (timeout_ms < 0 || ms < timeout_ms)
                    timeout_ms = ms;
            }

        int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return 1;
        }

        // Expired deadlines: the worker is presumed hung.
        const auto after = Clock::now();
        for (Worker &w : im.workers)
            if (w.cell != 0 && after >= w.deadline)
                im.handleWorkerDeath(w, "cell timed out after " +
                                            std::to_string(
                                                opts_.timeout_sec) +
                                            "s");

        if (pfds[1].revents & POLLIN)
            while (::read(im.wake_r, buf, sizeof(buf)) > 0) {
            }

        if (pfds[0].revents & POLLIN) {
            // One accept per wakeup: poll is level-triggered, so a
            // second pending connection just wakes us again.
            const int cfd = ::accept(im.listen_fd, nullptr, nullptr);
            if (cfd >= 0) {
                ::fcntl(cfd, F_SETFD, FD_CLOEXEC);
                Client c;
                c.fd = cfd;
                im.clients.emplace(cfd, std::move(c));
            }
        }

        for (std::size_t i = 0; i < im.workers.size(); ++i) {
            const std::size_t at = worker_at[i];
            if (at == SIZE_MAX || !(pfds[at].revents & (POLLIN | POLLHUP |
                                                        POLLERR)))
                continue;
            Worker &w = im.workers[i];
            if (w.fd != pfds[at].fd)
                continue; // already respawned this iteration
            const ssize_t n = ::read(w.fd, buf, sizeof(buf));
            if (n <= 0) {
                if (n < 0 && (errno == EINTR || errno == EAGAIN))
                    continue;
                im.handleWorkerDeath(w, "worker died (crash?)");
                continue;
            }
            if (obs::Counter *bc = farmMetrics().bytes_in)
                bc->add(static_cast<std::uint64_t>(n));
            w.rx.feed(buf, static_cast<std::size_t>(n));
            std::string payload;
            while (w.fd >= 0 && w.rx.next(payload))
                im.handleWorkerFrame(w, payload);
            if (!w.rx.error().empty())
                im.handleWorkerDeath(w, w.rx.error());
        }

        for (std::size_t j = 0; j < client_fds.size(); ++j) {
            const pollfd &p = pfds[clients_from + j];
            if (!(p.revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            auto it = im.clients.find(client_fds[j]);
            if (it == im.clients.end())
                continue;
            Client &c = it->second;
            const ssize_t n = ::read(c.fd, buf, sizeof(buf));
            if (n <= 0) {
                if (n < 0 && (errno == EINTR || errno == EAGAIN))
                    continue;
                im.dropClient(c.fd);
                continue;
            }
            if (obs::Counter *bc = farmMetrics().bytes_in)
                bc->add(static_cast<std::uint64_t>(n));
            c.rx.feed(buf, static_cast<std::size_t>(n));
            std::string payload;
            while (!c.gone && c.rx.next(payload))
                im.handleClientFrame(c, payload);
            if (c.gone || !c.rx.error().empty())
                im.dropClient(client_fds[j]);
        }
    }

    // Clean exit: quit the workers (SIGKILL in killWorker is the
    // backstop for ones mid-cell).
    for (Worker &w : im.workers) {
        if (w.fd >= 0)
            writeFrameCounted(w.fd, "{\"type\": \"quit\"}");
        im.killWorker(w);
    }
    return 0;
}

#else // _WIN32 stubs: the farm is POSIX-only.

struct FarmServer::Impl {};

FarmServer::FarmServer(FarmOptions opts) : opts_(std::move(opts)) {}
FarmServer::~FarmServer() = default;

bool
FarmServer::start(std::string *error)
{
    if (error)
        *error = "the simulation farm is not supported on this platform";
    return false;
}

int
FarmServer::serve()
{
    return 1;
}

void
FarmServer::requestStop()
{
    stop_.store(true);
}

std::vector<int>
FarmServer::workerPids() const
{
    return {};
}

#endif

} // namespace rnr
