/**
 * @file
 * Client side of the simulation farm.
 *
 * FarmClient is a thin blocking wrapper over one unix-socket
 * connection to rnr_farmd (protocol: farm/farm_protocol.h, spec:
 * docs/HARNESS.md §15): connect, submit a batch, stream results back,
 * ask for status, or drain the daemon.  FarmClientBackend adapts it to
 * the harness/scheduler.h ExperimentBackend interface, which is how a
 * sweep (and therefore every bench's --farm flag / $RNR_FARM) runs its
 * cells remotely with no other code change.
 *
 * Results streamed back are memoized into this process's ResultCache
 * (noteExternal), so the idiomatic bench pattern — precompute via a
 * sweep, then re-run cells warm while printing — stays free: the warm
 * calls hit the local memo instead of a socket.
 */
#ifndef RNR_FARM_FARM_CLIENT_H
#define RNR_FARM_FARM_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/scheduler.h"

namespace rnr {

/** Daemon-side progress snapshot (the "status" reply). */
struct FarmStatus {
    unsigned workers = 0;  ///< live worker processes
    unsigned busy = 0;     ///< workers executing a cell right now
    std::uint64_t queued = 0;   ///< cells waiting for a worker
    std::uint64_t inflight = 0; ///< cells dispatched, not yet done
    std::uint64_t done = 0;
    std::uint64_t simulated = 0;
    std::uint64_t cached = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t retried = 0;
    std::uint64_t worker_deaths = 0;
    bool draining = false;
};

/** One line of human-readable status ("trace_tools farm status"). */
std::string formatFarmStatus(const FarmStatus &s);

/** Blocking farm connection; one request pattern at a time. */
class FarmClient
{
  public:
    FarmClient() = default;
    ~FarmClient();

    FarmClient(const FarmClient &) = delete;
    FarmClient &operator=(const FarmClient &) = delete;

    /** Connects and completes the hello handshake.  On a socket-level
     *  failure @p error is a typed one-liner ("no daemon socket at
     *  <path> ...") and connectErrno() holds the errno (ENOENT = no
     *  socket file, ECONNREFUSED = stale socket), so callers can turn
     *  "daemon not running" into a distinct exit code. */
    bool connect(const std::string &socket_path, std::string *error);

    /** errno from the last connect() attempt; 0 after success. */
    int connectErrno() const { return connect_errno_; }

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Sends one batch; results then arrive via next().  A non-empty
     *  @p trace_dir asks the daemon to span-correlate the batch: it
     *  records daemon-side span events there and workers drop one
     *  Perfetto JSON per cell (`trace_tools farm trace` merges them). */
    bool submit(const std::vector<ExperimentConfig> &cells,
                const std::vector<int> &priorities, std::string *error,
                const std::string &trace_dir = "");

    /** One streamed reply. */
    struct Reply {
        bool batch_done = false; ///< end of batch; index/outcome unset
        std::size_t index = 0;   ///< batch index of this result
        CellOutcome outcome;
    };

    /** Blocks for the next result or batch-done frame. */
    bool next(Reply &out, std::string *error);

    bool status(FarmStatus &out, std::string *error);

    /**
     * Scrapes the daemon's metrics registry (the additive "metrics"
     * request).  @p out receives the rnr-metrics-v1 JSON object, or the
     * Prometheus text exposition when @p prometheus is true.
     */
    bool metrics(std::string &out, std::string *error,
                 bool prometheus = false);

    /** Asks the daemon to finish in-flight work and exit; blocks for
     *  the drain-ok acknowledgement. */
    bool drain(std::string *error);

  private:
    int fd_ = -1;
    int connect_errno_ = 0;
};

/** Runs a sweep's cells on a farm daemon (SweepOptions::farm). */
class FarmClientBackend final : public ExperimentBackend
{
  public:
    explicit FarmClientBackend(std::string socket_path)
        : socket_(std::move(socket_path))
    {
    }

    std::string name() const override
    {
        return "farm(" + socket_ + ")";
    }

    /** Throws std::runtime_error on connection/protocol failure. */
    void run(const std::vector<ExperimentConfig> &cells,
             const std::vector<int> &priorities,
             const CellDoneFn &done) override;

  private:
    std::string socket_;
};

} // namespace rnr

#endif // RNR_FARM_FARM_CLIENT_H
