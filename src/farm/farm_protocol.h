/**
 * @file
 * Wire protocol of the simulation farm ("rnr-farm-v1").
 *
 * Every connection — bench/trace_tools client to rnr_farmd, and daemon
 * to its worker processes — speaks the same framing: a 4-byte
 * little-endian unsigned length followed by that many bytes of UTF-8
 * JSON (one message object per frame).  Frames larger than
 * kFarmMaxFrame are a protocol error: the reader fails instead of
 * allocating attacker- or bug-sized buffers.
 *
 * Message schemas, error codes and the worker lifecycle are specified
 * in docs/HARNESS.md §15; this header only fixes the mechanics:
 *
 *  - farmWriteFrame()/farmReadFrame(): blocking, EINTR-safe frame I/O
 *    for clients and workers (one in-flight request at a time);
 *  - FrameBuffer: incremental reassembly for the daemon's non-blocking
 *    poll loop, which receives partial frames;
 *  - config and result codecs shared by both directions.  Result
 *    counters travel as the result cache's serialized text
 *    (ResultCache::serialize) inside a JSON string field — exact u64
 *    round-trip for free, one codec instead of two.
 *
 * Everything here is transport-only and deterministic: no message
 * carries timestamps or host identity, so a replayed conversation is
 * byte-identical.
 */
#ifndef RNR_FARM_FARM_PROTOCOL_H
#define RNR_FARM_FARM_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "harness/experiment.h"
#include "harness/json_parse.h"

namespace rnr {

/** Hard cap on one frame's payload (64 MiB). */
constexpr std::size_t kFarmMaxFrame = 64u << 20;

/** Protocol identifier carried in "hello" messages. */
constexpr const char *kFarmProtocol = "rnr-farm-v1";

/**
 * Writes one length-prefixed frame, retrying short writes and EINTR.
 * Returns false on EOF/error (including payloads over kFarmMaxFrame).
 */
bool farmWriteFrame(int fd, const std::string &payload);

/**
 * Reads one full frame (blocking).  Returns false on clean EOF before
 * any byte, on a truncated frame, or on an oversized length; @p error
 * (optional) distinguishes the cases.
 */
bool farmReadFrame(int fd, std::string &payload,
                   std::string *error = nullptr);

/**
 * Incremental frame reassembly for non-blocking readers.  feed() bytes
 * as they arrive; next() yields complete payloads in order.  An
 * oversized frame poisons the buffer: next() returns false with a
 * non-empty error() forever after (the stream cannot be resynced).
 */
class FrameBuffer
{
  public:
    void feed(const char *data, std::size_t n);

    /** True when a complete frame was extracted into @p payload. */
    bool next(std::string &payload);

    /** Non-empty once the stream is unrecoverable. */
    const std::string &error() const { return error_; }

  private:
    std::string buf_;
    std::string error_;
};

/** Serialises the key()-relevant fields of @p cfg as one JSON object
 *  (same field names as the rnr-sweep JSON export). */
std::string farmConfigJson(const ExperimentConfig &cfg);

/** Inverse of farmConfigJson(); false + @p error on unknown names. */
bool farmParseConfig(const JsonValue &v, ExperimentConfig &out,
                     std::string *error = nullptr);

/** Counter payload of @p r as a JSON string value (see file header). */
std::string farmResultData(const ExperimentResult &r);

/** Inverse of farmResultData(); @p out.config is left untouched. */
bool farmParseResultData(const std::string &data, ExperimentResult &out);

} // namespace rnr

#endif // RNR_FARM_FARM_PROTOCOL_H
