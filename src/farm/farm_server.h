/**
 * @file
 * rnr_farmd: the simulation-farm daemon.
 *
 * The daemon owns the shared result cache and trace corpus for a
 * working directory and executes experiment batches submitted over a
 * unix socket (protocol: farm/farm_protocol.h, spec: docs/HARNESS.md
 * §15).  Cells are sharded across worker *processes* — fork/exec'd
 * copies of the daemon's own binary (farm/farm_worker.h) — so a cell
 * that segfaults or hangs is quarantined: the daemon SIGKILLs the
 * worker, respawns it, retries the cell once on another attempt, and
 * records a poison entry if it fails again.  The batch always
 * completes; poisoned cells come back as explicit "poisoned" results,
 * never as a wedged client.
 *
 * Scheduling reuses harness/scheduler.h's ShardedWorkQueue (one shard
 * per worker, idle workers steal), and deduplication mirrors
 * SweepRunner: concurrent submissions of the same ExperimentConfig
 * key — within one batch or across clients — run once, with every
 * subscriber receiving the result.  Results a worker streams back are
 * memoized in the daemon's ResultCache (noteExternal), so a warm
 * resubmission performs zero simulations and a daemon restarted after
 * a kill resumes from the persisted cache file mid-sweep.
 *
 * Single-threaded: one poll(2) loop owns every fd (listen socket,
 * clients, worker sockets, a self-pipe for requestStop()).  Workers
 * are where the parallelism lives.
 *
 * Environment (all overridable through FarmOptions):
 *   RNR_FARM_SOCKET=<path>   listen socket (default "rnr_farm.sock")
 *   RNR_FARM_WORKERS=<n>     worker processes (default 2)
 *   RNR_FARM_TIMEOUT_SEC=<s> per-cell deadline before the worker is
 *                            presumed hung and SIGKILLed (default 300)
 */
#ifndef RNR_FARM_FARM_SERVER_H
#define RNR_FARM_FARM_SERVER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rnr {

/** Daemon knobs; every default defers to the environment. */
struct FarmOptions {
    std::string socket_path; ///< "" = $RNR_FARM_SOCKET or rnr_farm.sock
    unsigned workers = 0;    ///< 0 = $RNR_FARM_WORKERS or 2
    double timeout_sec = 0;  ///< 0 = $RNR_FARM_TIMEOUT_SEC or 300

    /** Resolves every defaulted field against the environment. */
    static FarmOptions fromEnv();
};

/** Lifetime counters, exposed over "status" and for tests. */
struct FarmTotals {
    std::uint64_t done = 0;      ///< results delivered (incl. cached)
    std::uint64_t simulated = 0; ///< executed by a worker, cache-cold
    std::uint64_t cached = 0;    ///< served from a cache layer
    std::uint64_t poisoned = 0;  ///< quarantined after retry
    std::uint64_t retried = 0;   ///< re-dispatches after a worker death
    std::uint64_t worker_deaths = 0;
};

/**
 * The daemon.  start() binds and spawns workers; serve() runs the poll
 * loop until drained or requestStop().  Tests run serve() on a thread
 * and drive it through a FarmClient.  POSIX-only: on Windows start()
 * fails cleanly.
 */
class FarmServer
{
  public:
    explicit FarmServer(FarmOptions opts = FarmOptions::fromEnv());
    ~FarmServer();

    FarmServer(const FarmServer &) = delete;
    FarmServer &operator=(const FarmServer &) = delete;

    /** Binds the socket (replacing a stale one; refusing a live one)
     *  and spawns the workers.  False + @p error on failure. */
    bool start(std::string *error);

    /** Poll loop; returns 0 on a clean drain/stop. */
    int serve();

    /** Asynchronously asks serve() to finish (thread- and
     *  signal-safe); in-flight cells are abandoned to their workers,
     *  which are SIGKILLed on the way out. */
    void requestStop();

    const FarmOptions &options() const { return opts_; }
    const FarmTotals &totals() const { return totals_; }

    /** Live worker pids (tests kill one to exercise quarantine). */
    std::vector<int> workerPids() const;

  private:
    struct Impl;
    FarmOptions opts_;
    FarmTotals totals_;
    Impl *impl_ = nullptr; ///< POSIX state; null before start()
    std::atomic<bool> stop_{false};
    int wake_w_ = -1; ///< requestStop() side of the self-pipe
};

} // namespace rnr

#endif // RNR_FARM_FARM_SERVER_H
