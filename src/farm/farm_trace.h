/**
 * @file
 * Cross-process trace correlation: merges one traced farm batch into a
 * single Perfetto-loadable timeline.
 *
 * A traced submit (FarmClient::submit with a trace_dir) produces two
 * kinds of artifacts in that directory:
 *
 *   daemon_spans.jsonl   one JSONL event per span transition, written
 *                        by the daemon: submit, dispatch, retry,
 *                        worker-death, poison, done — each with the
 *                        span id, cell key and a wall-clock "t_us".
 *   span_<id>.json       one Chrome-trace JSON per executed cell,
 *                        written by the worker that ran it (the PR-3
 *                        exporter, sim/trace_event.h).
 *
 * mergeFarmTrace() folds both into one {"traceEvents": [...]} file:
 *
 *   pid 0  "rnr_farmd"    one lane (tid) per span, carrying the
 *                         queue-wait and exec duration events plus
 *                         retry/poison/worker-death instants, on the
 *                         daemon's wall clock (normalised to t=0 at
 *                         the first daemon event).
 *   pid 1000+<span>       that span's worker-side simulation events,
 *                         lifted verbatim from span_<id>.json (their
 *                         "ts" is core cycles — only relative spacing
 *                         within the lane is meaningful, which is why
 *                         the worker events get their own pid instead
 *                         of being spliced onto the daemon clock).
 *
 * The output loads directly into ui.perfetto.dev or chrome://tracing.
 */
#ifndef RNR_FARM_FARM_TRACE_H
#define RNR_FARM_FARM_TRACE_H

#include <string>

namespace rnr {

/**
 * Merges @p trace_dir's daemon_spans.jsonl and span_*.json files into
 * one Chrome-trace JSON at @p out_path.  False + @p error when the
 * directory has no daemon span log, a span line is unparseable, or the
 * output cannot be written; a missing span_<id>.json is tolerated (the
 * cell may have been poisoned before a worker finished it) and noted
 * on the daemon lane instead.
 */
bool mergeFarmTrace(const std::string &trace_dir,
                    const std::string &out_path, std::string *error);

} // namespace rnr

#endif // RNR_FARM_FARM_TRACE_H
