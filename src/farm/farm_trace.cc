#include "farm/farm_trace.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "harness/json_parse.h"
#include "harness/json_write.h"

namespace rnr {

namespace {

/** One parsed daemon_spans.jsonl record. */
struct SpanEvent {
    std::string ev;
    std::uint64_t t_us = 0;
    int worker = -1;
    int attempt = 0;
    bool cached = false;
    std::string note;
};

struct Span {
    std::string key;
    std::vector<SpanEvent> events;
};

/** Worker lanes start here so they never collide with the daemon's
 *  pid 0 or the exporter's own pid 1. */
constexpr std::uint64_t kWorkerPidBase = 1000;

bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

void
appendDurEvent(std::ostringstream &os, bool &first, const std::string &name,
               std::uint64_t span, std::uint64_t ts, std::uint64_t dur)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"" << jsonEscape(name)
       << "\", \"cat\": \"farm\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
       << jsonU64(span) << ", \"ts\": " << jsonU64(ts)
       << ", \"dur\": " << jsonU64(dur ? dur : 1) << "}";
}

void
appendInstantEvent(std::ostringstream &os, bool &first,
                   const std::string &name, std::uint64_t span,
                   std::uint64_t ts)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"" << jsonEscape(name)
       << "\", \"cat\": \"farm\", \"ph\": \"i\", \"s\": \"t\", "
          "\"pid\": 0, \"tid\": "
       << jsonU64(span) << ", \"ts\": " << jsonU64(ts) << "}";
}

void
appendMetaEvent(std::ostringstream &os, bool &first, const char *what,
                std::uint64_t pid, std::uint64_t tid, bool with_tid,
                const std::string &name)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": "
       << jsonU64(pid);
    if (with_tid)
        os << ", \"tid\": " << jsonU64(tid);
    os << ", \"args\": {\"name\": \"" << jsonEscape(name) << "\"}}";
}

/**
 * Lifts the traceEvents array body out of one span_<id>.json, re-homing
 * its events from the exporter's fixed pid 1 to @p pid.  The file is
 * the output of chromeTraceJson(), whose layout ("traceEvents": [ ...
 * "\n  ],") and per-event `"pid": 1, "tid"` shape are pinned by
 * tests/sim/trace_event_test.cc — string surgery here beats a DOM
 * round-trip because the harness has no general JSON writer.
 */
bool
liftWorkerEvents(const std::string &raw, std::uint64_t pid,
                 std::string &out)
{
    static const char kOpen[] = "\"traceEvents\": [";
    static const char kClose[] = "\n  ],";
    const std::size_t open = raw.find(kOpen);
    if (open == std::string::npos)
        return false;
    const std::size_t from = open + sizeof(kOpen) - 1;
    const std::size_t close = raw.find(kClose, from);
    if (close == std::string::npos)
        return false;
    std::string body = raw.substr(from, close - from);
    static const char kPid[] = "\"pid\": 1, \"tid\"";
    const std::string repl =
        "\"pid\": " + std::to_string(pid) + ", \"tid\"";
    std::size_t at = 0;
    while ((at = body.find(kPid, at)) != std::string::npos) {
        body.replace(at, sizeof(kPid) - 1, repl);
        at += repl.size();
    }
    out = std::move(body);
    return true;
}

} // namespace

bool
mergeFarmTrace(const std::string &trace_dir, const std::string &out_path,
               std::string *error)
{
    std::ifstream in(trace_dir + "/daemon_spans.jsonl");
    if (!in) {
        if (error)
            *error = "no daemon span log in " + trace_dir +
                     " (was the batch submitted with a trace_dir?)";
        return false;
    }

    std::map<std::uint64_t, Span> spans;
    std::uint64_t t0 = ~std::uint64_t{0};
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, v, &err)) {
            if (error)
                *error = "daemon_spans.jsonl line " +
                         std::to_string(lineno) + ": " + err;
            return false;
        }
        const JsonValue *span_v = v.find("span");
        const JsonValue *ev_v = v.find("ev");
        const JsonValue *t_v = v.find("t_us");
        if (!span_v || !ev_v || !t_v) {
            if (error)
                *error = "daemon_spans.jsonl line " +
                         std::to_string(lineno) +
                         ": missing span/ev/t_us";
            return false;
        }
        Span &s = spans[span_v->asU64()];
        if (const JsonValue *k = v.find("key"))
            s.key = k->text;
        SpanEvent e;
        e.ev = ev_v->text;
        e.t_us = t_v->asU64();
        if (const JsonValue *w = v.find("worker"))
            e.worker = static_cast<int>(w->asU64());
        if (const JsonValue *a = v.find("attempt"))
            e.attempt = static_cast<int>(a->asU64());
        if (const JsonValue *c = v.find("cached"))
            e.cached = c->boolean;
        if (const JsonValue *n = v.find("note"))
            e.note = n->text;
        t0 = std::min(t0, e.t_us);
        s.events.push_back(std::move(e));
    }
    if (spans.empty()) {
        if (error)
            *error = "daemon span log in " + trace_dir + " is empty";
        return false;
    }

    std::ostringstream os;
    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
    bool first = true;
    appendMetaEvent(os, first, "process_name", 0, 0, false, "rnr_farmd");

    for (const auto &[id, s] : spans)
        appendMetaEvent(os, first, "thread_name", 0, id, true,
                        "span " + std::to_string(id) + " " + s.key);

    // Daemon lanes: one per span, on the daemon wall clock (t0-based).
    for (auto &[id, s] : spans) {
        std::vector<SpanEvent> ev = s.events;
        std::stable_sort(ev.begin(), ev.end(),
                         [](const SpanEvent &a, const SpanEvent &b) {
                             return a.t_us < b.t_us;
                         });
        // waiting_from tracks the start of the current queue wait
        // (submit or retry); exec_from the current dispatch.
        std::uint64_t waiting_from = 0, exec_from = 0;
        bool waiting = false, executing = false;
        for (const SpanEvent &e : ev) {
            const std::uint64_t ts = e.t_us - t0;
            if (e.ev == "submit") {
                waiting_from = ts;
                waiting = true;
            } else if (e.ev == "dispatch") {
                if (waiting)
                    appendDurEvent(os, first, "queue-wait " + s.key, id,
                                   waiting_from, ts - waiting_from);
                waiting = false;
                exec_from = ts;
                executing = true;
            } else if (e.ev == "done") {
                if (executing)
                    appendDurEvent(os, first,
                                   std::string("exec ") + s.key +
                                       (e.cached ? " (cached)" : ""),
                                   id, exec_from, ts - exec_from);
                executing = false;
            } else if (e.ev == "retry") {
                appendInstantEvent(os, first, "retry: " + e.note, id,
                                   ts);
                waiting_from = ts;
                waiting = true;
                executing = false;
            } else if (e.ev == "worker-death") {
                if (executing)
                    appendDurEvent(os, first, "exec (lost) " + s.key,
                                   id, exec_from, ts - exec_from);
                executing = false;
                appendInstantEvent(os, first,
                                   "worker-death: " + e.note, id, ts);
            } else if (e.ev == "poison") {
                appendInstantEvent(os, first, "poison: " + e.note, id,
                                   ts);
                executing = false;
            }
        }
    }

    // Worker lanes: each executed span's Perfetto file, verbatim but
    // re-homed to its own pid so lanes never collide.
    for (const auto &[id, s] : spans) {
        std::string raw;
        if (!slurp(trace_dir + "/span_" + std::to_string(id) + ".json",
                   raw)) {
            // Poisoned/unfinished cells legitimately have no file.
            appendInstantEvent(os, first, "no worker trace for " + s.key,
                               id, 0);
            continue;
        }
        const std::uint64_t pid = kWorkerPidBase + id;
        std::string body;
        if (!liftWorkerEvents(raw, pid, body)) {
            if (error)
                *error = "span_" + std::to_string(id) +
                         ".json is not a chromeTraceJson() file";
            return false;
        }
        appendMetaEvent(os, first, "process_name", pid, 0, false,
                        "worker span " + std::to_string(id) + " " +
                            s.key);
        if (!body.empty()) {
            if (!first)
                os << ",";
            first = false;
            os << body;
        }
    }

    os << "\n  ],\n  \"otherData\": {\"spans\": " << spans.size()
       << ", \"trace_dir\": " << jsonQuote(trace_dir) << "}\n}\n";

    const std::string tmp = out_path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out || !(out << os.str())) {
            if (error)
                *error = "cannot write " + tmp;
            return false;
        }
    }
    if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (error)
            *error = "cannot rename " + tmp + " to " + out_path;
        return false;
    }
    return true;
}

} // namespace rnr
