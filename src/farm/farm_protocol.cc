#include "farm/farm_protocol.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "harness/json_write.h"
#include "harness/result_cache.h"
#include "prefetch/factory.h"

namespace rnr {

#ifndef _WIN32

namespace {

bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** Returns 1 on success, 0 on clean EOF at the first byte, -1 on error
 *  or a mid-read EOF. */
int
readAll(int fd, char *data, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, data + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

void
encodeLen(std::uint32_t n, char out[4])
{
    out[0] = static_cast<char>(n & 0xff);
    out[1] = static_cast<char>((n >> 8) & 0xff);
    out[2] = static_cast<char>((n >> 16) & 0xff);
    out[3] = static_cast<char>((n >> 24) & 0xff);
}

std::uint32_t
decodeLen(const char in[4])
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1]))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]))
            << 24);
}

} // namespace

bool
farmWriteFrame(int fd, const std::string &payload)
{
    if (payload.size() > kFarmMaxFrame)
        return false;
    char len[4];
    encodeLen(static_cast<std::uint32_t>(payload.size()), len);
    return writeAll(fd, len, 4) &&
           writeAll(fd, payload.data(), payload.size());
}

bool
farmReadFrame(int fd, std::string &payload, std::string *error)
{
    char len[4];
    const int rc = readAll(fd, len, 4);
    if (rc <= 0) {
        if (error)
            *error = rc == 0 ? "" : "truncated frame header";
        return false;
    }
    const std::uint32_t n = decodeLen(len);
    if (n > kFarmMaxFrame) {
        if (error)
            *error = "oversized frame (" + std::to_string(n) + " bytes)";
        return false;
    }
    payload.resize(n);
    if (n > 0 && readAll(fd, &payload[0], n) != 1) {
        if (error)
            *error = "truncated frame body";
        return false;
    }
    return true;
}

#else // _WIN32: the farm transport is POSIX-only.

bool
farmWriteFrame(int, const std::string &)
{
    return false;
}

bool
farmReadFrame(int, std::string &, std::string *error)
{
    if (error)
        *error = "farm transport unsupported on this platform";
    return false;
}

#endif

void
FrameBuffer::feed(const char *data, std::size_t n)
{
    if (error_.empty())
        buf_.append(data, n);
}

bool
FrameBuffer::next(std::string &payload)
{
    if (!error_.empty() || buf_.size() < 4)
        return false;
    const std::uint32_t n =
        static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[0])) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[1]))
         << 8) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[2]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[3]))
         << 24);
    if (n > kFarmMaxFrame) {
        error_ = "oversized frame (" + std::to_string(n) + " bytes)";
        buf_.clear();
        return false;
    }
    if (buf_.size() < 4u + n)
        return false;
    payload.assign(buf_, 4, n);
    buf_.erase(0, 4u + n);
    return true;
}

std::string
farmConfigJson(const ExperimentConfig &cfg)
{
    std::ostringstream os;
    os << "{\"app\": " << jsonQuote(cfg.app) << ", \"input\": "
       << jsonQuote(cfg.input) << ", \"prefetcher\": "
       << jsonQuote(toString(cfg.prefetcher)) << ", \"control\": "
       << jsonQuote(replayControlName(cfg.control))
       << ", \"window_size\": " << cfg.window_size
       << ", \"iterations\": " << cfg.iterations
       << ", \"cores\": " << cfg.cores << ", \"ideal_llc\": "
       << jsonBool(cfg.ideal_llc) << "}";
    return os.str();
}

bool
farmParseConfig(const JsonValue &v, ExperimentConfig &out,
                std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    if (!v.isObject())
        return fail("config is not an object");
    if (const JsonValue *f = v.find("app"))
        out.app = f->text;
    if (const JsonValue *f = v.find("input"))
        out.input = f->text;
    if (const JsonValue *f = v.find("prefetcher")) {
        try {
            out.prefetcher = prefetcherKindFromString(f->text);
        } catch (const std::exception &) {
            return fail("unknown prefetcher '" + f->text + "'");
        }
    }
    if (const JsonValue *f = v.find("control"))
        if (!replayControlFromName(f->text, out.control))
            return fail("unknown control '" + f->text + "'");
    if (const JsonValue *f = v.find("window_size"))
        out.window_size = static_cast<std::uint32_t>(f->asU64());
    if (const JsonValue *f = v.find("iterations"))
        out.iterations = static_cast<unsigned>(f->asU64());
    if (const JsonValue *f = v.find("cores"))
        out.cores = static_cast<unsigned>(f->asU64());
    if (const JsonValue *f = v.find("ideal_llc"))
        out.ideal_llc = f->boolean;
    return true;
}

std::string
farmResultData(const ExperimentResult &r)
{
    return ResultCache::serialize(r);
}

bool
farmParseResultData(const std::string &data, ExperimentResult &out)
{
    return ResultCache::deserialize(data, out);
}

} // namespace rnr
