#include "farm/farm_worker.h"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "farm/farm_protocol.h"
#include "harness/json_write.h"
#include "harness/result_cache.h"
#include "harness/runner.h"
#include "obs/log.h"
#include "sim/trace_event.h"

namespace rnr {

namespace {

/** True when the env hook @p var is set and @p key contains its value. */
bool
testHookMatches(const char *var, const std::string &key)
{
    const char *v = std::getenv(var);
    return v && *v && key.find(v) != std::string::npos;
}

std::string
errorFrame(const std::string &message)
{
    return "{\"type\": \"error\", \"message\": " + jsonQuote(message) +
           "}";
}

} // namespace

std::string
farmSelfExePath()
{
#ifdef __linux__
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return "";
}

int
farmWorkerMain(int fd)
{
#ifdef _WIN32
    (void)fd;
    return 1;
#else
    for (;;) {
        std::string payload, err;
        if (!farmReadFrame(fd, payload, &err))
            return err.empty() ? 0 : 1; // EOF = daemon went away

        JsonValue msg;
        if (!parseJson(payload, msg, &err)) {
            farmWriteFrame(fd, errorFrame("bad frame: " + err));
            return 1;
        }
        const JsonValue *type = msg.find("type");
        const std::string t = type ? type->text : "";
        if (t == "quit")
            return 0;
        if (t != "cell") {
            farmWriteFrame(fd, errorFrame("unexpected message '" + t +
                                          "'"));
            return 1;
        }

        const JsonValue *id = msg.find("id");
        const JsonValue *cfg_v = msg.find("config");
        ExperimentConfig cfg;
        if (!id || !cfg_v || !farmParseConfig(*cfg_v, cfg, &err)) {
            farmWriteFrame(fd, errorFrame("bad cell: " + err));
            return 1;
        }
        const std::string id_txt = id->text;
        const std::string key = cfg.key();

        // Failure injection for the quarantine tests: crash or hang
        // exactly as a buggy simulator would, *before* touching caches.
        if (testHookMatches("RNR_FARM_TEST_ABORT_KEY", key))
            std::abort();
        if (testHookMatches("RNR_FARM_TEST_HANG_KEY", key))
            for (;;)
                ::pause();

        // A traced cell (span correlation, docs/HARNESS.md §16) rides
        // with a span id and a directory to drop its Perfetto JSON in.
        const JsonValue *span_v = msg.find("span");
        const JsonValue *td_v = msg.find("trace_dir");
        const std::string trace_dir = td_v ? td_v->text : "";

        std::ostringstream reply;
        try {
            bool was_cached = false;
            ExperimentResult r;
            if (!trace_dir.empty()) {
                // Always simulates (runExperimentTraced bypasses the
                // cache — a hit would produce no events); store() keeps
                // the normal persistence contract for the daemon.
                TraceCollector tr(cfg.cores);
                r = runExperimentTraced(cfg, &tr);
                ResultCache::instance().store(key, r);
                const std::string out =
                    trace_dir + "/span_" +
                    (span_v ? span_v->text : id_txt) + ".json";
                if (!writeChromeTrace(out, tr))
                    obs::LogLine(obs::LogLevel::Warn, "farm-worker")
                        .msg("cannot write span trace")
                        .kv("cell", key)
                        .kv("path", out);
            } else {
                r = runExperiment(cfg, &was_cached);
            }
            reply << "{\"type\": \"cell-done\", \"id\": " << id_txt
                  << ", \"cached\": " << jsonBool(was_cached)
                  << ", \"data\": " << jsonQuote(farmResultData(r))
                  << "}";
        } catch (const std::exception &e) {
            reply << "{\"type\": \"cell-error\", \"id\": " << id_txt
                  << ", \"message\": " << jsonQuote(e.what()) << "}";
        } catch (...) {
            reply << "{\"type\": \"cell-error\", \"id\": " << id_txt
                  << ", \"message\": \"unknown exception\"}";
        }
        if (!farmWriteFrame(fd, reply.str()))
            return 1;
    }
#endif
}

void
farmWorkerMaybeExec(int argc, char **argv)
{
    if (argc < 3 || std::strcmp(argv[1], kFarmWorkerArg) != 0)
        return;
    const int fd = std::atoi(argv[2]);
    if (fd <= 0)
        std::_Exit(1);
#ifndef _WIN32
    std::_Exit(farmWorkerMain(fd));
#else
    std::_Exit(1);
#endif
}

} // namespace rnr
