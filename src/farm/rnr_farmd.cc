/**
 * @file
 * rnr_farmd entry point: the simulation-farm daemon binary.
 *
 *   rnr_farmd [--socket <path>] [--workers <n>] [--timeout-sec <s>]
 *
 * Runs in the foreground (CI and tests background it themselves) until
 * a client sends "drain" or the process receives SIGINT/SIGTERM.
 * Everything else — protocol, worker lifecycle, environment knobs — is
 * documented in docs/HARNESS.md §15 and src/farm/farm_server.h.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "farm/farm_server.h"
#include "farm/farm_worker.h"
#include "obs/log.h"

namespace {

rnr::FarmServer *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop(); // async-signal-safe: flag + pipe write
}

int
usage(const char *argv0, int code)
{
    std::fprintf(code == 0 ? stdout : stderr,
                 "usage: %s [--socket <path>] [--workers <n>] "
                 "[--timeout-sec <s>]\n"
                 "\n"
                 "Simulation-farm daemon: executes experiment batches "
                 "submitted over a unix\n"
                 "socket on quarantined worker processes.  Defaults "
                 "come from RNR_FARM_SOCKET,\n"
                 "RNR_FARM_WORKERS and RNR_FARM_TIMEOUT_SEC; see "
                 "docs/HARNESS.md section 15.\n",
                 argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    rnr::farmWorkerMaybeExec(argc, argv);

    rnr::FarmOptions opts = rnr::FarmOptions::fromEnv();
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0)
            return usage(argv[0], 0);
        if (std::strcmp(arg, "--socket") == 0) {
            const char *v = value();
            if (!v)
                return usage(argv[0], 2);
            opts.socket_path = v;
        } else if (std::strcmp(arg, "--workers") == 0) {
            const char *v = value();
            if (!v || std::atoi(v) <= 0)
                return usage(argv[0], 2);
            opts.workers = static_cast<unsigned>(std::atoi(v));
        } else if (std::strcmp(arg, "--timeout-sec") == 0) {
            const char *v = value();
            if (!v || std::atof(v) <= 0)
                return usage(argv[0], 2);
            opts.timeout_sec = std::atof(v);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            return usage(argv[0], 2);
        }
    }

    rnr::FarmServer server(opts);
    std::string error;
    if (!server.start(&error)) {
        rnr::obs::LogLine(rnr::obs::LogLevel::Error, "farmd")
            .msg("cannot start")
            .kv("why", error);
        return 1;
    }
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    rnr::obs::LogLine(rnr::obs::LogLevel::Info, "farmd")
        .msg("listening")
        .kv("socket", server.options().socket_path)
        .kv("workers", server.options().workers)
        .kv("timeout_sec", server.options().timeout_sec);
    const int rc = server.serve();
    g_server = nullptr;
    return rc;
}
