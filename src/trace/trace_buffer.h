/**
 * @file
 * A per-core, per-iteration container of trace records.
 *
 * Workloads fill one TraceBuffer per core per iteration; the System then
 * drives every core through its buffer.  Buffers are plain vectors with a
 * few convenience counters so tests can assert on trace shape.
 */
#ifndef RNR_TRACE_TRACE_BUFFER_H
#define RNR_TRACE_TRACE_BUFFER_H

#include <cstdint>
#include <vector>

#include "trace/record.h"

namespace rnr {

/** Growable record container with summary counters. */
class TraceBuffer
{
  public:
    void
    push(const TraceRecord &rec)
    {
        records_.push_back(rec);
        switch (rec.kind) {
          case RecordKind::Load: ++loads_; break;
          case RecordKind::Store: ++stores_; break;
          case RecordKind::Control: ++controls_; break;
        }
        instrs_ += rec.gap + (rec.kind != RecordKind::Control ? 1 : 0);
    }

    void
    clear()
    {
        records_.clear();
        loads_ = stores_ = controls_ = instrs_ = 0;
    }

    /** Pre-sizes the record store (capacity only; size is untouched). */
    void reserve(std::size_t n) { records_.reserve(n); }
    std::size_t capacity() const { return records_.capacity(); }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Bytes the stored records occupy in memory (size, not capacity) —
     *  the "raw" side of the trace store's raw-vs-compressed ratio. */
    std::uint64_t
    memoryBytes() const
    {
        return static_cast<std::uint64_t>(records_.size()) *
               sizeof(TraceRecord);
    }

    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t controls() const { return controls_; }
    /** Total instructions this trace represents (memory ops + gaps). */
    std::uint64_t instructions() const { return instrs_; }

  private:
    std::vector<TraceRecord> records_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t controls_ = 0;
    std::uint64_t instrs_ = 0;
};

} // namespace rnr

#endif // RNR_TRACE_TRACE_BUFFER_H
