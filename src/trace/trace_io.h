/**
 * @file
 * Binary trace file I/O (v1 format) and the shared I/O status type.
 *
 * ChampSim workflows revolve around trace files captured once and
 * replayed across many configurations; this module gives the in-process
 * traces the same property.  The format is versioned, little-endian and
 * self-describing enough for the trace_tools example to summarise a
 * file without the generating workload.
 *
 * v1 layout: 8-byte magic "RNRTRACE", u32 version, u32 reserved,
 * u64 record count, then per record: u64 addr, u64 aux, u32 pc,
 * u32 gap, u8 kind, u8 ctrl, u16 padding (28 bytes/record).
 *
 * The compressed v2 format (delta+varint blocks with a stats footer)
 * lives in tracestore/trace_codec.h; readAnyTraceFile() in
 * tracestore/trace_file.h dispatches on the version field so both
 * formats stay readable.  writeTraceFile() here deliberately keeps
 * emitting v1 — tests and the `trace_tools stats` compression report
 * depend on a stable uncompressed baseline.
 *
 * Every reader and writer reports *why* it failed through TraceIoResult
 * (bad magic vs. version vs. truncation vs. errno) instead of a bare
 * bool; TraceIoResult converts to bool so `if (!readTraceFile(...))`
 * call sites keep working.
 */
#ifndef RNR_TRACE_TRACE_IO_H
#define RNR_TRACE_TRACE_IO_H

#include <string>

#include "trace/trace_buffer.h"

namespace rnr {

/** Current v1 trace-file format version written by writeTraceFile(). */
constexpr std::uint32_t kTraceFormatVersion = 1;

/** Why a trace-file operation failed (TraceIoResult::status). */
enum class TraceIoStatus : std::uint8_t {
    Ok,
    OpenFailed,   ///< open/create failed; sys_errno says why.
    BadMagic,     ///< First 8 bytes are not "RNRTRACE".
    BadVersion,   ///< Magic ok but the version is not one we decode.
    Truncated,    ///< File ends mid-header or mid-record.
    CorruptBlock, ///< v2 block payload failed to decode.
    BadFooter,    ///< v2 stats footer missing or inconsistent.
    WriteFailed,  ///< Write or final flush failed; sys_errno says why.
};

/** Human label for @p status ("bad magic", "truncated", ...). */
const char *toString(TraceIoStatus status);

/**
 * Outcome of a trace-file read or write.  Converts to bool (true = Ok)
 * so legacy `if (!readTraceFile(...))` call sites keep compiling; the
 * status/detail are what `trace_tools inspect` and the trace store's
 * corrupt-entry skip path print.
 */
struct TraceIoResult {
    TraceIoStatus status = TraceIoStatus::Ok;
    int sys_errno = 0;  ///< errno at failure time (0 = not applicable).
    std::string detail; ///< e.g. "record 17 of 40", "version 7".

    explicit operator bool() const { return status == TraceIoStatus::Ok; }

    /** One-line description: "truncated (record 17 of 40)". */
    std::string message() const;

    static TraceIoResult ok() { return {}; }
    static TraceIoResult fail(TraceIoStatus s, std::string detail = "",
                              int err = 0);
};

/** Writes @p buf to @p path in v1 format. */
TraceIoResult writeTraceFile(const std::string &path,
                             const TraceBuffer &buf);

/**
 * Reads a v1 trace file into @p buf (appending).  A v2 file yields
 * BadVersion — use readAnyTraceFile (tracestore/trace_file.h) to
 * accept both formats.
 */
TraceIoResult readTraceFile(const std::string &path, TraceBuffer &buf);

} // namespace rnr

#endif // RNR_TRACE_TRACE_IO_H
