/**
 * @file
 * Binary trace file I/O.
 *
 * ChampSim workflows revolve around trace files captured once and
 * replayed across many configurations; this module gives the in-process
 * traces the same property.  The format is versioned, little-endian and
 * self-describing enough for the trace_inspect example to summarise a
 * file without the generating workload.
 *
 * Layout: 8-byte magic "RNRTRACE", u32 version, u32 reserved,
 * u64 record count, then per record: u64 addr, u64 aux, u32 pc,
 * u32 gap, u8 kind, u8 ctrl, u16 padding.
 */
#ifndef RNR_TRACE_TRACE_IO_H
#define RNR_TRACE_TRACE_IO_H

#include <string>

#include "trace/trace_buffer.h"

namespace rnr {

/** Current trace-file format version. */
constexpr std::uint32_t kTraceFormatVersion = 1;

/** Writes @p buf to @p path; returns false on I/O failure. */
bool writeTraceFile(const std::string &path, const TraceBuffer &buf);

/**
 * Reads a trace file into @p buf (appending).
 * @return false on I/O failure, bad magic, or version mismatch.
 */
bool readTraceFile(const std::string &path, TraceBuffer &buf);

} // namespace rnr

#endif // RNR_TRACE_TRACE_IO_H
