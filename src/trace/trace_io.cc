#include "trace/trace_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace rnr {

namespace {

constexpr char kMagic[8] = {'R', 'N', 'R', 'T', 'R', 'A', 'C', 'E'};

template <typename T>
void
put(std::ofstream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
get(std::ifstream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(in);
}

} // namespace

const char *
toString(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::OpenFailed: return "cannot open";
      case TraceIoStatus::BadMagic: return "bad magic";
      case TraceIoStatus::BadVersion: return "unsupported version";
      case TraceIoStatus::Truncated: return "truncated";
      case TraceIoStatus::CorruptBlock: return "corrupt block";
      case TraceIoStatus::BadFooter: return "bad footer";
      case TraceIoStatus::WriteFailed: return "write failed";
    }
    return "?";
}

std::string
TraceIoResult::message() const
{
    std::ostringstream os;
    os << toString(status);
    if (!detail.empty())
        os << " (" << detail << ")";
    if (sys_errno != 0)
        os << ": " << std::strerror(sys_errno);
    return os.str();
}

TraceIoResult
TraceIoResult::fail(TraceIoStatus s, std::string detail, int err)
{
    TraceIoResult r;
    r.status = s;
    r.detail = std::move(detail);
    r.sys_errno = err;
    return r;
}

TraceIoResult
writeTraceFile(const std::string &path, const TraceBuffer &buf)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);
    out.write(kMagic, sizeof(kMagic));
    put<std::uint32_t>(out, kTraceFormatVersion);
    put<std::uint32_t>(out, 0); // reserved
    put<std::uint64_t>(out, buf.size());
    for (const TraceRecord &r : buf.records()) {
        put<std::uint64_t>(out, r.addr);
        put<std::uint64_t>(out, r.aux);
        put<std::uint32_t>(out, r.pc);
        put<std::uint32_t>(out, r.gap);
        put<std::uint8_t>(out, static_cast<std::uint8_t>(r.kind));
        put<std::uint8_t>(out, static_cast<std::uint8_t>(r.ctrl));
        put<std::uint16_t>(out, 0); // padding
    }
    out.flush();
    if (!out)
        return TraceIoResult::fail(TraceIoStatus::WriteFailed, path, errno);
    return TraceIoResult::ok();
}

TraceIoResult
readTraceFile(const std::string &path, TraceBuffer &buf)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::OpenFailed, path, errno);
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in)
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "file shorter than the 8-byte magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return TraceIoResult::fail(TraceIoStatus::BadMagic,
                                   "expected RNRTRACE");
    std::uint32_t version = 0, reserved = 0;
    std::uint64_t count = 0;
    if (!get(in, version))
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "missing version field");
    if (version != kTraceFormatVersion)
        return TraceIoResult::fail(
            TraceIoStatus::BadVersion,
            "version " + std::to_string(version) +
                (version == 2 ? "; use readAnyTraceFile for v2 files"
                              : ""));
    if (!get(in, reserved) || !get(in, count))
        return TraceIoResult::fail(TraceIoStatus::Truncated,
                                   "missing header fields");

    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        std::uint8_t kind = 0, ctrl = 0;
        std::uint16_t padding = 0;
        if (!get(in, r.addr) || !get(in, r.aux) || !get(in, r.pc) ||
            !get(in, r.gap) || !get(in, kind) || !get(in, ctrl) ||
            !get(in, padding))
            return TraceIoResult::fail(
                TraceIoStatus::Truncated,
                "record " + std::to_string(i) + " of " +
                    std::to_string(count));
        r.kind = static_cast<RecordKind>(kind);
        r.ctrl = static_cast<RnrOp>(ctrl);
        buf.push(r);
    }
    return TraceIoResult::ok();
}

} // namespace rnr
