#include "trace/trace_io.h"

#include <cstring>
#include <fstream>

namespace rnr {

namespace {

constexpr char kMagic[8] = {'R', 'N', 'R', 'T', 'R', 'A', 'C', 'E'};

template <typename T>
void
put(std::ofstream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
get(std::ifstream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(in);
}

} // namespace

bool
writeTraceFile(const std::string &path, const TraceBuffer &buf)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(kMagic, sizeof(kMagic));
    put<std::uint32_t>(out, kTraceFormatVersion);
    put<std::uint32_t>(out, 0); // reserved
    put<std::uint64_t>(out, buf.size());
    for (const TraceRecord &r : buf.records()) {
        put<std::uint64_t>(out, r.addr);
        put<std::uint64_t>(out, r.aux);
        put<std::uint32_t>(out, r.pc);
        put<std::uint32_t>(out, r.gap);
        put<std::uint8_t>(out, static_cast<std::uint8_t>(r.kind));
        put<std::uint8_t>(out, static_cast<std::uint8_t>(r.ctrl));
        put<std::uint16_t>(out, 0); // padding
    }
    return static_cast<bool>(out);
}

bool
readTraceFile(const std::string &path, TraceBuffer &buf)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    std::uint32_t version = 0, reserved = 0;
    std::uint64_t count = 0;
    if (!get(in, version) || version != kTraceFormatVersion ||
        !get(in, reserved) || !get(in, count))
        return false;

    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        std::uint8_t kind = 0, ctrl = 0;
        std::uint16_t padding = 0;
        if (!get(in, r.addr) || !get(in, r.aux) || !get(in, r.pc) ||
            !get(in, r.gap) || !get(in, kind) || !get(in, ctrl) ||
            !get(in, padding))
            return false;
        r.kind = static_cast<RecordKind>(kind);
        r.ctrl = static_cast<RnrOp>(ctrl);
        buf.push(r);
    }
    return true;
}

} // namespace rnr
