#include "trace/tracer.h"

namespace rnr {

Addr
AddressSpace::allocate(const std::string &name, std::uint64_t bytes)
{
    const Addr base = cursor_;
    regions_.push_back({name, base, bytes});
    // Page-align the next region so structures never share a page,
    // mirroring how large arrays are laid out by a real allocator.
    cursor_ += (bytes + kPageSize - 1) & ~(kPageSize - 1);
    return base;
}

const AddressSpace::Region *
AddressSpace::find(const std::string &name) const
{
    for (const auto &r : regions_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

} // namespace rnr
