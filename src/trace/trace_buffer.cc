// TraceBuffer is header-only; this translation unit exists so the build
// fails loudly if the header stops compiling stand-alone.
#include "trace/trace_buffer.h"
