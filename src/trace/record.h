/**
 * @file
 * Trace record format.
 *
 * Workloads execute natively in-process and emit one TraceRecord per
 * traced memory operation (the role PIN plays in the paper's methodology).
 * Records carry the count of untraced "plain" instructions executed since
 * the previous record, so the core model can charge front-end bandwidth
 * and ROB occupancy for them without storing them individually.
 *
 * RnR API calls (Table I of the paper) appear in the trace as control
 * records; the simulated core forwards them to the per-core prefetcher,
 * which is how the software half of RnR programs the hardware half.
 */
#ifndef RNR_TRACE_RECORD_H
#define RNR_TRACE_RECORD_H

#include <cstdint>

#include "sim/types.h"

namespace rnr {

/** RnR architectural-state operations (paper Table I). */
enum class RnrOp : std::uint8_t {
    Init,          ///< RnR.init(): allocate metadata, set ASID + defaults.
    AddrBaseSet,   ///< AddrBase.set(addr, size): add a boundary entry.
    AddrEnable,    ///< AddrBase.enable(addr).
    AddrDisable,   ///< AddrBase.disable(addr).
    WindowSizeSet, ///< WindowSize.set(size).
    Start,         ///< PrefetchState.start(): begin recording.
    Replay,        ///< PrefetchState.replay(): replay from the beginning.
    Pause,         ///< PrefetchState.pause().
    Resume,        ///< PrefetchState.resume().
    EndState,      ///< PrefetchState.end(): disable RnR.
    Free,          ///< RnR.end(): release metadata storage.
};

/** Discriminator for TraceRecord. */
enum class RecordKind : std::uint8_t {
    Load,
    Store,
    Control,
};

/** One traced event. 32 bytes; traces hold millions of these. */
struct TraceRecord {
    Addr addr = 0;          ///< Memory address, or control payload 0.
    std::uint64_t aux = 0;  ///< Control payload 1 (e.g. a size).
    std::uint32_t pc = 0;   ///< Stable id of the access site ("PC").
    std::uint32_t gap = 0;  ///< Untraced instructions since last record.
    RecordKind kind = RecordKind::Load;
    RnrOp ctrl = RnrOp::Init;

    static TraceRecord
    load(Addr a, std::uint32_t pc, std::uint32_t gap)
    {
        TraceRecord r;
        r.addr = a;
        r.pc = pc;
        r.gap = gap;
        r.kind = RecordKind::Load;
        return r;
    }

    static TraceRecord
    store(Addr a, std::uint32_t pc, std::uint32_t gap)
    {
        TraceRecord r = load(a, pc, gap);
        r.kind = RecordKind::Store;
        return r;
    }

    static TraceRecord
    control(RnrOp op, Addr payload0 = 0, std::uint64_t payload1 = 0)
    {
        TraceRecord r;
        r.kind = RecordKind::Control;
        r.ctrl = op;
        r.addr = payload0;
        r.aux = payload1;
        return r;
    }
};

} // namespace rnr

#endif // RNR_TRACE_RECORD_H
