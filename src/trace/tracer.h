/**
 * @file
 * Instrumentation facade: the in-process equivalent of the paper's PIN
 * tooling, plus a simulated virtual-address space.
 *
 * Workloads compute on ordinary host containers but report every traced
 * access as an offset into a *simulated* address space.  AddressSpace is a
 * bump allocator handing out page-aligned regions for each named array, so
 * the traces workloads emit look exactly like the kernel traces the paper
 * extracts: interleaved loads/stores over a handful of large arrays.
 */
#ifndef RNR_TRACE_TRACER_H
#define RNR_TRACE_TRACER_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.h"
#include "trace/trace_buffer.h"

namespace rnr {

/** Simulated-VA bump allocator shared by all cores of a workload. */
class AddressSpace
{
  public:
    struct Region {
        std::string name;
        Addr base;
        std::uint64_t bytes;
    };

    /** Reserves @p bytes for @p name; returns the region base address. */
    Addr allocate(const std::string &name, std::uint64_t bytes);

    /** Total bytes allocated so far (input-size denominators, Fig 13). */
    std::uint64_t totalBytes() const { return cursor_ - kBase; }

    const std::vector<Region> &regions() const { return regions_; }

    /** Finds a region by name; returns nullptr when absent. */
    const Region *find(const std::string &name) const;

  private:
    /** Leave low VA space free so address 0 is never handed out. */
    static constexpr Addr kBase = 0x10000000;

    Addr cursor_ = kBase;
    std::vector<Region> regions_;
};

/**
 * Per-core trace emitter.  Plain-instruction work between memory ops is
 * accumulated with instr() and attached as the gap of the next record.
 */
class Tracer
{
  public:
    explicit Tracer(TraceBuffer *buf) : buf_(buf) {}

    /** Accounts @p n untraced instructions of compute. */
    void instr(std::uint32_t n) { gap_ += n; }

    void
    load(Addr a, std::uint32_t pc)
    {
        buf_->push(TraceRecord::load(a, pc, takeGap()));
    }

    void
    store(Addr a, std::uint32_t pc)
    {
        buf_->push(TraceRecord::store(a, pc, takeGap()));
    }

    /** Emits an RnR software-interface record (Table I call). */
    void
    control(RnrOp op, Addr payload0 = 0, std::uint64_t payload1 = 0)
    {
        TraceRecord r = TraceRecord::control(op, payload0, payload1);
        r.gap = takeGap();
        buf_->push(r);
    }

    TraceBuffer *buffer() { return buf_; }

    /** Redirects subsequent records to @p buf (per-iteration buffers). */
    void
    retarget(TraceBuffer *buf)
    {
        buf_ = buf;
        gap_ = 0;
    }

  private:
    std::uint32_t
    takeGap()
    {
        std::uint32_t g = gap_;
        gap_ = 0;
        return g;
    }

    TraceBuffer *buf_;
    std::uint32_t gap_ = 0;
};

} // namespace rnr

#endif // RNR_TRACE_TRACER_H
