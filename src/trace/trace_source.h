/**
 * @file
 * Streaming record feed for the core model.
 *
 * CoreModel historically consumed a fully materialised TraceBuffer; a
 * multi-million-record iteration therefore had to be resident in memory
 * per core before simulation could start.  TraceSource abstracts the
 * feed so a core can equally pull records from an in-memory buffer
 * (BufferSource, the capture path) or block-by-block from a compressed
 * v2 trace file (tracestore/trace_reader.h, the replay path) with only
 * one decoded block resident per core.
 *
 * The contract is single-pass: done() may be called repeatedly (and may
 * refill an internal block on the way); take() requires !done() and
 * consumes exactly one record.
 *
 * The batched kernel (sim/kernel.h) pulls whole runs instead via
 * takeBlock(): the source hands back a pointer into its own storage
 * (zero-copy for BufferSource and StreamingTraceReader) and marks that
 * run consumed.  take() and takeBlock() may be interleaved freely; both
 * drain the same underlying position.
 */
#ifndef RNR_TRACE_TRACE_SOURCE_H
#define RNR_TRACE_TRACE_SOURCE_H

#include <cstddef>
#include <vector>

#include "trace/trace_buffer.h"

namespace rnr {

/** Single-pass record stream consumed by one core. */
class TraceSource
{
  public:
    /** Run length the default takeBlock() stages at a time; matches the
     *  trace store's kDefaultBlockRecords (128 KiB of records). */
    static constexpr std::size_t kMaxBlockRecords = 4096;

    virtual ~TraceSource() = default;

    /** True when the stream is exhausted.  May refill internally. */
    virtual bool done() = 0;

    /** Consumes and returns the next record; requires !done(). */
    virtual TraceRecord take() = 0;

    /**
     * Consumes a run of records at once: returns a pointer to @p n
     * consecutive records (valid until the next call on this source)
     * and advances past them, or nullptr with n = 0 at end of stream.
     * Overrides return views into their own storage; this fallback
     * adapts any per-record source by staging up to kMaxBlockRecords
     * into an internal buffer, so custom test sources keep working
     * under the batched kernel unchanged.
     */
    virtual const TraceRecord *
    takeBlock(std::size_t &n)
    {
        staged_.clear();
        while (staged_.size() < kMaxBlockRecords && !done())
            staged_.push_back(take());
        n = staged_.size();
        return n ? staged_.data() : nullptr;
    }

  private:
    std::vector<TraceRecord> staged_; ///< Backs the fallback takeBlock().
};

/** TraceSource over a caller-owned, fully materialised buffer. */
class BufferSource final : public TraceSource
{
  public:
    BufferSource() = default;
    explicit BufferSource(const TraceBuffer *buf) : buf_(buf) {}

    bool
    done() override
    {
        return !buf_ || pos_ >= buf_->size();
    }

    TraceRecord
    take() override
    {
        return buf_->records()[pos_++];
    }

    /** Zero-copy: the whole remaining buffer is one run. */
    const TraceRecord *
    takeBlock(std::size_t &n) override
    {
        if (done()) {
            n = 0;
            return nullptr;
        }
        const TraceRecord *run = buf_->records().data() + pos_;
        n = buf_->size() - pos_;
        pos_ = buf_->size();
        return run;
    }

  private:
    const TraceBuffer *buf_ = nullptr;
    std::size_t pos_ = 0;
};

} // namespace rnr

#endif // RNR_TRACE_TRACE_SOURCE_H
