/**
 * @file
 * Streaming record feed for the core model.
 *
 * CoreModel historically consumed a fully materialised TraceBuffer; a
 * multi-million-record iteration therefore had to be resident in memory
 * per core before simulation could start.  TraceSource abstracts the
 * feed so a core can equally pull records from an in-memory buffer
 * (BufferSource, the capture path) or block-by-block from a compressed
 * v2 trace file (tracestore/trace_reader.h, the replay path) with only
 * one decoded block resident per core.
 *
 * The contract is single-pass: done() may be called repeatedly (and may
 * refill an internal block on the way); take() requires !done() and
 * consumes exactly one record.
 */
#ifndef RNR_TRACE_TRACE_SOURCE_H
#define RNR_TRACE_TRACE_SOURCE_H

#include <cstddef>

#include "trace/trace_buffer.h"

namespace rnr {

/** Single-pass record stream consumed by one core. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** True when the stream is exhausted.  May refill internally. */
    virtual bool done() = 0;

    /** Consumes and returns the next record; requires !done(). */
    virtual TraceRecord take() = 0;
};

/** TraceSource over a caller-owned, fully materialised buffer. */
class BufferSource final : public TraceSource
{
  public:
    BufferSource() = default;
    explicit BufferSource(const TraceBuffer *buf) : buf_(buf) {}

    bool
    done() override
    {
        return !buf_ || pos_ >= buf_->size();
    }

    TraceRecord
    take() override
    {
        return buf_->records()[pos_++];
    }

  private:
    const TraceBuffer *buf_ = nullptr;
    std::size_t pos_ = 0;
};

} // namespace rnr

#endif // RNR_TRACE_TRACE_SOURCE_H
