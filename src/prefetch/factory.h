/**
 * @file
 * Prefetcher factory and the RnR-Combined composite.
 *
 * The harness and benches construct prefetchers by kind; RnrCombined
 * pairs an RnR prefetcher with a next-line stream prefetcher that skips
 * the RnR target regions (Section V-D's integration scheme).
 */
#ifndef RNR_PREFETCH_FACTORY_H
#define RNR_PREFETCH_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "core/rnr_prefetcher.h"
#include "prefetch/prefetcher.h"

namespace rnr {

/** Every prefetcher configuration the evaluation compares. */
enum class PrefetcherKind {
    None,
    NextLine,
    Stream,
    Stride,
    Ghb,
    Domino,
    Bingo,
    Stems,
    Misb,
    Droplet,
    Imp,
    Rnr,
    RnrCombined,
};

/** Stable display name ("nextline", "rnr-combined", ...). */
std::string toString(PrefetcherKind kind);

/** Parses a display name back to a kind; throws on unknown names. */
PrefetcherKind prefetcherKindFromString(const std::string &name);

/** All kinds in the order the paper's figures list them. */
const std::vector<PrefetcherKind> &allPrefetcherKinds();

/**
 * Runs two prefetchers side by side on one L2: RnR for the declared
 * target structures and a stream prefetcher for everything else.
 */
class CombinedPrefetcher : public Prefetcher
{
  public:
    CombinedPrefetcher(std::unique_ptr<RnrPrefetcher> rnr,
                       std::unique_ptr<Prefetcher> stream);

    void attach(MemorySystem *ms, unsigned core) override;
    void configureFor(const Workload &wl, unsigned core) override;
    void onAccess(const L2AccessInfo &info) override;
    void onEvict(Addr block) override;
    void onControl(const TraceRecord &rec, Tick now) override;
    bool inTargetRegion(Addr vaddr) const override;
    std::string name() const override { return "rnr-combined"; }

    void
    setTrace(TraceCollector *tr, std::uint16_t track) override
    {
        Prefetcher::setTrace(tr, track);
        rnr_->setTrace(tr, track);
        stream_->setTrace(tr, track);
    }

    void
    setTelemetry(TelemetrySampler *tm, unsigned core) override
    {
        rnr_->setTelemetry(tm, core);
        stream_->setTelemetry(tm, core);
    }

    void
    setAttrib(AttribCollector *at) override
    {
        rnr_->setAttrib(at);
        stream_->setAttrib(at);
    }

    RnrPrefetcher &rnr() { return *rnr_; }

    /** Composite snapshot: own stats, then each child's full state in
     *  declaration order (children carry their own virtual pairs). */
    void
    saveState(ckpt::Ser &ar) const override
    {
        Prefetcher::saveState(ar);
        rnr_->saveState(ar);
        stream_->saveState(ar);
    }

    void
    loadState(ckpt::Deser &ar) override
    {
        Prefetcher::loadState(ar);
        rnr_->loadState(ar);
        stream_->loadState(ar);
    }

  private:
    std::unique_ptr<RnrPrefetcher> rnr_;
    std::unique_ptr<Prefetcher> stream_;
};

/**
 * Creates a prefetcher of @p kind.  @p rnr_opts applies to the Rnr and
 * RnrCombined kinds (replay-control mode, window size).
 */
std::unique_ptr<Prefetcher> createPrefetcher(
    PrefetcherKind kind, const RnrPrefetcher::Options &rnr_opts = {});

/** Downcast helper: the RnR half of @p pf, or nullptr. */
RnrPrefetcher *asRnr(Prefetcher *pf);

} // namespace rnr

#endif // RNR_PREFETCH_FACTORY_H
