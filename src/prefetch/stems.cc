#include "prefetch/stems.h"

namespace rnr {

StemsPrefetcher::StemsPrefetcher(unsigned region_blocks,
                                 std::size_t temporal_entries,
                                 unsigned replay_depth,
                                 std::size_t pattern_entries)
    : region_blocks_(region_blocks),
      replay_depth_(replay_depth),
      pattern_cap_(pattern_entries),
      temporal_(temporal_entries)
{
}

void
StemsPrefetcher::patternInsert(Addr region, std::uint64_t footprint)
{
    auto it = patterns_.find(region);
    if (it == patterns_.end()) {
        if (patterns_.size() >= pattern_cap_ && !pattern_order_.empty()) {
            patterns_.erase(pattern_order_.front());
            pattern_order_.pop_front();
        }
        pattern_order_.push_back(region);
        patterns_.emplace(region, footprint);
    } else {
        it->second |= footprint;
    }
}

void
StemsPrefetcher::prefetchRegion(Addr region, std::uint64_t footprint,
                                Tick now, std::uint32_t trigger_pc)
{
    const Addr base = region * region_blocks_;
    for (unsigned b = 0; b < region_blocks_; ++b) {
        if ((footprint >> b) & 1)
            issuePrefetch((base + b) << kBlockBits, now, trigger_pc);
    }
}

void
StemsPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (info.hit && !info.merged)
        return; // train on the L2 miss stream

    const Addr region = info.block / region_blocks_;
    const unsigned offset =
        static_cast<unsigned>(info.block % region_blocks_);

    if (region == open_region_) {
        // Same region: accumulate the spatial footprint, no new event.
        open_footprint_ |= std::uint64_t{1} << offset;
        return;
    }

    // Region change: commit the previous region's footprint and log a
    // new trigger event in the temporal stream.
    if (open_region_ != ~Addr{0})
        patternInsert(open_region_, open_footprint_);
    open_region_ = region;
    open_footprint_ = std::uint64_t{1} << offset;

    const std::uint64_t key =
        (static_cast<std::uint64_t>(info.pc) << 32) ^ region;

    // Predict: replay the regions that followed this trigger last time.
    auto it = index_.find(key);
    if (it != index_.end() && temporal_[it->second].valid &&
        temporal_[it->second].region == region) {
        std::size_t pos = it->second;
        for (unsigned d = 1; d <= replay_depth_; ++d) {
            const std::size_t next = (pos + d) % temporal_.size();
            if (next == head_ || !temporal_[next].valid)
                break;
            const Addr r = temporal_[next].region;
            auto pit = patterns_.find(r);
            const std::uint64_t fp =
                pit != patterns_.end() ? pit->second : 1;
            prefetchRegion(r, fp, info.now, info.pc);
        }
    }

    // Log the trigger event.
    TemporalNode &node = temporal_[head_];
    if (node.valid) {
        const std::uint64_t old_key =
            (static_cast<std::uint64_t>(node.trigger_pc) << 32) ^
            node.region;
        auto old = index_.find(old_key);
        if (old != index_.end() && old->second == head_)
            index_.erase(old);
    }
    node.region = region;
    node.trigger_pc = info.pc;
    node.valid = true;
    index_[key] = head_;
    head_ = (head_ + 1) % temporal_.size();
}

RNR_CKPT_DEFINE_STATE(StemsPrefetcher)

} // namespace rnr
