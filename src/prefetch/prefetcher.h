/**
 * @file
 * Common interface for every hardware prefetcher in the repository.
 *
 * Following the paper's design-space discussion (Section III), every
 * prefetcher — baselines and RnR alike — is attached to a private L2 and
 * prefetches into that L2.  The L2 invokes onAccess() for each demand
 * access (hits and misses, with the outcome already resolved, like
 * ChampSim's prefetcher_operate) and onEvict() when a line leaves the L2.
 * RnR additionally receives the software interface's control records via
 * onControl().
 */
#ifndef RNR_PREFETCH_PREFETCHER_H
#define RNR_PREFETCH_PREFETCHER_H

#include <string>

#include "ckpt/serde.h"
#include "sim/stats.h"
#include "sim/trace_event.h"
#include "sim/types.h"
#include "trace/record.h"

namespace rnr {

class AttribCollector;
class MemorySystem;
class TelemetrySampler;
class Workload;

/** Everything the L2 tells its prefetcher about one demand access. */
struct L2AccessInfo {
    unsigned core = 0;
    Addr vaddr = 0;
    Addr block = 0;        ///< Block number (vaddr >> 6).
    std::uint32_t pc = 0;
    Tick now = 0;
    bool is_write = false;
    bool hit = false;      ///< Resident in the L2 (possibly still filling).
    bool merged = false;   ///< Miss merged into an in-flight MSHR entry.
    bool merged_into_prefetch = false; ///< ...that a prefetch allocated.
    bool target_struct = false; ///< Inside an enabled RnR boundary range.
};

/** Outcome of asking the L2 to prefetch a block. */
struct PrefetchIssue {
    bool issued = false;    ///< A new prefetch went out.
    bool redundant = false; ///< Block already resident or in flight.
    bool mshr_full = false; ///< No MSHR slot; caller may retry later.
    Tick fill_time = 0;     ///< Valid when issued.
};

/** Abstract base for L2-attached prefetchers. */
class Prefetcher
{
  public:
    Prefetcher();
    virtual ~Prefetcher() = default;

    /** Binds this prefetcher to @p core of @p ms; called once by setup. */
    virtual void attach(MemorySystem *ms, unsigned core);

    /**
     * Lets a prefetcher pull whatever software-provided hints it needs
     * from the workload (DROPLET's edge->vertex indirection, IMP's
     * index-value sniffer, ...).  Called once per core by the harness
     * after construction; the default needs nothing, so adding a
     * prefetcher never means editing the runner's wiring code.
     */
    virtual void configureFor(const Workload &wl, unsigned core)
    {
        (void)wl;
        (void)core;
    }

    /** Invoked for every L2 demand access, after hit/miss resolution. */
    virtual void onAccess(const L2AccessInfo &info) = 0;

    /** Invoked when @p block is evicted from the L2. */
    virtual void onEvict(Addr block) { (void)block; }

    /** Invoked for RnR software-interface records; others ignore them. */
    virtual void onControl(const TraceRecord &rec, Tick now)
    {
        (void)rec;
        (void)now;
    }

    /**
     * True when @p vaddr falls in a software-declared target region.
     * Only RnR overrides this; the memory system uses it to set
     * L2AccessInfo::target_struct and to let a companion stream
     * prefetcher skip target-structure misses (Section V-D).
     */
    virtual bool inTargetRegion(Addr vaddr) const
    {
        (void)vaddr;
        return false;
    }

    /**
     * Install-time dispatch descriptors for the batched kernel: the
     * memory system caches these at setPrefetcher() and skips the
     * per-access onAccess()/inTargetRegion() virtual calls when a flag
     * says they cannot matter.  Defaults are conservative (call me);
     * only a prefetcher whose hooks are provably no-ops should opt out
     * — NullPrefetcher is the one that does, which is what makes the
     * no-prefetch baseline's hot loop virtual-dispatch-free.
     */
    virtual bool wantsAccess() const { return true; }

    /** False promises inTargetRegion() is identically false. */
    virtual bool hasTargetRegions() const { return true; }

    virtual std::string name() const = 0;

    /**
     * Routes this prefetcher's events to @p tr (null = tracing off).
     * Events from per-core internals go to track @p track (the core's);
     * RnR overrides this to also emit onto the shared "rnr" track.
     * Composites (CombinedPrefetcher) forward to their children.
     */
    virtual void
    setTrace(TraceCollector *tr, std::uint16_t track)
    {
        tr_ = tr;
        tr_track_ = track;
    }

    /**
     * Lets a prefetcher register time-series probes with @p tm (null =
     * sampling off; sim/timeseries.h).  The default registers nothing:
     * baseline prefetchers are covered by the memory system's queue
     * probes.  RnR overrides this to expose its replay lane (N_pace,
     * metadata buffer fill).  Called by MemorySystem::attachTelemetry
     * and re-applied to late setPrefetcher() installs, mirroring
     * setTrace.
     */
    virtual void
    setTelemetry(TelemetrySampler *tm, unsigned core)
    {
        (void)tm;
        (void)core;
    }

    /**
     * Hands a prefetcher the attribution collector (null = off;
     * sim/attrib.h).  The default needs nothing: site ids flow through
     * the issuePrefetch() site argument, not through the collector.
     * RnR overrides this to report its Fig 11 timeliness classification
     * per replay window; composites forward to their children.  Called
     * by MemorySystem::attachAttrib and re-applied to late
     * setPrefetcher() installs, mirroring setTrace/setTelemetry.
     */
    virtual void setAttrib(AttribCollector *at) { (void)at; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Snapshot projection of the per-class visitState through the
     * virtual interface — the snapshot codec holds Prefetcher*, not
     * concrete types.  Concrete classes with learned state declare the
     * pair with RNR_CKPT_DECLARE_STATE_OVERRIDE() and define it with
     * RNR_CKPT_DEFINE_STATE(Class); the default covers stateless
     * prefetchers (Null, NextLine), whose only mutable state is the
     * issue-outcome counters in stats_.
     */
    virtual void
    saveState(ckpt::Ser &ar) const
    {
        const_cast<StatGroup &>(stats_).visitState(ar);
    }
    virtual void loadState(ckpt::Deser &ar) { stats_.visitState(ar); }

  protected:
    /** Base-state fragment for derived visitState bodies: the shared
     *  issue counters.  Call first so every class's wire layout starts
     *  identically. */
    template <class Ar>
    void
    visitBaseState(Ar &ar)
    {
        stats_.visitState(ar);
    }
    /** Asks the attached L2 to fetch @p vaddr's block (into the L2).
     *  @param site attribution site id of this decision — the trigger
     *  PC for pattern prefetchers, attribRnrSite(core) for the RnR
     *  replay lane (sim/attrib.h).  Stored unconditionally (one u32
     *  copy); accounted only when attribution is attached. */
    PrefetchIssue issuePrefetch(Addr vaddr, Tick now,
                                std::uint32_t site = 0);

    MemorySystem *ms_ = nullptr;
    unsigned core_ = 0;
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    std::uint16_t tr_track_ = 0;
    StatGroup stats_{"prefetcher"};
    // Handles for the per-issue outcome counters, declared once here;
    // attach() only rename()s the group, so they stay valid.
    Counter &c_issued_;
    Counter &c_redundant_;
    Counter &c_dropped_mshr_full_;
};

/** A prefetcher that never issues anything (the no-prefetch baseline). */
class NullPrefetcher : public Prefetcher
{
  public:
    void onAccess(const L2AccessInfo &) override {}
    bool wantsAccess() const override { return false; }
    bool hasTargetRegions() const override { return false; }
    std::string name() const override { return "none"; }
};

} // namespace rnr

#endif // RNR_PREFETCH_PREFETCHER_H
