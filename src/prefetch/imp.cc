#include "prefetch/imp.h"

#include "workloads/workload.h"

namespace rnr {

ImpPrefetcher::ImpPrefetcher(unsigned distance, unsigned confirm)
    : distance_(distance), confirm_(confirm),
      c_pattern_confirmed_(stats_.declare("pattern_confirmed"))
{
}

void
ImpPrefetcher::configureFor(const Workload &wl, unsigned core)
{
    setSniffer(wl.impSniffer(core));
}

bool
ImpPrefetcher::inIndexRange(Addr vaddr) const
{
    return sniffer_.index_count != 0 && vaddr >= sniffer_.index_base &&
           vaddr < sniffer_.index_base +
                       sniffer_.index_count * sniffer_.index_elem_bytes;
}

std::uint64_t
ImpPrefetcher::indexOf(Addr vaddr) const
{
    return (vaddr - sniffer_.index_base) / sniffer_.index_elem_bytes;
}

void
ImpPrefetcher::captureIndexBlock(std::uint64_t first_elem)
{
    // The fill of an index-array line exposes a whole line of values to
    // the value-capture port; remember them for pairing with misses.
    const std::uint64_t per_block =
        kBlockSize / sniffer_.index_elem_bytes;
    const std::uint64_t last =
        std::min(first_elem + per_block, sniffer_.index_count);
    for (std::uint64_t i = first_elem; i < last; ++i) {
        recent_values_[recent_head_ % recent_values_.size()] =
            sniffer_.value_of(i);
        ++recent_head_;
    }
}

void
ImpPrefetcher::train(Addr miss_addr)
{
    if (confirmed_)
        return;
    // Each miss votes for every (coeff, base) consistent with a recent
    // index value; the true linear map gets one vote per indirect miss,
    // while spurious combinations scatter.  IMP's hardware does this
    // with a few candidate registers; a bounded map models it.
    const std::uint64_t live =
        std::min<std::uint64_t>(recent_head_, recent_values_.size());
    for (std::uint64_t k = 0; k < live; ++k) {
        const std::uint64_t v = recent_values_[k];
        for (std::int64_t c : {8, 4, 2}) {
            const std::int64_t b =
                static_cast<std::int64_t>(miss_addr) -
                c * static_cast<std::int64_t>(v);
            if (b < 0)
                continue;
            const std::uint64_t key =
                static_cast<std::uint64_t>(b) * 16 +
                static_cast<std::uint64_t>(c);
            const unsigned votes = ++candidates_[key];
            if (votes >= confirm_ * 4) {
                // Each true miss contributes ~1 vote via its own value
                // and c; spurious pairs rarely repeat.  The 4x margin
                // keeps false maps out.
                coeff_ = c;
                base_ = b;
                confirmed_ = true;
                ++c_pattern_confirmed_;
                return;
            }
        }
    }
    if (candidates_.size() > 65536)
        candidates_.clear();
}

void
ImpPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (inIndexRange(info.vaddr)) {
        const std::uint64_t elem = indexOf(info.vaddr);
        if (sniffer_.value_of) {
            captureIndexBlock(elem & ~(kBlockSize /
                                           sniffer_.index_elem_bytes -
                                       1));
            if (confirmed_) {
                // Prefetch targets of the elements `distance_` ahead;
                // their values arrive with this line's neighbours, the
                // hardware reads them off the fill.
                const std::uint64_t per_block =
                    kBlockSize / sniffer_.index_elem_bytes;
                for (std::uint64_t i = 0; i < per_block; ++i) {
                    const std::uint64_t ahead = elem + distance_ + i;
                    if (ahead >= sniffer_.index_count)
                        break;
                    const std::int64_t target =
                        coeff_ * static_cast<std::int64_t>(
                                     sniffer_.value_of(ahead)) +
                        base_;
                    if (target > 0)
                        issuePrefetch(static_cast<Addr>(target),
                                      info.now, info.pc);
                }
            }
        }
        return;
    }

    // Misses outside the index array are candidate indirect accesses.
    if (!info.hit && !info.merged)
        train(info.vaddr);
}

RNR_CKPT_DEFINE_STATE(ImpPrefetcher)

} // namespace rnr
