#include "prefetch/ghb.h"

namespace rnr {

GhbPrefetcher::GhbPrefetcher(std::size_t buffer_entries, unsigned degree)
    : buffer_(buffer_entries), degree_(degree)
{
}

void
GhbPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (info.hit && !info.merged)
        return; // train on the miss stream only

    // Predict: follow the link to this block's previous occurrence and
    // prefetch the blocks recorded immediately after it.
    auto it = index_.find(info.block);
    if (it != index_.end() && buffer_[it->second].valid &&
        buffer_[it->second].block == info.block) {
        std::size_t pos = it->second;
        for (unsigned d = 1; d <= degree_; ++d) {
            const std::size_t next = (pos + d) % buffer_.size();
            if (next == head_ || !buffer_[next].valid)
                break;
            issuePrefetch(buffer_[next].block << kBlockBits, info.now,
                          info.pc);
        }
    }

    // Record this miss at the head of the circular buffer.
    Node &node = buffer_[head_];
    if (node.valid) {
        // Overwriting the oldest entry: drop its index link if it still
        // points here (otherwise a newer occurrence owns the index).
        auto old = index_.find(node.block);
        if (old != index_.end() && old->second == head_)
            index_.erase(old);
    }
    node.block = info.block;
    node.valid = true;
    index_[info.block] = head_;
    head_ = (head_ + 1) % buffer_.size();
}

RNR_CKPT_DEFINE_STATE(GhbPrefetcher)

} // namespace rnr
