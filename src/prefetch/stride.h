/**
 * @file
 * PC-localized stride prefetcher with confidence counters (Chen & Baer /
 * Sander et al. style).  Each static load site trains a (last address,
 * stride, confidence) entry; once confident, it runs ahead by a dynamic
 * prefetch distance.
 */
#ifndef RNR_PREFETCH_STRIDE_H
#define RNR_PREFETCH_STRIDE_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(unsigned table_entries = 256,
                              unsigned degree = 4);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "stride"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ckpt::seq(ar, table_);
    }

  private:
    struct Entry {
        std::uint32_t pc = 0;
        Addr last_block = 0;
        std::int64_t stride = 0;
        int confidence = 0;
        bool valid = false;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(pc);
            ar.scalar(last_block);
            ar.scalar(stride);
            ar.scalar(confidence);
            ar.scalar(valid);
        }
    };

    Entry &slot(std::uint32_t pc);

    std::vector<Entry> table_;
    unsigned degree_;
};

} // namespace rnr

#endif // RNR_PREFETCH_STRIDE_H
