#include "prefetch/factory.h"

#include <stdexcept>

#include "prefetch/bingo.h"
#include "prefetch/domino.h"
#include "prefetch/droplet.h"
#include "prefetch/ghb.h"
#include "prefetch/imp.h"
#include "prefetch/misb.h"
#include "prefetch/next_line.h"
#include "prefetch/stems.h"
#include "prefetch/stream.h"
#include "prefetch/stride.h"

namespace rnr {

std::string
toString(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "none";
      case PrefetcherKind::NextLine: return "nextline";
      case PrefetcherKind::Stream: return "stream";
      case PrefetcherKind::Stride: return "stride";
      case PrefetcherKind::Ghb: return "ghb";
      case PrefetcherKind::Domino: return "domino";
      case PrefetcherKind::Bingo: return "bingo";
      case PrefetcherKind::Stems: return "stems";
      case PrefetcherKind::Misb: return "misb";
      case PrefetcherKind::Droplet: return "droplet";
      case PrefetcherKind::Imp: return "imp";
      case PrefetcherKind::Rnr: return "rnr";
      case PrefetcherKind::RnrCombined: return "rnr-combined";
    }
    return "unknown";
}

PrefetcherKind
prefetcherKindFromString(const std::string &name)
{
    for (PrefetcherKind k : allPrefetcherKinds()) {
        if (toString(k) == name)
            return k;
    }
    throw std::invalid_argument("unknown prefetcher kind: " + name);
}

const std::vector<PrefetcherKind> &
allPrefetcherKinds()
{
    static const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::None,     PrefetcherKind::NextLine,
        PrefetcherKind::Stream,   PrefetcherKind::Stride,
        PrefetcherKind::Ghb,      PrefetcherKind::Domino,
        PrefetcherKind::Bingo,    PrefetcherKind::Stems,
        PrefetcherKind::Misb,     PrefetcherKind::Droplet,
        PrefetcherKind::Imp,
        PrefetcherKind::Rnr,      PrefetcherKind::RnrCombined,
    };
    return kinds;
}

CombinedPrefetcher::CombinedPrefetcher(std::unique_ptr<RnrPrefetcher> rnr,
                                       std::unique_ptr<Prefetcher> stream)
    : rnr_(std::move(rnr)), stream_(std::move(stream))
{
}

void
CombinedPrefetcher::attach(MemorySystem *ms, unsigned core)
{
    Prefetcher::attach(ms, core);
    rnr_->attach(ms, core);
    stream_->attach(ms, core);
}

void
CombinedPrefetcher::configureFor(const Workload &wl, unsigned core)
{
    rnr_->configureFor(wl, core);
    stream_->configureFor(wl, core);
}

void
CombinedPrefetcher::onAccess(const L2AccessInfo &info)
{
    rnr_->onAccess(info);
    stream_->onAccess(info);
}

void
CombinedPrefetcher::onEvict(Addr block)
{
    rnr_->onEvict(block);
    stream_->onEvict(block);
}

void
CombinedPrefetcher::onControl(const TraceRecord &rec, Tick now)
{
    rnr_->onControl(rec, now);
}

bool
CombinedPrefetcher::inTargetRegion(Addr vaddr) const
{
    return rnr_->inTargetRegion(vaddr);
}

std::unique_ptr<Prefetcher>
createPrefetcher(PrefetcherKind kind, const RnrPrefetcher::Options &opts)
{
    switch (kind) {
      case PrefetcherKind::None:
        return std::make_unique<NullPrefetcher>();
      case PrefetcherKind::NextLine:
        return std::make_unique<NextLinePrefetcher>();
      case PrefetcherKind::Stream:
        return std::make_unique<StreamPrefetcher>();
      case PrefetcherKind::Stride:
        return std::make_unique<StridePrefetcher>();
      case PrefetcherKind::Ghb:
        return std::make_unique<GhbPrefetcher>();
      case PrefetcherKind::Domino:
        return std::make_unique<DominoPrefetcher>();
      case PrefetcherKind::Bingo:
        return std::make_unique<BingoPrefetcher>();
      case PrefetcherKind::Stems:
        return std::make_unique<StemsPrefetcher>();
      case PrefetcherKind::Misb:
        return std::make_unique<MisbPrefetcher>();
      case PrefetcherKind::Droplet:
        return std::make_unique<DropletPrefetcher>();
      case PrefetcherKind::Imp:
        return std::make_unique<ImpPrefetcher>();
      case PrefetcherKind::Rnr:
        return std::make_unique<RnrPrefetcher>(opts);
      case PrefetcherKind::RnrCombined:
        return std::make_unique<CombinedPrefetcher>(
            std::make_unique<RnrPrefetcher>(opts),
            std::make_unique<StreamPrefetcher>(
                /*streams=*/16, /*distance=*/32,
                /*skip_target_struct=*/true));
    }
    throw std::invalid_argument("unknown prefetcher kind");
}

RnrPrefetcher *
asRnr(Prefetcher *pf)
{
    if (auto *r = dynamic_cast<RnrPrefetcher *>(pf))
        return r;
    if (auto *c = dynamic_cast<CombinedPrefetcher *>(pf))
        return &c->rnr();
    return nullptr;
}

} // namespace rnr
