/**
 * @file
 * Bingo spatial data prefetcher (Bakhshalipour et al., HPCA'19),
 * condensed: footprints of 2 KB spatial regions are learned per
 * generation and stored in one history table probed with the most
 * specific of two events — PC+Address first, then PC+Offset — which is
 * Bingo's key idea.  On a trigger access to a cold region the predicted
 * footprint is prefetched wholesale.
 */
#ifndef RNR_PREFETCH_BINGO_H
#define RNR_PREFETCH_BINGO_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "prefetch/prefetcher.h"

namespace rnr {

class BingoPrefetcher : public Prefetcher
{
  public:
    /** @param region_blocks spatial region size in blocks (32 = 2 KB). */
    explicit BingoPrefetcher(unsigned region_blocks = 32,
                             std::size_t history_entries = 4096,
                             std::size_t active_entries = 64);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "bingo"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        std::uint64_t n = active_.size();
        ar.scalar(n);
        if constexpr (Ar::kLoading) {
            active_.clear();
            if (!ckpt::checkCount(ar, n, 40))
                return;
            for (std::uint64_t i = 0; i < n; ++i) {
                Addr region = 0;
                ar.scalar(region);
                Generation gen{};
                gen.visitState(ar);
                active_[region] = gen;
            }
        } else {
            for (auto &kv : active_) {
                ar.scalar(kv.first);
                kv.second.visitState(ar);
            }
        }
        ckpt::scalarList(ar, active_order_);
        ckpt::kvMap(ar, history_);
        ckpt::scalarList(ar, history_order_);
    }

  private:
    struct Generation {
        std::uint32_t trigger_pc = 0;
        unsigned trigger_offset = 0;
        Addr trigger_block = 0;
        std::uint64_t footprint = 0;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(trigger_pc);
            ar.scalar(trigger_offset);
            ar.scalar(trigger_block);
            ar.scalar(footprint);
        }
    };

    /** Commits a finished generation's footprint into the history. */
    void commit(Addr region, const Generation &gen);
    void historyInsert(std::uint64_t key, std::uint64_t footprint);
    const std::uint64_t *historyFind(std::uint64_t key) const;

    static std::uint64_t pcAddrKey(std::uint32_t pc, Addr block);
    static std::uint64_t pcOffsetKey(std::uint32_t pc, unsigned offset);

    unsigned region_blocks_;
    std::size_t history_cap_;
    std::size_t active_cap_;

    /** Region number -> in-flight generation being observed. */
    std::unordered_map<Addr, Generation> active_;
    std::list<Addr> active_order_; ///< FIFO for generation retirement.

    std::unordered_map<std::uint64_t, std::uint64_t> history_;
    std::list<std::uint64_t> history_order_;
};

} // namespace rnr

#endif // RNR_PREFETCH_BINGO_H
