#include "prefetch/misb.h"

#include "mem/memory_system.h"

namespace rnr {

MisbPrefetcher::MisbPrefetcher(unsigned degree,
                               std::size_t metadata_cache_entries)
    : degree_(degree), metadata_cap_(metadata_cache_entries),
      c_metadata_cache_hits_(stats_.declare("metadata_cache_hits")),
      c_metadata_cache_misses_(stats_.declare("metadata_cache_misses"))
{
}

void
MisbPrefetcher::touchMetadata(std::uint64_t key, Tick now)
{
    // Mapping entries are packed 8 to a 64 B metadata line.
    const std::uint64_t line = key >> 3;
    auto it = meta_cache_.find(line);
    if (it != meta_cache_.end()) {
        meta_lru_.splice(meta_lru_.end(), meta_lru_, it->second);
        ++c_metadata_cache_hits_;
        return;
    }
    ++c_metadata_cache_misses_;
    // Off-chip metadata access: one line read, and a dirty line written
    // back half the time (training constantly updates mappings).
    ms_->metadataRead(metadata_base_ + line * kBlockSize, kBlockSize, now);
    if ((line & 1) == 0)
        ms_->metadataWrite(metadata_base_ + line * kBlockSize, kBlockSize,
                           now);
    if (meta_cache_.size() >= metadata_cap_) {
        meta_cache_.erase(meta_lru_.front());
        meta_lru_.pop_front();
    }
    meta_lru_.push_back(line);
    meta_cache_[line] = std::prev(meta_lru_.end());
}

void
MisbPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (info.hit && !info.merged)
        return; // temporal prefetchers train on the miss stream

    touchMetadata(info.block, info.now);

    // --- Predict: structural neighbours of this block ---
    auto ps = ps_map_.find(info.block);
    if (ps != ps_map_.end()) {
        const std::uint64_t s = ps->second;
        for (unsigned d = 1; d <= degree_; ++d) {
            auto sp = sp_map_.find(s + d);
            if (sp == sp_map_.end())
                break;
            touchMetadata(s + d, info.now);
            issuePrefetch(sp->second << kBlockBits, info.now, info.pc);
        }
    }

    // --- Train: append this block to its PC's structural stream ---
    auto tu = training_.find(info.pc);
    if (tu != training_.end()) {
        const Addr prev = tu->second;
        auto prev_ps = ps_map_.find(prev);
        std::uint64_t prev_s;
        if (prev_ps == ps_map_.end()) {
            // Allocate a fresh stream for the predecessor.
            auto alloc = stream_alloc_.find(info.pc);
            if (alloc == stream_alloc_.end()) {
                stream_alloc_[info.pc] = next_stream_base_;
                next_stream_base_ += kStreamStride;
                alloc = stream_alloc_.find(info.pc);
            }
            prev_s = alloc->second;
            alloc->second += 2; // leave room to grow the stream
            ps_map_[prev] = prev_s;
            sp_map_[prev_s] = prev;
        } else {
            prev_s = prev_ps->second;
        }
        // Give the current block the next structural slot unless it
        // already belongs to a stream (first mapping wins, as in ISB).
        if (!ps_map_.contains(info.block)) {
            const std::uint64_t s = prev_s + 1;
            if (!sp_map_.contains(s)) {
                ps_map_[info.block] = s;
                sp_map_[s] = info.block;
            }
        }
    }
    training_[info.pc] = info.block;
}

RNR_CKPT_DEFINE_STATE(MisbPrefetcher)

} // namespace rnr
