/**
 * @file
 * DROPLET-style graph prefetcher (Basak et al., HPCA'19), condensed.
 *
 * DROPLET is data-aware: a stream engine runs ahead on the edge array,
 * and when a prefetched edge cache line returns from DRAM its *contents*
 * (vertex ids) are used to launch indirect prefetches of the vertex data.
 * A trace simulator has no data values, so the workload registers an
 * indirection hint (edge index -> vertex address), standing in for the
 * hardware reading the returning line.  Crucially, vertex prefetches are
 * issued at the *fill time* of the edge line — DROPLET's documented
 * weakness (the paper: "triggered when edge data refills the DRAM read
 * queue, which is often too late"), which is what Fig 6/9 penalise it for
 * on urand.
 */
#ifndef RNR_PREFETCH_DROPLET_H
#define RNR_PREFETCH_DROPLET_H

#include <cstdint>
#include <functional>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

/** Software-provided description of the edge->vertex indirection. */
struct DropletHint {
    Addr edge_base = 0;            ///< Start of this core's edge range.
    std::uint64_t edge_count = 0;  ///< Number of edge elements.
    unsigned edge_elem_bytes = 4;  ///< sizeof(edge id).
    /** Maps a global edge index to the vertex-data address it touches. */
    std::function<Addr(std::uint64_t)> target_of;
};

class DropletPrefetcher : public Prefetcher
{
  public:
    /** @param distance edge-stream run-ahead distance in blocks. */
    explicit DropletPrefetcher(unsigned distance = 4);

    void setHint(DropletHint hint) { hint_ = std::move(hint); }

    /** Pulls the edge->vertex indirection hint from the workload. */
    void configureFor(const Workload &wl, unsigned core) override;

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "droplet"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    /** hint_ is deliberately absent: it holds a workload-owned closure
     *  that configureFor() re-establishes on the restored instance. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ar.scalar(next_stream_block_);
        ar.pod(filter_);
    }

  private:
    bool inEdgeRange(Addr vaddr) const;

    /** Prefetches vertex targets of every edge in @p edge_block. */
    void launchIndirect(Addr edge_block, Tick fill_time,
                        std::uint32_t trigger_pc);

    DropletHint hint_;
    unsigned distance_;
    Counter &c_indirect_launched_;
    Counter &c_indirect_filtered_;
    Addr next_stream_block_ = 0;  ///< Edge-stream run-ahead cursor.

    /** Prefetch filter: recently launched vertex blocks (tag = block+1,
     *  0 = empty), so one hot vertex is not re-prefetched per edge. */
    std::vector<Addr> filter_ = std::vector<Addr>(4096, 0);
};

} // namespace rnr

#endif // RNR_PREFETCH_DROPLET_H
