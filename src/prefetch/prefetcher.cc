#include "prefetch/prefetcher.h"

#include "mem/memory_system.h"

namespace rnr {

void
Prefetcher::attach(MemorySystem *ms, unsigned core)
{
    ms_ = ms;
    core_ = core;
    stats_ = StatGroup(name() + "." + std::to_string(core));
}

PrefetchIssue
Prefetcher::issuePrefetch(Addr vaddr, Tick now)
{
    PrefetchIssue out = ms_->prefetchIntoL2(core_, vaddr, now);
    if (out.issued)
        stats_.add("issued");
    else if (out.redundant)
        stats_.add("redundant");
    else if (out.mshr_full)
        stats_.add("dropped_mshr_full");
    return out;
}

} // namespace rnr
