#include "prefetch/prefetcher.h"

#include "mem/memory_system.h"

namespace rnr {

Prefetcher::Prefetcher()
    : c_issued_(stats_.declare("issued")),
      c_redundant_(stats_.declare("redundant")),
      c_dropped_mshr_full_(stats_.declare("dropped_mshr_full"))
{
}

void
Prefetcher::attach(MemorySystem *ms, unsigned core)
{
    ms_ = ms;
    core_ = core;
    // Rename in place: counters declared by constructors (base and
    // derived) keep their handles and their accumulated values.
    stats_.rename(name() + "." + std::to_string(core));
}

PrefetchIssue
Prefetcher::issuePrefetch(Addr vaddr, Tick now, std::uint32_t site)
{
    PrefetchIssue out = ms_->prefetchIntoL2(core_, vaddr, now, site);
    if (out.issued)
        ++c_issued_;
    else if (out.redundant)
        ++c_redundant_;
    else if (out.mshr_full)
        ++c_dropped_mshr_full_;
    return out;
}

} // namespace rnr
