/**
 * @file
 * IMP — Indirect Memory Prefetcher (Yu et al., MICRO'15), condensed.
 *
 * IMP targets A[B[i]] patterns in pure hardware: it first detects a
 * streaming index array B via a stride detector, then tries to learn the
 * linear map  addr(A[B[i]]) = coeff * B[i] + base  by correlating the
 * *values* loaded from B with subsequent miss addresses.  Once the pair
 * (coeff, base) is confirmed, each index load triggers a prefetch of the
 * indirect target a configurable distance ahead.
 *
 * A trace-driven simulator carries no data values, so like DROPLET this
 * model receives the index-array values through a software-registered
 * IndexSniffer — standing in for the value-capture port IMP attaches to
 * the cache fill path.  The paper's criticism still binds: prediction
 * requires the index value to be *available*, so indirect prefetches
 * launch only as far ahead as index data exists on chip, and pattern
 * confirmation takes several misses (low coverage early on).
 */
#ifndef RNR_PREFETCH_IMP_H
#define RNR_PREFETCH_IMP_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

/** Value-capture stand-in: resolves an index-array element. */
struct IndexSniffer {
    Addr index_base = 0;           ///< Start of the index array B.
    std::uint64_t index_count = 0; ///< Elements in B.
    unsigned index_elem_bytes = 4;
    /** Returns the value of B[i] (what the hardware reads off the
     *  fill).  Unset = sniffer inactive. */
    std::function<std::uint64_t(std::uint64_t)> value_of;
};

class ImpPrefetcher : public Prefetcher
{
  public:
    /**
     * @param distance how many index elements ahead to prefetch.
     * @param confirm how many (index value, miss address) pairs must
     *        fit the same linear map before prefetching starts.
     */
    explicit ImpPrefetcher(unsigned distance = 16, unsigned confirm = 3);

    void setSniffer(IndexSniffer sniffer) { sniffer_ = std::move(sniffer); }

    /** Pulls the index-value sniffer from the workload. */
    void configureFor(const Workload &wl, unsigned core) override;

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "imp"; }

    bool patternConfirmed() const { return confirmed_; }
    std::int64_t coefficient() const { return coeff_; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    /** sniffer_ is deliberately absent: it holds a workload-owned
     *  closure that configureFor() re-establishes after a restore. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ar.scalar(coeff_);
        ar.scalar(base_);
        ar.scalar(confirmed_);
        ar.pod(recent_values_);
        ar.scalar(recent_head_);
        ckpt::kvMap(ar, candidates_);
    }

  private:
    bool inIndexRange(Addr vaddr) const;
    std::uint64_t indexOf(Addr vaddr) const;

    /** Remembers a fetched index line's values for pairing. */
    void captureIndexBlock(std::uint64_t first_elem);

    /** Votes a miss address against the recent index values. */
    void train(Addr miss_addr);

    IndexSniffer sniffer_;
    unsigned distance_;
    unsigned confirm_;

    /** Confirmed linear map: target = coeff * B[i] + base. */
    std::int64_t coeff_ = 0;
    std::int64_t base_ = 0;
    bool confirmed_ = false;

    /** Ring of recently captured index values. */
    std::vector<std::uint64_t> recent_values_ =
        std::vector<std::uint64_t>(32, 0);
    std::uint64_t recent_head_ = 0;

    /** Vote counts per candidate (base*16+coeff) during training. */
    std::unordered_map<std::uint64_t, unsigned> candidates_;

    Counter &c_pattern_confirmed_;
};

} // namespace rnr

#endif // RNR_PREFETCH_IMP_H
