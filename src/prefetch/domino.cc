#include "prefetch/domino.h"

namespace rnr {

DominoPrefetcher::DominoPrefetcher(std::size_t buffer_entries,
                                   unsigned degree)
    : history_(buffer_entries), degree_(degree)
{
}

void
DominoPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (info.hit && !info.merged)
        return; // temporal: train on the miss stream

    // Predict using the (previous, current) pair.
    if (have_prev_) {
        auto it = index_.find(pairKey(prev_miss_, info.block));
        if (it != index_.end() && history_[it->second].valid &&
            history_[it->second].block == info.block) {
            std::size_t pos = it->second;
            for (unsigned d = 1; d <= degree_; ++d) {
                const std::size_t next = (pos + d) % history_.size();
                if (next == head_ || !history_[next].valid)
                    break;
                issuePrefetch(history_[next].block << kBlockBits,
                              info.now, info.pc);
            }
        }
    }

    // Record the miss and index it by the pair that led to it.
    Node &node = history_[head_];
    if (node.valid) {
        // Invalidate any stale index entry pointing at this slot; the
        // key is unknown here, so rely on the position check above.
        node.valid = false;
    }
    node.block = info.block;
    node.valid = true;
    if (have_prev_)
        index_[pairKey(prev_miss_, info.block)] = head_;
    head_ = (head_ + 1) % history_.size();

    prev_miss_ = info.block;
    have_prev_ = true;

    // Bound the index against unbounded growth.
    if (index_.size() > history_.size() * 2)
        index_.clear();
}

RNR_CKPT_DEFINE_STATE(DominoPrefetcher)

} // namespace rnr
