/**
 * @file
 * Global History Buffer temporal prefetcher (Nesbit & Smith, G/AC
 * organisation): a circular buffer of recent miss block addresses, linked
 * by address so that on a miss to block X the prefetcher finds X's
 * previous occurrence and prefetches the blocks that followed it then.
 *
 * This is the design Section II's motivating example criticises: with
 * mixed streams the most recent occurrence wins, so interleaved patterns
 * mispredict — the tests assert exactly that behaviour.
 */
#ifndef RNR_PREFETCH_GHB_H
#define RNR_PREFETCH_GHB_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

class GhbPrefetcher : public Prefetcher
{
  public:
    explicit GhbPrefetcher(std::size_t buffer_entries = 4096,
                           unsigned degree = 4);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "ghb"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ckpt::seq(ar, buffer_);
        ar.scalar(head_);
        ckpt::kvMap(ar, index_);
    }

  private:
    struct Node {
        Addr block = 0;
        bool valid = false;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(block);
            ar.scalar(valid);
        }
    };

    std::vector<Node> buffer_;
    std::size_t head_ = 0; ///< Next write position (circular).
    std::unordered_map<Addr, std::size_t> index_; ///< block -> last pos.
    unsigned degree_;
};

} // namespace rnr

#endif // RNR_PREFETCH_GHB_H
