/**
 * @file
 * Spatio-Temporal Memory Streaming (Somogyi et al., ISCA'09), condensed.
 *
 * STeMS records the *temporal* order of spatial-region trigger events and
 * the *spatial* footprint observed inside each region, then reconstructs
 * a total order at prediction time: when a trigger event repeats, it
 * replays the next few region triggers from the temporal log and expands
 * each into its stored footprint.  As the paper notes (Section II), order
 * *within* a region is not recorded, and patterns repeating within the
 * same region across temporal phases are invisible to it — which is why
 * it struggles on the RnR workloads.
 */
#ifndef RNR_PREFETCH_STEMS_H
#define RNR_PREFETCH_STEMS_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

class StemsPrefetcher : public Prefetcher
{
  public:
    explicit StemsPrefetcher(unsigned region_blocks = 32,
                             std::size_t temporal_entries = 8192,
                             unsigned replay_depth = 4,
                             std::size_t pattern_entries = 4096);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "stems"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ckpt::seq(ar, temporal_);
        ar.scalar(head_);
        ckpt::kvMap(ar, index_);
        ckpt::kvMap(ar, patterns_);
        ckpt::scalarList(ar, pattern_order_);
        ar.scalar(open_region_);
        ar.scalar(open_footprint_);
    }

  private:
    struct TemporalNode {
        Addr region = 0;
        std::uint32_t trigger_pc = 0;
        bool valid = false;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(region);
            ar.scalar(trigger_pc);
            ar.scalar(valid);
        }
    };

    void patternInsert(Addr region, std::uint64_t footprint);
    void prefetchRegion(Addr region, std::uint64_t footprint, Tick now,
                        std::uint32_t trigger_pc);

    unsigned region_blocks_;
    unsigned replay_depth_;
    std::size_t pattern_cap_;

    /** Temporal log of region-trigger events (GHB over regions). */
    std::vector<TemporalNode> temporal_;
    std::size_t head_ = 0;
    /** (pc, region) trigger -> last temporal log position. */
    std::unordered_map<std::uint64_t, std::size_t> index_;

    /** Region -> last committed spatial footprint (SMS-like PST). */
    std::unordered_map<Addr, std::uint64_t> patterns_;
    std::list<Addr> pattern_order_;

    /** Region currently being observed and its accumulating footprint. */
    Addr open_region_ = ~Addr{0};
    std::uint64_t open_footprint_ = 0;
};

} // namespace rnr

#endif // RNR_PREFETCH_STEMS_H
