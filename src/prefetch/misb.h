/**
 * @file
 * MISB — Managed Irregular Stream Buffer (Wu et al., ISCA'19), condensed.
 *
 * MISB is an ISB-style temporal prefetcher: PC-localized miss streams are
 * linearised into a *structural* address space so that temporally
 * correlated physical blocks become sequential structural addresses.
 * Prediction is then trivial (structural +1..+degree) and the two mapping
 * tables (physical->structural, structural->physical) live off-chip,
 * cached on-chip and prefetched.  We model the mappings functionally and
 * charge DRAM metadata traffic whenever the on-chip metadata cache
 * misses, which reproduces MISB's metadata-traffic behaviour in Fig 12.
 */
#ifndef RNR_PREFETCH_MISB_H
#define RNR_PREFETCH_MISB_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "prefetch/prefetcher.h"

namespace rnr {

class MisbPrefetcher : public Prefetcher
{
  public:
    /**
     * @param degree maximum prefetch lookahead (paper: 8).
     * @param metadata_cache_entries on-chip cached mapping lines; the
     *        real MISB spends 49 KB, we scale with the cache scaling.
     */
    explicit MisbPrefetcher(unsigned degree = 8,
                            std::size_t metadata_cache_entries = 2048);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "misb"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    /** The on-chip metadata cache maps key -> LRU-list iterator, which
     *  cannot travel through an archive; only the LRU list itself is
     *  serialized and the iterator map is rebuilt from it on load. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ckpt::kvMap(ar, training_);
        ckpt::kvMap(ar, ps_map_);
        ckpt::kvMap(ar, sp_map_);
        ckpt::kvMap(ar, stream_alloc_);
        ar.scalar(next_stream_base_);
        ckpt::scalarList(ar, meta_lru_);
        if constexpr (Ar::kLoading) {
            meta_cache_.clear();
            for (auto it = meta_lru_.begin(); it != meta_lru_.end(); ++it)
                meta_cache_[*it] = it;
        }
    }

  private:
    static constexpr std::uint64_t kStreamStride = 1u << 20;

    /** Charges metadata traffic when @p key misses the on-chip cache. */
    void touchMetadata(std::uint64_t key, Tick now);

    unsigned degree_;
    std::size_t metadata_cap_;
    Counter &c_metadata_cache_hits_;
    Counter &c_metadata_cache_misses_;

    /** Training unit: last missed block per PC. */
    std::unordered_map<std::uint32_t, Addr> training_;
    /** Physical block -> structural address. */
    std::unordered_map<Addr, std::uint64_t> ps_map_;
    /** Structural address -> physical block. */
    std::unordered_map<std::uint64_t, Addr> sp_map_;
    /** Next free structural stream base, per PC. */
    std::unordered_map<std::uint32_t, std::uint64_t> stream_alloc_;
    std::uint64_t next_stream_base_ = 0;

    /** On-chip metadata cache (keys are mapping-line ids). */
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        meta_cache_;
    std::list<std::uint64_t> meta_lru_;

    /** Simulated VA where off-chip metadata lives (traffic addresses). */
    Addr metadata_base_ = 0x7f0000000000ull;
};

} // namespace rnr

#endif // RNR_PREFETCH_MISB_H
