/**
 * @file
 * Next-line prefetcher (Smith & Hsu style): on every demand miss (and on
 * hits to prefetched lines, to keep a stream alive) prefetch the next
 * sequential block(s).  This is the paper's regular-pattern baseline and
 * also the "stream prefetcher" half of RnR-Combined.
 */
#ifndef RNR_PREFETCH_NEXT_LINE_H
#define RNR_PREFETCH_NEXT_LINE_H

#include "prefetch/prefetcher.h"

namespace rnr {

class NextLinePrefetcher : public Prefetcher
{
  public:
    /**
     * @param degree how many sequential blocks to prefetch per trigger.
     * @param skip_target_struct when true, ignores accesses inside RnR
     *        target regions (Section V-D integration: the stream
     *        prefetcher is trained only by misses outside the
     *        record-and-replay address range).
     */
    explicit NextLinePrefetcher(unsigned degree = 1,
                                bool skip_target_struct = false)
        : degree_(degree), skip_target_(skip_target_struct)
    {
    }

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "nextline"; }

  private:
    unsigned degree_;
    bool skip_target_;
};

} // namespace rnr

#endif // RNR_PREFETCH_NEXT_LINE_H
