#include "prefetch/next_line.h"

namespace rnr {

void
NextLinePrefetcher::onAccess(const L2AccessInfo &info)
{
    if (skip_target_ && info.target_struct)
        return;
    if (info.hit && !info.merged)
        return; // only misses (and merges) extend a stream
    for (unsigned d = 1; d <= degree_; ++d) {
        const Addr next = (info.block + d) << kBlockBits;
        issuePrefetch(next, info.now, info.pc);
    }
}

} // namespace rnr
