#include "prefetch/bingo.h"

namespace rnr {

BingoPrefetcher::BingoPrefetcher(unsigned region_blocks,
                                 std::size_t history_entries,
                                 std::size_t active_entries)
    : region_blocks_(region_blocks),
      history_cap_(history_entries),
      active_cap_(active_entries)
{
}

std::uint64_t
BingoPrefetcher::pcAddrKey(std::uint32_t pc, Addr block)
{
    return (static_cast<std::uint64_t>(pc) << 40) ^ (block << 1) ^ 1u;
}

std::uint64_t
BingoPrefetcher::pcOffsetKey(std::uint32_t pc, unsigned offset)
{
    return (static_cast<std::uint64_t>(pc) << 40) ^
           (static_cast<std::uint64_t>(offset) << 1);
}

void
BingoPrefetcher::historyInsert(std::uint64_t key, std::uint64_t footprint)
{
    auto it = history_.find(key);
    if (it == history_.end()) {
        if (history_.size() >= history_cap_ && !history_order_.empty()) {
            history_.erase(history_order_.front());
            history_order_.pop_front();
        }
        history_order_.push_back(key);
    }
    history_[key] = footprint;
}

const std::uint64_t *
BingoPrefetcher::historyFind(std::uint64_t key) const
{
    auto it = history_.find(key);
    return it == history_.end() ? nullptr : &it->second;
}

void
BingoPrefetcher::commit(Addr region, const Generation &gen)
{
    (void)region;
    historyInsert(pcAddrKey(gen.trigger_pc, gen.trigger_block),
                  gen.footprint);
    historyInsert(pcOffsetKey(gen.trigger_pc, gen.trigger_offset),
                  gen.footprint);
}

void
BingoPrefetcher::onAccess(const L2AccessInfo &info)
{
    const Addr region = info.block / region_blocks_;
    const unsigned offset =
        static_cast<unsigned>(info.block % region_blocks_);

    auto it = active_.find(region);
    if (it != active_.end()) {
        it->second.footprint |= std::uint64_t{1} << offset;
        return;
    }

    // New generation: retire the oldest if the tracker is full.
    if (active_.size() >= active_cap_ && !active_order_.empty()) {
        const Addr old = active_order_.front();
        active_order_.pop_front();
        auto oit = active_.find(old);
        if (oit != active_.end()) {
            commit(old, oit->second);
            active_.erase(oit);
        }
    }

    Generation gen;
    gen.trigger_pc = info.pc;
    gen.trigger_offset = offset;
    gen.trigger_block = info.block;
    gen.footprint = std::uint64_t{1} << offset;
    active_.emplace(region, gen);
    active_order_.push_back(region);

    // Predict with the most specific event that has history.
    const std::uint64_t *fp = historyFind(pcAddrKey(info.pc, info.block));
    if (!fp)
        fp = historyFind(pcOffsetKey(info.pc, offset));
    if (!fp)
        return;

    const Addr region_base = region * region_blocks_;
    for (unsigned b = 0; b < region_blocks_; ++b) {
        if (b == offset || !((*fp >> b) & 1))
            continue;
        issuePrefetch((region_base + b) << kBlockBits, info.now,
                      info.pc);
    }
}

RNR_CKPT_DEFINE_STATE(BingoPrefetcher)

} // namespace rnr
