/**
 * @file
 * Multi-stream sequential prefetcher with run-ahead distance — the
 * "L2 stream prefetcher" of commercial cores the paper integrates RnR
 * with (Section V-D, refs [21][30][51]).
 *
 * Tracks a small table of active streams; once a stream sees two
 * sequential blocks it runs a cursor up to `distance` blocks ahead of
 * the demand stream.  Unlike plain next-line, the lookahead is deep
 * enough to cover DRAM latency for dense streams (edge lists, CSR
 * arrays), which is what makes RnR-Combined more than the sum of its
 * parts on stream-heavy kernels.
 */
#ifndef RNR_PREFETCH_STREAM_H
#define RNR_PREFETCH_STREAM_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

class StreamPrefetcher : public Prefetcher
{
  public:
    /**
     * @param streams concurrent stream trackers.
     * @param distance run-ahead depth in blocks.
     * @param skip_target_struct ignore accesses in RnR target regions
     *        (Section V-D: train only outside the record/replay range).
     */
    explicit StreamPrefetcher(unsigned streams = 16,
                              unsigned distance = 32,
                              bool skip_target_struct = false);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "stream"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ckpt::seq(ar, streams_);
        ar.scalar(lru_clock_);
    }

  private:
    struct Stream {
        Addr last_block = 0;
        Addr cursor = 0;    ///< Next block to prefetch.
        int confidence = 0;
        std::uint64_t lru = 0;
        bool valid = false;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(last_block);
            ar.scalar(cursor);
            ar.scalar(confidence);
            ar.scalar(lru);
            ar.scalar(valid);
        }
    };

    Stream *findStream(Addr block);
    Stream &allocStream(Addr block);

    std::vector<Stream> streams_;
    unsigned distance_;
    bool skip_target_;
    std::uint64_t lru_clock_ = 0;
};

} // namespace rnr

#endif // RNR_PREFETCH_STREAM_H
