/**
 * @file
 * Domino temporal prefetcher (Bakhshalipour et al., HPCA'18), condensed.
 *
 * Domino improves on single-address temporal prefetchers by indexing the
 * history with the *pair* of the last two miss addresses, which
 * disambiguates sequences that share one address but not two — exactly
 * the "address 9 followed by both 12 and 20" confusion of the paper's
 * Section II example.  The cost is a larger index and needing two misses
 * to re-find a stream.
 */
#ifndef RNR_PREFETCH_DOMINO_H
#define RNR_PREFETCH_DOMINO_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.h"

namespace rnr {

class DominoPrefetcher : public Prefetcher
{
  public:
    explicit DominoPrefetcher(std::size_t buffer_entries = 8192,
                              unsigned degree = 4);

    void onAccess(const L2AccessInfo &info) override;
    std::string name() const override { return "domino"; }
    RNR_CKPT_DECLARE_STATE_OVERRIDE();

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        visitBaseState(ar);
        ckpt::seq(ar, history_);
        ar.scalar(head_);
        ckpt::kvMap(ar, index_);
        ar.scalar(prev_miss_);
        ar.scalar(have_prev_);
    }

  private:
    static std::uint64_t
    pairKey(Addr a, Addr b)
    {
        return (a * 0x9e3779b97f4a7c15ull) ^ b;
    }

    struct Node {
        Addr block = 0;
        bool valid = false;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(block);
            ar.scalar(valid);
        }
    };

    std::vector<Node> history_;
    std::size_t head_ = 0;
    /** (prev, cur) miss pair -> history position of `cur`. */
    std::unordered_map<std::uint64_t, std::size_t> index_;
    Addr prev_miss_ = 0;
    bool have_prev_ = false;
    unsigned degree_;
};

} // namespace rnr

#endif // RNR_PREFETCH_DOMINO_H
