#include "prefetch/droplet.h"

#include <algorithm>

#include "workloads/workload.h"

namespace rnr {

DropletPrefetcher::DropletPrefetcher(unsigned distance)
    : distance_(distance),
      c_indirect_launched_(stats_.declare("indirect_launched")),
      c_indirect_filtered_(stats_.declare("indirect_filtered"))
{
}

void
DropletPrefetcher::configureFor(const Workload &wl, unsigned core)
{
    setHint(wl.dropletHint(core));
}

bool
DropletPrefetcher::inEdgeRange(Addr vaddr) const
{
    return hint_.edge_count != 0 && vaddr >= hint_.edge_base &&
           vaddr < hint_.edge_base +
                       hint_.edge_count * hint_.edge_elem_bytes;
}

void
DropletPrefetcher::launchIndirect(Addr edge_block, Tick fill_time,
                                  std::uint32_t trigger_pc)
{
    if (!hint_.target_of)
        return;
    const Addr block_base = edge_block << kBlockBits;
    const std::uint64_t first =
        (std::max(block_base, hint_.edge_base) - hint_.edge_base) /
        hint_.edge_elem_bytes;
    const std::uint64_t per_block = kBlockSize / hint_.edge_elem_bytes;
    const std::uint64_t last =
        std::min(first + per_block, hint_.edge_count);
    for (std::uint64_t e = first; e < last; ++e) {
        const Addr target = hint_.target_of(e);
        // Prefetch filter: skip vertex blocks launched recently.
        const Addr block = blockNumber(target);
        Addr &slot = filter_[block % filter_.size()];
        if (slot == block + 1) {
            ++c_indirect_filtered_;
            continue;
        }
        slot = block + 1;
        // The vertex prefetch can only launch once the edge line's data
        // is back — this is the extra indirection level the RnR paper
        // identifies as DROPLET's timeliness problem.
        issuePrefetch(target, fill_time, trigger_pc);
        ++c_indirect_launched_;
    }
}

void
DropletPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (!inEdgeRange(info.vaddr))
        return;

    // Edge-stream engine: keep `distance_` edge blocks in flight ahead of
    // the demand stream, and chain the indirect vertex prefetch to each
    // edge block's arrival.
    if (next_stream_block_ <= info.block)
        next_stream_block_ = info.block + 1;
    const Addr limit = info.block + 1 + distance_;
    const Addr edge_end_block =
        blockNumber(hint_.edge_base +
                    hint_.edge_count * hint_.edge_elem_bytes - 1);
    while (next_stream_block_ < limit &&
           next_stream_block_ <= edge_end_block) {
        PrefetchIssue res =
            issuePrefetch(next_stream_block_ << kBlockBits, info.now,
                          info.pc);
        const Tick arrival = res.issued ? res.fill_time : info.now;
        launchIndirect(next_stream_block_, arrival, info.pc);
        ++next_stream_block_;
    }

    // The demanded edge block itself also produces indirect prefetches
    // (on a miss the hardware sees its refill; on a hit the line is
    // already on chip and the engine scans it directly).
    if (!info.hit)
        launchIndirect(info.block, info.now, info.pc);
}

RNR_CKPT_DEFINE_STATE(DropletPrefetcher)

} // namespace rnr
