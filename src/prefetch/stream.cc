#include "prefetch/stream.h"

namespace rnr {

StreamPrefetcher::StreamPrefetcher(unsigned streams, unsigned distance,
                                   bool skip_target_struct)
    : streams_(streams), distance_(distance),
      skip_target_(skip_target_struct)
{
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(Addr block)
{
    // A stream matches when the access lands just ahead of (or on) its
    // training edge — tolerate small skips from partially-filtered L1
    // traffic.
    for (auto &s : streams_) {
        if (s.valid && block >= s.last_block && block <= s.last_block + 4)
            return &s;
    }
    return nullptr;
}

StreamPrefetcher::Stream &
StreamPrefetcher::allocStream(Addr block)
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    *victim = Stream{};
    victim->valid = true;
    victim->last_block = block;
    victim->cursor = block + 1;
    return *victim;
}

void
StreamPrefetcher::onAccess(const L2AccessInfo &info)
{
    if (skip_target_ && info.target_struct)
        return;

    Stream *s = findStream(info.block);
    if (!s) {
        allocStream(info.block).lru = ++lru_clock_;
        return;
    }
    s->lru = ++lru_clock_;
    if (info.block > s->last_block) {
        s->confidence = std::min(s->confidence + 1, 4);
        s->last_block = info.block;
    }
    if (s->confidence < 1)
        return;

    if (s->cursor <= info.block)
        s->cursor = info.block + 1;
    const Addr limit = info.block + 1 + distance_;
    while (s->cursor < limit) {
        PrefetchIssue res =
            issuePrefetch(s->cursor << kBlockBits, info.now, info.pc);
        if (res.mshr_full)
            break; // retry from the same cursor on a later access
        ++s->cursor;
    }
}

RNR_CKPT_DEFINE_STATE(StreamPrefetcher)

} // namespace rnr
