#include "prefetch/stride.h"

namespace rnr {

StridePrefetcher::StridePrefetcher(unsigned table_entries, unsigned degree)
    : table_(table_entries), degree_(degree)
{
}

StridePrefetcher::Entry &
StridePrefetcher::slot(std::uint32_t pc)
{
    Entry &e = table_[pc % table_.size()];
    if (!e.valid || e.pc != pc) {
        e = Entry{};
        e.pc = pc;
        e.valid = true;
    }
    return e;
}

void
StridePrefetcher::onAccess(const L2AccessInfo &info)
{
    Entry &e = slot(info.pc);
    if (e.last_block != 0) {
        const std::int64_t stride =
            static_cast<std::int64_t>(info.block) -
            static_cast<std::int64_t>(e.last_block);
        if (stride != 0) {
            if (stride == e.stride) {
                e.confidence = std::min(e.confidence + 1, 4);
            } else {
                e.stride = stride;
                e.confidence = 1;
            }
            if (e.confidence >= 2) {
                for (unsigned d = 1; d <= degree_; ++d) {
                    const std::int64_t target =
                        static_cast<std::int64_t>(info.block) +
                        e.stride * static_cast<std::int64_t>(d);
                    if (target > 0)
                        issuePrefetch(static_cast<Addr>(target)
                                          << kBlockBits,
                                      info.now, info.pc);
                }
            }
        }
    }
    e.last_block = info.block;
}

RNR_CKPT_DEFINE_STATE(StridePrefetcher)

} // namespace rnr
