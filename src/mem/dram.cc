#include "mem/dram.h"

#include <algorithm>

namespace rnr {

namespace {

const char *
originKey(ReqOrigin o)
{
    switch (o) {
      case ReqOrigin::Demand: return "bytes_demand";
      case ReqOrigin::Prefetch: return "bytes_prefetch";
      case ReqOrigin::Metadata: return "bytes_metadata";
      case ReqOrigin::Writeback: return "bytes_writeback";
    }
    return "bytes_other";
}

} // namespace

Dram::Dram(const DramConfig &cfg)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.channels) * cfg.banks),
      channel_free_(cfg.channels, 0),
      stats_("DRAM")
{
}

unsigned
Dram::channelOf(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) % cfg_.channels);
}

unsigned
Dram::bankOf(Addr addr) const
{
    // Block-granularity channel+bank interleaving (ChampSim's
    // [row|column|bank|channel|offset] layout): consecutive cache blocks
    // round-robin channels then banks, so a sequential stream engages
    // every bank of every channel in parallel.
    const std::uint64_t blk = blockNumber(addr) / cfg_.channels;
    return channelOf(addr) * cfg_.banks +
           static_cast<unsigned>(blk % cfg_.banks);
}

std::uint64_t
Dram::rowOf(Addr addr) const
{
    // With channel+bank in the low bits, one bank's row holds every
    // (channels*banks)-th block of a row_bytes * banks * channels region.
    const std::uint64_t row_blocks = cfg_.row_bytes / kBlockSize;
    return blockNumber(addr) / cfg_.channels / cfg_.banks / row_blocks;
}

void
Dram::countBytes(ReqOrigin origin, std::uint64_t n)
{
    stats_.add(originKey(origin), n);
    stats_.add("bytes_total", n);
}

Tick
Dram::read(Addr addr, Tick now, ReqOrigin origin)
{
    stats_.add("reads");
    countBytes(origin, kBlockSize);
    const Tick arrival = now;

    // FCFS read-queue occupancy: a new read waits until the queue has a
    // free slot, i.e. until the earliest in-flight read completes.
    auto pop_completed = [this](Tick t) {
        while (!read_inflight_.empty() && read_inflight_.front() <= t) {
            std::pop_heap(read_inflight_.begin(), read_inflight_.end(),
                          std::greater<>());
            read_inflight_.pop_back();
        }
    };
    pop_completed(now);
    if (read_inflight_.size() >= cfg_.read_queue) {
        stats_.add("read_queue_full_stalls");
        now = std::max(now, read_inflight_.front());
        pop_completed(now);
    }

    Bank &bank = banks_[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);
    const bool row_hit = bank.open_row == row;
    stats_.add(row_hit ? "row_hits" : "row_misses");

    // The bank is busy for its own access + burst; queueing for the
    // shared channel does not extend the bank's busy window (an FR-FCFS
    // controller would be moving other work onto the bank meanwhile).
    const Tick start = std::max(now, bank.next_free);
    const Tick access = row_hit ? cfg_.tCAS
                                : cfg_.tRP + cfg_.tRCD + cfg_.tCAS;
    // The channel is a bandwidth limiter: each read consumes one burst
    // slot from the arrival-time cursor.  A request whose bank is still
    // busy does not hold the channel back for later requests (FR-FCFS
    // controllers fill such gaps with other ready bursts).
    Tick &chan = channel_free_[channelOf(addr)];
    const Tick slot = std::max(chan, now);
    chan = slot + cfg_.tBURST;
    const Tick burst_start = std::max(start + access, slot);
    const Tick done = burst_start + cfg_.tBURST;

    bank.open_row = row;
    bank.next_free = start + access + cfg_.tBURST;

    read_inflight_.push_back(done);
    std::push_heap(read_inflight_.begin(), read_inflight_.end(),
                   std::greater<>());
    stats_.add("read_latency_sum", done - arrival);
    stats_.add("read_rq_wait", now - arrival);
    stats_.add("read_bank_wait", start - now);
    stats_.add("read_channel_wait", burst_start - (start + access));
    if (done - arrival > stats_.get("read_latency_max"))
        stats_.set("read_latency_max", done - arrival);
    return done;
}

void
Dram::write(Addr addr, Tick now, ReqOrigin origin)
{
    stats_.add("writes");
    countBytes(origin, kBlockSize);
    write_queue_.push_back({addr, origin});

    const auto high = static_cast<std::size_t>(
        cfg_.drain_high * cfg_.write_queue);
    if (write_queue_.size() >= high) {
        const auto low = static_cast<std::size_t>(
            cfg_.drain_low * cfg_.write_queue);
        drainWrites(now, low);
    }
}

void
Dram::drainWrites(Tick now, std::size_t target_depth)
{
    stats_.add("write_drains");
    // The controller prioritises demand reads (Table II's write-queue
    // draining policy): drained writes occupy their banks and steal
    // channel burst slots, but do not block the channel for the whole
    // batch the way a naive stop-the-world drain would.
    const Tick drain_start = std::max(now, channel_free_[0]);
    while (write_queue_.size() > target_depth) {
        const PendingWrite w = write_queue_.front();
        write_queue_.pop_front();
        Bank &bank = banks_[bankOf(w.addr)];
        const std::uint64_t row = rowOf(w.addr);
        const bool row_hit = bank.open_row == row;
        const Tick access = row_hit ? cfg_.tCAS
                                    : cfg_.tRP + cfg_.tRCD + cfg_.tCAS;
        const Tick start = std::max(drain_start, bank.next_free);
        bank.open_row = row;
        bank.next_free = start + access + cfg_.tBURST;
        // One stolen burst slot per write on its channel.
        channel_free_[channelOf(w.addr)] += cfg_.tBURST;
        stats_.add("writes_drained");
    }
}

std::uint64_t
Dram::bytes(ReqOrigin origin) const
{
    return stats_.get(originKey(origin));
}

std::uint64_t
Dram::totalBytes() const
{
    return stats_.get("bytes_total");
}

void
Dram::resetTiming()
{
    for (auto &b : banks_)
        b = Bank{};
    for (auto &c : channel_free_)
        c = 0;
    read_inflight_.clear();
    write_queue_.clear();
}

} // namespace rnr
