#include "mem/dram.h"

#include <algorithm>

namespace rnr {

DramCounters::DramCounters(StatGroup &g)
    : reads(g.declare("reads")),
      writes(g.declare("writes")),
      row_hits(g.declare("row_hits")),
      row_misses(g.declare("row_misses")),
      read_queue_full_stalls(g.declare("read_queue_full_stalls")),
      read_latency_sum(g.declare("read_latency_sum")),
      read_latency_max(g.declare("read_latency_max")),
      read_rq_wait(g.declare("read_rq_wait")),
      read_bank_wait(g.declare("read_bank_wait")),
      read_channel_wait(g.declare("read_channel_wait")),
      write_drains(g.declare("write_drains")),
      writes_drained(g.declare("writes_drained")),
      bytes_total(g.declare("bytes_total"))
{
    bytes_by_origin[static_cast<int>(ReqOrigin::Demand)] =
        &g.declare("bytes_demand");
    bytes_by_origin[static_cast<int>(ReqOrigin::Prefetch)] =
        &g.declare("bytes_prefetch");
    bytes_by_origin[static_cast<int>(ReqOrigin::Metadata)] =
        &g.declare("bytes_metadata");
    bytes_by_origin[static_cast<int>(ReqOrigin::Writeback)] =
        &g.declare("bytes_writeback");
}

Dram::Dram(const DramConfig &cfg)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.channels) * cfg.banks),
      channel_free_(cfg.channels, 0),
      stats_("DRAM"),
      ctr_(stats_)
{
}

unsigned
Dram::channelOf(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) % cfg_.channels);
}

unsigned
Dram::bankOf(Addr addr) const
{
    // Block-granularity channel+bank interleaving (ChampSim's
    // [row|column|bank|channel|offset] layout): consecutive cache blocks
    // round-robin channels then banks, so a sequential stream engages
    // every bank of every channel in parallel.
    const std::uint64_t blk = blockNumber(addr) / cfg_.channels;
    return channelOf(addr) * cfg_.banks +
           static_cast<unsigned>(blk % cfg_.banks);
}

std::uint64_t
Dram::rowOf(Addr addr) const
{
    // With channel+bank in the low bits, one bank's row holds every
    // (channels*banks)-th block of a row_bytes * banks * channels region.
    const std::uint64_t row_blocks = cfg_.row_bytes / kBlockSize;
    return blockNumber(addr) / cfg_.channels / cfg_.banks / row_blocks;
}

void
Dram::countBytes(ReqOrigin origin, std::uint64_t n)
{
    *ctr_.bytes_by_origin[static_cast<int>(origin)] += n;
    ctr_.bytes_total += n;
}

void
Dram::popCompletedReads(Tick t)
{
    while (!read_inflight_.empty() && read_inflight_.front() <= t) {
        std::pop_heap(read_inflight_.begin(), read_inflight_.end(),
                      std::greater<>());
        read_inflight_.pop_back();
    }
}

Tick
Dram::read(Addr addr, Tick now, ReqOrigin origin)
{
    ++ctr_.reads;
    countBytes(origin, kBlockSize);
    const Tick arrival = now;

    // FCFS read-queue occupancy: a new read waits until the queue has a
    // free slot, i.e. until the earliest in-flight read completes.  The
    // heap top doubles as the next-event cursor (nextReadCompletion()):
    // when now hasn't reached it, the pop is a single compare.
    popCompletedReads(now);
    if (read_inflight_.size() >= cfg_.read_queue) {
        ++ctr_.read_queue_full_stalls;
        now = std::max(now, read_inflight_.front());
        popCompletedReads(now);
    }

    Bank &bank = banks_[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);
    const bool row_hit = bank.open_row == row;
    ++(row_hit ? ctr_.row_hits : ctr_.row_misses);

    // The bank is busy for its own access + burst; queueing for the
    // shared channel does not extend the bank's busy window (an FR-FCFS
    // controller would be moving other work onto the bank meanwhile).
    const Tick start = std::max(now, bank.next_free);
    const Tick access = row_hit ? cfg_.tCAS
                                : cfg_.tRP + cfg_.tRCD + cfg_.tCAS;
    // The channel is a bandwidth limiter: each read consumes one burst
    // slot from the arrival-time cursor.  A request whose bank is still
    // busy does not hold the channel back for later requests (FR-FCFS
    // controllers fill such gaps with other ready bursts).
    Tick &chan = channel_free_[channelOf(addr)];
    const Tick slot = std::max(chan, now);
    chan = slot + cfg_.tBURST;
    const Tick burst_start = std::max(start + access, slot);
    const Tick done = burst_start + cfg_.tBURST;

    bank.open_row = row;
    bank.next_free = start + access + cfg_.tBURST;

    read_inflight_.push_back(done);
    std::push_heap(read_inflight_.begin(), read_inflight_.end(),
                   std::greater<>());
    ctr_.read_latency_sum += done - arrival;
    ctr_.read_rq_wait += now - arrival;
    ctr_.read_bank_wait += start - now;
    ctr_.read_channel_wait += burst_start - (start + access);
    ctr_.read_latency_max.maxWith(done - arrival);
    if (tr_) {
        tr_->emit(tr_track_, TraceEventType::DramEnqueue, arrival, addr,
                  static_cast<std::uint64_t>(origin));
        tr_->emit(tr_track_, TraceEventType::DramDequeue, done, addr,
                  done - arrival);
    }
    return done;
}

void
Dram::write(Addr addr, Tick now, ReqOrigin origin)
{
    ++ctr_.writes;
    countBytes(origin, kBlockSize);
    write_queue_.push_back({addr, origin});

    const auto high = static_cast<std::size_t>(
        cfg_.drain_high * cfg_.write_queue);
    if (write_queue_.size() >= high) {
        const auto low = static_cast<std::size_t>(
            cfg_.drain_low * cfg_.write_queue);
        drainWrites(now, low);
    }
}

void
Dram::drainWrites(Tick now, std::size_t target_depth)
{
    ++ctr_.write_drains;
    // The controller prioritises demand reads (Table II's write-queue
    // draining policy): drained writes occupy their banks and steal
    // channel burst slots, but do not block the channel for the whole
    // batch the way a naive stop-the-world drain would.
    const Tick drain_start = std::max(now, channel_free_[0]);
    while (write_queue_.size() > target_depth) {
        const PendingWrite w = write_queue_.front();
        write_queue_.pop_front();
        Bank &bank = banks_[bankOf(w.addr)];
        const std::uint64_t row = rowOf(w.addr);
        const bool row_hit = bank.open_row == row;
        const Tick access = row_hit ? cfg_.tCAS
                                    : cfg_.tRP + cfg_.tRCD + cfg_.tCAS;
        const Tick start = std::max(drain_start, bank.next_free);
        bank.open_row = row;
        bank.next_free = start + access + cfg_.tBURST;
        // One stolen burst slot per write on its channel.
        channel_free_[channelOf(w.addr)] += cfg_.tBURST;
        ++ctr_.writes_drained;
    }
}

std::uint64_t
Dram::bytes(ReqOrigin origin) const
{
    return ctr_.bytes_by_origin[static_cast<int>(origin)]->value();
}

std::uint64_t
Dram::totalBytes() const
{
    return ctr_.bytes_total.value();
}

void
Dram::resetTiming()
{
    for (auto &b : banks_)
        b = Bank{};
    for (auto &c : channel_free_)
        c = 0;
    read_inflight_.clear();
    write_queue_.clear();
}

} // namespace rnr
