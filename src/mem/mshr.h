/**
 * @file
 * Miss Status Holding Register file.
 *
 * Each cache owns one MSHR file.  Entries track the block number of an
 * outstanding miss and the tick at which its fill completes.  Because the
 * simulator computes a miss's completion time at issue, an MSHR entry is
 * "free" again as soon as simulated time passes its fill tick; purge()
 * drops such entries lazily.
 *
 * purge() is the hottest call in the memory system (three files are
 * purged per demand access), so the file keeps a next-event cursor: the
 * minimum outstanding fill tick.  While now < next_fill_ a purge is a
 * single compare — the "quiet cycles cost nothing" half of the batched
 * kernel (docs/PERF.md) — and the O(n) compaction runs only when a fill
 * actually completes.
 */
#ifndef RNR_MEM_MSHR_H
#define RNR_MEM_MSHR_H

#include <algorithm>
#include <cassert>
#include <vector>

#include "ckpt/serde.h"
#include "sim/trace_event.h"
#include "sim/types.h"

namespace rnr {

/** Fixed-capacity outstanding-miss tracker. */
class Mshr
{
  public:
    struct Entry {
        Addr block;        ///< Block number (address >> 6).
        Tick fill;         ///< Tick at which the fill arrives.
        bool prefetch;     ///< Entry was allocated by a prefetch.
        std::uint32_t site; ///< Attribution site id (sim/attrib.h).

        /** Field-wise (the struct has padding, so no pod() bulk path). */
        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(block);
            ar.scalar(fill);
            ar.scalar(prefetch);
            ar.scalar(site);
        }
    };

    explicit Mshr(unsigned capacity) : capacity_(capacity) {}

    /** Routes MshrAlloc events to @p tr's @p track; @p prefetch_file
     *  tags events from the prefetch-queue file (event arg = 1). */
    void
    setTrace(TraceCollector *tr, std::uint16_t track, bool prefetch_file)
    {
        tr_ = tr;
        tr_track_ = track;
        tr_pq_ = prefetch_file;
    }

    /** Drops entries whose fill completed at or before @p now. */
    void
    purge(Tick now)
    {
        if (now < next_fill_)
            return; // nothing can have completed yet
        Tick next = kTickMax;
        std::size_t kept = 0;
        for (const Entry &e : entries_) {
            if (e.fill > now) {
                next = std::min(next, e.fill);
                entries_[kept++] = e;
            }
        }
        entries_.resize(kept);
        next_fill_ = next;
    }

    /** Returns the in-flight entry for @p block, or nullptr. */
    Entry *
    find(Addr block)
    {
        for (auto &e : entries_) {
            if (e.block == block)
                return &e;
        }
        return nullptr;
    }

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t inFlight() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /**
     * Earliest fill time among outstanding entries; callers stall until
     * this tick when the file is full.  Requires a non-empty file.
     */
    Tick
    earliestFill() const
    {
        assert(!entries_.empty());
        return next_fill_;
    }

    /**
     * The next-event cursor itself: the tick at which the earliest
     * outstanding fill lands, or kTickMax when the file is empty.
     * Unlike earliestFill() this is valid on an empty file, so batch
     * drivers can ask "when does anything change?" unconditionally.
     */
    Tick nextFill() const { return next_fill_; }

    /** Allocates an entry; the caller must have ensured capacity.
     *  @param site attribution site id of the issuing prefetch (0 for
     *  demand entries; sim/attrib.h). */
    void
    insert(Addr block, Tick fill, bool prefetch,
           std::uint32_t site = 0)
    {
        assert(!full());
        entries_.push_back({block, fill, prefetch, site});
        next_fill_ = std::min(next_fill_, fill);
        if (tr_)
            tr_->emit(tr_track_, TraceEventType::MshrAlloc, fill, block,
                      tr_pq_ ? 1 : 0);
    }

    void
    clear()
    {
        entries_.clear();
        next_fill_ = kTickMax;
    }

    /** Checkpoint visitor: outstanding entries + the next-event cursor.
     *  Capacity and trace routing are configuration, re-established by
     *  construction on the restore side. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ckpt::seq(ar, entries_);
        ar.scalar(next_fill_);
    }

  private:
    unsigned capacity_;
    std::vector<Entry> entries_;
    Tick next_fill_ = kTickMax; ///< Min outstanding fill; kTickMax = none.
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    std::uint16_t tr_track_ = 0;
    bool tr_pq_ = false;
};

} // namespace rnr

#endif // RNR_MEM_MSHR_H
