/**
 * @file
 * Single-channel DRAM model with banks, row buffers, an FCFS read queue
 * and a drain-threshold write queue, matching Table II of the paper.
 *
 * The model is timestamp-based: each bank and the data channel track the
 * tick at which they next become free.  A read's completion is the sum of
 * queueing (read-queue occupancy + bank + channel availability) and the
 * row-hit or row-miss access latency.  Writes are buffered and drained in
 * batches once the write queue crosses its high-water mark, occupying the
 * channel and delaying reads that arrive during the drain, which is how
 * the paper's record-iteration metadata writes cost ~1% IPC.
 */
#ifndef RNR_MEM_DRAM_H
#define RNR_MEM_DRAM_H

#include <cstdint>
#include <deque>
#include <vector>

#include "ckpt/serde.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/trace_event.h"
#include "sim/types.h"

namespace rnr {

/**
 * Pre-declared per-request counter handles of the DRAM model.
 * bytes_by_origin is indexed by ReqOrigin, replacing the per-request
 * origin-name lookup the string API forced.
 */
struct DramCounters {
    explicit DramCounters(StatGroup &g);

    Counter &reads;
    Counter &writes;
    Counter &row_hits;
    Counter &row_misses;
    Counter &read_queue_full_stalls;
    Counter &read_latency_sum;
    Counter &read_latency_max; ///< Running maximum (Counter::maxWith).
    Counter &read_rq_wait;
    Counter &read_bank_wait;
    Counter &read_channel_wait;
    Counter &write_drains;
    Counter &writes_drained;
    Counter &bytes_total;
    Counter *bytes_by_origin[4]; ///< Indexed by ReqOrigin.
};

/** Timestamp-based DDR channel + bank model. */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg);

    /**
     * Services a 64 B read issued at @p now.
     * @return the tick at which the critical word is back at the LLC edge.
     */
    Tick read(Addr addr, Tick now, ReqOrigin origin);

    /**
     * Buffers a 64 B write issued at @p now; may trigger a queue drain.
     * Writes complete asynchronously and never block the caller directly,
     * but drains occupy the channel and delay subsequent reads.
     */
    void write(Addr addr, Tick now, ReqOrigin origin);

    /** Total bytes moved on the channel for @p origin. */
    std::uint64_t bytes(ReqOrigin origin) const;

    /** Total bytes moved on the channel (reads + writes, all origins). */
    std::uint64_t totalBytes() const;

    /** Clears timing state but keeps statistics (between iterations). */
    void resetTiming();

    /** Routes DramEnqueue/DramDequeue events to @p tr's @p track. */
    void
    setTrace(TraceCollector *tr, std::uint16_t track)
    {
        tr_ = tr;
        tr_track_ = track;
    }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    const DramCounters &ctr() const { return ctr_; }
    std::size_t writeQueueDepth() const { return write_queue_.size(); }
    /** Reads currently occupying the read queue (telemetry probe). */
    std::size_t readQueueDepth() const { return read_inflight_.size(); }

    /**
     * Next-event cursor: the tick at which the earliest in-flight read
     * completes, or kTickMax when the read queue is empty.  Like
     * Mshr::nextFill(), this is what makes quiet periods cost nothing —
     * a caller (or test) can see in O(1) that nothing happens before
     * this tick instead of scanning queues.
     */
    Tick
    nextReadCompletion() const
    {
        return read_inflight_.empty() ? kTickMax : read_inflight_.front();
    }

    /** Checkpoint visitor: bank/channel cursors, the in-flight read
     *  heap (vector order preserved, so heap shape round-trips), the
     *  write queue and the stat group. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ckpt::seq(ar, banks_);
        ar.pod(channel_free_);
        ar.pod(read_inflight_);
        std::uint64_t wq = write_queue_.size();
        ar.scalar(wq);
        if constexpr (Ar::kLoading) {
            write_queue_.clear();
            if (!ckpt::checkCount(ar, wq, 16))
                return;
            for (std::uint64_t i = 0; i < wq; ++i) {
                PendingWrite w{};
                w.visitState(ar);
                write_queue_.push_back(w);
            }
        } else {
            for (auto &w : write_queue_)
                w.visitState(ar);
        }
        stats_.visitState(ar);
    }

  private:
    struct Bank {
        Tick next_free = 0;
        std::uint64_t open_row = ~0ull;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(next_free);
            ar.scalar(open_row);
        }
    };

    struct PendingWrite {
        Addr addr;
        ReqOrigin origin;

        template <class Ar>
        void
        visitState(Ar &ar)
        {
            ar.scalar(addr);
            ar.scalar(origin);
        }
    };

    unsigned channelOf(Addr addr) const;
    unsigned bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;
    void drainWrites(Tick now, std::size_t target_depth);
    void countBytes(ReqOrigin origin, std::uint64_t n);
    void popCompletedReads(Tick t);

    DramConfig cfg_;
    std::vector<Bank> banks_;          ///< channels x banks, row-major.
    std::vector<Tick> channel_free_;   ///< One data-bus cursor per channel.
    /** Min-heap of in-flight read completion times (queue occupancy). */
    std::vector<Tick> read_inflight_;
    std::deque<PendingWrite> write_queue_;
    StatGroup stats_;
    DramCounters ctr_; ///< Handles into stats_; keep declared after it.
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    std::uint16_t tr_track_ = 0;
};

} // namespace rnr

#endif // RNR_MEM_DRAM_H
