#include "mem/tlb.h"

namespace rnr {

Tlb::Tlb(const TlbConfig &cfg)
    : cfg_(cfg),
      dtlb_(cfg.dtlb_entries, 0),
      stlb_(cfg.stlb_entries, 0),
      stats_("TLB"),
      c_dtlb_hits_(stats_.declare("dtlb_hits")),
      c_stlb_hits_(stats_.declare("stlb_hits")),
      c_walks_(stats_.declare("walks"))
{
}

Tick
Tlb::translate(Addr vaddr)
{
    const Addr page = pageNumber(vaddr);
    const Addr tag = page + 1;

    Addr &d = dtlb_[page % dtlb_.size()];
    if (d == tag) {
        ++c_dtlb_hits_;
        return 0;
    }

    Addr &s = stlb_[page % stlb_.size()];
    if (s == tag) {
        ++c_stlb_hits_;
        d = tag;
        return cfg_.stlb_latency;
    }

    ++c_walks_;
    d = tag;
    s = tag;
    return cfg_.walk_latency;
}

void
Tlb::flush()
{
    for (auto &e : dtlb_)
        e = 0;
    for (auto &e : stlb_)
        e = 0;
}

} // namespace rnr
