#include "mem/tlb.h"

namespace rnr {

namespace {

/** size-1 when @p n is a power of two (mask indexing), else 0. */
std::size_t
maskFor(std::size_t n)
{
    return (n != 0 && (n & (n - 1)) == 0) ? n - 1 : 0;
}

} // namespace

Tlb::Tlb(const TlbConfig &cfg)
    : cfg_(cfg),
      dtlb_(cfg.dtlb_entries, 0),
      stlb_(cfg.stlb_entries, 0),
      dtlb_mask_(maskFor(dtlb_.size())),
      stlb_mask_(maskFor(stlb_.size())),
      stats_("TLB"),
      c_dtlb_hits_(stats_.declare("dtlb_hits")),
      c_stlb_hits_(stats_.declare("stlb_hits")),
      c_walks_(stats_.declare("walks"))
{
}

void
Tlb::flush()
{
    for (auto &e : dtlb_)
        e = 0;
    for (auto &e : stlb_)
        e = 0;
}

} // namespace rnr
