/**
 * @file
 * Two-level data TLB model (per-core L1 DTLB + STLB).
 *
 * The simulator uses an identity virtual-to-physical mapping, so the TLB
 * only contributes latency: a DTLB hit is free, an STLB hit adds the STLB
 * latency, and a full miss adds a fixed page-walk penalty.  RnR's metadata
 * engine performs its own translations (one per metadata page) and does
 * not go through this model, matching the paper's dedicated page-address
 * registers.
 */
#ifndef RNR_MEM_TLB_H
#define RNR_MEM_TLB_H

#include <vector>

#include "ckpt/serde.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace rnr {

/** Direct-mapped two-level TLB; returns added translation latency. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    /**
     * Translates the page of @p vaddr; returns extra latency in ticks.
     * Defined inline — this runs once per demand access, and the
     * power-of-two level sizes index with a mask instead of the modulo
     * division the generic path needs (same index either way).
     */
    Tick
    translate(Addr vaddr)
    {
        const Addr page = pageNumber(vaddr);
        const Addr tag = page + 1;

        Addr &d = dtlb_[indexOf(page, dtlb_mask_, dtlb_.size())];
        if (d == tag) {
            ++c_dtlb_hits_;
            return 0;
        }

        Addr &s = stlb_[indexOf(page, stlb_mask_, stlb_.size())];
        if (s == tag) {
            ++c_stlb_hits_;
            d = tag;
            return cfg_.stlb_latency;
        }

        ++c_walks_;
        d = tag;
        s = tag;
        return cfg_.walk_latency;
    }

    /** Drops all cached translations. */
    void flush();

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Checkpoint visitor: both tag arrays plus the stat group.  The
     *  geometry (sizes, masks) is configuration, rebuilt on restore. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.pod(dtlb_);
        ar.pod(stlb_);
        stats_.visitState(ar);
    }

  private:
    /** @p mask is size-1 for power-of-two arrays, 0 otherwise. */
    static std::size_t
    indexOf(Addr page, std::size_t mask, std::size_t size)
    {
        return mask ? (page & mask) : (page % size);
    }

    TlbConfig cfg_;
    /** Tag arrays store page_number+1 so 0 means empty. */
    std::vector<Addr> dtlb_;
    std::vector<Addr> stlb_;
    std::size_t dtlb_mask_; ///< entries-1 when a power of two, else 0.
    std::size_t stlb_mask_;
    StatGroup stats_;
    // Per-translation handles, declared once (sim/counter.h).
    Counter &c_dtlb_hits_;
    Counter &c_stlb_hits_;
    Counter &c_walks_;
};

} // namespace rnr

#endif // RNR_MEM_TLB_H
