/**
 * @file
 * Two-level data TLB model (per-core L1 DTLB + STLB).
 *
 * The simulator uses an identity virtual-to-physical mapping, so the TLB
 * only contributes latency: a DTLB hit is free, an STLB hit adds the STLB
 * latency, and a full miss adds a fixed page-walk penalty.  RnR's metadata
 * engine performs its own translations (one per metadata page) and does
 * not go through this model, matching the paper's dedicated page-address
 * registers.
 */
#ifndef RNR_MEM_TLB_H
#define RNR_MEM_TLB_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace rnr {

/** Direct-mapped two-level TLB; returns added translation latency. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    /** Translates the page of @p vaddr; returns extra latency in ticks. */
    Tick translate(Addr vaddr);

    /** Drops all cached translations. */
    void flush();

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    TlbConfig cfg_;
    /** Tag arrays store page_number+1 so 0 means empty. */
    std::vector<Addr> dtlb_;
    std::vector<Addr> stlb_;
    StatGroup stats_;
    // Per-translation handles, declared once (sim/counter.h).
    Counter &c_dtlb_hits_;
    Counter &c_stlb_hits_;
    Counter &c_walks_;
};

} // namespace rnr

#endif // RNR_MEM_TLB_H
