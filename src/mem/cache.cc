#include "mem/cache.h"

#include <cassert>

namespace rnr {

namespace {

/** Sets must be a power of two for mask indexing. */
bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheCounters::CacheCounters(StatGroup &g)
    : accesses(g.declare("accesses")),
      hits(g.declare("hits")),
      misses(g.declare("misses")),
      hits_on_inflight_fill(g.declare("hits_on_inflight_fill")),
      prefetch_useful(g.declare("prefetch_useful")),
      evictions(g.declare("evictions")),
      writebacks(g.declare("writebacks")),
      prefetch_evicted_unused(g.declare("prefetch_evicted_unused")),
      fills_demand(g.declare("fills_demand")),
      fills_prefetch(g.declare("fills_prefetch")),
      mshr_merges(g.declare("mshr_merges")),
      mshr_full_stalls(g.declare("mshr_full_stalls")),
      demand_merged_into_prefetch(
          g.declare("demand_merged_into_prefetch")),
      target_accesses(g.declare("target_accesses")),
      target_merges(g.declare("target_merges")),
      target_misses(g.declare("target_misses")),
      prefetches_issued(g.declare("prefetches_issued")),
      prefetch_redundant(g.declare("prefetch_redundant")),
      prefetch_mshr_full(g.declare("prefetch_mshr_full"))
{
}

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg),
      set_mask_(cfg.sets() - 1),
      lines_(static_cast<std::size_t>(cfg.sets()) * cfg.ways),
      mshr_(cfg.mshrs),
      pq_(cfg.prefetch_queue),
      stats_(cfg.name),
      ctr_(stats_)
{
    assert(isPow2(cfg.sets()) && "cache set count must be a power of two");
}

CacheLine *
Cache::access(Addr block, Tick now)
{
    ++ctr_.accesses;
    CacheLine *set = &lines_[setIndex(block) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        CacheLine &line = set[w];
        if (line.valid && line.tag == block) {
            line.lru = ++lru_clock_;
            line.rrpv = 0; // SRRIP: proven reuse -> near re-reference
            if (line.prefetched && !line.referenced)
                ++ctr_.prefetch_useful;
            line.referenced = true;
            if (line.fill_time > now)
                ++ctr_.hits_on_inflight_fill;
            ++ctr_.hits;
            return &line;
        }
    }
    ++ctr_.misses;
    if (tr_)
        tr_->emit(tr_track_, TraceEventType::CacheMiss, now, block,
                  tr_level_);
    return nullptr;
}

const CacheLine *
Cache::peek(Addr block) const
{
    const CacheLine *set = &lines_[setIndex(block) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (set[w].valid && set[w].tag == block)
            return &set[w];
    }
    return nullptr;
}

EvictResult
Cache::insert(Addr block, Tick fill_time, bool prefetched, bool dirty)
{
    CacheLine *set = &lines_[setIndex(block) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        CacheLine &line = set[w];
        if (line.valid && line.tag == block) {
            // Re-insert of a resident block (e.g. prefetch raced a demand
            // fill): refresh the fill time only if it arrives earlier.
            if (fill_time < line.fill_time)
                line.fill_time = fill_time;
            line.dirty = line.dirty || dirty;
            return {};
        }
    }

    // Victim selection: prefer an invalid way; otherwise the LRU line,
    // or under SRRIP the first line predicted "distant" (rrpv == 3),
    // ageing the set until one exists.
    CacheLine *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
    }
    if (!victim && cfg_.replacement == ReplacementPolicy::Srrip) {
        for (;;) {
            for (unsigned w = 0; w < cfg_.ways && !victim; ++w) {
                if (set[w].rrpv >= 3)
                    victim = &set[w];
            }
            if (victim)
                break;
            for (unsigned w = 0; w < cfg_.ways; ++w)
                ++set[w].rrpv;
        }
    } else if (!victim) {
        victim = &set[0];
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (set[w].lru < victim->lru)
                victim = &set[w];
        }
    }

    EvictResult ev;
    if (victim->valid) {
        ev.valid = true;
        ev.block = victim->tag;
        ev.dirty = victim->dirty;
        ev.prefetched_unused = victim->prefetched && !victim->referenced;
        ++ctr_.evictions;
        if (ev.dirty)
            ++ctr_.writebacks;
        if (ev.prefetched_unused)
            ++ctr_.prefetch_evicted_unused;
    }

    victim->tag = block;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->referenced = false;
    victim->fill_time = fill_time;
    victim->lru = ++lru_clock_;
    victim->rrpv = 2; // SRRIP insertion: "long" re-reference interval
    ++(prefetched ? ctr_.fills_prefetch : ctr_.fills_demand);
    if (tr_)
        tr_->emit(tr_track_, TraceEventType::CacheFill, fill_time, block,
                  tr_level_ + (prefetched ? 4u : 0u));
    return ev;
}

void
Cache::markDirty(Addr block, Tick now)
{
    CacheLine *line = access(block, now);
    if (line)
        line->dirty = true;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = CacheLine{};
    lru_clock_ = 0;
    mshr_.clear();
    pq_.clear();
}

void
Cache::setTrace(TraceCollector *tr, std::uint16_t track,
                std::uint8_t level)
{
    tr_ = tr;
    tr_track_ = track;
    tr_level_ = level;
    mshr_.setTrace(tr, track, false);
    pq_.setTrace(tr, track, true);
}

std::size_t
Cache::residentCount() const
{
    std::size_t n = 0;
    for (const auto &line : lines_)
        n += line.valid;
    return n;
}

} // namespace rnr
