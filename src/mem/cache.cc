#include "mem/cache.h"

#include <cassert>

namespace rnr {

namespace {

/** Sets must be a power of two for mask indexing. */
bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheCounters::CacheCounters(StatGroup &g)
    : accesses(g.declare("accesses")),
      hits(g.declare("hits")),
      misses(g.declare("misses")),
      hits_on_inflight_fill(g.declare("hits_on_inflight_fill")),
      prefetch_useful(g.declare("prefetch_useful")),
      evictions(g.declare("evictions")),
      writebacks(g.declare("writebacks")),
      prefetch_evicted_unused(g.declare("prefetch_evicted_unused")),
      fills_demand(g.declare("fills_demand")),
      fills_prefetch(g.declare("fills_prefetch")),
      mshr_merges(g.declare("mshr_merges")),
      mshr_full_stalls(g.declare("mshr_full_stalls")),
      demand_merged_into_prefetch(
          g.declare("demand_merged_into_prefetch")),
      target_accesses(g.declare("target_accesses")),
      target_merges(g.declare("target_merges")),
      target_misses(g.declare("target_misses")),
      prefetches_issued(g.declare("prefetches_issued")),
      prefetch_redundant(g.declare("prefetch_redundant")),
      prefetch_mshr_full(g.declare("prefetch_mshr_full"))
{
}

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg),
      set_mask_(cfg.sets() - 1),
      lines_(static_cast<std::size_t>(cfg.sets()) * cfg.ways),
      mshr_(cfg.mshrs),
      pq_(cfg.prefetch_queue),
      stats_(cfg.name),
      ctr_(stats_)
{
    assert(isPow2(cfg.sets()) && "cache set count must be a power of two");
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = CacheLine{};
    lru_clock_ = 0;
    mshr_.clear();
    pq_.clear();
}

void
Cache::setTrace(TraceCollector *tr, std::uint16_t track,
                std::uint8_t level)
{
    tr_ = tr;
    tr_track_ = track;
    tr_level_ = level;
    mshr_.setTrace(tr, track, false);
    pq_.setTrace(tr, track, true);
}

std::size_t
Cache::residentCount() const
{
    std::size_t n = 0;
    for (const auto &line : lines_)
        n += line.valid;
    return n;
}

} // namespace rnr
