#include "mem/memory_system.h"

#include <algorithm>
#include <string>

#include "sim/timeseries.h"

namespace rnr {

MemorySystem::MemorySystem(const MachineConfig &cfg)
    : cfg_(cfg), llc_(std::make_unique<Cache>(cfg.llc)), dram_(cfg.dram)
{
    for (unsigned c = 0; c < cfg.cores; ++c) {
        CacheConfig l1 = cfg.l1d;
        CacheConfig l2 = cfg.l2;
        l1.name += std::to_string(c);
        l2.name += std::to_string(c);
        l1d_.push_back(std::make_unique<Cache>(l1));
        l2_.push_back(std::make_unique<Cache>(l2));
        tlb_.push_back(std::make_unique<Tlb>(cfg.tlb));
        prefetchers_.push_back(&null_pf_);
        pf_dispatch_.push_back({}); // NullPrefetcher: both hooks off
    }
}

void
MemorySystem::setPrefetcher(unsigned core, Prefetcher *pf)
{
    prefetchers_[core] = pf ? pf : &null_pf_;
    pf_dispatch_[core] = {prefetchers_[core]->wantsAccess(),
                          prefetchers_[core]->hasTargetRegions()};
    if (pf) {
        pf->attach(this, core);
        if (tr_)
            pf->setTrace(tr_, static_cast<std::uint16_t>(core));
        if (tm_)
            pf->setTelemetry(tm_, core);
        if (at_)
            pf->setAttrib(at_);
    }
}

void
MemorySystem::attachTrace(TraceCollector *tr)
{
    tr_ = tr;
    const std::uint16_t mem_track = tr ? tr->memTrack() : 0;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        const auto track = static_cast<std::uint16_t>(c);
        l1d_[c]->setTrace(tr, track, 0);
        l2_[c]->setTrace(tr, track, 1);
        prefetchers_[c]->setTrace(tr, track);
    }
    llc_->setTrace(tr, mem_track, 2);
    dram_.setTrace(tr, mem_track);
}

void
MemorySystem::attachTelemetry(TelemetrySampler *tm)
{
    tm_ = tm;
    h_miss_latency_ = tm ? &tm->histogram("l2.demand_miss_latency") : nullptr;
    h_pf_latency_ = tm ? &tm->histogram("l2.prefetch_fill_latency") : nullptr;
    if (tm) {
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            const std::string p = "core" + std::to_string(c) + ".";
            Cache *l2 = l2_[c].get();
            tm->addSeries(p + "l2_mshr_occupancy", [l2] {
                return static_cast<std::uint64_t>(l2->mshr().inFlight());
            });
            tm->addSeries(p + "l2_pf_queue_depth", [l2] {
                return static_cast<std::uint64_t>(
                    l2->prefetchQueue().inFlight());
            });
        }
        tm->addSeries("dram.read_queue_depth", [this] {
            return static_cast<std::uint64_t>(dram_.readQueueDepth());
        });
        tm->addSeries("dram.write_queue_depth", [this] {
            return static_cast<std::uint64_t>(dram_.writeQueueDepth());
        });
    }
    for (unsigned c = 0; c < cfg_.cores; ++c)
        prefetchers_[c]->setTelemetry(tm, c);
}

void
MemorySystem::attachAttrib(AttribCollector *at)
{
    at_ = at;
    // Attribution attaches to the private L2s only: their counters are
    // the ones SystemCounters folds into IterStats (pf_issued /
    // pf_useful / pf_late_merged), so hooking exactly these levels is
    // what makes the attrib totals reconcile exactly.
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        l2_[c]->setAttrib(at, c);
        prefetchers_[c]->setAttrib(at);
    }
}

void
MemorySystem::control(unsigned core, const TraceRecord &rec, Tick now)
{
    prefetchers_[core]->onControl(rec, now);
}

Tick
MemorySystem::accessShared(Addr block, Tick now, ReqOrigin origin)
{
    Cache &llc = *llc_;
    llc.mshr().purge(now);

    if (CacheLine *line = llc.access(block, now))
        return std::max(now, line->fill_time) + llc.config().latency;

    if (Mshr::Entry *e = llc.mshr().find(block))
        return std::max(now, e->fill) + llc.config().latency;

    Tick t = now;
    if (llc.mshr().full()) {
        t = std::max(t, llc.mshr().earliestFill());
        llc.mshr().purge(t);
        ++llc.ctr().mshr_full_stalls;
    }

    const Tick done = dram_.read(block << kBlockBits,
                                 t + llc.config().latency, origin);
    llc.mshr().insert(block, done, origin == ReqOrigin::Prefetch);
    EvictResult ev = llc.insert(block, done,
                                origin == ReqOrigin::Prefetch, false);
    if (ev.valid && ev.dirty)
        dram_.write(ev.block << kBlockBits, done, ReqOrigin::Writeback);
    return done;
}

void
MemorySystem::handleL2Evict(unsigned core, const EvictResult &ev, Tick now)
{
    if (!ev.valid)
        return;
    if (ev.dirty) {
        // Writeback lands in the LLC if the block is still there (it is,
        // for a mostly-inclusive hierarchy); otherwise it goes off-chip.
        if (const CacheLine *line = llc_->peek(ev.block)) {
            const_cast<CacheLine *>(line)->dirty = true;
        } else {
            dram_.write(ev.block << kBlockBits, now, ReqOrigin::Writeback);
        }
    }
    prefetchers_[core]->onEvict(ev.block);
}

DemandResult
MemorySystem::demandAccess(unsigned core, Addr vaddr, bool is_write,
                           std::uint32_t pc, Tick now)
{
    DemandResult res;
    Cache &l1 = *l1d_[core];
    Cache &l2 = *l2_[core];

    Tick t = now + tlb_[core]->translate(vaddr);
    const Addr block = blockNumber(vaddr);

    // ---- L1 ----
    l1.mshr().purge(t);
    if (CacheLine *line = l1.access(block, t)) {
        if (is_write)
            line->dirty = true;
        res.done = std::max(t, line->fill_time) + l1.config().latency;
        res.l1_hit = true;
        return res;
    }
    if (Mshr::Entry *e = l1.mshr().find(block)) {
        res.done = std::max(t, e->fill) + l1.config().latency;
        if (is_write)
            l1.markDirty(block, t); // will be resident once filled
        ++l1.ctr().mshr_merges;
        if (tr_)
            tr_->emit(static_cast<std::uint16_t>(core),
                      TraceEventType::MshrMerge, t, block, 0);
        return res;
    }
    if (l1.mshr().full()) {
        t = std::max(t, l1.mshr().earliestFill());
        l1.mshr().purge(t);
        ++l1.ctr().mshr_full_stalls;
    }
    const Tick t2 = t + l1.config().latency;

    // ---- L2 ----
    l2.mshr().purge(t2);
    l2.prefetchQueue().purge(t2);
    const PfDispatch pfd = pf_dispatch_[core];
    const bool target =
        pfd.has_targets && prefetchers_[core]->inTargetRegion(vaddr);
    L2AccessInfo info;
    info.core = core;
    info.vaddr = vaddr;
    info.block = block;
    info.pc = pc;
    info.now = t2;
    info.is_write = is_write;
    info.target_struct = target;

    Tick fill;
    if (CacheLine *line = l2.access(block, t2)) {
        fill = std::max(t2, line->fill_time) + l2.config().latency;
        if (is_write)
            line->dirty = true;
        info.hit = true;
        res.l2_hit = true;
        if (target)
            ++l2.ctr().target_accesses;
    } else if (Mshr::Entry *e = l2.mshr().find(block)) {
        fill = std::max(t2, e->fill) + l2.config().latency;
        info.merged = true;
        ++l2.ctr().mshr_merges;
        if (tr_)
            tr_->emit(static_cast<std::uint16_t>(core),
                      TraceEventType::MshrMerge, t2, block, 1);
        if (target) {
            ++l2.ctr().target_accesses;
            ++l2.ctr().target_merges;
        }
    } else if (Mshr::Entry *pe = l2.prefetchQueue().find(block)) {
        // Demand caught an in-flight prefetch: a "late" prefetch that
        // still hides part of the miss latency.
        fill = std::max(t2, pe->fill) + l2.config().latency;
        info.merged = true;
        info.merged_into_prefetch = pe->prefetch;
        ++l2.ctr().mshr_merges;
        if (tr_)
            tr_->emit(static_cast<std::uint16_t>(core),
                      TraceEventType::MshrMerge, t2, block,
                      pe->prefetch ? 5 : 1);
        if (pe->prefetch) {
            ++l2.ctr().demand_merged_into_prefetch;
            if (at_)
                at_->onLateMerged(pe->site, block);
            pe->prefetch = false; // count each late prefetch once
        }
        if (target) {
            ++l2.ctr().target_accesses;
            ++l2.ctr().target_merges;
        }
    } else {
        res.l2_miss = true;
        Tick t2b = t2;
        if (l2.mshr().full()) {
            t2b = std::max(t2b, l2.mshr().earliestFill());
            l2.mshr().purge(t2b);
            ++l2.ctr().mshr_full_stalls;
        }
        fill = accessShared(block, t2b + l2.config().latency,
                            ReqOrigin::Demand);
        if (h_miss_latency_)
            h_miss_latency_->record(fill - t2);
        l2.mshr().insert(block, fill, false);
        EvictResult ev = l2.insert(block, fill, false, is_write);
        handleL2Evict(core, ev, t2b);
        if (target) {
            ++l2.ctr().target_accesses;
            ++l2.ctr().target_misses;
        }
    }
    if (pfd.wants_access)
        prefetchers_[core]->onAccess(info);

    // ---- L1 fill ----
    if (!l1.mshr().full()) {
        l1.mshr().insert(block, fill, false);
        EvictResult ev = l1.insert(block, fill, false, is_write);
        if (ev.valid && ev.dirty) {
            // L1 victim writes back into the L2.
            l2.markDirty(ev.block, t2);
        }
    }

    res.done = fill;
    return res;
}

PrefetchIssue
MemorySystem::prefetchIntoL2(unsigned core, Addr vaddr, Tick now,
                             std::uint32_t site)
{
    PrefetchIssue out;
    Cache &l2 = *l2_[core];
    const Addr block = blockNumber(vaddr);

    l2.mshr().purge(now);
    l2.prefetchQueue().purge(now);
    if (l2.peek(block) || l2.mshr().find(block) ||
        l2.prefetchQueue().find(block)) {
        out.redundant = true;
        ++l2.ctr().prefetch_redundant;
        if (tr_)
            tr_->emit(static_cast<std::uint16_t>(core),
                      TraceEventType::PrefetchDrop, now, block, 0);
        return out;
    }
    if (l2.prefetchQueue().full()) {
        out.mshr_full = true;
        ++l2.ctr().prefetch_mshr_full;
        if (tr_)
            tr_->emit(static_cast<std::uint16_t>(core),
                      TraceEventType::PrefetchDrop, now, block, 1);
        return out;
    }

    const Tick fill = accessShared(block, now + l2.config().latency,
                                   ReqOrigin::Prefetch);
    if (h_pf_latency_)
        h_pf_latency_->record(fill - now);
    l2.prefetchQueue().insert(block, fill, true, site);
    EvictResult ev = l2.insert(block, fill, true, false, site);
    handleL2Evict(core, ev, now);
    ++l2.ctr().prefetches_issued;
    if (at_)
        at_->onIssued(site, block);
    if (tr_) {
        const auto track = static_cast<std::uint16_t>(core);
        tr_->emit(track, TraceEventType::PrefetchIssue, now, block,
                  fill - now);
        tr_->emit(track, TraceEventType::PrefetchFill, fill, block,
                  fill - now);
    }

    out.issued = true;
    out.fill_time = fill;
    return out;
}

Tick
MemorySystem::metadataRead(Addr addr, std::uint64_t bytes, Tick now)
{
    Tick done = now;
    for (Addr a = blockAlign(addr); a < addr + bytes; a += kBlockSize)
        done = dram_.read(a, now, ReqOrigin::Metadata);
    return done;
}

void
MemorySystem::metadataWrite(Addr addr, std::uint64_t bytes, Tick now)
{
    for (Addr a = blockAlign(addr); a < addr + bytes; a += kBlockSize)
        dram_.write(a, now, ReqOrigin::Metadata);
}

void
MemorySystem::resetTiming()
{
    dram_.resetTiming();
}

} // namespace rnr
