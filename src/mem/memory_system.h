/**
 * @file
 * The full memory hierarchy: per-core L1D + L2 + TLB, shared LLC + DRAM.
 *
 * Ties the cache levels together, hooks the per-core prefetcher into the
 * L2 (ChampSim attaches prefetchers the same way), and provides the
 * side-band metadata path RnR uses for its sequence/division tables
 * (uncached, straight to DRAM, as in the paper: "the metadata are not
 * stored in cache").
 */
#ifndef RNR_MEM_MEMORY_SYSTEM_H
#define RNR_MEM_MEMORY_SYSTEM_H

#include <memory>
#include <vector>

#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/tlb.h"
#include "prefetch/prefetcher.h"
#include "sim/config.h"
#include "sim/types.h"

namespace rnr {

class TelemetrySampler;
class Log2Histogram;
class AttribCollector;

/** Result of a demand access, as seen by the core model. */
struct DemandResult {
    Tick done = 0;       ///< Tick at which the load's data is available.
    bool l1_hit = false;
    bool l2_hit = false;
    bool l2_miss = false; ///< True L2 miss (not an MSHR merge).
};

/** Per-core private hierarchy plus the shared backside. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &cfg);

    /**
     * Performs a demand load/store for @p core at tick @p now.
     * Returns the completion tick plus hit/miss observations.
     */
    DemandResult demandAccess(unsigned core, Addr vaddr, bool is_write,
                              std::uint32_t pc, Tick now);

    /**
     * Prefetches @p vaddr's block into @p core's L2 (prefetcher path).
     * Counted in the issuing prefetcher's traffic, lower priority than
     * demands only in that it never blocks them.  @p site is the
     * attribution site id of the issuing decision (trigger PC or RnR
     * lane id; sim/attrib.h), carried into the prefetch queue entry
     * and the filled line.
     */
    PrefetchIssue prefetchIntoL2(unsigned core, Addr vaddr, Tick now,
                                 std::uint32_t site = 0);

    /**
     * RnR metadata access: @p bytes streamed starting at @p addr,
     * bypassing all caches.  Returns the completion tick of the last
     * block.  Reads are issued at 64 B granularity (sequential, so they
     * enjoy DRAM row-buffer locality); writes go through the write queue.
     */
    Tick metadataRead(Addr addr, std::uint64_t bytes, Tick now);
    void metadataWrite(Addr addr, std::uint64_t bytes, Tick now);

    /** Installs @p pf as @p core's L2 prefetcher (not owned). */
    void setPrefetcher(unsigned core, Prefetcher *pf);
    Prefetcher *prefetcher(unsigned core) { return prefetchers_[core]; }

    /** Forwards a software control record to @p core's prefetcher. */
    void control(unsigned core, const TraceRecord &rec, Tick now);

    Cache &l1d(unsigned core) { return *l1d_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &llc() { return *llc_; }
    Dram &dram() { return dram_; }
    Tlb &tlb(unsigned core) { return *tlb_[core]; }
    const MachineConfig &config() const { return cfg_; }
    unsigned cores() const { return cfg_.cores; }

    /** Resets DRAM/queue timing (not cache contents) between phases. */
    void resetTiming();

    /**
     * Fans @p tr out to every cache level, both MSHR files, the DRAM
     * model and the attached prefetchers (null = detach).  Core-private
     * structures use the core's track; LLC + DRAM share the "mem" track.
     * Prefetchers installed later (setPrefetcher) inherit it.
     */
    void attachTrace(TraceCollector *tr);
    TraceCollector *trace() { return tr_; }

    /**
     * Registers this hierarchy's telemetry sources with @p tm (null =
     * detach): per-core L2 MSHR occupancy and prefetch-queue depth
     * probes, DRAM read/write-queue depth probes, and the L2 demand-
     * miss and prefetch-to-fill latency histograms.  Forwards to the
     * attached prefetchers (Prefetcher::setTelemetry); prefetchers
     * installed later (setPrefetcher) inherit it.
     */
    void attachTelemetry(TelemetrySampler *tm);
    TelemetrySampler *telemetry() { return tm_; }

    /**
     * Attaches the attribution collector (null = detach): each private
     * L2 reports useful hits / unused evictions / pollution events, the
     * prefetch-issue and late-merge hooks here report the rest, and the
     * attached prefetchers get Prefetcher::setAttrib (RnR registers its
     * Fig 11 classification).  Prefetchers installed later
     * (setPrefetcher) inherit it, mirroring trace/telemetry.
     */
    void attachAttrib(AttribCollector *at);
    AttribCollector *attrib() { return at_; }

    /** Checkpoint visitor: every owned cache level, the per-core TLBs
     *  and the DRAM model.  Attached prefetchers are NOT walked here —
     *  they are not owned, and the snapshot codec gives them their own
     *  section (they sit behind a virtual saveState/loadState pair). */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            l1d_[c]->visitState(ar);
            l2_[c]->visitState(ar);
            tlb_[c]->visitState(ar);
        }
        llc_->visitState(ar);
        dram_.visitState(ar);
    }

  private:
    /** Shared LLC + DRAM access; returns fill-complete tick. */
    Tick accessShared(Addr block, Tick now, ReqOrigin origin);

    /** Handles an L2 eviction: writeback + prefetcher notification. */
    void handleL2Evict(unsigned core, const EvictResult &ev, Tick now);

    /**
     * Per-core snapshot of Prefetcher::wantsAccess()/hasTargetRegions(),
     * taken at setPrefetcher(): demandAccess() consults the flags
     * instead of making the two per-access virtual calls when they are
     * declared no-ops (the batched kernel's prefetcher devirtualisation;
     * docs/PERF.md section 3).
     */
    struct PfDispatch {
        bool wants_access = false;
        bool has_targets = false;
    };

    MachineConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Tlb>> tlb_;
    std::unique_ptr<Cache> llc_;
    Dram dram_;
    std::vector<Prefetcher *> prefetchers_;
    std::vector<PfDispatch> pf_dispatch_; ///< Parallel to prefetchers_.
    NullPrefetcher null_pf_;
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    TelemetrySampler *tm_ = nullptr; ///< Null unless sampling is enabled.
    AttribCollector *at_ = nullptr; ///< Null unless attribution is on.
    /** Latency sinks, non-null only while telemetry is attached. */
    Log2Histogram *h_miss_latency_ = nullptr;
    Log2Histogram *h_pf_latency_ = nullptr;
};

} // namespace rnr

#endif // RNR_MEM_MEMORY_SYSTEM_H
