/**
 * @file
 * Set-associative cache model with timestamped fills.
 *
 * The cache is functional (it tracks exactly which blocks are resident)
 * but every line remembers the tick at which its data actually arrived
 * (fill_time).  A demand access that finds a line whose fill is still in
 * the future models a "late prefetch": the requester waits until the fill
 * tick rather than paying the full miss path.  Lines also carry prefetch
 * provenance so useful/useless prefetch statistics fall out of ordinary
 * hit/evict bookkeeping.
 */
#ifndef RNR_MEM_CACHE_H
#define RNR_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "ckpt/serde.h"
#include "mem/mshr.h"
#include "sim/attrib.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/trace_event.h"
#include "sim/types.h"

namespace rnr {

/** One cache line's bookkeeping state. */
struct CacheLine {
    Addr tag = 0;
    Tick fill_time = 0;      ///< Tick at which the data arrived.
    std::uint64_t lru = 0;   ///< Higher = more recently used.
    std::uint32_t site = 0;  ///< Attribution site id (sim/attrib.h).
    std::uint8_t rrpv = 3;   ///< SRRIP re-reference prediction value.
    bool valid = false;
    bool dirty = false;
    bool prefetched = false; ///< Brought in by a prefetch...
    bool referenced = false; ///< ...and since touched by a demand access.

    /** Field-wise (the struct has padding, so no pod() bulk path). */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(tag);
        ar.scalar(fill_time);
        ar.scalar(lru);
        ar.scalar(site);
        ar.scalar(rrpv);
        ar.scalar(valid);
        ar.scalar(dirty);
        ar.scalar(prefetched);
        ar.scalar(referenced);
    }
};

/** What insert() displaced, so the caller can issue writebacks. */
struct EvictResult {
    Addr block = 0;               ///< Block number of the victim.
    bool valid = false;
    bool dirty = false;
    bool prefetched_unused = false; ///< Victim was an unreferenced prefetch.
};

/**
 * Pre-declared per-access counter handles of one cache level.
 *
 * Declared once against the cache's StatGroup so the access path bumps
 * plain uint64_t cells; the string names stay visible through
 * StatGroup::get()/dump() for tests and the harness.  The MSHR-merge /
 * target-structure / prefetch-issue counters are bumped by MemorySystem,
 * which owns the cross-level protocol those events belong to.
 */
struct CacheCounters {
    explicit CacheCounters(StatGroup &g);

    // Bumped by Cache itself.
    Counter &accesses;
    Counter &hits;
    Counter &misses;
    Counter &hits_on_inflight_fill;
    Counter &prefetch_useful;
    Counter &evictions;
    Counter &writebacks;
    Counter &prefetch_evicted_unused;
    Counter &fills_demand;
    Counter &fills_prefetch;

    // Bumped by MemorySystem on this cache's behalf.
    Counter &mshr_merges;
    Counter &mshr_full_stalls;
    Counter &demand_merged_into_prefetch;
    Counter &target_accesses;
    Counter &target_merges;
    Counter &target_misses;
    Counter &prefetches_issued;
    Counter &prefetch_redundant;
    Counter &prefetch_mshr_full;
};

/** A set-associative, LRU-replacement cache level.
 *
 * The lookup/insert methods are defined inline: they run up to three
 * times per demand access (L1, L2, LLC) and are the memory system's
 * hottest leaves, so keeping them visible to MemorySystem's translation
 * unit removes a cross-TU call per probe (docs/PERF.md section 3). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Demand lookup: updates LRU and reference bits.
     * @return the resident line, or nullptr on miss.
     */
    CacheLine *
    access(Addr block, Tick now)
    {
        ++ctr_.accesses;
        CacheLine *set = &lines_[setIndex(block) * cfg_.ways];
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            CacheLine &line = set[w];
            if (line.valid && line.tag == block) {
                line.lru = ++lru_clock_;
                line.rrpv = 0; // SRRIP: proven reuse -> near re-reference
                if (line.prefetched && !line.referenced) {
                    ++ctr_.prefetch_useful;
                    if (at_)
                        at_->onUseful(line.site, block);
                }
                line.referenced = true;
                if (line.fill_time > now)
                    ++ctr_.hits_on_inflight_fill;
                ++ctr_.hits;
                return &line;
            }
        }
        ++ctr_.misses;
        if (at_)
            at_->onDemandMiss(at_core_, block);
        if (tr_)
            tr_->emit(tr_track_, TraceEventType::CacheMiss, now, block,
                      tr_level_);
        return nullptr;
    }

    /** Lookup without side effects (no LRU update). */
    const CacheLine *
    peek(Addr block) const
    {
        const CacheLine *set = &lines_[setIndex(block) * cfg_.ways];
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (set[w].valid && set[w].tag == block)
                return &set[w];
        }
        return nullptr;
    }

    /**
     * Installs @p block, evicting the set's LRU victim.
     * @param fill_time tick at which the block's data arrives.
     * @param prefetched the fill was triggered by a prefetch.
     * @param site attribution site id of the issuing prefetch (0 for
     *        demand fills; sim/attrib.h), remembered on the line.
     * @return description of the displaced victim.
     */
    EvictResult
    insert(Addr block, Tick fill_time, bool prefetched, bool dirty,
           std::uint32_t site = 0)
    {
        CacheLine *set = &lines_[setIndex(block) * cfg_.ways];
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            CacheLine &line = set[w];
            if (line.valid && line.tag == block) {
                // Re-insert of a resident block (e.g. prefetch raced a
                // demand fill): refresh the fill time only if it
                // arrives earlier.
                if (fill_time < line.fill_time)
                    line.fill_time = fill_time;
                line.dirty = line.dirty || dirty;
                return {};
            }
        }

        // Victim selection: prefer an invalid way; otherwise the LRU
        // line, or under SRRIP the first line predicted "distant"
        // (rrpv == 3), ageing the set until one exists.
        CacheLine *victim = nullptr;
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
        }
        if (!victim && cfg_.replacement == ReplacementPolicy::Srrip) {
            for (;;) {
                for (unsigned w = 0; w < cfg_.ways && !victim; ++w) {
                    if (set[w].rrpv >= 3)
                        victim = &set[w];
                }
                if (victim)
                    break;
                for (unsigned w = 0; w < cfg_.ways; ++w)
                    ++set[w].rrpv;
            }
        } else if (!victim) {
            victim = &set[0];
            for (unsigned w = 0; w < cfg_.ways; ++w) {
                if (set[w].lru < victim->lru)
                    victim = &set[w];
            }
        }

        EvictResult ev;
        if (victim->valid) {
            ev.valid = true;
            ev.block = victim->tag;
            ev.dirty = victim->dirty;
            ev.prefetched_unused =
                victim->prefetched && !victim->referenced;
            ++ctr_.evictions;
            if (ev.dirty)
                ++ctr_.writebacks;
            if (ev.prefetched_unused) {
                ++ctr_.prefetch_evicted_unused;
                if (at_)
                    at_->onEvictedUnused(victim->site, victim->tag);
            } else if (at_ && prefetched) {
                // A prefetch displaced a line the demand stream owned
                // (demand-filled, or a prefetch that proved useful):
                // remember the victim so a re-miss charges pollution.
                at_->onPrefetchEvictsDemand(at_core_, site,
                                            victim->tag);
            }
        }

        victim->tag = block;
        victim->valid = true;
        victim->dirty = dirty;
        victim->prefetched = prefetched;
        victim->referenced = false;
        victim->site = site;
        victim->fill_time = fill_time;
        victim->lru = ++lru_clock_;
        victim->rrpv = 2; // SRRIP insertion: "long" re-reference interval
        ++(prefetched ? ctr_.fills_prefetch : ctr_.fills_demand);
        if (tr_)
            tr_->emit(tr_track_, TraceEventType::CacheFill, fill_time,
                      block, tr_level_ + (prefetched ? 4u : 0u));
        return ev;
    }

    /** Marks a resident block dirty (store hit); no-op when absent. */
    void
    markDirty(Addr block, Tick now)
    {
        CacheLine *line = access(block, now);
        if (line)
            line->dirty = true;
    }

    /** Invalidates every line and clears the MSHR file. */
    void reset();

    /** Routes this level's miss/fill (and both MSHR files') events to
     *  @p tr's @p track; @p level tags events (0 = L1, 1 = L2, 2 = LLC).
     *  Pass tr = nullptr to detach. */
    void setTrace(TraceCollector *tr, std::uint16_t track,
                  std::uint8_t level);

    /** Routes this level's attribution events (useful hits, unused
     *  evictions, pollution-filter traffic) to @p at as @p core; null =
     *  detach.  Only L2s are attached — their counters are the ones
     *  IterStats aggregates, which is what makes attribution totals
     *  reconcile exactly (sim/attrib.h). */
    void
    setAttrib(AttribCollector *at, unsigned core)
    {
        at_ = at;
        at_core_ = core;
    }

    /** Number of valid lines (tests and occupancy probes). */
    std::size_t residentCount() const;

    const CacheConfig &config() const { return cfg_; }
    Mshr &mshr() { return mshr_; }
    /** In-flight prefetches (separate file, so prefetch lookahead is not
     *  bounded by the demand MSHRs — ChampSim's PQ plays this role). */
    Mshr &prefetchQueue() { return pq_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    CacheCounters &ctr() { return ctr_; }
    const CacheCounters &ctr() const { return ctr_; }

    /** Checkpoint visitor: line array, LRU clock, both MSHR files and
     *  the stat group.  Geometry (cfg_, set_mask_) and trace routing
     *  are configuration — the restore side rebuilds them and seq()
     *  restores the same sets x ways count. */
    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ckpt::seq(ar, lines_);
        ar.scalar(lru_clock_);
        mshr_.visitState(ar);
        pq_.visitState(ar);
        stats_.visitState(ar);
    }

  private:
    std::size_t setIndex(Addr block) const { return block & set_mask_; }

    CacheConfig cfg_;
    std::size_t set_mask_;
    std::vector<CacheLine> lines_; ///< sets x ways, row-major.
    std::uint64_t lru_clock_ = 0;
    Mshr mshr_;
    Mshr pq_;
    StatGroup stats_;
    CacheCounters ctr_; ///< Handles into stats_; keep declared after it.
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    std::uint16_t tr_track_ = 0;
    std::uint8_t tr_level_ = 0;
    AttribCollector *at_ = nullptr; ///< Null unless attribution is on.
    unsigned at_core_ = 0;
};

} // namespace rnr

#endif // RNR_MEM_CACHE_H
