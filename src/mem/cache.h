/**
 * @file
 * Set-associative cache model with timestamped fills.
 *
 * The cache is functional (it tracks exactly which blocks are resident)
 * but every line remembers the tick at which its data actually arrived
 * (fill_time).  A demand access that finds a line whose fill is still in
 * the future models a "late prefetch": the requester waits until the fill
 * tick rather than paying the full miss path.  Lines also carry prefetch
 * provenance so useful/useless prefetch statistics fall out of ordinary
 * hit/evict bookkeeping.
 */
#ifndef RNR_MEM_CACHE_H
#define RNR_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "mem/mshr.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/trace_event.h"
#include "sim/types.h"

namespace rnr {

/** One cache line's bookkeeping state. */
struct CacheLine {
    Addr tag = 0;
    Tick fill_time = 0;      ///< Tick at which the data arrived.
    std::uint64_t lru = 0;   ///< Higher = more recently used.
    std::uint8_t rrpv = 3;   ///< SRRIP re-reference prediction value.
    bool valid = false;
    bool dirty = false;
    bool prefetched = false; ///< Brought in by a prefetch...
    bool referenced = false; ///< ...and since touched by a demand access.
};

/** What insert() displaced, so the caller can issue writebacks. */
struct EvictResult {
    Addr block = 0;               ///< Block number of the victim.
    bool valid = false;
    bool dirty = false;
    bool prefetched_unused = false; ///< Victim was an unreferenced prefetch.
};

/**
 * Pre-declared per-access counter handles of one cache level.
 *
 * Declared once against the cache's StatGroup so the access path bumps
 * plain uint64_t cells; the string names stay visible through
 * StatGroup::get()/dump() for tests and the harness.  The MSHR-merge /
 * target-structure / prefetch-issue counters are bumped by MemorySystem,
 * which owns the cross-level protocol those events belong to.
 */
struct CacheCounters {
    explicit CacheCounters(StatGroup &g);

    // Bumped by Cache itself.
    Counter &accesses;
    Counter &hits;
    Counter &misses;
    Counter &hits_on_inflight_fill;
    Counter &prefetch_useful;
    Counter &evictions;
    Counter &writebacks;
    Counter &prefetch_evicted_unused;
    Counter &fills_demand;
    Counter &fills_prefetch;

    // Bumped by MemorySystem on this cache's behalf.
    Counter &mshr_merges;
    Counter &mshr_full_stalls;
    Counter &demand_merged_into_prefetch;
    Counter &target_accesses;
    Counter &target_merges;
    Counter &target_misses;
    Counter &prefetches_issued;
    Counter &prefetch_redundant;
    Counter &prefetch_mshr_full;
};

/** A set-associative, LRU-replacement cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Demand lookup: updates LRU and reference bits.
     * @return the resident line, or nullptr on miss.
     */
    CacheLine *access(Addr block, Tick now);

    /** Lookup without side effects (no LRU update). */
    const CacheLine *peek(Addr block) const;

    /**
     * Installs @p block, evicting the set's LRU victim.
     * @param fill_time tick at which the block's data arrives.
     * @param prefetched the fill was triggered by a prefetch.
     * @return description of the displaced victim.
     */
    EvictResult insert(Addr block, Tick fill_time, bool prefetched,
                       bool dirty);

    /** Marks a resident block dirty (store hit); no-op when absent. */
    void markDirty(Addr block, Tick now);

    /** Invalidates every line and clears the MSHR file. */
    void reset();

    /** Routes this level's miss/fill (and both MSHR files') events to
     *  @p tr's @p track; @p level tags events (0 = L1, 1 = L2, 2 = LLC).
     *  Pass tr = nullptr to detach. */
    void setTrace(TraceCollector *tr, std::uint16_t track,
                  std::uint8_t level);

    /** Number of valid lines (tests and occupancy probes). */
    std::size_t residentCount() const;

    const CacheConfig &config() const { return cfg_; }
    Mshr &mshr() { return mshr_; }
    /** In-flight prefetches (separate file, so prefetch lookahead is not
     *  bounded by the demand MSHRs — ChampSim's PQ plays this role). */
    Mshr &prefetchQueue() { return pq_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    CacheCounters &ctr() { return ctr_; }
    const CacheCounters &ctr() const { return ctr_; }

  private:
    std::size_t setIndex(Addr block) const { return block & set_mask_; }

    CacheConfig cfg_;
    std::size_t set_mask_;
    std::vector<CacheLine> lines_; ///< sets x ways, row-major.
    std::uint64_t lru_clock_ = 0;
    Mshr mshr_;
    Mshr pq_;
    StatGroup stats_;
    CacheCounters ctr_; ///< Handles into stats_; keep declared after it.
    TraceCollector *tr_ = nullptr; ///< Null unless tracing is enabled.
    std::uint16_t tr_track_ = 0;
    std::uint8_t tr_level_ = 0;
};

} // namespace rnr

#endif // RNR_MEM_CACHE_H
