/**
 * @file
 * The paper's Fig 2 motivation, runnable.
 *
 * Two interleaved miss streams reach the memory controller: a regular
 * one (blocks 1,2,3,... from region s1) and an irregular repeating one
 * (9,12,9,20,... from region s2).  A GHB temporal prefetcher keys on
 * single addresses, so after seeing 9->12 and later 9->20 it predicts
 * whichever came last — the Section II mis-prediction — and the mixing
 * of the streams further pollutes its history.  RnR is told s2's bounds
 * and the iteration boundary, records the exact miss sequence once, and
 * replays it perfectly on the repeat.
 */
#include <cstdio>

#include "core/rnr_prefetcher.h"
#include "mem/memory_system.h"
#include "prefetch/ghb.h"

using namespace rnr;

namespace {

/** The Fig 2(a) irregular pattern over region s2, repeated per pass. */
const unsigned kIrregular[] = {9, 12, 9, 20, 1, 17, 4, 12, 30, 9,
                               20, 2, 26, 9, 7, 21, 12, 33, 5, 18};

struct PassResult {
    std::uint64_t useful = 0;
    std::uint64_t issued = 0;
    std::uint64_t misses = 0;
};

/** Runs `passes` repetitions of the mixed s1+s2 access pattern. */
PassResult
run(Prefetcher &pf, RnrPrefetcher *rnr_view, int passes)
{
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    MemorySystem ms(mcfg);
    ms.setPrefetcher(0, &pf);

    const Addr s1 = 0x10000000; // streaming region
    const Addr s2 = 0x20000000; // irregular region
    auto ctl = [&](RnrOp op, Addr p0 = 0, std::uint64_t p1 = 0) {
        pf.onControl(TraceRecord::control(op, p0, p1), 0);
    };
    if (rnr_view) {
        ctl(RnrOp::Init, 0x70000000, 0x71000000);
        ctl(RnrOp::AddrBaseSet, s2, 1 << 20);
        ctl(RnrOp::AddrEnable, s2);
        ctl(RnrOp::Start);
    }

    Tick t = 0;
    std::uint64_t misses_before_last = 0;
    for (int pass = 0; pass < passes; ++pass) {
        if (rnr_view && pass > 0)
            pf.onControl(TraceRecord::control(RnrOp::Replay), t);
        if (pass + 1 == passes)
            misses_before_last = ms.l2(0).stats().get("misses");
        unsigned stream_block = 1;
        for (unsigned irr : kIrregular) {
            // Interleave: one streaming miss, one irregular miss.
            ms.demandAccess(0, s1 + Addr(pass) * (1 << 16) +
                                   Addr(stream_block++) * kBlockSize,
                            false, 1, t);
            t += 500;
            ms.demandAccess(0, s2 + Addr(irr) * kBlockSize, false, 2, t);
            t += 500;
        }
        // Iteration boundary: caches churn between passes (other
        // code touching fresh data each time).
        for (int k = 0; k < 600; ++k) {
            ms.demandAccess(0, 0x40000000 +
                                   Addr(pass) * (1 << 22) +
                                   Addr(k) * kBlockSize,
                            false, 3, t);
            t += 60;
        }
    }

    PassResult out;
    out.useful = ms.l2(0).stats().get("prefetch_useful") +
                 ms.l2(0).stats().get("demand_merged_into_prefetch");
    out.issued = ms.l2(0).stats().get("prefetches_issued");
    out.misses = ms.l2(0).stats().get("misses") - misses_before_last;
    return out;
}

} // namespace

int
main()
{
    std::printf("Fig 2 motivation: interleaved regular (s1) and "
                "repeating irregular (s2) miss streams, 4 passes\n\n");

    GhbPrefetcher ghb(4096, 2);
    const PassResult g = run(ghb, nullptr, 4);
    std::printf("GHB temporal prefetcher: issued=%llu useful=%llu "
                "(accuracy %.0f%%)\n",
                static_cast<unsigned long long>(g.issued),
                static_cast<unsigned long long>(g.useful),
                g.issued ? 100.0 * g.useful / g.issued : 0.0);

    RnrPrefetcher rnr;
    const PassResult r = run(rnr, &rnr, 4);
    std::printf("RnR prefetcher:          issued=%llu useful=%llu "
                "(accuracy %.0f%%)\n\n",
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.useful),
                r.issued ? 100.0 * r.useful / r.issued : 0.0);

    std::printf("GHB keys on single addresses, so 9->12 vs 9->20 "
                "alias and the mixed stream pollutes its history;\n"
                "RnR records s2's exact miss sequence in pass 0 and "
                "replays it verbatim afterwards.\n");
    return 0;
}
