/**
 * @file
 * Section IV-C walk-through: pausing and resuming RnR across a
 * (simulated) context switch.
 *
 * A conventional hardware prefetcher loses its training when the OS
 * migrates a process; RnR's metadata lives in the process's own heap,
 * so a paused replay resumes exactly where it left off after the 87 B
 * of architectural + internal state are restored.  This example pauses
 * the replay mid-iteration, runs an "interloper" access burst (the
 * other process trashing the caches), resumes, and shows that accuracy
 * survives.
 */
#include <cstdio>

#include "core/rnr_prefetcher.h"
#include "core/rnr_runtime.h"
#include "mem/memory_system.h"
#include "sim/rng.h"

int
main()
{
    using namespace rnr;

    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    MemorySystem ms(mcfg);
    RnrPrefetcher pf;
    ms.setPrefetcher(0, &pf);

    std::printf("RnR context-switch state: %llu B (paper: 86.5 B)\n\n",
                static_cast<unsigned long long>(
                    RnrPrefetcher::contextSwitchBytes()));

    // --- Software side: declare the structure and record one pass ---
    const Addr target = 0x10000000;
    const std::uint64_t size = 1 << 20;
    auto ctl = [&](RnrOp op, Addr p0 = 0, std::uint64_t p1 = 0) {
        pf.onControl(TraceRecord::control(op, p0, p1), 0);
    };
    ctl(RnrOp::Init, 0x70000000, 0x71000000);
    ctl(RnrOp::AddrBaseSet, target, size);
    ctl(RnrOp::AddrEnable, target);
    ctl(RnrOp::Start);

    // An irregular but repeatable access sequence.
    Rng rng(9);
    std::vector<Addr> sequence;
    for (int i = 0; i < 2000; ++i)
        sequence.push_back(target + rng.below(size / kBlockSize) *
                                        kBlockSize);
    Tick t = 0;
    for (Addr a : sequence) {
        ms.demandAccess(0, a, false, 1, t);
        t += 400;
    }
    std::printf("recorded %zu misses\n", pf.sequence().size());

    // --- Replay, interrupted by a context switch half way ---
    ms.l2(0).reset();
    ms.l1d(0).reset();
    ctl(RnrOp::Replay);
    std::size_t i = 0;
    for (; i < sequence.size() / 2; ++i) {
        ms.demandAccess(0, sequence[i], false, 1, t);
        t += 40;
    }

    std::printf("pausing at access %zu (state saved to memory)...\n", i);
    pf.onControl(TraceRecord::control(RnrOp::Pause), t);

    // The interloper process floods the caches.
    for (int k = 0; k < 20000; ++k) {
        ms.demandAccess(0, 0x40000000 + Addr(k) * kBlockSize, false, 9,
                        t);
        t += 10;
    }

    std::printf("resuming...\n");
    pf.onControl(TraceRecord::control(RnrOp::Resume), t);
    for (; i < sequence.size(); ++i) {
        ms.demandAccess(0, sequence[i], false, 1, t);
        t += 40;
    }
    ctl(RnrOp::EndState);

    const std::uint64_t useful =
        ms.l2(0).stats().get("prefetch_useful") +
        ms.l2(0).stats().get("demand_merged_into_prefetch");
    const std::uint64_t issued =
        ms.l2(0).stats().get("prefetches_issued");
    std::printf("\nreplay finished: %llu prefetches issued, "
                "%llu useful (%.1f%% accuracy)\n",
                static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(useful),
                issued ? 100.0 * useful / issued : 0.0);
    std::printf("no retraining was needed: the sequence survived the "
                "switch in the process's own heap.\n");
    return 0;
}
