/**
 * @file
 * Prefetcher duel: run any workload/input under every prefetcher in
 * the library and print the paper's headline metrics side by side.
 *
 *   prefetcher_duel [app] [input]
 *   e.g. prefetcher_duel hyperanf com-orkut
 */
#include <cstdio>

#include "harness/metrics.h"
#include "harness/runner.h"
#include "harness/sweep.h"

int
main(int argc, char **argv)
{
    using namespace rnr;

    ExperimentConfig cfg;
    cfg.app = argc > 1 ? argv[1] : "pagerank";
    cfg.input = argc > 2 ? argv[2] : "urand";
    cfg.iterations = 3;

    std::printf("Prefetcher duel: %s on %s (1 record/train + 2 replay "
                "iterations, speedups amortised over %u)\n\n",
                cfg.app.c_str(), cfg.input.c_str(),
                kAmortizedIterations);

    // Enumerate every contender up front and simulate them in parallel;
    // the print loop below reads the warm cache.
    std::vector<ExperimentConfig> cells;
    for (PrefetcherKind kind : allPrefetcherKinds()) {
        if (kind == PrefetcherKind::Droplet && cfg.app == "spcg")
            continue;
        ExperimentConfig c = cfg;
        c.prefetcher = kind;
        if (kind == PrefetcherKind::None) {
            c.control = ReplayControlMode::WindowPace;
            c.window_size = 0;
            c.ideal_llc = false; // mirror runBaseline's normalisation
        }
        cells.push_back(c);
    }
    SweepOptions sweep_opts;
    sweep_opts.label = "duel";
    runSweep(cells, sweep_opts);

    const ExperimentResult base = runBaseline(cfg);
    std::printf("%-13s %8s %9s %9s %8s %9s\n", "prefetcher", "speedup",
                "coverage", "accuracy", "MPKI", "traffic");
    std::printf("%-13s %8s %9s %9s %7.1f %9s\n", "none", "1.00x", "-",
                "-", mpki(base), "-");
    for (PrefetcherKind kind : allPrefetcherKinds()) {
        if (kind == PrefetcherKind::None)
            continue;
        if (kind == PrefetcherKind::Droplet && cfg.app == "spcg")
            continue;
        cfg.prefetcher = kind;
        const ExperimentResult r = runExperiment(cfg);
        std::printf("%-13s %7.2fx %8.1f%% %8.1f%% %7.1f %+8.1f%%\n",
                    toString(kind).c_str(), speedup(r, base),
                    coverage(r, base) * 100, accuracy(r) * 100, mpki(r),
                    trafficOverhead(r, base) * 100);
    }
    return 0;
}
