/**
 * @file
 * Sparse conjugate-gradient solver example: solves A x = b on a
 * 3-D-stencil matrix while simulating the memory system, comparing the
 * solver's wall-cycles without prefetching, with RnR, and with
 * RnR-Combined — the paper's headline spCG use case.
 */
#include <cstdio>

#include "cpu/system.h"
#include "prefetch/factory.h"
#include "workloads/sparse_gen.h"
#include "workloads/spcg.h"

int
main(int argc, char **argv)
{
    using namespace rnr;

    const std::string input = argc > 1 ? argv[1] : "bbmat";
    const unsigned iterations = 8;
    MatrixInput in = makeMatrixInput(input);
    std::printf("spCG on '%s': n=%u, nnz=%llu\n", input.c_str(),
                in.matrix.n,
                static_cast<unsigned long long>(in.matrix.nnz()));

    for (PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Rnr,
          PrefetcherKind::RnrCombined}) {
        WorkloadOptions opts;
        opts.cores = 4;
        SpcgWorkload wl(in.matrix, opts);
        System sys(MachineConfig::scaledDefault());
        std::vector<std::unique_ptr<Prefetcher>> pfs;
        for (unsigned c = 0; c < 4; ++c) {
            pfs.push_back(createPrefetcher(kind));
            sys.mem().setPrefetcher(c, pfs.back().get());
        }

        Tick total = 0;
        std::vector<TraceBuffer> bufs(4);
        for (unsigned it = 0; it < iterations; ++it) {
            for (auto &b : bufs)
                b.clear();
            wl.emitIteration(it, it + 1 == iterations, bufs);
            std::vector<const TraceBuffer *> ptrs;
            for (auto &b : bufs)
                ptrs.push_back(&b);
            total += sys.run(ptrs).cycles();
        }
        std::printf("%-13s: %11llu cycles for %u CG iterations, "
                    "||r||^2 = %.3e\n",
                    toString(kind).c_str(),
                    static_cast<unsigned long long>(total), iterations,
                    wl.residualNorm2());
    }
    std::printf("\nThe residual is identical in every run: prefetching "
                "changes timing, never results.\n");
    return 0;
}
