/**
 * @file
 * Quickstart: simulate PageRank on the urand graph with and without the
 * RnR prefetcher and print the headline numbers (speedup, coverage,
 * accuracy) — a 30-second tour of the library's public API.
 */
#include <cstdio>

#include "harness/metrics.h"
#include "harness/runner.h"

int
main()
{
    using namespace rnr;

    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "urand";
    cfg.iterations = 3; // 1 record + 2 replay iterations

    std::printf("Simulating %s/%s ...\n", cfg.app.c_str(),
                cfg.input.c_str());

    cfg.prefetcher = PrefetcherKind::None;
    const ExperimentResult baseline = runExperiment(cfg);

    cfg.prefetcher = PrefetcherKind::Rnr;
    const ExperimentResult with_rnr = runExperiment(cfg);

    std::printf("baseline cycles/iter (steady): %llu\n",
                static_cast<unsigned long long>(baseline.steady().cycles));
    std::printf("RnR      cycles/iter (steady): %llu\n",
                static_cast<unsigned long long>(with_rnr.steady().cycles));
    std::printf("speedup (amortised over %u iterations): %.2fx\n",
                kAmortizedIterations, speedup(with_rnr, baseline));
    std::printf("miss coverage: %.1f%%   accuracy: %.1f%%\n",
                coverage(with_rnr, baseline) * 100.0,
                accuracy(with_rnr) * 100.0);
    std::printf("metadata storage: %.1f%% of input\n",
                storageOverhead(with_rnr) * 100.0);
    return 0;
}
