/**
 * @file
 * Quickstart: simulate PageRank on the urand graph with and without the
 * RnR prefetcher and print the headline numbers (speedup, coverage,
 * accuracy) — a 30-second tour of the library's public API.
 */
#include <cstdio>

#include "harness/metrics.h"
#include "harness/runner.h"
#include "harness/sweep.h"

int
main()
{
    using namespace rnr;

    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "urand";
    cfg.iterations = 3; // 1 record + 2 replay iterations

    std::printf("Simulating %s/%s ...\n", cfg.app.c_str(),
                cfg.input.c_str());

    // Both cells are independent, so run them as one parallel sweep
    // (RNR_JOBS controls the pool; results land in the shared cache).
    ExperimentConfig rnr_cfg = cfg;
    rnr_cfg.prefetcher = PrefetcherKind::Rnr;
    SweepOptions sweep_opts;
    sweep_opts.label = "quickstart";
    const std::vector<ExperimentResult> results =
        runSweep({cfg, rnr_cfg}, sweep_opts);
    const ExperimentResult &baseline = results[0];
    const ExperimentResult &with_rnr = results[1];

    std::printf("baseline cycles/iter (steady): %llu\n",
                static_cast<unsigned long long>(baseline.steady().cycles));
    std::printf("RnR      cycles/iter (steady): %llu\n",
                static_cast<unsigned long long>(with_rnr.steady().cycles));
    std::printf("speedup (amortised over %u iterations): %.2fx\n",
                kAmortizedIterations, speedup(with_rnr, baseline));
    std::printf("miss coverage: %.1f%%   accuracy: %.1f%%\n",
                coverage(with_rnr, baseline) * 100.0,
                accuracy(with_rnr) * 100.0);
    std::printf("metadata storage: %.1f%% of input\n",
                storageOverhead(with_rnr) * 100.0);
    return 0;
}
