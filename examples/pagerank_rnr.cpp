/**
 * @file
 * Algorithm 1 walk-through: PageRank with the RnR programming interface.
 *
 * Shows the full software side of RnR — init, AddrBase.set/enable, the
 * record iteration, the per-iteration replay with the p_curr/p_next
 * base swap, and teardown — then runs the result on the simulated
 * 4-core machine and reports what the hardware half did with it.
 */
#include <cstdio>

#include "cpu/system.h"
#include "prefetch/factory.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

int
main(int argc, char **argv)
{
    using namespace rnr;

    const std::string input = argc > 1 ? argv[1] : "amazon";
    std::printf("PageRank + RnR on the '%s' graph\n", input.c_str());

    GraphInput in = makeGraphInput(input);
    std::printf("graph: %u vertices, %llu edges\n",
                in.graph.num_vertices,
                static_cast<unsigned long long>(in.graph.numEdges()));

    // The workload plays the role of the annotated application: its
    // emitIteration() places the Table I calls exactly where
    // Algorithm 1 does.
    WorkloadOptions opts;
    opts.cores = 4;
    PageRankWorkload wl(std::move(in.graph), opts);

    System sys(MachineConfig::scaledDefault());
    std::vector<std::unique_ptr<Prefetcher>> pfs;
    for (unsigned c = 0; c < 4; ++c) {
        pfs.push_back(createPrefetcher(PrefetcherKind::Rnr));
        sys.mem().setPrefetcher(c, pfs.back().get());
    }

    const unsigned iterations = 5;
    std::vector<TraceBuffer> bufs(4);
    for (unsigned it = 0; it < iterations; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl.emitIteration(it, it + 1 == iterations, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        const IterationResult r = sys.run(ptrs);
        std::printf("iteration %u (%s): %llu cycles, L1 diff %.3e\n",
                    it, it == 0 ? "record" : "replay",
                    static_cast<unsigned long long>(r.cycles()),
                    wl.lastDiff());
    }

    std::printf("\nPer-core RnR state after the run:\n");
    for (unsigned c = 0; c < 4; ++c) {
        RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c));
        std::printf("  core %u: recorded %llu misses, issued %llu "
                    "prefetches, %llu on time / %llu early / %llu "
                    "late\n",
                    c,
                    static_cast<unsigned long long>(
                        r->stats().get("recorded_misses")),
                    static_cast<unsigned long long>(
                        r->stats().get("issued")),
                    static_cast<unsigned long long>(
                        r->stats().get("pf_ontime")),
                    static_cast<unsigned long long>(
                        r->stats().get("pf_early")),
                    static_cast<unsigned long long>(
                        r->stats().get("pf_late")));
    }

    std::printf("\nTop-5 scaled ranks: ");
    const Graph &g = wl.inGraph();
    std::vector<std::pair<double, std::uint32_t>> top;
    for (std::uint32_t v = 0; v < g.num_vertices; ++v)
        top.emplace_back(wl.rank(v), v);
    std::partial_sort(top.begin(), top.begin() + 5, top.end(),
                      std::greater<>());
    for (int i = 0; i < 5; ++i)
        std::printf("v%u=%.3e ", top[i].second, top[i].first);
    std::printf("\n");
    return 0;
}
