/**
 * @file
 * Trace capture & inspection tool — the ChampSim-style capture-once,
 * replay-many workflow.
 *
 *   trace_tools capture <app> <input> <iteration> <out-prefix>
 *       Emits one .rnrt file per core for the given algorithm
 *       iteration (0 = the record iteration with RnR setup calls).
 *
 *   trace_tools inspect <file.rnrt>
 *       Prints a summary: record counts, instruction count, access-site
 *       histogram and the embedded RnR control calls.
 *
 *   trace_tools rnr-trace [app] [input] [trace.json]
 *       Simulates a small RnR run (default pagerank/urand) with event
 *       tracing enabled, prints the per-window replay diagnostics
 *       report and writes a Perfetto-loadable Chrome trace JSON.
 *       Honours --trace-buf <n> (ring capacity) anywhere in the args.
 */
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "harness/metrics.h"
#include "harness/runner.h"
#include "sim/trace_event.h"
#include "trace/trace_io.h"

using namespace rnr;

namespace {

int
capture(const std::string &app, const std::string &input, unsigned iter,
        const std::string &prefix)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    std::unique_ptr<Workload> wl = makeWorkload(cfg);

    std::vector<TraceBuffer> bufs(wl->cores());
    for (unsigned it = 0; it <= iter; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl->emitIteration(it, false, bufs);
    }
    for (unsigned c = 0; c < wl->cores(); ++c) {
        const std::string path =
            prefix + ".core" + std::to_string(c) + ".rnrt";
        if (!writeTraceFile(path, bufs[c])) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s (%zu records, %llu instructions)\n",
                    path.c_str(), bufs[c].size(),
                    static_cast<unsigned long long>(
                        bufs[c].instructions()));
    }
    return 0;
}

const char *
opName(RnrOp op)
{
    switch (op) {
      case RnrOp::Init: return "RnR.init";
      case RnrOp::AddrBaseSet: return "AddrBase.set";
      case RnrOp::AddrEnable: return "AddrBase.enable";
      case RnrOp::AddrDisable: return "AddrBase.disable";
      case RnrOp::WindowSizeSet: return "WindowSize.set";
      case RnrOp::Start: return "PrefetchState.start";
      case RnrOp::Replay: return "PrefetchState.replay";
      case RnrOp::Pause: return "PrefetchState.pause";
      case RnrOp::Resume: return "PrefetchState.resume";
      case RnrOp::EndState: return "PrefetchState.end";
      case RnrOp::Free: return "RnR.end";
    }
    return "?";
}

int
inspect(const std::string &path)
{
    TraceBuffer buf;
    if (!readTraceFile(path, buf)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }
    std::printf("%s: %zu records\n", path.c_str(), buf.size());
    std::printf("  loads=%llu stores=%llu controls=%llu instrs=%llu\n",
                static_cast<unsigned long long>(buf.loads()),
                static_cast<unsigned long long>(buf.stores()),
                static_cast<unsigned long long>(buf.controls()),
                static_cast<unsigned long long>(buf.instructions()));

    std::map<std::uint32_t, std::uint64_t> sites;
    for (const TraceRecord &r : buf.records()) {
        if (r.kind == RecordKind::Control) {
            std::printf("  control: %s(0x%llx, %llu)\n", opName(r.ctrl),
                        static_cast<unsigned long long>(r.addr),
                        static_cast<unsigned long long>(r.aux));
        } else {
            ++sites[r.pc];
        }
    }
    std::printf("  access sites:\n");
    for (const auto &[pc, n] : sites)
        std::printf("    pc %u: %llu accesses\n", pc,
                    static_cast<unsigned long long>(n));
    return 0;
}

int
rnrTrace(const std::string &app, const std::string &input,
         const std::string &json_out, std::size_t ring_capacity)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    cfg.prefetcher = PrefetcherKind::Rnr;
    cfg.trace.enabled = true;
    cfg.trace.ring_capacity = ring_capacity;

    std::printf("simulating %s with event tracing...\n",
                cfg.key().c_str());
    TraceCollector tr(cfg.cores, ring_capacity);
    const ExperimentResult res = runExperimentTraced(cfg, &tr);

    const ReplayDiagnostics diag = buildReplayDiagnostics(tr);
    std::printf("\nper-window replay diagnostics (all iterations):\n%s",
                formatReplayDiagnostics(diag).c_str());

    // Cross-check the report against the iteration-level Fig 11
    // counters; the emit sites are shared, so this must be exact.
    std::uint64_t ontime = 0, early = 0, late = 0, oow = 0;
    for (const IterStats &it : res.iterations) {
        ontime += it.rnr_ontime;
        early += it.rnr_early;
        late += it.rnr_late;
        oow += it.rnr_out_of_window;
    }
    std::printf("\niteration rnr_* counters: ontime=%llu early=%llu "
                "late=%llu out-of-window=%llu\n",
                static_cast<unsigned long long>(ontime),
                static_cast<unsigned long long>(early),
                static_cast<unsigned long long>(late),
                static_cast<unsigned long long>(oow));
    std::printf("events: %llu collected, %llu lost to ring wrap, "
                "%u tracks\n",
                static_cast<unsigned long long>(tr.eventsTotal()),
                static_cast<unsigned long long>(tr.eventsOverwritten()),
                tr.trackCount());

    if (!json_out.empty()) {
        if (!writeChromeTrace(json_out, tr)) {
            std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
            return 1;
        }
        std::printf("wrote %s (open in ui.perfetto.dev or "
                    "chrome://tracing)\n",
                    json_out.c_str());
    }

    const bool reconciled = diag.total.ontime == ontime &&
                            diag.total.early == early &&
                            diag.total.late == late &&
                            diag.total.out_of_window == oow;
    std::printf("report/counter reconciliation: %s\n",
                reconciled ? "exact" : "MISMATCH");
    return reconciled ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 6 && std::strcmp(argv[1], "capture") == 0)
        return capture(argv[2], argv[3],
                       static_cast<unsigned>(std::atoi(argv[4])),
                       argv[5]);
    if (argc >= 3 && std::strcmp(argv[1], "inspect") == 0)
        return inspect(argv[2]);
    if (argc >= 2 && std::strcmp(argv[1], "rnr-trace") == 0) {
        std::string app = "pagerank", input = "urand";
        std::string out = "rnr_trace.json";
        std::size_t buf = 0;
        std::vector<std::string> pos;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--trace-buf") == 0 && i + 1 < argc)
                buf = static_cast<std::size_t>(std::atoll(argv[++i]));
            else
                pos.emplace_back(argv[i]);
        }
        if (pos.size() > 0)
            app = pos[0];
        if (pos.size() > 1)
            input = pos[1];
        if (pos.size() > 2)
            out = pos[2];
        return rnrTrace(app, input, out, buf);
    }
    std::fprintf(stderr,
                 "usage:\n  %s capture <app> <input> <iter> <prefix>\n"
                 "  %s inspect <file.rnrt>\n"
                 "  %s rnr-trace [app] [input] [trace.json] "
                 "[--trace-buf <events>]\n",
                 argv[0], argv[0], argv[0]);
    return 2;
}
