/**
 * @file
 * Trace capture & inspection tool — the ChampSim-style capture-once,
 * replay-many workflow.
 *
 *   trace_tools capture <app> <input> <iteration> <out-prefix>
 *       Emits one compressed (v2) .rnrt file per core for the given
 *       algorithm iteration (0 = the record iteration with RnR setup
 *       calls).  Pass --v1 for the uncompressed legacy format.  Files
 *       are named <prefix>.c<K>.rnrt, which is exactly the layout
 *       `trace_tools simulate <prefix>` consumes.
 *
 *   trace_tools convert <champsim.trace> <out.rnrt>
 *       Imports a raw (uncompressed) ChampSim instruction trace and
 *       writes it as a v2 trace file runnable via `simulate`.
 *
 *   trace_tools simulate <file-or-prefix> [prefetcher] [iterations]
 *       Replays a trace file (or a `<prefix>.c<K>.rnrt` per-core set)
 *       through the simulator under the given prefetcher (default rnr)
 *       and prints the per-iteration counters.
 *
 *   trace_tools stats <file.rnrt>
 *       Decode-free summary from the v2 footer (or a single streaming
 *       pass for v1 files) plus the compression ratio against the
 *       uncompressed v1 encoding.
 *
 *   trace_tools corpus
 *       Lists the trace store's entries ($RNR_TRACE_DIR).
 *
 *   trace_tools ckpt list|inspect|gc
 *       Checkpoint-store maintenance ($RNR_CKPT_DIR, docs/HARNESS.md
 *       section 17).  `list` summarises every snapshot (key, window,
 *       sections, size); `inspect <file.ckpt>` decodes one snapshot's
 *       header, section table and checksum; `gc` deletes corrupt
 *       snapshots and stale publish temp files, and with
 *       --max-bytes <n> evicts the oldest healthy snapshots until the
 *       store fits the cap.
 *
 *   trace_tools inspect <file.rnrt>
 *       Prints a full decode: record counts, instruction count,
 *       access-site histogram and the embedded RnR control calls.
 *
 *   trace_tools rnr-trace [app] [input] [trace.json]
 *       Simulates a small RnR run (default pagerank/urand) with event
 *       tracing enabled, prints the per-window replay diagnostics
 *       report and writes a Perfetto-loadable Chrome trace JSON.
 *       Honours --trace-buf <n> (ring capacity) anywhere in the args.
 *
 *   trace_tools attrib [app] [input] [prefetcher]
 *       Simulates one cell (default pagerank/urand/rnr) with
 *       prefetch-quality attribution on and prints the rnr-attrib-v1
 *       JSON blob (per-site and per-region outcome tables, pollution
 *       accounting, Fig 11 per-window splits) on stdout.  Exits 0 when
 *       the attribution totals reconcile exactly with the iteration
 *       counters, 1 on a mismatch.  Honours --iterations/--cores.
 *
 *   trace_tools report [app] [input] [out-prefix]
 *       Simulates the no-prefetch baseline and RnR for one workload
 *       with telemetry sampling on and writes <prefix>.json
 *       (rnr-report-v2) plus a self-contained <prefix>.html dashboard
 *       (harness/report.h).  Prefix defaults to $RNR_REPORT_OUT or
 *       "rnr_report"; honours --sample-cycles/--iterations/--cores.
 *
 *   trace_tools farm serve|submit|status|metrics|trace|drain
 *       Client and daemon of the simulation farm (docs/HARNESS.md
 *       sections 15-16).  `serve` runs rnr_farmd's loop in this
 *       binary; `submit` runs a small experiment batch on the daemon
 *       (or in-process with --local) and writes rnr-sweep JSON;
 *       `status` prints daemon-side queue depth and worker occupancy
 *       (--watch auto-refreshes with rate deltas); `metrics` scrapes
 *       the daemon's metrics registry as rnr-metrics-v1 JSON (or
 *       --prometheus text); `trace` runs a span-correlated batch and
 *       merges daemon spans + worker Perfetto traces into one
 *       timeline; `drain` asks the daemon to finish in-flight work
 *       and exit.  Every client subcommand exits 4 when it cannot
 *       reach the daemon socket.
 *
 *   trace_tools help [mode]
 *       This text, or one mode's usage.  Every mode also accepts
 *       --help/-h.  Unknown modes print usage and exit 2.
 *       `help --markdown` prints the mode table as GitHub markdown —
 *       README.md embeds that output verbatim between its
 *       trace_tools-modes markers, and a CI diff test keeps the two
 *       in sync (tests/tools/trace_tools_cli_test.cc).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include <algorithm>
#include <tuple>

#include "ckpt/checkpoint.h"
#include "ckpt/ckpt_store.h"
#include "farm/farm_client.h"
#include "farm/farm_server.h"
#include "farm/farm_trace.h"
#include "farm/farm_worker.h"
#include "harness/metrics.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "sim/attrib.h"
#include "sim/timeseries.h"
#include "sim/trace_event.h"
#include "trace/trace_io.h"
#include "tracestore/champsim_import.h"
#include "tracestore/trace_codec.h"
#include "tracestore/trace_file.h"
#include "tracestore/trace_store.h"
#include "workloads/trace_replay.h"

using namespace rnr;

namespace {

/** Bytes the uncompressed v1 encoding of @p records would occupy. */
std::uint64_t
v1FileBytes(std::uint64_t records)
{
    return 24 + records * 28; // header + packed records
}

int
capture(const std::string &app, const std::string &input, unsigned iter,
        const std::string &prefix, bool v1)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    std::unique_ptr<Workload> wl = makeWorkload(cfg);

    std::vector<TraceBuffer> bufs(wl->cores());
    for (unsigned it = 0; it <= iter; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl->emitIteration(it, false, bufs);
    }
    for (unsigned c = 0; c < wl->cores(); ++c) {
        const std::string path = prefix + ".c" + std::to_string(c) +
                                 ".rnrt";
        const TraceIoResult r = v1 ? writeTraceFile(path, bufs[c])
                                   : writeTraceFileV2(path, bufs[c]);
        if (!r) {
            std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                         r.message().c_str());
            return 1;
        }
        const std::uint64_t disk = traceFileSizeBytes(path);
        std::printf("wrote %s (%zu records, %llu instructions, "
                    "%.1f KiB in memory -> %.1f KiB on disk)\n",
                    path.c_str(), bufs[c].size(),
                    static_cast<unsigned long long>(
                        bufs[c].instructions()),
                    static_cast<double>(bufs[c].memoryBytes()) / 1024.0,
                    static_cast<double>(disk) / 1024.0);
    }
    return 0;
}

int
convert(const std::string &in_path, const std::string &out_path)
{
    TraceBuffer buf;
    ChampSimImportStats stats;
    if (TraceIoResult r = importChampSimTrace(in_path, buf, &stats); !r) {
        std::fprintf(stderr, "cannot import %s: %s\n", in_path.c_str(),
                     r.message().c_str());
        return 1;
    }
    if (TraceIoResult r = writeTraceFileV2(out_path, buf); !r) {
        std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                     r.message().c_str());
        return 1;
    }
    std::printf("imported %s: %llu instructions -> %llu loads, "
                "%llu stores, %llu folded into gaps\n",
                in_path.c_str(),
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.loads),
                static_cast<unsigned long long>(stats.stores),
                static_cast<unsigned long long>(stats.memless));
    std::printf("wrote %s (%zu records, %llu bytes on disk)\n",
                out_path.c_str(), buf.size(),
                static_cast<unsigned long long>(
                    traceFileSizeBytes(out_path)));
    std::printf("run it with: trace_tools simulate %s\n",
                out_path.c_str());
    return 0;
}

int
simulate(const std::string &input, const std::string &prefetcher,
         unsigned iterations)
{
    const unsigned cores = TraceFileWorkload::detectCores(input);
    if (cores == 0) {
        std::fprintf(stderr,
                     "%s: no trace file (nor %s.c0.rnrt) found\n",
                     input.c_str(), input.c_str());
        return 1;
    }
    ExperimentConfig cfg;
    cfg.app = "tracefile";
    cfg.input = input;
    cfg.cores = cores;
    cfg.iterations = iterations;
    try {
        cfg.prefetcher = prefetcherKindFromString(prefetcher);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    std::printf("simulating %s (%u core%s)\n", cfg.key().c_str(), cores,
                cores == 1 ? "" : "s");
    const ExperimentResult res = runExperimentUncached(cfg);
    for (std::size_t i = 0; i < res.iterations.size(); ++i) {
        const IterStats &it = res.iterations[i];
        std::printf("  iter %zu: %llu cycles, %llu instrs, "
                    "%llu L2 misses, %llu prefetches (%llu useful)\n",
                    i, static_cast<unsigned long long>(it.cycles),
                    static_cast<unsigned long long>(it.instructions),
                    static_cast<unsigned long long>(it.l2_demand_misses),
                    static_cast<unsigned long long>(it.pf_issued),
                    static_cast<unsigned long long>(it.pf_useful));
    }
    return 0;
}

int
stats(const std::string &path)
{
    std::uint32_t version = 0;
    if (TraceIoResult r = probeTraceFileVersion(path, version); !r) {
        std::fprintf(stderr, "cannot probe %s: %s\n", path.c_str(),
                     r.message().c_str());
        return 1;
    }
    TraceFileStats s;
    if (TraceIoResult r = readAnyTraceFileStats(path, s); !r) {
        std::fprintf(stderr, "cannot summarise %s: %s\n", path.c_str(),
                     r.message().c_str());
        return 1;
    }
    const std::uint64_t disk = traceFileSizeBytes(path);
    const std::uint64_t v1 = v1FileBytes(s.records);
    std::printf("%s: format v%u\n", path.c_str(), version);
    std::printf("  records=%llu loads=%llu stores=%llu controls=%llu "
                "instructions=%llu\n",
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.loads),
                static_cast<unsigned long long>(s.stores),
                static_cast<unsigned long long>(s.controls),
                static_cast<unsigned long long>(s.instructions));
    std::printf("  address span: 0x%llx .. 0x%llx\n",
                static_cast<unsigned long long>(s.min_addr),
                static_cast<unsigned long long>(s.max_addr));
    std::printf("  on disk: %llu bytes; uncompressed v1 equivalent: "
                "%llu bytes (%.2fx)\n",
                static_cast<unsigned long long>(disk),
                static_cast<unsigned long long>(v1),
                disk ? static_cast<double>(v1) / static_cast<double>(disk)
                     : 0.0);
    return 0;
}

int
corpus()
{
    const std::vector<TraceStore::Entry> entries =
        TraceStore::instance().listEntries();
    std::printf("trace store at %s: %zu entries\n",
                TraceStore::rootPath().c_str(), entries.size());
    std::uint64_t raw = 0, stored = 0;
    for (const TraceStore::Entry &e : entries) {
        std::printf("  %s: %u iter x %u cores, %llu records, "
                    "%.1f MiB raw -> %.1f MiB stored (%.1fx)\n",
                    e.key.c_str(), e.iterations, e.cores,
                    static_cast<unsigned long long>(e.records),
                    static_cast<double>(e.raw_bytes) / (1024.0 * 1024.0),
                    static_cast<double>(e.stored_bytes) /
                        (1024.0 * 1024.0),
                    e.stored_bytes ? static_cast<double>(e.raw_bytes) /
                                         static_cast<double>(
                                             e.stored_bytes)
                                   : 0.0);
        raw += e.raw_bytes;
        stored += e.stored_bytes;
    }
    if (!entries.empty())
        std::printf("total: %.1f MiB raw -> %.1f MiB stored (%.1fx)\n",
                    static_cast<double>(raw) / (1024.0 * 1024.0),
                    static_cast<double>(stored) / (1024.0 * 1024.0),
                    stored ? static_cast<double>(raw) /
                                 static_cast<double>(stored)
                           : 0.0);
    return 0;
}

// ---- ckpt: checkpoint store maintenance (src/ckpt/) ----

int
ckptList()
{
    namespace fs = std::filesystem;
    const std::string root = ckpt::CheckpointStore::rootPath();
    std::error_code ec;
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(root, ec))
        if (e.is_regular_file() && e.path().extension() == ".ckpt")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    std::printf("checkpoint store at %s: %zu snapshot%s\n", root.c_str(),
                files.size(), files.size() == 1 ? "" : "s");
    std::uint64_t total = 0;
    for (const fs::path &p : files) {
        ckpt::SnapshotInfo info;
        const ckpt::CkptIoResult r =
            ckpt::inspectSnapshotFile(p.string(), info);
        if (!r.ok()) {
            std::printf("  %s: CORRUPT (%s)\n",
                        p.filename().string().c_str(),
                        r.message().c_str());
            continue;
        }
        const bool input_only = info.header.full_key.empty();
        std::printf("  %s: %s \"%s\" window %llu, %zu sections, "
                    "%.1f KiB\n",
                    p.filename().string().c_str(),
                    input_only ? "input" : "full",
                    (input_only ? info.header.workload_key
                                : info.header.full_key)
                        .c_str(),
                    static_cast<unsigned long long>(info.header.window),
                    info.sections.size(),
                    static_cast<double>(info.total_bytes) / 1024.0);
        total += info.total_bytes;
    }
    if (!files.empty())
        std::printf("total: %.1f KiB\n",
                    static_cast<double>(total) / 1024.0);
    return 0;
}

int
ckptInspect(const std::string &path)
{
    ckpt::SnapshotInfo info;
    const ckpt::CkptIoResult r = ckpt::inspectSnapshotFile(path, info);
    if (!r.ok()) {
        std::fprintf(stderr, "cannot inspect %s: %s\n", path.c_str(),
                     r.message().c_str());
        return 1;
    }
    std::printf("%s: rnr-ckpt-v1, %llu bytes, checksum 0x%016llx\n",
                path.c_str(),
                static_cast<unsigned long long>(info.total_bytes),
                static_cast<unsigned long long>(info.checksum));
    std::printf("  workload key: %s\n", info.header.workload_key.c_str());
    std::printf("  full key:     %s\n",
                info.header.full_key.empty() ? "(input-only snapshot)"
                                             : info.header.full_key.c_str());
    std::printf("  window:       %llu\n",
                static_cast<unsigned long long>(info.header.window));
    std::printf("  sections:\n");
    for (const ckpt::SectionInfo &s : info.sections)
        std::printf("    %-12s %llu bytes\n",
                    ckpt::toString(
                        static_cast<ckpt::SectionId>(s.id)),
                    static_cast<unsigned long long>(s.bytes));
    return 0;
}

int
ckptGc(std::uint64_t max_bytes)
{
    namespace fs = std::filesystem;
    const std::string root = ckpt::CheckpointStore::rootPath();
    std::error_code ec;
    std::size_t corrupt = 0, stale = 0, evicted = 0;
    // (mtime, bytes, path) per healthy snapshot, oldest evicted first.
    std::vector<std::tuple<fs::file_time_type, std::uint64_t,
                           fs::path>> healthy;
    std::uint64_t total = 0;
    for (const auto &e : fs::directory_iterator(root, ec)) {
        if (!e.is_regular_file())
            continue;
        const std::string name = e.path().filename().string();
        if (name.find(".tmp.") != std::string::npos) {
            // Leftover from a crashed publish; rename never happened.
            fs::remove(e.path(), ec);
            ++stale;
            continue;
        }
        if (e.path().extension() != ".ckpt")
            continue;
        ckpt::SnapshotInfo info;
        if (!ckpt::inspectSnapshotFile(e.path().string(), info).ok()) {
            fs::remove(e.path(), ec);
            ++corrupt;
            continue;
        }
        total += info.total_bytes;
        healthy.emplace_back(fs::last_write_time(e.path(), ec),
                             info.total_bytes, e.path());
    }
    if (max_bytes > 0 && total > max_bytes) {
        std::sort(healthy.begin(), healthy.end());
        for (const auto &[mtime, bytes, path] : healthy) {
            if (total <= max_bytes)
                break;
            fs::remove(path, ec);
            total -= bytes;
            ++evicted;
        }
    }
    std::printf("ckpt gc at %s: removed %zu corrupt, %zu stale temp "
                "file%s, evicted %zu over cap; %.1f KiB kept\n",
                root.c_str(), corrupt, stale, stale == 1 ? "" : "s",
                evicted, static_cast<double>(total) / 1024.0);
    return 0;
}

int
ckptMain(int argc, char **argv)
{
    const std::string sub = argc >= 3 ? argv[2] : "";
    if (sub == "list")
        return ckptList();
    if (sub == "inspect" && argc >= 4)
        return ckptInspect(argv[3]);
    if (sub == "gc") {
        std::uint64_t max_bytes = 0;
        for (int i = 3; i < argc; ++i)
            if (std::strcmp(argv[i], "--max-bytes") == 0 &&
                i + 1 < argc)
                max_bytes = static_cast<std::uint64_t>(
                    std::atoll(argv[++i]));
        return ckptGc(max_bytes);
    }
    std::fprintf(stderr,
                 "usage: %s ckpt list | inspect <file.ckpt> | "
                 "gc [--max-bytes <n>]\n",
                 argv[0]);
    return 2;
}

const char *
opName(RnrOp op)
{
    switch (op) {
      case RnrOp::Init: return "RnR.init";
      case RnrOp::AddrBaseSet: return "AddrBase.set";
      case RnrOp::AddrEnable: return "AddrBase.enable";
      case RnrOp::AddrDisable: return "AddrBase.disable";
      case RnrOp::WindowSizeSet: return "WindowSize.set";
      case RnrOp::Start: return "PrefetchState.start";
      case RnrOp::Replay: return "PrefetchState.replay";
      case RnrOp::Pause: return "PrefetchState.pause";
      case RnrOp::Resume: return "PrefetchState.resume";
      case RnrOp::EndState: return "PrefetchState.end";
      case RnrOp::Free: return "RnR.end";
    }
    return "?";
}

int
inspect(const std::string &path)
{
    TraceBuffer buf;
    if (TraceIoResult r = readAnyTraceFile(path, buf); !r) {
        std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                     r.message().c_str());
        return 1;
    }
    std::printf("%s: %zu records\n", path.c_str(), buf.size());
    std::printf("  loads=%llu stores=%llu controls=%llu instrs=%llu\n",
                static_cast<unsigned long long>(buf.loads()),
                static_cast<unsigned long long>(buf.stores()),
                static_cast<unsigned long long>(buf.controls()),
                static_cast<unsigned long long>(buf.instructions()));

    std::map<std::uint32_t, std::uint64_t> sites;
    for (const TraceRecord &r : buf.records()) {
        if (r.kind == RecordKind::Control) {
            std::printf("  control: %s(0x%llx, %llu)\n", opName(r.ctrl),
                        static_cast<unsigned long long>(r.addr),
                        static_cast<unsigned long long>(r.aux));
        } else {
            ++sites[r.pc];
        }
    }
    std::printf("  access sites:\n");
    for (const auto &[pc, n] : sites)
        std::printf("    pc %u: %llu accesses\n", pc,
                    static_cast<unsigned long long>(n));
    return 0;
}

int
rnrTrace(const std::string &app, const std::string &input,
         const std::string &json_out, std::size_t ring_capacity)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    cfg.prefetcher = PrefetcherKind::Rnr;
    cfg.trace.enabled = true;
    cfg.trace.ring_capacity = ring_capacity;

    std::printf("simulating %s with event tracing...\n",
                cfg.key().c_str());
    TraceCollector tr(cfg.cores, ring_capacity);
    const ExperimentResult res = runExperimentTraced(cfg, &tr);

    const ReplayDiagnostics diag = buildReplayDiagnostics(tr);
    std::printf("\nper-window replay diagnostics (all iterations):\n%s",
                formatReplayDiagnostics(diag).c_str());

    // Cross-check the report against the iteration-level Fig 11
    // counters; the emit sites are shared, so this must be exact.
    std::uint64_t ontime = 0, early = 0, late = 0, oow = 0;
    for (const IterStats &it : res.iterations) {
        ontime += it.rnr_ontime;
        early += it.rnr_early;
        late += it.rnr_late;
        oow += it.rnr_out_of_window;
    }
    std::printf("\niteration rnr_* counters: ontime=%llu early=%llu "
                "late=%llu out-of-window=%llu\n",
                static_cast<unsigned long long>(ontime),
                static_cast<unsigned long long>(early),
                static_cast<unsigned long long>(late),
                static_cast<unsigned long long>(oow));
    std::printf("events: %llu collected, %llu lost to ring wrap, "
                "%u tracks\n",
                static_cast<unsigned long long>(tr.eventsTotal()),
                static_cast<unsigned long long>(tr.eventsOverwritten()),
                tr.trackCount());

    if (!json_out.empty()) {
        if (!writeChromeTrace(json_out, tr)) {
            std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
            return 1;
        }
        std::printf("wrote %s (open in ui.perfetto.dev or "
                    "chrome://tracing)\n",
                    json_out.c_str());
    }

    const bool reconciled = diag.total.ontime == ontime &&
                            diag.total.early == early &&
                            diag.total.late == late &&
                            diag.total.out_of_window == oow;
    std::printf("report/counter reconciliation: %s\n",
                reconciled ? "exact" : "MISMATCH");
    return reconciled ? 0 : 1;
}

int
report(const std::string &app, const std::string &input,
       const std::string &prefix, Tick sample_cycles, unsigned iterations,
       unsigned cores)
{
    ExperimentConfig base;
    base.app = app;
    base.input = input;
    base.prefetcher = PrefetcherKind::None;
    if (iterations)
        base.iterations = iterations;
    if (cores)
        base.cores = cores;
    ExperimentConfig rnr_cfg = base;
    rnr_cfg.prefetcher = PrefetcherKind::Rnr;

    std::printf("building report for %s/%s (baseline + rnr)...\n",
                app.c_str(), input.c_str());
    const SweepReport rep = buildSweepReport(
        {base, rnr_cfg}, app + "/" + input, sample_cycles);

    if (!writeReport(prefix, rep)) {
        std::fprintf(stderr, "failed to write %s.{json,html}\n",
                     prefix.c_str());
        return 1;
    }
    std::size_t series = 0, hists = 0;
    for (const ReportCell &c : rep.cells)
        if (c.result.telemetry) {
            series += c.result.telemetry->series.size();
            hists += c.result.telemetry->histograms.size();
        }
    std::printf("wrote %s.json and %s.html (%zu cells, %zu series, "
                "%zu histograms, sampled every %llu cycles)\n",
                prefix.c_str(), prefix.c_str(), rep.cells.size(), series,
                hists,
                static_cast<unsigned long long>(rep.sample_cycles));
    return 0;
}

int
attribCmd(const std::string &app, const std::string &input,
          const std::string &pf_name, unsigned iterations, unsigned cores)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    try {
        cfg.prefetcher = prefetcherKindFromString(pf_name);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "attrib: %s\n", e.what());
        return 2;
    }
    if (iterations)
        cfg.iterations = iterations;
    if (cores)
        cfg.cores = cores;

    std::fprintf(stderr, "simulating %s with attribution...\n",
                 cfg.key().c_str());
    AttribCollector at;
    const ExperimentResult res =
        runExperimentAttributed(cfg, nullptr, nullptr, &at);
    const AttribBlob &ab = *res.attrib;

    // The stdout contract: exactly one line, the rnr-attrib-v1 object
    // (tests/tools/trace_tools_cli_test.cc parses it).  Flush before
    // the stderr verdict so a merged 2>&1 capture can't interleave the
    // verdict into the middle of the (pipe-buffered) JSON line.
    std::printf("%s\n", attribJson(ab).c_str());
    std::fflush(stdout);

    // Cross-check against the iteration-level counters; the hooks sit
    // on the exact counter-bump lines, so this must be exact.
    std::uint64_t issued = 0, useful = 0, merged = 0;
    std::uint64_t ontime = 0, early = 0, late = 0, oow = 0;
    for (const IterStats &it : res.iterations) {
        issued += it.pf_issued;
        useful += it.pf_useful;
        merged += it.pf_late_merged;
        ontime += it.rnr_ontime;
        early += it.rnr_early;
        late += it.rnr_late;
        oow += it.rnr_out_of_window;
    }
    const bool reconciled =
        ab.totals.issued == issued && ab.totals.useful == useful &&
        ab.totals.late_merged == merged && ab.rnr_ontime == ontime &&
        ab.rnr_early == early && ab.rnr_late == late &&
        ab.rnr_out_of_window == oow;
    std::fprintf(stderr, "attrib/counter reconciliation: %s\n",
                 reconciled ? "exact" : "MISMATCH");
    return reconciled ? 0 : 1;
}

// ---- farm: client and daemon of the simulation farm ----

/** Exit code for "cannot reach the daemon socket" — distinct from the
 *  generic 1 so scripts can tell "daemon not running" from "batch
 *  failed" (tests/tools/trace_tools_cli_test.cc pins it). */
constexpr int kFarmConnectExit = 4;

int
farmServe(int argc, char **argv)
{
    FarmOptions opts = FarmOptions::fromEnv();
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--socket" && v) {
            opts.socket_path = v;
            ++i;
        } else if (arg == "--workers" && v && std::atoi(v) > 0) {
            opts.workers = static_cast<unsigned>(std::atoi(v));
            ++i;
        } else if (arg == "--timeout-sec" && v && std::atof(v) > 0) {
            opts.timeout_sec = std::atof(v);
            ++i;
        } else {
            std::fprintf(stderr, "farm serve: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    FarmServer server(opts);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "farm serve: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "farm serve: listening on %s (%u workers, %.0fs cell "
                 "timeout)\n",
                 server.options().socket_path.c_str(),
                 server.options().workers,
                 server.options().timeout_sec);
    return server.serve();
}

int
farmSubmit(int argc, char **argv)
{
    std::string socket = FarmOptions::fromEnv().socket_path;
    std::string json, label = "farm-submit";
    std::string app = "pagerank", input = "urand";
    std::string prefetchers = "none,nextline,stride,rnr";
    unsigned iterations = 0, cores = 0;
    bool local = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--local") {
            local = true;
        } else if (arg == "--socket" && v) {
            socket = v;
            ++i;
        } else if (arg == "--json" && v) {
            json = v;
            ++i;
        } else if (arg == "--label" && v) {
            label = v;
            ++i;
        } else if (arg == "--app" && v) {
            app = v;
            ++i;
        } else if (arg == "--input" && v) {
            input = v;
            ++i;
        } else if (arg == "--prefetchers" && v) {
            prefetchers = v;
            ++i;
        } else if (arg == "--iterations" && v && std::atoi(v) > 0) {
            iterations = static_cast<unsigned>(std::atoi(v));
            ++i;
        } else if (arg == "--cores" && v && std::atoi(v) > 0) {
            cores = static_cast<unsigned>(std::atoi(v));
            ++i;
        } else {
            std::fprintf(stderr, "farm submit: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    std::vector<ExperimentConfig> cells;
    std::stringstream ss(prefetchers);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.input = input;
        try {
            cfg.prefetcher = prefetcherKindFromString(name);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "farm submit: %s\n", e.what());
            return 2;
        }
        if (iterations)
            cfg.iterations = iterations;
        if (cores)
            cfg.cores = cores;
        cells.push_back(cfg);
    }
    if (cells.empty()) {
        std::fprintf(stderr, "farm submit: no cells\n");
        return 2;
    }

    SweepOptions opts;
    opts.label = label;
    opts.json_out = json;
    opts.farm = local ? "" : socket;
#ifndef _WIN32
    if (local) // --local means in-process even if $RNR_FARM is set
        unsetenv("RNR_FARM");
#endif

    if (!local) {
        // Probe the socket before building the sweep so a missing
        // daemon is a typed one-liner + exit 4, not a mid-run throw.
        FarmClient probe;
        std::string error;
        if (!probe.connect(socket, &error)) {
            std::fprintf(stderr, "farm submit: %s\n", error.c_str());
            return kFarmConnectExit;
        }
    }

    SweepRunner runner(opts);
    runner.add(cells);
    try {
        runner.run();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "farm submit: %s\n", e.what());
        return 1;
    }
    const SweepStats &st = runner.stats();
    std::printf("farm submit: %zu cells, %zu simulated, %zu cached, "
                "%zu poisoned\n",
                st.cells, st.simulated, st.cache_hits, st.poisoned);
    return st.poisoned > 0 ? 3 : 0;
}

int
farmStatusOrDrain(int argc, char **argv, bool drain)
{
    std::string socket = FarmOptions::fromEnv().socket_path;
    bool watch = false;
    double interval = 2.0;
    unsigned count = 0; // 0 = until interrupted
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--socket" && v) {
            socket = v;
            ++i;
        } else if (!drain && arg == "--watch") {
            watch = true;
        } else if (!drain && arg == "--interval" && v &&
                   std::atof(v) > 0) {
            interval = std::atof(v);
            ++i;
        } else if (!drain && arg == "--count" && v && std::atoi(v) > 0) {
            count = static_cast<unsigned>(std::atoi(v));
            ++i;
        } else {
            std::fprintf(stderr, "farm %s: bad argument '%s'\n",
                         drain ? "drain" : "status", arg.c_str());
            return 2;
        }
    }
    FarmClient client;
    std::string error;
    if (!client.connect(socket, &error)) {
        std::fprintf(stderr, "farm %s: %s\n",
                     drain ? "drain" : "status", error.c_str());
        return kFarmConnectExit;
    }
    if (drain) {
        if (!client.drain(&error)) {
            std::fprintf(stderr, "farm drain: %s\n", error.c_str());
            return 1;
        }
        std::printf("farm drain: daemon drained and exiting\n");
        return 0;
    }
    FarmStatus prev;
    bool have_prev = false;
    for (unsigned tick = 0; !watch || count == 0 || tick < count;
         ++tick) {
        if (tick > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval));
        FarmStatus st;
        if (!client.status(st, &error)) {
            std::fprintf(stderr, "farm status: %s\n", error.c_str());
            return 1;
        }
        std::string line = formatFarmStatus(st);
        if (have_prev) {
            // Rate deltas against the previous tick, so a glance at
            // the watch shows throughput, not just totals.
            char delta[128];
            std::snprintf(delta, sizeof(delta),
                          " | +%llu done (%.1f/s), +%llu simulated, "
                          "+%llu cached",
                          static_cast<unsigned long long>(st.done -
                                                          prev.done),
                          static_cast<double>(st.done - prev.done) /
                              interval,
                          static_cast<unsigned long long>(
                              st.simulated - prev.simulated),
                          static_cast<unsigned long long>(st.cached -
                                                          prev.cached));
            line += delta;
        }
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
        if (!watch)
            break;
        prev = st;
        have_prev = true;
    }
    return 0;
}

int
farmMetricsCmd(int argc, char **argv)
{
    std::string socket = FarmOptions::fromEnv().socket_path;
    bool prometheus = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--socket" && v) {
            socket = v;
            ++i;
        } else if (arg == "--prometheus") {
            prometheus = true;
        } else {
            std::fprintf(stderr, "farm metrics: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    FarmClient client;
    std::string error;
    if (!client.connect(socket, &error)) {
        std::fprintf(stderr, "farm metrics: %s\n", error.c_str());
        return kFarmConnectExit;
    }
    std::string out;
    if (!client.metrics(out, &error, prometheus)) {
        std::fprintf(stderr, "farm metrics: %s\n", error.c_str());
        return 1;
    }
    std::printf("%s", out.c_str());
    if (out.empty() || out.back() != '\n')
        std::printf("\n");
    return 0;
}

int
farmTraceCmd(int argc, char **argv)
{
    std::string socket = FarmOptions::fromEnv().socket_path;
    std::string dir = "rnr_farm_trace";
    std::string out = "rnr_farm_trace.json";
    std::string app = "pagerank", input = "urand";
    std::string prefetchers = "none,rnr";
    unsigned iterations = 0, cores = 0;
    bool merge_only = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--socket" && v) {
            socket = v;
            ++i;
        } else if (arg == "--dir" && v) {
            dir = v;
            ++i;
        } else if (arg == "--out" && v) {
            out = v;
            ++i;
        } else if (arg == "--app" && v) {
            app = v;
            ++i;
        } else if (arg == "--input" && v) {
            input = v;
            ++i;
        } else if (arg == "--prefetchers" && v) {
            prefetchers = v;
            ++i;
        } else if (arg == "--iterations" && v && std::atoi(v) > 0) {
            iterations = static_cast<unsigned>(std::atoi(v));
            ++i;
        } else if (arg == "--cores" && v && std::atoi(v) > 0) {
            cores = static_cast<unsigned>(std::atoi(v));
            ++i;
        } else if (arg == "--merge-only") {
            merge_only = true;
        } else {
            std::fprintf(stderr, "farm trace: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    std::string error;
    if (!merge_only) {
        std::vector<ExperimentConfig> cells;
        std::stringstream ss(prefetchers);
        std::string name;
        while (std::getline(ss, name, ',')) {
            if (name.empty())
                continue;
            ExperimentConfig cfg;
            cfg.app = app;
            cfg.input = input;
            try {
                cfg.prefetcher = prefetcherKindFromString(name);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "farm trace: %s\n", e.what());
                return 2;
            }
            if (iterations)
                cfg.iterations = iterations;
            if (cores)
                cfg.cores = cores;
            cells.push_back(cfg);
        }
        if (cells.empty()) {
            std::fprintf(stderr, "farm trace: no cells\n");
            return 2;
        }

        FarmClient client;
        if (!client.connect(socket, &error)) {
            std::fprintf(stderr, "farm trace: %s\n", error.c_str());
            return kFarmConnectExit;
        }
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        // Absolute: the daemon and its workers append span artifacts
        // from their own working directory.
        dir = std::filesystem::absolute(dir, ec).string();
        if (!client.submit(cells, {}, &error, dir)) {
            std::fprintf(stderr, "farm trace: %s\n", error.c_str());
            return 1;
        }
        std::size_t received = 0, poisoned = 0;
        while (received < cells.size()) {
            FarmClient::Reply reply;
            if (!client.next(reply, &error)) {
                std::fprintf(stderr, "farm trace: %s\n", error.c_str());
                return 1;
            }
            if (reply.batch_done)
                continue;
            ++received;
            if (reply.outcome.status == CellOutcome::Status::Poisoned)
                ++poisoned;
        }
        std::printf("farm trace: %zu cells executed (%zu poisoned), "
                    "span artifacts in %s\n",
                    received, poisoned, dir.c_str());
    }

    if (!mergeFarmTrace(dir, out, &error)) {
        std::fprintf(stderr, "farm trace: %s\n", error.c_str());
        return 1;
    }
    std::printf("farm trace: wrote merged timeline %s "
                "(load in ui.perfetto.dev)\n",
                out.c_str());
    return 0;
}

int
farmMain(int argc, char **argv)
{
    const std::string sub = argc >= 3 ? argv[2] : "";
    if (sub == "serve")
        return farmServe(argc, argv);
    if (sub == "submit")
        return farmSubmit(argc, argv);
    if (sub == "status")
        return farmStatusOrDrain(argc, argv, false);
    if (sub == "metrics")
        return farmMetricsCmd(argc, argv);
    if (sub == "trace")
        return farmTraceCmd(argc, argv);
    if (sub == "drain")
        return farmStatusOrDrain(argc, argv, true);
    std::fprintf(stderr,
                 "usage: %s farm serve|submit|status|metrics|trace|"
                 "drain [options]\n",
                 argv[0]);
    return 2;
}

// ---- Mode registry: one row per mode, shared by usage and `help` ----

struct ModeHelp {
    const char *name;
    const char *usage; ///< Arguments, without the program/mode prefix.
    const char *what;  ///< One-line description.
};

constexpr ModeHelp kModes[] = {
    {"capture", "<app> <input> <iter> <prefix> [--v1]",
     "record one algorithm iteration as per-core .rnrt trace files"},
    {"convert", "<champsim.trace> <out.rnrt>",
     "import a raw ChampSim instruction trace as a v2 trace file"},
    {"simulate", "<file-or-prefix> [prefetcher] [iters]",
     "replay a trace file through the simulator and print counters"},
    {"stats", "<file.rnrt>",
     "decode-free trace file summary and compression ratio"},
    {"corpus", "",
     "list the trace store's entries ($RNR_TRACE_DIR)"},
    {"ckpt", "list|inspect|gc [<file.ckpt>] [--max-bytes <n>]",
     "checkpoint store: list snapshots, decode one, sweep corrupt/"
     "stale files"},
    {"inspect", "<file.rnrt>",
     "full decode: record counts, access sites, RnR control calls"},
    {"rnr-trace", "[app] [input] [trace.json] [--trace-buf <events>]",
     "traced RnR run: replay diagnostics + Chrome trace JSON"},
    {"attrib", "[app] [input] [prefetcher] [--iterations <n>] "
               "[--cores <n>]",
     "attributed run: rnr-attrib-v1 JSON (per-site/per-region tables, "
     "pollution); exits 1 on counter mismatch"},
    {"report", "[app] [input] [out-prefix] [--sample-cycles <n>] "
               "[--iterations <n>] [--cores <n>]",
     "telemetry report: <prefix>.json + self-contained <prefix>.html"},
    {"farm", "serve|submit|status|metrics|trace|drain "
             "[--socket <path>] [options]",
     "simulation farm: daemon, batches, status/metrics, span-merged "
     "traces"},
    {"help", "[mode]",
     "print this overview, or one mode's usage"},
};

const ModeHelp *
findMode(const char *name)
{
    for (const ModeHelp &m : kModes)
        if (std::strcmp(m.name, name) == 0)
            return &m;
    return nullptr;
}

int
printUsage(std::FILE *to, const char *prog)
{
    std::fprintf(to, "usage:\n");
    for (const ModeHelp &m : kModes)
        std::fprintf(to, "  %s %s %s\n", prog, m.name, m.usage);
    std::fprintf(to, "run '%s help <mode>' for what each mode does\n",
                 prog);
    return to == stderr ? 2 : 0;
}

int
printModeHelp(const char *prog, const ModeHelp &m)
{
    std::printf("usage: %s %s %s\n%s\n", prog, m.name, m.usage, m.what);
    return 0;
}

/** `help --markdown`: the mode table as GitHub markdown, generated
 *  from kModes so README.md's copy can never drift from the registry
 *  (the CLI diff test compares the two byte-for-byte). */
int
printMarkdownTable()
{
    std::printf("| Mode | Arguments | Description |\n");
    std::printf("|---|---|---|\n");
    for (const ModeHelp &m : kModes)
        std::printf("| `%s` | %s%s%s | %s |\n", m.name,
                    m.usage[0] ? "`" : "", m.usage,
                    m.usage[0] ? "`" : "", m.what);
    return 0;
}

bool
wantsHelp(int argc, char **argv)
{
    for (int i = 2; i < argc; ++i)
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    // The farm daemon execs this binary as a worker process; the hook
    // is a no-op for every normal invocation (farm/farm_worker.h).
    farmWorkerMaybeExec(argc, argv);
    if (argc >= 2) {
        // `help [mode]`, `--help` and `-h` all land here; a known mode
        // followed by --help/-h prints that mode's usage below.
        if (std::strcmp(argv[1], "help") == 0 ||
            std::strcmp(argv[1], "--help") == 0 ||
            std::strcmp(argv[1], "-h") == 0) {
            if (argc >= 3) {
                if (std::strcmp(argv[2], "--markdown") == 0)
                    return printMarkdownTable();
                if (const ModeHelp *m = findMode(argv[2]))
                    return printModeHelp(argv[0], *m);
            }
            return printUsage(stdout, argv[0]);
        }
        if (const ModeHelp *m = findMode(argv[1])) {
            if (wantsHelp(argc, argv))
                return printModeHelp(argv[0], *m);
        } else {
            return printUsage(stderr, argv[0]);
        }
    }
    if (argc >= 6 && std::strcmp(argv[1], "capture") == 0) {
        bool v1 = false;
        std::vector<std::string> pos;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--v1") == 0)
                v1 = true;
            else
                pos.emplace_back(argv[i]);
        }
        if (pos.size() >= 4)
            return capture(pos[0], pos[1],
                           static_cast<unsigned>(std::atoi(
                               pos[2].c_str())),
                           pos[3], v1);
    }
    if (argc >= 4 && std::strcmp(argv[1], "convert") == 0)
        return convert(argv[2], argv[3]);
    if (argc >= 3 && std::strcmp(argv[1], "simulate") == 0) {
        const std::string pf = argc >= 4 ? argv[3] : "rnr";
        const unsigned iters =
            argc >= 5 ? static_cast<unsigned>(std::atoi(argv[4])) : 3;
        return simulate(argv[2], pf, iters);
    }
    if (argc >= 3 && std::strcmp(argv[1], "stats") == 0)
        return stats(argv[2]);
    if (argc >= 2 && std::strcmp(argv[1], "farm") == 0)
        return farmMain(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "corpus") == 0)
        return corpus();
    if (argc >= 2 && std::strcmp(argv[1], "ckpt") == 0)
        return ckptMain(argc, argv);
    if (argc >= 3 && std::strcmp(argv[1], "inspect") == 0)
        return inspect(argv[2]);
    if (argc >= 2 && std::strcmp(argv[1], "rnr-trace") == 0) {
        std::string app = "pagerank", input = "urand";
        std::string out = "rnr_trace.json";
        std::size_t buf = 0;
        std::vector<std::string> pos;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--trace-buf") == 0 && i + 1 < argc)
                buf = static_cast<std::size_t>(std::atoll(argv[++i]));
            else
                pos.emplace_back(argv[i]);
        }
        if (pos.size() > 0)
            app = pos[0];
        if (pos.size() > 1)
            input = pos[1];
        if (pos.size() > 2)
            out = pos[2];
        return rnrTrace(app, input, out, buf);
    }
    if (argc >= 2 && std::strcmp(argv[1], "attrib") == 0) {
        std::string app = "pagerank", input = "urand", pf = "rnr";
        unsigned iterations = 0, cores = 0;
        std::vector<std::string> pos;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--iterations") == 0 &&
                i + 1 < argc)
                iterations =
                    static_cast<unsigned>(std::atoi(argv[++i]));
            else if (std::strcmp(argv[i], "--cores") == 0 &&
                     i + 1 < argc)
                cores = static_cast<unsigned>(std::atoi(argv[++i]));
            else
                pos.emplace_back(argv[i]);
        }
        if (pos.size() > 3 ||
            (!pos.empty() && pos.back().rfind("--", 0) == 0)) {
            const ModeHelp *m = findMode("attrib");
            std::fprintf(stderr, "usage: %s %s %s\n", argv[0], m->name,
                         m->usage);
            return 2;
        }
        if (pos.size() > 0)
            app = pos[0];
        if (pos.size() > 1)
            input = pos[1];
        if (pos.size() > 2)
            pf = pos[2];
        return attribCmd(app, input, pf, iterations, cores);
    }
    if (argc >= 2 && std::strcmp(argv[1], "report") == 0) {
        std::string app = "pagerank", input = "urand";
        std::string prefix = reportEnvOutPrefix();
        if (prefix.empty())
            prefix = "rnr_report";
        Tick sample_cycles = 0;
        unsigned iterations = 0, cores = 0;
        std::vector<std::string> pos;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--sample-cycles") == 0 &&
                i + 1 < argc)
                sample_cycles =
                    static_cast<Tick>(std::atoll(argv[++i]));
            else if (std::strcmp(argv[i], "--iterations") == 0 &&
                     i + 1 < argc)
                iterations =
                    static_cast<unsigned>(std::atoi(argv[++i]));
            else if (std::strcmp(argv[i], "--cores") == 0 &&
                     i + 1 < argc)
                cores = static_cast<unsigned>(std::atoi(argv[++i]));
            else
                pos.emplace_back(argv[i]);
        }
        if (pos.size() > 0)
            app = pos[0];
        if (pos.size() > 1)
            input = pos[1];
        if (pos.size() > 2)
            prefix = pos[2];
        return report(app, input, prefix, sample_cycles, iterations,
                      cores);
    }
    // A known mode with the wrong arity falls through to here.
    return printUsage(stderr, argv[0]);
}
