/**
 * @file
 * Trace capture & inspection tool — the ChampSim-style capture-once,
 * replay-many workflow.
 *
 *   trace_tools capture <app> <input> <iteration> <out-prefix>
 *       Emits one .rnrt file per core for the given algorithm
 *       iteration (0 = the record iteration with RnR setup calls).
 *
 *   trace_tools inspect <file.rnrt>
 *       Prints a summary: record counts, instruction count, access-site
 *       histogram and the embedded RnR control calls.
 */
#include <cstdio>
#include <cstring>
#include <map>

#include "harness/runner.h"
#include "trace/trace_io.h"

using namespace rnr;

namespace {

int
capture(const std::string &app, const std::string &input, unsigned iter,
        const std::string &prefix)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    std::unique_ptr<Workload> wl = makeWorkload(cfg);

    std::vector<TraceBuffer> bufs(wl->cores());
    for (unsigned it = 0; it <= iter; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl->emitIteration(it, false, bufs);
    }
    for (unsigned c = 0; c < wl->cores(); ++c) {
        const std::string path =
            prefix + ".core" + std::to_string(c) + ".rnrt";
        if (!writeTraceFile(path, bufs[c])) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s (%zu records, %llu instructions)\n",
                    path.c_str(), bufs[c].size(),
                    static_cast<unsigned long long>(
                        bufs[c].instructions()));
    }
    return 0;
}

const char *
opName(RnrOp op)
{
    switch (op) {
      case RnrOp::Init: return "RnR.init";
      case RnrOp::AddrBaseSet: return "AddrBase.set";
      case RnrOp::AddrEnable: return "AddrBase.enable";
      case RnrOp::AddrDisable: return "AddrBase.disable";
      case RnrOp::WindowSizeSet: return "WindowSize.set";
      case RnrOp::Start: return "PrefetchState.start";
      case RnrOp::Replay: return "PrefetchState.replay";
      case RnrOp::Pause: return "PrefetchState.pause";
      case RnrOp::Resume: return "PrefetchState.resume";
      case RnrOp::EndState: return "PrefetchState.end";
      case RnrOp::Free: return "RnR.end";
    }
    return "?";
}

int
inspect(const std::string &path)
{
    TraceBuffer buf;
    if (!readTraceFile(path, buf)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }
    std::printf("%s: %zu records\n", path.c_str(), buf.size());
    std::printf("  loads=%llu stores=%llu controls=%llu instrs=%llu\n",
                static_cast<unsigned long long>(buf.loads()),
                static_cast<unsigned long long>(buf.stores()),
                static_cast<unsigned long long>(buf.controls()),
                static_cast<unsigned long long>(buf.instructions()));

    std::map<std::uint32_t, std::uint64_t> sites;
    for (const TraceRecord &r : buf.records()) {
        if (r.kind == RecordKind::Control) {
            std::printf("  control: %s(0x%llx, %llu)\n", opName(r.ctrl),
                        static_cast<unsigned long long>(r.addr),
                        static_cast<unsigned long long>(r.aux));
        } else {
            ++sites[r.pc];
        }
    }
    std::printf("  access sites:\n");
    for (const auto &[pc, n] : sites)
        std::printf("    pc %u: %llu accesses\n", pc,
                    static_cast<unsigned long long>(n));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 6 && std::strcmp(argv[1], "capture") == 0)
        return capture(argv[2], argv[3],
                       static_cast<unsigned>(std::atoi(argv[4])),
                       argv[5]);
    if (argc >= 3 && std::strcmp(argv[1], "inspect") == 0)
        return inspect(argv[2]);
    std::fprintf(stderr,
                 "usage:\n  %s capture <app> <input> <iter> <prefix>\n"
                 "  %s inspect <file.rnrt>\n",
                 argv[0], argv[0]);
    return 2;
}
