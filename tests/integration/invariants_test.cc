/**
 * @file
 * Cross-module invariants checked over randomized runs:
 *  - timing sanity (completions never precede requests; iteration times
 *    are monotone in issue width),
 *  - conservation (every DRAM byte is attributed to exactly one origin;
 *    prefetch counters balance),
 *  - semantic transparency (prefetchers never change workload results).
 */
#include <gtest/gtest.h>

#include "cpu/system.h"
#include "sim/rng.h"
#include "test_util.h"
#include "workloads/jacobi.h"
#include "workloads/labelprop.h"
#include "workloads/graph_gen.h"
#include "workloads/sparse_gen.h"

namespace rnr {
namespace {

TEST(InvariantsTest, CompletionNeverPrecedesRequest)
{
    MemorySystem ms(test::tinyMachine());
    Rng rng(5);
    Tick now = 0;
    for (int i = 0; i < 50000; ++i) {
        const Addr a = 0x1000000 + rng.below(1 << 18) * 8;
        const bool write = rng.below(4) == 0;
        const DemandResult r = ms.demandAccess(0, a, write, 1, now);
        ASSERT_GE(r.done, now);
        now += rng.below(20);
    }
}

TEST(InvariantsTest, DramBytesPartitionByOrigin)
{
    MachineConfig m = test::tinyMachine();
    System sys(m);
    WorkloadOptions o;
    o.cores = 1;
    LabelPropWorkload wl(makeUrandGraph(4096, 8, 51), o);
    auto pfs = test::attachPrefetchers(sys, PrefetcherKind::RnrCombined,
                                       {}, &wl);
    test::runWorkload(sys, wl, 3);

    const Dram &d = sys.mem().dram();
    const std::uint64_t sum = d.bytes(ReqOrigin::Demand) +
                              d.bytes(ReqOrigin::Prefetch) +
                              d.bytes(ReqOrigin::Metadata) +
                              d.bytes(ReqOrigin::Writeback);
    EXPECT_EQ(sum, d.totalBytes());
    EXPECT_EQ(d.totalBytes(),
              (d.stats().get("reads") + d.stats().get("writes")) *
                  kBlockSize);
}

TEST(InvariantsTest, PrefetchCountersBalance)
{
    MachineConfig m = test::tinyMachine();
    System sys(m);
    WorkloadOptions o;
    o.cores = 1;
    LabelPropWorkload wl(makeUrandGraph(4096, 8, 53), o);
    auto pfs =
        test::attachPrefetchers(sys, PrefetcherKind::Rnr, {}, &wl);
    test::runWorkload(sys, wl, 3);

    const StatGroup &s = sys.mem().l2(0).stats();
    // Every issued prefetch either becomes useful, is evicted unused,
    // or is still resident/in flight at the end.
    const std::uint64_t accounted =
        s.get("prefetch_useful") + s.get("prefetch_evicted_unused");
    EXPECT_LE(accounted, s.get("prefetches_issued"));
    EXPECT_GE(accounted + 2 * m.l2.size_bytes / kBlockSize +
                  m.l2.prefetch_queue,
              s.get("prefetches_issued"));
}

TEST(InvariantsTest, IssueWidthMonotonicallyHelps)
{
    auto cycles_at = [](unsigned width) {
        MachineConfig m = test::tinyMachine();
        m.core.issue_width = width;
        System sys(m);
        WorkloadOptions o;
        o.cores = 1;
        LabelPropWorkload wl(makeUrandGraph(2048, 8, 57), o);
        return test::runWorkload(sys, wl, 2).back().cycles();
    };
    const Tick w1 = cycles_at(1);
    const Tick w4 = cycles_at(4);
    const Tick w8 = cycles_at(8);
    EXPECT_GE(w1, w4);
    EXPECT_GE(w4, w8);
}

TEST(InvariantsTest, PrefetchersNeverChangeResults)
{
    auto labels_under = [](PrefetcherKind kind) {
        MachineConfig m = test::tinyMachine();
        m.cores = 2;
        System sys(m);
        WorkloadOptions o;
        o.cores = 2;
        LabelPropWorkload wl(makeCommunityGraph(2048, 6, 64, 0.8, 61),
                             o);
        auto pfs = test::attachPrefetchers(sys, kind, {}, &wl);
        test::runWorkload(sys, wl, 6);
        std::vector<std::uint32_t> out;
        for (std::uint32_t v = 0; v < 2048; ++v)
            out.push_back(wl.label(v));
        return out;
    };
    const auto base = labels_under(PrefetcherKind::None);
    for (PrefetcherKind k :
         {PrefetcherKind::Stream, PrefetcherKind::Misb,
          PrefetcherKind::Rnr, PrefetcherKind::RnrCombined}) {
        EXPECT_EQ(labels_under(k), base) << toString(k);
    }
}

TEST(InvariantsTest, JacobiMatchesDirectSolveRegardlessOfTiming)
{
    MachineConfig m = test::tinyMachine();
    m.cores = 2;
    System sys(m);
    WorkloadOptions o;
    o.cores = 2;
    JacobiWorkload wl(makeStencilMatrix(5, 5, 5), o);
    auto pfs = test::attachPrefetchers(sys, PrefetcherKind::RnrCombined);
    test::runWorkload(sys, wl, 40);
    for (double xi : wl.solution())
        ASSERT_NEAR(xi, 1.0, 1e-2);
}

} // namespace
} // namespace rnr
