/**
 * @file
 * Behavioural reproduction checks for RnR's mechanism-level claims:
 * replay timing control (Fig 10), timeliness (Fig 11) and metadata
 * storage (Fig 13), on reduced inputs.
 */
#include <gtest/gtest.h>

#include "cpu/system.h"
#include "test_util.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

namespace rnr {
namespace {

MachineConfig
machine()
{
    MachineConfig m = MachineConfig::scaledDefault();
    m.cores = 2;
    m.l1d.size_bytes = 8 * 1024;
    m.l2.size_bytes = 16 * 1024;
    m.llc.size_bytes = 128 * 1024;
    return m;
}

struct RnrRun {
    Tick steady = 0;
    std::uint64_t ontime = 0, early = 0, late = 0, oow = 0;
    std::uint64_t seq_bytes = 0, div_bytes = 0;
    std::uint64_t recorded = 0;
};

RnrRun
runRnr(ReplayControlMode mode)
{
    System sys(machine());
    WorkloadOptions o;
    o.cores = 2;
    PageRankWorkload wl(makeUrandGraph(1 << 14, 12, 99), o);
    RnrPrefetcher::Options opts;
    opts.control = mode;
    auto pfs = test::attachPrefetchers(sys, PrefetcherKind::Rnr, opts);
    auto iters = test::runWorkload(sys, wl, 3);

    RnrRun out;
    out.steady = iters.back().cycles();
    for (unsigned c = 0; c < 2; ++c) {
        RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c));
        out.ontime += r->stats().get("pf_ontime");
        out.early += r->stats().get("pf_early");
        out.late += r->stats().get("pf_late");
        out.oow += r->stats().get("pf_out_of_window");
        out.seq_bytes += r->seqTableBytes();
        out.div_bytes += r->divTableBytes();
        out.recorded += r->stats().get("recorded_misses");
    }
    return out;
}

TEST(RnrBehaviourTest, TimingControlOrderingMatchesFig10)
{
    const RnrRun none = runRnr(ReplayControlMode::None);
    const RnrRun window = runRnr(ReplayControlMode::Window);
    const RnrRun pace = runRnr(ReplayControlMode::WindowPace);
    // No control cannot beat window control; pace is at least as good
    // as window (Fig 10: window control recovers the speedup).
    EXPECT_GT(none.steady, pace.steady);
    EXPECT_GE(none.steady * 1.02, window.steady);
    EXPECT_LE(pace.steady, window.steady * 1.05);
}

TEST(RnrBehaviourTest, PaceControlIsMostlyOnTime)
{
    const RnrRun pace = runRnr(ReplayControlMode::WindowPace);
    const double total = static_cast<double>(
        pace.ontime + pace.early + pace.late + pace.oow);
    ASSERT_GT(total, 0.0);
    // Fig 11: overwhelmingly on-time for paced replay.  The reduced
    // test machine runs under heavier cache pressure than the scaled
    // default (where this ratio is ~0.98), hence the looser bound.
    EXPECT_GT(pace.ontime / total, 0.7);
}

TEST(RnrBehaviourTest, NoControlIsMostlyEarly)
{
    const RnrRun none = runRnr(ReplayControlMode::None);
    const double total = static_cast<double>(
        none.ontime + none.early + none.late + none.oow);
    ASSERT_GT(total, 0.0);
    // Fig 5(b)/Fig 11 left bars: uncontrolled replay floods the L2 and
    // most prefetches are evicted before use.
    EXPECT_GT(none.early / total, 0.5);
}

TEST(RnrBehaviourTest, MetadataSizesFollowTheDesign)
{
    const RnrRun r = runRnr(ReplayControlMode::WindowPace);
    // Sequence table: 2 B per recorded miss.
    EXPECT_EQ(r.seq_bytes, r.recorded * kSeqEntryBytes);
    // Division table is orders of magnitude smaller (Section VII-C).
    EXPECT_LT(r.div_bytes * 10, r.seq_bytes);
}

TEST(RnrBehaviourTest, WindowSizeSweepHasFlatMiddle)
{
    // Fig 14: windows in the middle of the range perform similarly.
    auto steady_for = [](std::uint32_t ws) {
        System sys(machine());
        WorkloadOptions o;
        o.cores = 2;
        o.window_size = ws;
        PageRankWorkload wl(makeUrandGraph(1 << 14, 12, 99), o);
        RnrPrefetcher::Options opts;
        opts.window_size = ws;
        auto pfs =
            test::attachPrefetchers(sys, PrefetcherKind::Rnr, opts);
        return test::runWorkload(sys, wl, 3).back().cycles();
    };
    const Tick w32 = steady_for(32);
    const Tick w64 = steady_for(64);
    const Tick w128 = steady_for(128);
    EXPECT_LT(std::max({w32, w64, w128}),
              1.25 * std::min({w32, w64, w128}));
}

} // namespace
} // namespace rnr
