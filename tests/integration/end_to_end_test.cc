/**
 * @file
 * End-to-end checks of the headline behaviours the paper reports,
 * exercised on reduced inputs so the suite stays fast.
 */
#include <gtest/gtest.h>

#include "cpu/system.h"
#include "harness/metrics.h"
#include "test_util.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"
#include "workloads/spcg.h"
#include "workloads/sparse_gen.h"

namespace rnr {
namespace {

/** Reduced machine: same structure as the scaled default. */
MachineConfig
machine()
{
    MachineConfig m = MachineConfig::scaledDefault();
    m.cores = 2;
    m.l1d.size_bytes = 8 * 1024;
    m.l2.size_bytes = 16 * 1024;
    m.llc.size_bytes = 128 * 1024;
    return m;
}

WorkloadOptions
wopts()
{
    WorkloadOptions o;
    o.cores = 2;
    return o;
}

struct RunSummary {
    Tick first = 0;
    Tick steady = 0;
    std::uint64_t useful = 0;
    std::uint64_t issued = 0;
    std::uint64_t steady_misses = 0;
};

template <typename WorkloadT, typename MakeWl>
RunSummary
run(PrefetcherKind kind, MakeWl make, unsigned iters = 3)
{
    System sys(machine());
    WorkloadT wl = make();
    auto pfs = test::attachPrefetchers(sys, kind, {}, &wl);
    std::uint64_t misses_before_last = 0;
    RunSummary out;
    std::vector<TraceBuffer> bufs(wl.cores());
    for (unsigned it = 0; it < iters; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl.emitIteration(it, it + 1 == iters, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        if (it + 1 == iters) {
            for (unsigned c = 0; c < 2; ++c)
                misses_before_last +=
                    sys.mem().l2(c).stats().get("misses") -
                    sys.mem().l2(c).stats().get("mshr_merges");
        }
        const IterationResult r = sys.run(ptrs);
        if (it == 0)
            out.first = r.cycles();
        out.steady = r.cycles();
    }
    for (unsigned c = 0; c < 2; ++c) {
        const StatGroup &s = sys.mem().l2(c).stats();
        out.useful += s.get("prefetch_useful") +
                      s.get("demand_merged_into_prefetch");
        out.issued += s.get("prefetches_issued");
        out.steady_misses +=
            s.get("misses") - s.get("mshr_merges");
    }
    out.steady_misses -= misses_before_last;
    return out;
}

PageRankWorkload
makePr()
{
    return PageRankWorkload(makeUrandGraph(1 << 14, 12, 77), wopts());
}

TEST(EndToEndTest, RnrCombinedSpeedsUpPageRank)
{
    const RunSummary base =
        run<PageRankWorkload>(PrefetcherKind::None, makePr);
    const RunSummary rnr =
        run<PageRankWorkload>(PrefetcherKind::RnrCombined, makePr);
    // Steady-state replay beats the no-prefetcher baseline clearly.
    EXPECT_LT(rnr.steady, base.steady * 0.8);
}

TEST(EndToEndTest, RnrAccuracyAndCoverageAreHigh)
{
    const RunSummary base =
        run<PageRankWorkload>(PrefetcherKind::None, makePr);
    const RunSummary rnr =
        run<PageRankWorkload>(PrefetcherKind::Rnr, makePr);
    ASSERT_GT(rnr.issued, 0u);
    const double acc =
        static_cast<double>(rnr.useful) / static_cast<double>(rnr.issued);
    // Paper: ~97% on the full configuration; the reduced test machine
    // (16 KB L2) runs the replay windows under heavier cache pressure.
    EXPECT_GT(acc, 0.7);
    const double cov = static_cast<double>(rnr.useful) /
                       static_cast<double>(base.steady_misses * 2);
    EXPECT_GT(cov, 0.5); // useful spans 2 replay iterations
}

TEST(EndToEndTest, RecordIterationOverheadIsSmall)
{
    const RunSummary base =
        run<PageRankWorkload>(PrefetcherKind::None, makePr);
    const RunSummary rnr =
        run<PageRankWorkload>(PrefetcherKind::Rnr, makePr);
    // Section VII-A6: ~1% average, 1.75% worst case; allow model slack.
    EXPECT_LT(rnr.first, base.first * 1.12);
}

TEST(EndToEndTest, SpcgConvergesIdenticallyUnderAnyPrefetcher)
{
    // Prefetching must never change program semantics.
    auto solve = [](PrefetcherKind kind) {
        System sys(machine());
        SpcgWorkload wl(makeStencilMatrix(8, 8, 8), wopts());
        auto pfs = test::attachPrefetchers(sys, kind);
        test::runWorkload(sys, wl, 6);
        return wl.residualNorm2();
    };
    const double r_none = solve(PrefetcherKind::None);
    const double r_rnr = solve(PrefetcherKind::RnrCombined);
    EXPECT_DOUBLE_EQ(r_none, r_rnr);
}

TEST(EndToEndTest, ControlRecordsAreNoOpsForOtherPrefetchers)
{
    // The same RnR-annotated trace must run unchanged under a stream
    // prefetcher (Section V-D: co-existence).
    const RunSummary stream =
        run<PageRankWorkload>(PrefetcherKind::Stream, makePr);
    EXPECT_GT(stream.issued, 0u);
}

} // namespace
} // namespace rnr
