#include <gtest/gtest.h>

#include "prefetch/factory.h"
#include "test_util.h"

namespace rnr {
namespace {

TEST(FactoryTest, NamesRoundTrip)
{
    for (PrefetcherKind k : allPrefetcherKinds())
        EXPECT_EQ(prefetcherKindFromString(toString(k)), k);
}

TEST(FactoryTest, UnknownNameThrows)
{
    EXPECT_THROW(prefetcherKindFromString("bogus"),
                 std::invalid_argument);
}

TEST(FactoryTest, CreatesEveryKind)
{
    for (PrefetcherKind k : allPrefetcherKinds()) {
        auto pf = createPrefetcher(k);
        ASSERT_NE(pf, nullptr) << toString(k);
        if (k != PrefetcherKind::Rnr &&
            k != PrefetcherKind::RnrCombined) {
            EXPECT_EQ(pf->name(), toString(k));
        }
    }
}

TEST(FactoryTest, AsRnrFindsTheRnrHalf)
{
    auto rnr = createPrefetcher(PrefetcherKind::Rnr);
    auto combined = createPrefetcher(PrefetcherKind::RnrCombined);
    auto nextline = createPrefetcher(PrefetcherKind::NextLine);
    EXPECT_NE(asRnr(rnr.get()), nullptr);
    EXPECT_NE(asRnr(combined.get()), nullptr);
    EXPECT_EQ(asRnr(nextline.get()), nullptr);
}

TEST(FactoryTest, CombinedForwardsControlAndTargets)
{
    MemorySystem ms(test::tinyMachine());
    auto combined = createPrefetcher(PrefetcherKind::RnrCombined);
    ms.setPrefetcher(0, combined.get());

    combined->onControl(TraceRecord::control(RnrOp::Init, 0x700000,
                                             0x710000), 0);
    combined->onControl(TraceRecord::control(RnrOp::AddrBaseSet, 0x1000,
                                             0x1000), 0);
    combined->onControl(TraceRecord::control(RnrOp::AddrEnable, 0x1000),
                        0);
    combined->onControl(TraceRecord::control(RnrOp::Start), 0);
    EXPECT_TRUE(combined->inTargetRegion(0x1800));
    EXPECT_FALSE(combined->inTargetRegion(0x3000));
    EXPECT_EQ(asRnr(combined.get())->arch().state, RnrState::Record);
}

TEST(FactoryTest, RnrOptionsReachTheInstance)
{
    RnrPrefetcher::Options opts;
    opts.control = ReplayControlMode::None;
    opts.window_size = 64;
    auto pf = createPrefetcher(PrefetcherKind::Rnr, opts);
    RnrPrefetcher *r = asRnr(pf.get());
    ASSERT_NE(r, nullptr);
    // Window size becomes architectural at Init.
    MemorySystem ms(test::tinyMachine());
    ms.setPrefetcher(0, pf.get());
    r->onControl(TraceRecord::control(RnrOp::Init, 0x1000, 0x2000), 0);
    EXPECT_EQ(r->arch().window_size, 64u);
}

} // namespace
} // namespace rnr
