#include <gtest/gtest.h>

#include "prefetch/domino.h"
#include "test_util.h"

namespace rnr {
namespace {

struct DominoFixture : ::testing::Test {
    DominoFixture() : ms(test::tinyMachine()) {}

    void
    misses(DominoPrefetcher &pf, const std::vector<Addr> &blocks)
    {
        ms.setPrefetcher(0, &pf);
        for (Addr b : blocks) {
            ms.demandAccess(0, b << kBlockBits, false, 1, t_);
            t_ += 1500;
            ms.l2(0).reset();
            ms.l1d(0).reset();
        }
    }

    MemorySystem ms;
    Tick t_ = 0;
};

TEST_F(DominoFixture, PairIndexedReplay)
{
    DominoPrefetcher pf(1024, 2);
    misses(pf, {10, 20, 30, 40});
    // Re-observing the pair (10, 20) predicts 30, 40.
    misses(pf, {10});
    const std::uint64_t before = pf.stats().get("issued");
    misses(pf, {20});
    EXPECT_EQ(pf.stats().get("issued"), before + 2);
}

TEST_F(DominoFixture, DisambiguatesSharedAddress)
{
    // The Section II example GHB gets wrong: 9 -> 12 in one context,
    // 9 -> 20 in another.  Domino keys on pairs, so (5, 9) predicts 12
    // while (7, 9) predicts 20.
    DominoPrefetcher pf(1024, 1);
    misses(pf, {5, 9, 12, 100, 7, 9, 20, 200});
    misses(pf, {5});
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, Addr(9) << kBlockBits, false, 1, t_);
    EXPECT_NE(ms.l2(0).peek(12), nullptr);
    EXPECT_EQ(ms.l2(0).peek(20), nullptr);
}

TEST_F(DominoFixture, SingleMissCannotPredict)
{
    DominoPrefetcher pf(1024, 4);
    misses(pf, {1, 2, 3});
    const std::uint64_t before = pf.stats().get("issued");
    // A fresh pair that was never observed predicts nothing.
    misses(pf, {500, 600});
    EXPECT_EQ(pf.stats().get("issued"), before);
}

} // namespace
} // namespace rnr
