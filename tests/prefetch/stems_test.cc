#include <gtest/gtest.h>

#include "prefetch/stems.h"
#include "test_util.h"

namespace rnr {
namespace {

struct StemsFixture : ::testing::Test {
    StemsFixture() : ms(test::tinyMachine()) {}

    void
    miss(Prefetcher &pf, Addr block, std::uint32_t pc = 1)
    {
        ms.setPrefetcher(0, &pf);
        ms.demandAccess(0, block << kBlockBits, false, pc, t_);
        t_ += 1500;
        ms.l2(0).reset();
        ms.l1d(0).reset();
    }

    MemorySystem ms;
    Tick t_ = 0;
};

TEST_F(StemsFixture, ReplaysTemporalRegionSequenceWithFootprints)
{
    StemsPrefetcher pf(/*region_blocks=*/8, 1024, /*depth=*/2, 128);
    // Regions A(0..7): blocks 0,2; B(8..15): 8; C(16..23): 17,18.
    miss(pf, 0, 1);
    miss(pf, 2, 1);
    miss(pf, 8, 2);
    miss(pf, 17, 3);
    miss(pf, 18, 3);
    miss(pf, 100, 4); // close region C's footprint
    // Re-trigger region A with the same pc: STeMS replays the next
    // temporal regions (B, C) with their footprints.
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0, false, 1, t_);
    EXPECT_NE(ms.l2(0).peek(8), nullptr);   // region B footprint
    EXPECT_NE(ms.l2(0).peek(17), nullptr);  // region C footprint
    EXPECT_NE(ms.l2(0).peek(18), nullptr);
}

TEST_F(StemsFixture, IntraRegionAccessesDoNotLogNewEvents)
{
    StemsPrefetcher pf(8, 1024, 4, 128);
    miss(pf, 0, 1);
    miss(pf, 1, 1);
    miss(pf, 2, 1);
    // Only one temporal event exists; re-triggering predicts nothing.
    const std::uint64_t before = pf.stats().get("issued");
    miss(pf, 0, 1);
    EXPECT_EQ(pf.stats().get("issued"), before);
}

TEST_F(StemsFixture, DifferentPcDoesNotMatchTrigger)
{
    StemsPrefetcher pf(8, 1024, 2, 128);
    miss(pf, 0, 1);
    miss(pf, 8, 2);
    miss(pf, 16, 3);
    const std::uint64_t before = pf.stats().get("issued");
    miss(pf, 0, /*different pc=*/9);
    EXPECT_EQ(pf.stats().get("issued"), before);
}

} // namespace
} // namespace rnr
