#include <gtest/gtest.h>

#include "prefetch/ghb.h"
#include "test_util.h"

namespace rnr {
namespace {

struct GhbFixture : ::testing::Test {
    GhbFixture() : ms(test::tinyMachine()) {}

    /** Drives a sequence of block addresses as L2 misses. */
    void
    misses(GhbPrefetcher &pf, const std::vector<Addr> &blocks)
    {
        ms.setPrefetcher(0, &pf);
        for (Addr b : blocks) {
            ms.demandAccess(0, b << kBlockBits, false, 1, t_);
            t_ += 1500; // let fills complete; keep every access a miss
            ms.l2(0).reset();
            ms.l1d(0).reset();
        }
    }

    MemorySystem ms;
    Tick t_ = 0;
};

TEST_F(GhbFixture, ReplaysRecordedSuccessors)
{
    GhbPrefetcher pf(1024, 2);
    misses(pf, {10, 20, 30, 40});
    // Revisit 10: the GHB should prefetch 20 and 30.
    const std::uint64_t before = pf.stats().get("issued");
    misses(pf, {10});
    EXPECT_EQ(pf.stats().get("issued"), before + 2);
}

TEST_F(GhbFixture, MostRecentOccurrenceWins)
{
    // The paper's Section II criticism: 9 -> 12 then 9 -> 20; a new
    // access to 9 predicts the most recent follower (20), not 12.
    GhbPrefetcher pf(1024, 1);
    misses(pf, {9, 12, 9, 20});
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, Addr(9) << kBlockBits, false, 1, t_);
    EXPECT_NE(ms.l2(0).peek(20), nullptr);
    EXPECT_EQ(ms.l2(0).peek(12), nullptr);
}

TEST_F(GhbFixture, ColdAddressPredictsNothing)
{
    GhbPrefetcher pf(1024, 4);
    misses(pf, {1, 2, 3});
    const std::uint64_t before = pf.stats().get("issued");
    misses(pf, {999});
    EXPECT_EQ(pf.stats().get("issued"), before);
}

TEST_F(GhbFixture, CircularBufferOverwriteInvalidatesIndex)
{
    GhbPrefetcher pf(/*buffer=*/4, 1);
    misses(pf, {1, 2, 3, 4, 5, 6}); // 1 and 2 overwritten
    const std::uint64_t before = pf.stats().get("issued");
    misses(pf, {1});
    // Entry for 1 was evicted from the buffer: no prediction.
    EXPECT_EQ(pf.stats().get("issued"), before);
}

} // namespace
} // namespace rnr
