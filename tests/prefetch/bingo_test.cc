#include <gtest/gtest.h>

#include "prefetch/bingo.h"
#include "test_util.h"

namespace rnr {
namespace {

struct BingoFixture : ::testing::Test {
    BingoFixture() : ms(test::tinyMachine()) {}

    void
    access(Prefetcher &pf, Addr block, std::uint32_t pc)
    {
        ms.setPrefetcher(0, &pf);
        ms.demandAccess(0, block << kBlockBits, false, pc, t_);
        t_ += 1000;
    }

    MemorySystem ms;
    Tick t_ = 0;
};

TEST_F(BingoFixture, LearnsFootprintAndReplaysIt)
{
    BingoPrefetcher pf(/*region_blocks=*/8, 128, /*active=*/1);
    // Generation in region 0: trigger block 0 (pc 5), then 2, 5.
    access(pf, 0, 5);
    access(pf, 2, 6);
    access(pf, 5, 7);
    // New region retires the generation (active capacity 1)...
    access(pf, 100, 5);
    // ...whose footprint is now predicted for a same-offset trigger in
    // another region (PC+offset event).
    access(pf, 200, 5); // offset 0 in region 25, same trigger pc
    EXPECT_NE(ms.l2(0).peek(202), nullptr);
    EXPECT_NE(ms.l2(0).peek(205), nullptr);
    EXPECT_EQ(ms.l2(0).peek(203), nullptr);
}

TEST_F(BingoFixture, PcAddressEventIsMoreSpecific)
{
    BingoPrefetcher pf(8, 128, 1);
    // Train region 0 with trigger (pc 5, block 0): footprint {0, 3}.
    access(pf, 0, 5);
    access(pf, 3, 9);
    access(pf, 64, 1); // retire generation
    // Re-trigger the *same* block with the same pc: the PC+Address
    // event matches and replays the footprint in region 0.
    access(pf, 0, 5);
    EXPECT_NE(ms.l2(0).peek(3), nullptr);
}

TEST_F(BingoFixture, NoHistoryNoPrefetch)
{
    BingoPrefetcher pf(8, 128, 4);
    access(pf, 42, 3);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

TEST_F(BingoFixture, FootprintAccumulatesWithinGeneration)
{
    BingoPrefetcher pf(8, 128, 2);
    // All accesses inside one region extend the footprint, not history.
    access(pf, 0, 1);
    access(pf, 1, 1);
    access(pf, 2, 1);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

} // namespace
} // namespace rnr
