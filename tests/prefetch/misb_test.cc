#include <gtest/gtest.h>

#include "prefetch/misb.h"
#include "test_util.h"

namespace rnr {
namespace {

struct MisbFixture : ::testing::Test {
    MisbFixture() : ms(test::tinyMachine()) {}

    void
    miss(Prefetcher &pf, Addr block, std::uint32_t pc)
    {
        ms.setPrefetcher(0, &pf);
        ms.demandAccess(0, block << kBlockBits, false, pc, t_);
        t_ += 1500;
        ms.l2(0).reset();
        ms.l1d(0).reset();
    }

    MemorySystem ms;
    Tick t_ = 0;
};

TEST_F(MisbFixture, LinearisedStreamReplaysStructuralNeighbours)
{
    MisbPrefetcher pf(4, 256);
    // PC 7's miss stream: 100, 250, 400 (irregular physical blocks).
    miss(pf, 100, 7);
    miss(pf, 250, 7);
    miss(pf, 400, 7);
    // Revisit 100: structural +1.. map back to 250, 400.
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, Addr(100) << kBlockBits, false, 7, t_);
    EXPECT_NE(ms.l2(0).peek(250), nullptr);
    EXPECT_NE(ms.l2(0).peek(400), nullptr);
}

TEST_F(MisbFixture, StreamsArePcLocalised)
{
    MisbPrefetcher pf(4, 256);
    // Interleaved streams: pc1 = 10, 20; pc2 = 500, 600.
    miss(pf, 10, 1);
    miss(pf, 500, 2);
    miss(pf, 20, 1);
    miss(pf, 600, 2);
    // Revisit 10 on pc1: prefetch 20, not 500/600.
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, Addr(10) << kBlockBits, false, 1, t_);
    EXPECT_NE(ms.l2(0).peek(20), nullptr);
    EXPECT_EQ(ms.l2(0).peek(500), nullptr);
    EXPECT_EQ(ms.l2(0).peek(600), nullptr);
}

TEST_F(MisbFixture, OffChipMetadataTrafficCharged)
{
    MisbPrefetcher pf(4, /*metadata cache entries=*/2);
    for (int i = 0; i < 64; ++i)
        miss(pf, Addr(1000) + Addr(i) * 97, 3);
    EXPECT_GT(pf.stats().get("metadata_cache_misses"), 0u);
    EXPECT_GT(ms.dram().bytes(ReqOrigin::Metadata), 0u);
}

TEST_F(MisbFixture, MetadataCacheHitsAvoidTraffic)
{
    MisbPrefetcher pf(4, 4096);
    miss(pf, 5, 1);
    miss(pf, 5, 1);
    miss(pf, 5, 1);
    EXPECT_GT(pf.stats().get("metadata_cache_hits"), 0u);
}

TEST_F(MisbFixture, FirstMappingWins)
{
    MisbPrefetcher pf(4, 256);
    // Block 50 joins pc1's stream after 40.
    miss(pf, 40, 1);
    miss(pf, 50, 1);
    // pc2 also misses 40 then 99: 40 keeps its original mapping, so
    // revisiting 40 on pc2's stream still predicts 50.
    miss(pf, 40, 2);
    miss(pf, 99, 2);
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, Addr(40) << kBlockBits, false, 1, t_);
    EXPECT_NE(ms.l2(0).peek(50), nullptr);
}

} // namespace
} // namespace rnr
