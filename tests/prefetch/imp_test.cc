#include <gtest/gtest.h>

#include "prefetch/imp.h"
#include "sim/rng.h"
#include "test_util.h"

namespace rnr {
namespace {

struct ImpFixture : ::testing::Test {
    ImpFixture() : ms(test::tinyMachine()) {}

    /** Index array of 4 B values at 0x100000; A at 0x800000, 8 B elems. */
    IndexSniffer
    sniffer(std::vector<std::uint64_t> values)
    {
        values_ = std::move(values);
        IndexSniffer s;
        s.index_base = 0x100000;
        s.index_count = values_.size();
        s.index_elem_bytes = 4;
        s.value_of = [this](std::uint64_t i) { return values_[i]; };
        return s;
    }

    Addr
    targetOf(std::uint64_t value) const
    {
        return 0x800000 + value * 8;
    }

    /** Walks the A[B[i]] kernel: index load then indirect load. */
    void
    walk(ImpPrefetcher &pf, std::size_t count)
    {
        ms.setPrefetcher(0, &pf);
        for (std::size_t i = 0; i < count; ++i) {
            ms.demandAccess(0, 0x100000 + i * 4, false, 1, t_);
            t_ += 300;
            ms.demandAccess(0, targetOf(values_[i]), false, 2, t_);
            t_ += 300;
            // Keep indirect accesses missing so training pairs form.
            ms.l2(0).reset();
            ms.l1d(0).reset();
        }
    }

    MemorySystem ms;
    std::vector<std::uint64_t> values_;
    Tick t_ = 0;
};

TEST_F(ImpFixture, ConfirmsLinearMapAfterEnoughPairs)
{
    ImpPrefetcher pf(4, 3);
    pf.setSniffer(sniffer({5, 900, 33, 470, 12, 7, 810, 256}));
    EXPECT_FALSE(pf.patternConfirmed());
    walk(pf, 5);
    EXPECT_TRUE(pf.patternConfirmed());
    EXPECT_EQ(pf.coefficient(), 8);
}

TEST_F(ImpFixture, PrefetchesAheadOnceConfirmed)
{
    ImpPrefetcher pf(/*distance=*/2, 3);
    pf.setSniffer(sniffer({5, 900, 33, 470, 12, 7, 810, 256}));
    walk(pf, 6);
    ASSERT_TRUE(pf.patternConfirmed());
    // One more index access at i=5 (caches were reset, so it reaches
    // the L2): prefetches the target of B[5 + 2] = 256.
    ms.demandAccess(0, 0x100000 + 5 * 4, false, 1, t_);
    EXPECT_GT(pf.stats().get("issued"), 0u);
    EXPECT_NE(ms.l2(0).peek(blockNumber(targetOf(256))), nullptr);
}

TEST_F(ImpFixture, NoSnifferMeansInert)
{
    ImpPrefetcher pf(4, 3);
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x100000, false, 1, 0);
    ms.demandAccess(0, 0x800000, false, 2, 500);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
    EXPECT_FALSE(pf.patternConfirmed());
}

TEST_F(ImpFixture, UnrelatedMissesDoNotConfirm)
{
    ImpPrefetcher pf(4, 3);
    pf.setSniffer(sniffer({5, 900, 33, 470, 12}));
    ms.setPrefetcher(0, &pf);
    // Index loads paired with misses at addresses unrelated to the
    // values: no consistent linear map exists.
    Rng rng(3);
    for (std::size_t i = 0; i < 5; ++i) {
        ms.demandAccess(0, 0x100000 + i * 4, false, 1, t_);
        t_ += 300;
        ms.demandAccess(0, 0xF00000 + rng.below(1 << 20) * 64, false, 2,
                        t_);
        t_ += 300;
        ms.l2(0).reset();
        ms.l1d(0).reset();
    }
    EXPECT_FALSE(pf.patternConfirmed());
}

} // namespace
} // namespace rnr
