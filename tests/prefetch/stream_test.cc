#include <gtest/gtest.h>

#include "prefetch/stream.h"
#include "test_util.h"

namespace rnr {
namespace {

struct StreamFixture : ::testing::Test {
    StreamFixture() : ms(test::tinyMachine()) {}

    void
    access(Prefetcher &pf, Addr block)
    {
        ms.setPrefetcher(0, &pf);
        ms.demandAccess(0, block << kBlockBits, false, 1, t_);
        t_ += 600;
    }

    MemorySystem ms;
    Tick t_ = 0;
};

TEST_F(StreamFixture, SingleAccessDoesNotPrefetch)
{
    StreamPrefetcher pf(4, 8);
    access(pf, 100);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

TEST_F(StreamFixture, SequentialAccessesRunAhead)
{
    StreamPrefetcher pf(4, 8);
    access(pf, 100);
    access(pf, 101);
    // Confidence reached: run up to 8 blocks past the demand edge.
    for (Addr b = 102; b <= 109; ++b)
        EXPECT_NE(ms.l2(0).peek(b), nullptr) << b;
    EXPECT_EQ(ms.l2(0).peek(110), nullptr);
}

TEST_F(StreamFixture, CursorAdvancesWithDemand)
{
    StreamPrefetcher pf(4, 4);
    access(pf, 200);
    access(pf, 201);
    access(pf, 205); // small skip still matches the stream
    EXPECT_NE(ms.l2(0).peek(209), nullptr);
}

TEST_F(StreamFixture, TracksMultipleConcurrentStreams)
{
    StreamPrefetcher pf(4, 4);
    access(pf, 1000);
    access(pf, 5000);
    access(pf, 1001);
    access(pf, 5001);
    EXPECT_NE(ms.l2(0).peek(1002), nullptr);
    EXPECT_NE(ms.l2(0).peek(5002), nullptr);
}

TEST_F(StreamFixture, SkipsTargetRegionsWhenConfigured)
{
    struct Target : StreamPrefetcher {
        Target() : StreamPrefetcher(4, 4, /*skip_target_struct=*/true) {}
        bool
        inTargetRegion(Addr a) const override
        {
            return a < (Addr{500} << kBlockBits);
        }
    } pf;
    access(pf, 100);
    access(pf, 101);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
    access(pf, 600);
    access(pf, 601);
    EXPECT_GT(pf.stats().get("issued"), 0u);
}

TEST_F(StreamFixture, RandomAccessesStayQuiet)
{
    StreamPrefetcher pf(4, 8);
    const Addr blocks[] = {10, 9000, 42, 7777, 123, 31000};
    for (Addr b : blocks)
        access(pf, b);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

} // namespace
} // namespace rnr
