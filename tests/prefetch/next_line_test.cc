#include <gtest/gtest.h>

#include "prefetch/next_line.h"
#include "test_util.h"

namespace rnr {
namespace {

struct NextLineFixture : ::testing::Test {
    NextLineFixture() : ms(test::tinyMachine()) {}
    MemorySystem ms;
};

TEST_F(NextLineFixture, MissPrefetchesNextBlock)
{
    NextLinePrefetcher pf(1);
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x10000, false, 1, 0);
    EXPECT_NE(ms.l2(0).peek(blockNumber(0x10000) + 1), nullptr);
    EXPECT_EQ(pf.stats().get("issued"), 1u);
}

TEST_F(NextLineFixture, DegreeControlsDepth)
{
    NextLinePrefetcher pf(3);
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x10000, false, 1, 0);
    for (unsigned d = 1; d <= 3; ++d)
        EXPECT_NE(ms.l2(0).peek(blockNumber(0x10000) + d), nullptr);
    EXPECT_EQ(ms.l2(0).peek(blockNumber(0x10000) + 4), nullptr);
}

TEST_F(NextLineFixture, HitsDoNotTrigger)
{
    NextLinePrefetcher pf(1);
    ms.setPrefetcher(0, &pf);
    Tick t = ms.demandAccess(0, 0x10000, false, 1, 0).done;
    const std::uint64_t before = pf.stats().get("issued");
    // L1 is bypassed by going to a different word... use the same block
    // after it left L1?  Simplest: an L2 hit via the L1-filtered path is
    // not constructable cheaply, so assert the miss-only policy via the
    // issue counter after a straight repeat (L1 hit, no L2 access).
    ms.demandAccess(0, 0x10000, false, 1, t + 1);
    EXPECT_EQ(pf.stats().get("issued"), before);
}

TEST_F(NextLineFixture, SkipsTargetStructWhenConfigured)
{
    // Wrap in a probe that declares a target region.
    struct Target : NextLinePrefetcher {
        Target() : NextLinePrefetcher(1, /*skip_target_struct=*/true) {}
        bool
        inTargetRegion(Addr a) const override
        {
            return a >= 0x40000 && a < 0x50000;
        }
    } pf;
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x40000, false, 1, 0);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
    ms.demandAccess(0, 0x80000, false, 1, 100);
    EXPECT_EQ(pf.stats().get("issued"), 1u);
}

} // namespace
} // namespace rnr
