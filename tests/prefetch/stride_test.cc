#include <gtest/gtest.h>

#include "prefetch/stride.h"
#include "test_util.h"

namespace rnr {
namespace {

struct StrideFixture : ::testing::Test {
    StrideFixture() : ms(test::tinyMachine()) {}

    /** Issues L2-visible accesses with a fixed block stride. */
    void
    touch(StridePrefetcher &pf, std::uint32_t pc, Addr start_block,
          std::int64_t stride, int count)
    {
        ms.setPrefetcher(0, &pf);
        Tick t = 0;
        for (int i = 0; i < count; ++i) {
            const Addr block = start_block + Addr(i) * stride;
            ms.demandAccess(0, block << kBlockBits, false, pc, t);
            t += 500;
        }
    }

    MemorySystem ms;
};

TEST_F(StrideFixture, DetectsConstantStrideAfterConfidence)
{
    StridePrefetcher pf(64, 2);
    touch(pf, 7, 100, 4, 4);
    // After 3 strides of +4, confidence >= 2: blocks 112+4, 112+8.
    EXPECT_NE(ms.l2(0).peek(116), nullptr);
    EXPECT_NE(ms.l2(0).peek(120), nullptr);
}

TEST_F(StrideFixture, NoPrefetchBeforeConfidence)
{
    StridePrefetcher pf(64, 2);
    touch(pf, 7, 100, 4, 2); // only one stride observed
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

TEST_F(StrideFixture, NegativeStrideSupported)
{
    StridePrefetcher pf(64, 1);
    touch(pf, 9, 400, -2, 4);
    EXPECT_NE(ms.l2(0).peek(394 - 2), nullptr);
}

TEST_F(StrideFixture, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(64, 1);
    touch(pf, 5, 100, 4, 3);
    const std::uint64_t before = pf.stats().get("issued");
    // Break the pattern once, then a single new-stride observation must
    // not prefetch yet.
    ms.demandAccess(0, Addr(500) << kBlockBits, false, 5, 10000);
    ms.demandAccess(0, Addr(900) << kBlockBits, false, 5, 11000);
    EXPECT_EQ(pf.stats().get("issued"), before);
}

TEST_F(StrideFixture, StreamsArePcLocal)
{
    StridePrefetcher pf(64, 1);
    ms.setPrefetcher(0, &pf);
    // Interleave two PCs with different strides; both should train.
    Tick t = 0;
    for (int i = 0; i < 5; ++i) {
        ms.demandAccess(0, (Addr(100) + Addr(i) * 3) << kBlockBits, false,
                        1, t);
        ms.demandAccess(0, (Addr(5000) + Addr(i) * 7) << kBlockBits,
                        false, 2, t + 250);
        t += 500;
    }
    EXPECT_GT(pf.stats().get("issued"), 4u);
}

} // namespace
} // namespace rnr
