#include <gtest/gtest.h>

#include "prefetch/droplet.h"
#include "test_util.h"

namespace rnr {
namespace {

struct DropletFixture : ::testing::Test {
    DropletFixture() : ms(test::tinyMachine()) {}

    /** Edge array of 4 B ids at 0x100000; vertex data at 0x800000. */
    DropletHint
    hint(std::uint64_t edges)
    {
        DropletHint h;
        h.edge_base = 0x100000;
        h.edge_count = edges;
        h.edge_elem_bytes = 4;
        h.target_of = [](std::uint64_t e) {
            // Edge e touches vertex (e * 13) % 1024.
            return Addr(0x800000) + ((e * 13) % 1024) * 8;
        };
        return h;
    }

    MemorySystem ms;
};

TEST_F(DropletFixture, EdgeAccessLaunchesVertexPrefetches)
{
    DropletPrefetcher pf(2);
    pf.setHint(hint(1024));
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x100000, false, 1, 0);
    EXPECT_GT(pf.stats().get("indirect_launched"), 0u);
    // Vertex block of edge 0: 0x800000 block.
    EXPECT_NE(ms.l2(0).peek(blockNumber(0x800000)), nullptr);
}

TEST_F(DropletFixture, StreamsAheadOnEdgeArray)
{
    DropletPrefetcher pf(/*distance=*/3);
    pf.setHint(hint(4096));
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x100000, false, 1, 0);
    const Addr first = blockNumber(0x100000);
    for (Addr b = first + 1; b <= first + 3; ++b)
        EXPECT_NE(ms.l2(0).peek(b), nullptr) << b - first;
}

TEST_F(DropletFixture, IgnoresAccessesOutsideEdgeRange)
{
    DropletPrefetcher pf(2);
    pf.setHint(hint(64));
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x700000, false, 1, 0);
    EXPECT_EQ(pf.stats().get("indirect_launched"), 0u);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

TEST_F(DropletFixture, FilterSuppressesRepeatedVertices)
{
    DropletPrefetcher pf(0); // no stream run-ahead: isolate the filter
    DropletHint h = hint(64);
    h.target_of = [](std::uint64_t) { return Addr(0x800000); };
    pf.setHint(h);
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x100000, false, 1, 0);
    // 16 edges in the demanded block all point at one vertex: only the
    // first launch goes out.
    EXPECT_EQ(pf.stats().get("indirect_launched"), 1u);
    EXPECT_GE(pf.stats().get("indirect_filtered"), 15u);
}

TEST_F(DropletFixture, NoHintMeansInert)
{
    DropletPrefetcher pf(4);
    ms.setPrefetcher(0, &pf);
    ms.demandAccess(0, 0x100000, false, 1, 0);
    EXPECT_EQ(pf.stats().get("issued"), 0u);
}

} // namespace
} // namespace rnr
