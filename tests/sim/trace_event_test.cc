/**
 * @file
 * Tests for the event-tracing subsystem (sim/trace_event.h):
 *
 *  - ring semantics: bounded, oldest-first iteration, loss accounting;
 *  - per-window aggregation at emit time (exact across ring wrap);
 *  - the replay diagnostics report and its column totals;
 *  - the Chrome trace-event JSON schema (metadata + event records);
 *  - the observation-only guarantee: a traced simulation produces
 *    bit-identical IterStats to an untraced one;
 *  - reconciliation: report totals equal the summed iteration rnr_*
 *    counters exactly (shared emit sites).
 */
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "harness/runner.h"
#include "sim/trace_event.h"

namespace rnr {
namespace {

TraceEvent
makeEvent(TraceEventType type, Tick tick, std::uint64_t arg = 0,
          std::uint32_t window = 0)
{
    TraceEvent e;
    e.tick = tick;
    e.arg = arg;
    e.window = window;
    e.type = type;
    return e;
}

TEST(TraceRingTest, HoldsEventsInOrderBelowCapacity)
{
    TraceRing ring(4);
    for (Tick t = 0; t < 3; ++t)
        ring.push(makeEvent(TraceEventType::CacheMiss, t));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.total(), 3u);
    EXPECT_EQ(ring.overwritten(), 0u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).tick, i);
}

TEST(TraceRingTest, WrapOverwritesOldestAndCountsLoss)
{
    TraceRing ring(4);
    for (Tick t = 0; t < 10; ++t)
        ring.push(makeEvent(TraceEventType::CacheMiss, t));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.total(), 10u);
    EXPECT_EQ(ring.overwritten(), 6u);
    // Residents are the newest four, returned oldest first.
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).tick, 6 + i) << "slot " << i;
}

TEST(TraceRingTest, ZeroRequestedCapacityClampsToOne)
{
    TraceRing ring(0);
    ring.push(makeEvent(TraceEventType::CacheMiss, 1));
    ring.push(makeEvent(TraceEventType::CacheMiss, 2));
    EXPECT_EQ(ring.capacity(), 1u);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.at(0).tick, 2u);
}

TEST(TraceEventTest, EveryTypeHasADistinctName)
{
    for (unsigned a = 0; a < kTraceEventTypeCount; ++a) {
        const std::string name =
            traceEventName(static_cast<TraceEventType>(a));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
        for (unsigned b = a + 1; b < kTraceEventTypeCount; ++b)
            EXPECT_NE(name,
                      traceEventName(static_cast<TraceEventType>(b)))
                << "types " << a << " and " << b;
    }
}

TEST(TraceCollectorTest, TrackLayoutFollowsCoreCount)
{
    TraceCollector tr(4, 16);
    EXPECT_EQ(tr.cores(), 4u);
    EXPECT_EQ(tr.memTrack(), 4u);
    EXPECT_EQ(tr.rnrTrack(), 5u);
    EXPECT_EQ(tr.trackCount(), 6u);
    for (std::uint16_t t = 0; t < tr.trackCount(); ++t)
        EXPECT_EQ(tr.ring(t).capacity(), 16u);
}

TEST(TraceCollectorTest, AggregatesSurviveRingWrap)
{
    // 2-event rings; the aggregates must still count every emit.
    TraceCollector tr(1, 2);
    const std::uint16_t rnr = tr.rnrTrack();
    tr.emit(rnr, TraceEventType::WindowOpen, 10, 0, /*pace=*/7,
            /*window=*/3);
    for (Tick t = 11; t < 16; ++t)
        tr.emit(rnr, TraceEventType::PfOntime, t, 0, 0, 3);
    tr.emit(rnr, TraceEventType::PfEarly, 16, 0, 0, 3);
    tr.emit(rnr, TraceEventType::PfLate, 17, 0, 0, 3);
    tr.emit(rnr, TraceEventType::PfOutOfWindow, 18, 0, 0, 3);
    tr.emit(rnr, TraceEventType::MetaRefillStall, 19, 0, /*cycles=*/42,
            3);

    // 10 emits into a 2-slot ring: 2 resident, 8 lost.
    EXPECT_EQ(tr.ring(rnr).size(), 2u);
    EXPECT_EQ(tr.ring(rnr).overwritten(), 8u);

    ASSERT_EQ(tr.windowTable().size(), 4u);
    const WindowDiag &w = tr.windowTable()[3];
    EXPECT_EQ(w.window, 3u);
    EXPECT_EQ(w.pace, 7u);
    EXPECT_EQ(w.ontime, 5u);
    EXPECT_EQ(w.early, 1u);
    EXPECT_EQ(w.late, 1u);
    EXPECT_EQ(w.out_of_window, 1u);
    EXPECT_EQ(w.refill_stalls, 1u);
}

TEST(TraceCollectorTest, AggregateOnlyHooksBypassTheRings)
{
    TraceCollector tr(1, 8);
    tr.countWindowDemand(2);
    tr.countWindowDemand(2);
    tr.countWindowIssue(2);
    EXPECT_EQ(tr.eventsTotal(), 0u);
    ASSERT_EQ(tr.windowTable().size(), 3u);
    EXPECT_EQ(tr.windowTable()[2].demands, 2u);
    EXPECT_EQ(tr.windowTable()[2].issued, 1u);
}

TEST(TraceCollectorTest, ReportSkipsUntouchedWindowsAndSumsTotals)
{
    TraceCollector tr(1, 8);
    const std::uint16_t rnr = tr.rnrTrack();
    // Touch windows 0 and 4; leave 1..3 untouched (dense table rows).
    tr.emit(rnr, TraceEventType::PfOntime, 1, 0, 0, 0);
    tr.emit(rnr, TraceEventType::PfEarly, 2, 0, 0, 4);
    tr.countWindowDemand(4);
    tr.countWindowIssue(0);

    const ReplayDiagnostics d = buildReplayDiagnostics(tr);
    ASSERT_EQ(d.windows.size(), 2u);
    EXPECT_EQ(d.windows[0].window, 0u);
    EXPECT_EQ(d.windows[1].window, 4u);
    EXPECT_EQ(d.total.ontime, 1u);
    EXPECT_EQ(d.total.early, 1u);
    EXPECT_EQ(d.total.demands, 1u);
    EXPECT_EQ(d.total.issued, 1u);

    const std::string text = formatReplayDiagnostics(d);
    EXPECT_NE(text.find("window"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

TEST(TraceEventTest, ChromeJsonCarriesMetadataAndTypedEvents)
{
    TraceCollector tr(2, 8);
    tr.emit(0, TraceEventType::CacheMiss, 100, 0x40, /*level=*/1);
    tr.emit(tr.memTrack(), TraceEventType::CacheFill, 200, 0x40,
            /*llc+pf=*/2 + 4);
    tr.emit(tr.rnrTrack(), TraceEventType::MetaRefillStall, 300, 0,
            /*cycles=*/17, /*window=*/5);
    tr.emit(tr.rnrTrack(), TraceEventType::ReplayStart, 400, 0, 123);

    const std::string json = chromeTraceJson(tr);

    // Top-level schema.
    EXPECT_EQ(json.find("{"), 0u);
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"otherData\""), std::string::npos);
    EXPECT_NE(json.find("\"events_total\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"cores\": 2"), std::string::npos);

    // One thread_name metadata record per track.
    EXPECT_NE(json.find("\"name\": \"core 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"core 1\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"mem (LLC+DRAM)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"rnr replay\""), std::string::npos);

    // Cache events fold the level (and prefetch bit) into the name.
    EXPECT_NE(json.find("\"name\": \"l2_miss\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"llc_fill_pf\""), std::string::npos);

    // Stalls are spans; everything else is an instant.
    EXPECT_NE(json.find("\"ph\": \"X\", \"dur\": 17"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"replay_start\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\", \"s\": \"t\""),
              std::string::npos);

    // Braces and brackets balance (cheap well-formedness proxy; the CI
    // job runs a real JSON parser over the tool's output).
    long braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        ASSERT_GE(braces, 0);
        ASSERT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// ---- End-to-end: tracing observes the simulation without touching it.

struct TracedRunFixture : ::testing::Test {
    static void
    SetUpTestSuite()
    {
        setenv("RNR_CACHE", "0", 1);
        unsetenv("RNR_TRACE");
        unsetenv("RNR_TRACE_BUF");
    }

    static ExperimentConfig
    rnrConfig()
    {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = "amazon";
        cfg.iterations = 2;
        cfg.cores = 2;
        cfg.prefetcher = PrefetcherKind::Rnr;
        return cfg;
    }
};

TEST_F(TracedRunFixture, TracedRunIsBitIdenticalToUntraced)
{
    const ExperimentConfig cfg = rnrConfig();
    const ExperimentResult plain = runExperimentTraced(cfg, nullptr);
    TraceCollector tr(cfg.cores, 4096);
    const ExperimentResult traced = runExperimentTraced(cfg, &tr);

    EXPECT_GT(tr.eventsTotal(), 0u) << "collector saw no events";
    ASSERT_EQ(plain.iterations.size(), traced.iterations.size());
    for (std::size_t i = 0; i < plain.iterations.size(); ++i) {
#define RNR_CHECK_FIELD(type, name)                                         \
        EXPECT_EQ(plain.iterations[i].name, traced.iterations[i].name)      \
            << "field " #name " diverged in iteration " << i;
        RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
    }
    EXPECT_EQ(plain.seq_table_bytes, traced.seq_table_bytes);
    EXPECT_EQ(plain.div_table_bytes, traced.div_table_bytes);
}

TEST_F(TracedRunFixture, ReportReconcilesExactlyWithIterationCounters)
{
    const ExperimentConfig cfg = rnrConfig();
    // Tiny rings force heavy wrap; the report must stay exact anyway.
    TraceCollector tr(cfg.cores, 64);
    const ExperimentResult res = runExperimentTraced(cfg, &tr);
    EXPECT_GT(tr.eventsOverwritten(), 0u)
        << "rings never wrapped; grow the workload or shrink the rings";

    std::uint64_t ontime = 0, early = 0, late = 0, oow = 0;
    for (const IterStats &it : res.iterations) {
        ontime += it.rnr_ontime;
        early += it.rnr_early;
        late += it.rnr_late;
        oow += it.rnr_out_of_window;
    }
    ASSERT_GT(ontime + early + late + oow, 0u)
        << "replay never classified a prefetch";

    const ReplayDiagnostics d = buildReplayDiagnostics(tr);
    EXPECT_EQ(d.total.ontime, ontime);
    EXPECT_EQ(d.total.early, early);
    EXPECT_EQ(d.total.late, late);
    EXPECT_EQ(d.total.out_of_window, oow);

    // The aggregate-only hooks fed the remaining report columns.
    EXPECT_GT(d.total.demands, 0u);
    EXPECT_GT(d.total.issued, 0u);
    ASSERT_FALSE(d.windows.empty());

    // Every classified prefetch is attributed to a real window row.
    std::uint64_t row_sum = 0;
    for (const WindowDiag &w : d.windows)
        row_sum += w.ontime + w.early + w.late + w.out_of_window;
    EXPECT_EQ(row_sum, ontime + early + late + oow);
}

TEST_F(TracedRunFixture, RnrLifecycleLandsOnTheRnrTrack)
{
    const ExperimentConfig cfg = rnrConfig();
    // Large enough that the rnr track (~125k events for this config)
    // never wraps; the busier core/mem tracks are allowed to.
    TraceCollector tr(cfg.cores, 1u << 17);
    runExperimentTraced(cfg, &tr);

    bool saw_record_start = false, saw_replay_start = false;
    bool saw_window_open = false, saw_meta_refill = false;
    const TraceRing &ring = tr.ring(tr.rnrTrack());
    ASSERT_EQ(ring.overwritten(), 0u)
        << "rnr ring wrapped; early lifecycle events were lost";
    for (std::size_t i = 0; i < ring.size(); ++i) {
        switch (ring.at(i).type) {
          case TraceEventType::RecordStart: saw_record_start = true; break;
          case TraceEventType::ReplayStart: saw_replay_start = true; break;
          case TraceEventType::WindowOpen: saw_window_open = true; break;
          case TraceEventType::MetaRefill: saw_meta_refill = true; break;
          default: break;
        }
    }
    EXPECT_TRUE(saw_record_start);
    EXPECT_TRUE(saw_replay_start);
    EXPECT_TRUE(saw_window_open);
    EXPECT_TRUE(saw_meta_refill);

    // Core and mem tracks saw cache traffic too.
    EXPECT_GT(tr.ring(0).total(), 0u);
    EXPECT_GT(tr.ring(tr.memTrack()).total(), 0u);
}

} // namespace
} // namespace rnr
