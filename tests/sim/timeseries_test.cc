#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/timeseries.h"

namespace rnr {
namespace {

// ---- TimeSeries: Perfetto-style auto-downsampling ----

TEST(TimeSeriesTest, KeepsEverythingBelowCapacity)
{
    TimeSeries s(8);
    for (Tick t = 0; t < 8; ++t)
        s.push(t * 10, t);
    ASSERT_EQ(s.points().size(), 8u);
    EXPECT_EQ(s.keepEvery(), 1u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(s.points()[i].tick, static_cast<Tick>(i * 10));
        EXPECT_EQ(s.points()[i].value, i);
    }
}

TEST(TimeSeriesTest, CompactsToEvenIndicesWhenFull)
{
    TimeSeries s(8);
    for (Tick t = 0; t < 9; ++t) // one past capacity
        s.push(t, t);
    // Compaction kept offers {0,2,4,6}; offer 8 is aligned to the new
    // factor 2, so it was retained too.
    ASSERT_EQ(s.points().size(), 5u);
    EXPECT_EQ(s.keepEvery(), 2u);
    const std::uint64_t expect[] = {0, 2, 4, 6, 8};
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(s.points()[i].value, expect[i]);
}

TEST(TimeSeriesTest, RepeatedCompactionStaysAligned)
{
    TimeSeries s(4);
    const std::uint64_t n = 64;
    for (std::uint64_t t = 0; t < n; ++t)
        s.push(t, t);
    EXPECT_LE(s.points().size(), 4u);
    EXPECT_EQ(s.offered(), n);
    // Invariant: a sample survives iff its offer index is a multiple of
    // the final decimation factor — and the survivors are in order.
    for (std::size_t i = 0; i < s.points().size(); ++i)
        EXPECT_EQ(s.points()[i].value, i * s.keepEvery());
}

TEST(TimeSeriesTest, SpansWholeRunAfterDownsampling)
{
    TimeSeries s(16);
    for (std::uint64_t t = 0; t < 1000; ++t)
        s.push(t, t);
    // First point is always offer 0; the last retained point is within
    // one decimation stride of the end, so the series spans the run.
    ASSERT_FALSE(s.points().empty());
    EXPECT_EQ(s.points().front().value, 0u);
    EXPECT_GE(s.points().back().value + s.keepEvery(), 1000u);
}

TEST(TimeSeriesTest, CapacityClampedToTwo)
{
    TimeSeries s(0);
    EXPECT_EQ(s.capacity(), 2u);
    s.push(0, 1);
    s.push(1, 2);
    s.push(2, 3);
    EXPECT_LE(s.points().size(), 2u);
}

// ---- Gauge ----

TEST(GaugeTest, SubSaturatesAtZero)
{
    Gauge g;
    g.set(5);
    g.sub(3);
    EXPECT_EQ(g.value(), 2u);
    g.sub(10);
    EXPECT_EQ(g.value(), 0u);
    g.add(7);
    EXPECT_EQ(g.value(), 7u);
}

// ---- Log2Histogram ----

TEST(Log2HistogramTest, BucketBoundaries)
{
    // bucket 0 = {0}, bucket i = [2^(i-1), 2^i).
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketHigh(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(5), 16u);
    EXPECT_EQ(Log2Histogram::bucketHigh(5), 31u);
}

TEST(Log2HistogramTest, RecordsIntoBitWidthBucket)
{
    Log2Histogram h;
    h.record(0);   // bucket 0
    h.record(1);   // bucket 1
    h.record(16);  // bucket 5
    h.record(31);  // bucket 5
    h.record(32);  // bucket 6
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 80u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(5), 2u);
    EXPECT_EQ(h.bucket(6), 1u);
    EXPECT_EQ(h.maxBucket(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 16.0);
}

TEST(Log2HistogramTest, EmptyHistogramIsWellDefined)
{
    const Log2Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxBucket(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// ---- TelemetrySampler ----

TEST(TelemetrySamplerTest, SamplesLevelProbesAtThePeriod)
{
    TelemetrySampler tm(100);
    std::uint64_t level = 7;
    tm.addSeries("q", [&level] { return level; });

    tm.maybeSample(0); // fires: next_ starts at 0
    level = 9;
    tm.maybeSample(50); // below period: no sample
    tm.maybeSample(100); // fires
    EXPECT_EQ(tm.samplesTaken(), 2u);

    const TimeSeries *s = tm.findSeries("q");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->points().size(), 2u);
    EXPECT_EQ(s->points()[0].value, 7u);
    EXPECT_EQ(s->points()[1].value, 9u);
}

TEST(TelemetrySamplerTest, RateSeriesScalesDeltaPerCycle)
{
    TelemetrySampler tm(100);
    std::uint64_t instrs = 0;
    tm.addRate("ipc_milli", [&instrs] { return instrs; }, 1000);

    tm.maybeSample(0); // establishes the baseline; rate 0
    instrs = 150;
    tm.maybeSample(100); // 150 instrs / 100 cycles = 1500 milli-IPC
    instrs = 150;
    tm.maybeSample(200); // no progress: rate 0

    const TimeSeries *s = tm.findSeries("ipc_milli");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->points().size(), 3u);
    EXPECT_EQ(s->points()[0].value, 0u);
    EXPECT_EQ(s->points()[1].value, 1500u);
    EXPECT_EQ(s->points()[2].value, 0u);
}

TEST(TelemetrySamplerTest, SeriesReferencesSurviveLaterRegistrations)
{
    TelemetrySampler tm(10);
    TimeSeries &first = tm.addSeries("a", [] { return 1u; });
    for (int i = 0; i < 100; ++i)
        tm.addSeries("s" + std::to_string(i), [] { return 0u; });
    tm.sample(0);
    // `first` must still be the live series, not a dangling reference.
    EXPECT_EQ(&first, tm.findSeries("a"));
    EXPECT_EQ(first.points().size(), 1u);
}

TEST(TelemetrySamplerTest, HistogramIsCreateOrGet)
{
    TelemetrySampler tm(10);
    Log2Histogram &h1 = tm.histogram("lat");
    h1.record(5);
    Log2Histogram &h2 = tm.histogram("lat");
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.count(), 1u);
}

TEST(TelemetrySamplerTest, HarvestCopiesSeriesAndNonEmptyHistograms)
{
    TelemetrySampler tm(100);
    std::uint64_t v = 3;
    tm.addSeries("depth", [&v] { return v; });
    tm.histogram("hot").record(42);
    tm.histogram("cold"); // never recorded: dropped from the blob
    tm.maybeSample(0);

    const TelemetryBlob blob = tm.harvest();
    EXPECT_EQ(blob.sample_cycles, 100u);
    EXPECT_EQ(blob.samples_taken, 1u);
    ASSERT_EQ(blob.series.size(), 1u);
    EXPECT_EQ(blob.series[0].name, "depth");
    ASSERT_EQ(blob.series[0].points.size(), 1u);
    EXPECT_EQ(blob.series[0].points[0].value, 3u);

    ASSERT_EQ(blob.histograms.size(), 1u);
    EXPECT_EQ(blob.histograms[0].name, "hot");
    EXPECT_EQ(blob.histograms[0].count, 1u);
    ASSERT_EQ(blob.histograms[0].buckets.size(), 1u);
    EXPECT_EQ(blob.histograms[0].buckets[0].first, 6u); // bit_width(42)

    EXPECT_NE(blob.findSeries("depth"), nullptr);
    EXPECT_EQ(blob.findSeries("missing"), nullptr);
    EXPECT_NE(blob.findHistogram("hot"), nullptr);
    EXPECT_EQ(blob.findHistogram("cold"), nullptr);
}

// ---- Environment gate ----

TEST(TelemetryEnvTest, SampleCyclesResolution)
{
    unsetenv("RNR_SAMPLE_CYCLES");
    EXPECT_EQ(telemetryEnvSampleCycles(), 0u);
    EXPECT_EQ(telemetrySampleCycles(0), kDefaultSampleCycles);
    EXPECT_EQ(telemetrySampleCycles(500), 500u);

    setenv("RNR_SAMPLE_CYCLES", "4096", 1);
    EXPECT_EQ(telemetryEnvSampleCycles(), 4096u);
    EXPECT_EQ(telemetrySampleCycles(0), 4096u);
    EXPECT_EQ(telemetrySampleCycles(500), 500u); // explicit wins

    setenv("RNR_SAMPLE_CYCLES", "junk", 1);
    EXPECT_EQ(telemetryEnvSampleCycles(), 0u);
    setenv("RNR_SAMPLE_CYCLES", "-5", 1);
    EXPECT_EQ(telemetryEnvSampleCycles(), 0u);
    unsetenv("RNR_SAMPLE_CYCLES");
}

} // namespace
} // namespace rnr
