#include <gtest/gtest.h>

#include "sim/stats.h"

namespace rnr {
namespace {

TEST(StatsTest, AddAndGet)
{
    StatGroup g("test");
    EXPECT_EQ(g.get("missing"), 0u);
    g.add("hits");
    g.add("hits", 4);
    EXPECT_EQ(g.get("hits"), 5u);
}

TEST(StatsTest, SetOverwrites)
{
    StatGroup g("test");
    g.add("gauge", 10);
    g.set("gauge", 3);
    EXPECT_EQ(g.get("gauge"), 3u);
}

TEST(StatsTest, ResetZeroesButKeepsKeys)
{
    StatGroup g("test");
    g.add("a", 7);
    g.add("b", 9);
    g.reset();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_EQ(g.get("b"), 0u);
    EXPECT_EQ(g.counters().size(), 2u);
}

TEST(StatsTest, DumpFormatsSortedLines)
{
    StatGroup g("grp");
    g.add("beta", 2);
    g.add("alpha", 1);
    const std::string d = g.dump();
    const auto a = d.find("grp.alpha = 1");
    const auto b = d.find("grp.beta = 2");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b); // map iteration gives sorted keys
}

} // namespace
} // namespace rnr
