#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace rnr {
namespace {

TEST(StatsTest, AddAndGet)
{
    StatGroup g("test");
    EXPECT_EQ(g.get("missing"), 0u);
    g.add("hits");
    g.add("hits", 4);
    EXPECT_EQ(g.get("hits"), 5u);
}

TEST(StatsTest, SetOverwrites)
{
    StatGroup g("test");
    g.add("gauge", 10);
    g.set("gauge", 3);
    EXPECT_EQ(g.get("gauge"), 3u);
}

TEST(StatsTest, ResetZeroesButKeepsKeys)
{
    StatGroup g("test");
    g.add("a", 7);
    g.add("b", 9);
    g.reset();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_EQ(g.get("b"), 0u);
    EXPECT_EQ(g.counters().size(), 2u);
}

TEST(StatsTest, DeclaredHandleAndStringViewAgree)
{
    StatGroup g("test");
    Counter &c = g.declare("events");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.get("events"), 5u);
    // The string API writes into the same cell the handle reads.
    g.add("events", 2);
    EXPECT_EQ(c.value(), 7u);
}

TEST(StatsTest, DuplicateDeclareReturnsSameCounter)
{
    StatGroup g("test");
    Counter &a = g.declare("shared");
    Counter &b = g.declare("shared");
    EXPECT_EQ(&a, &b);
    ++a;
    EXPECT_EQ(b.value(), 1u);
    EXPECT_EQ(g.counters().size(), 1u);
}

TEST(StatsTest, ResetZeroesInPlaceKeepingHandlesValid)
{
    StatGroup g("test");
    Counter &c = g.declare("events");
    c += 41;
    g.reset();
    EXPECT_EQ(c.value(), 0u);
    // The handle still aliases the registry cell after reset.
    ++c;
    EXPECT_EQ(g.get("events"), 1u);
}

TEST(StatsTest, HandlesSurviveLaterDeclares)
{
    // std::map storage gives stable addresses: declaring more counters
    // must not move earlier cells.
    StatGroup g("test");
    Counter &first = g.declare("a");
    for (int i = 0; i < 64; ++i)
        g.declare("k" + std::to_string(i));
    ++first;
    EXPECT_EQ(g.get("a"), 1u);
}

TEST(StatsTest, RenameKeepsValuesAndHandles)
{
    StatGroup g("before");
    Counter &c = g.declare("events");
    c += 3;
    g.rename("after.0");
    EXPECT_EQ(g.get("events"), 3u);
    ++c;
    EXPECT_EQ(g.get("events"), 4u);
    EXPECT_NE(g.dump().find("after.0.events = 4"), std::string::npos);
}

TEST(StatsTest, MaxWithTracksRunningMaximum)
{
    StatGroup g("test");
    Counter &c = g.declare("peak");
    c.maxWith(7);
    c.maxWith(3);
    EXPECT_EQ(c.value(), 7u);
    c.maxWith(11);
    EXPECT_EQ(g.get("peak"), 11u);
}

TEST(StatsTest, DumpFormatsSortedLines)
{
    StatGroup g("grp");
    g.add("beta", 2);
    g.add("alpha", 1);
    const std::string d = g.dump();
    const auto a = d.find("grp.alpha = 1");
    const auto b = d.find("grp.beta = 2");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b); // dump() sorts explicitly, whatever the container
}

TEST(StatsTest, DumpIsFullySortedRegardlessOfInsertionOrder)
{
    // Adversarial insertion order; every line of the dump must come out
    // in lexicographic key order so dumps diff cleanly across runs.
    StatGroup g("grp");
    for (const char *key : {"zeta", "m10", "alpha", "m2", "omega",
                            "beta", "m1"})
        g.add(key, 1);
    const std::string d = g.dump();
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < d.size()) {
        const std::size_t nl = d.find('\n', pos);
        lines.push_back(d.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_EQ(lines.size(), 7u);
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_LT(lines[i - 1], lines[i])
            << "line " << i << " out of order";
    // Lexicographic, not numeric: m1 < m10 < m2.
    EXPECT_EQ(lines[2], "grp.m1 = 1");
    EXPECT_EQ(lines[3], "grp.m10 = 1");
    EXPECT_EQ(lines[4], "grp.m2 = 1");
}

} // namespace
} // namespace rnr
