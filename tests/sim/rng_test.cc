#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rnr {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next64() == b.next64();
    EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next64();
    a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose tolerance for 10k samples.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

class RngBoundTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundTest, BelowStaysInRange)
{
    const std::uint64_t bound = GetParam();
    Rng r(11);
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = r.below(bound);
        ASSERT_LT(v, bound);
        max_seen = std::max(max_seen, v);
    }
    // The generator should cover most of the range.
    if (bound > 16) {
        EXPECT_GT(max_seen, bound / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1, 2, 7, 100, 65536,
                                           std::uint64_t{1} << 32));

} // namespace
} // namespace rnr
