/**
 * @file
 * Tests for the shared log2-bucketing core (sim/log2_hist.h) that both
 * histogram façades — rnr::Log2Histogram (plain cells) and
 * obs::Histogram (atomic cells) — are built on.  The façades' own
 * behaviour stays covered by sim/timeseries_test.cc and
 * obs/metrics_test.cc; this file pins down the bucket math itself.
 */
#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

#include "sim/log2_hist.h"

namespace rnr {
namespace {

TEST(Log2Buckets, ZeroGetsItsOwnBucket)
{
    EXPECT_EQ(log2b::index(0), 0u);
    EXPECT_EQ(log2b::low(0), 0u);
    EXPECT_EQ(log2b::high(0), 0u);
}

TEST(Log2Buckets, PowerOfTwoEdges)
{
    // Bucket i >= 1 holds [2^(i-1), 2^i - 1].
    for (unsigned i = 1; i < 64; ++i) {
        EXPECT_EQ(log2b::index(log2b::low(i)), i);
        EXPECT_EQ(log2b::index(log2b::high(i)), i);
        EXPECT_EQ(log2b::index(log2b::high(i) + 1), i + 1);
        EXPECT_EQ(log2b::high(i) + 1, log2b::low(i + 1));
    }
}

TEST(Log2Buckets, TopBucketSaturates)
{
    const std::uint64_t max = ~std::uint64_t{0};
    EXPECT_EQ(log2b::index(max), 64u);
    EXPECT_EQ(log2b::high(64), max);
    EXPECT_EQ(log2b::high(99), max); // out-of-range i never overflows
    EXPECT_LT(log2b::index(max), log2b::kBuckets);
}

template <class Cell>
void
exerciseCore()
{
    BasicLog2Histogram<Cell> h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxBucket(), 0u);

    h.record(0);
    h.record(1);
    h.record(7);
    h.record(8);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 16u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.bucket(0), 1u); // {0}
    EXPECT_EQ(h.bucket(1), 1u); // {1}
    EXPECT_EQ(h.bucket(3), 1u); // [4,7]
    EXPECT_EQ(h.bucket(4), 1u); // [8,15]
    EXPECT_EQ(h.bucket(99), 0u); // out-of-range read is safe
    EXPECT_EQ(h.maxBucket(), 5u);

    h.resetForTest();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.maxBucket(), 0u);
}

TEST(BasicLog2Histogram, PlainCells)
{
    exerciseCore<std::uint64_t>();
}

TEST(BasicLog2Histogram, AtomicCells)
{
    exerciseCore<std::atomic<std::uint64_t>>();
}

} // namespace
} // namespace rnr
