/**
 * @file
 * Unit tests for the attribution collector (sim/attrib.h): the site-id
 * grammar, the exact-totals-despite-folding invariant, deterministic
 * top-K eviction, the recently-evicted-victim pollution filter, the
 * replay-window cap, harvest ordering, and the rnr-attrib-v1 JSON
 * surface.  Simulation-level reconciliation against real IterStats
 * lives in tests/harness/attrib_reconcile_test.cc.
 */
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "sim/attrib.h"

namespace rnr {
namespace {

TEST(AttribSiteGrammar, RnrSitesCarryBit31AndTheCoreId)
{
    EXPECT_EQ(attribRnrSite(0), 0x8000'0000u);
    EXPECT_EQ(attribRnrSite(3), 0x8000'0003u);
    EXPECT_TRUE(attribSiteIsRnr(attribRnrSite(7)));
    EXPECT_FALSE(attribSiteIsRnr(0));          // "no site"
    EXPECT_FALSE(attribSiteIsRnr(0x00401a2cu)); // a trigger PC
}

TEST(AttribSiteGrammar, RegionsAre4KiBGranules)
{
    const unsigned blocks_per_region = 1u << kAttribRegionShift;
    EXPECT_EQ(blocks_per_region * kBlockSize, 4096u);
    EXPECT_EQ(attribRegion(0), 0u);
    EXPECT_EQ(attribRegion(blocks_per_region - 1), 0u);
    EXPECT_EQ(attribRegion(blocks_per_region), 1u);
}

TEST(AttribCollector, TotalsSurviveTableFolds)
{
    // Tiny tables so every insert past the second folds something.
    AttribCollector at(/*site_top_k=*/2, /*region_top_k=*/2);
    const unsigned stride = 1u << kAttribRegionShift; // one block/region
    for (std::uint32_t s = 1; s <= 10; ++s)
        at.onIssued(s, Addr(s) * stride);

    const AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.issued, 10u);
    EXPECT_EQ(b.sites.size(), 2u);
    EXPECT_EQ(b.regions.size(), 2u);
    EXPECT_EQ(b.sites_tracked, 10u);
    EXPECT_EQ(b.regions_tracked, 10u);

    // Tables + "other" buckets always re-sum to the exact totals.
    std::uint64_t site_sum = b.site_other.issued;
    for (const auto &r : b.sites)
        site_sum += r.stats.issued;
    EXPECT_EQ(site_sum, b.totals.issued);
    std::uint64_t region_sum = b.region_other.issued;
    for (const auto &r : b.regions)
        region_sum += r.stats.issued;
    EXPECT_EQ(region_sum, b.totals.issued);
}

TEST(AttribCollector, FoldEvictsLeastActiveSiteSmallestIdOnTies)
{
    AttribCollector at(/*site_top_k=*/2, /*region_top_k=*/64);
    at.onIssued(5, 0);
    at.onIssued(5, 0);
    at.onIssued(5, 0);
    at.onIssued(9, 0); // both tracked, 5 is the busier one
    at.onIssued(2, 0); // full: folds 9 (total 1 < 3)

    AttribBlob b = at.harvest();
    ASSERT_EQ(b.sites.size(), 2u);
    EXPECT_EQ(b.sites[0].site, 5u); // sorted by descending activity
    EXPECT_EQ(b.sites[1].site, 2u);
    EXPECT_EQ(b.site_other.issued, 1u);

    // Tie on total(): the smallest site id is the victim.
    AttribCollector tie(/*site_top_k=*/2, /*region_top_k=*/64);
    tie.onIssued(8, 0);
    tie.onIssued(4, 0);
    tie.onIssued(6, 0); // 8 and 4 tie at total 1 -> 4 folds
    b = tie.harvest();
    ASSERT_EQ(b.sites.size(), 2u);
    EXPECT_EQ(b.sites[0].site, 6u); // ties in harvest sort: ascending id
    EXPECT_EQ(b.sites[1].site, 8u);
    EXPECT_EQ(b.site_other.issued, 1u);
    EXPECT_EQ(b.sites_tracked, 3u);
}

TEST(AttribCollector, PollutionChargeConsumesTheFilterEntry)
{
    AttribCollector at;
    at.onPrefetchEvictsDemand(/*core=*/0, /*site=*/9, /*victim=*/100);
    at.onDemandMiss(0, 100);
    at.onDemandMiss(0, 100); // consumed: no double charge

    const AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.pollution, 1u);
    EXPECT_EQ(b.pollution_filter_inserts, 1u);
    EXPECT_EQ(b.pollution_filter_hits, 1u);
    ASSERT_EQ(b.sites.size(), 1u);
    EXPECT_EQ(b.sites[0].site, 9u);
    EXPECT_EQ(b.sites[0].stats.pollution, 1u);
}

TEST(AttribCollector, PollutionFilterMissesAndCollisions)
{
    AttribCollector at;
    at.onDemandMiss(0, 77); // empty filter: nothing charged
    at.onDemandMiss(3, 77); // core never even allocated a filter

    at.onPrefetchEvictsDemand(0, 1, 50);
    at.onDemandMiss(0, 51);    // wrong block, same-ish neighborhood
    at.onDemandMiss(1, 50);    // right block, wrong core
    const Addr alias = 50 + AttribCollector::kVictimFilterEntries;
    at.onPrefetchEvictsDemand(0, 2, alias); // direct-mapped collision
    at.onDemandMiss(0, 50);    // overwritten: no charge
    at.onDemandMiss(0, alias); // the surviving entry charges site 2

    const AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.pollution, 1u);
    EXPECT_EQ(b.pollution_filter_inserts, 2u);
    EXPECT_EQ(b.pollution_filter_hits, 1u);
    ASSERT_EQ(b.sites.size(), 1u);
    EXPECT_EQ(b.sites[0].site, 2u);
}

TEST(AttribCollector, WindowsPastTheCapFoldIntoOverflow)
{
    AttribCollector at;
    at.onRnrClass(RnrTimeliness::OnTime, 0);
    at.onRnrClass(RnrTimeliness::Early, 2);
    at.onRnrClass(RnrTimeliness::Late, 2);
    at.onRnrClass(RnrTimeliness::OutOfWindow,
                  AttribCollector::kMaxWindows); // past the cap
    at.onRnrClass(RnrTimeliness::Late, AttribCollector::kMaxWindows + 7);

    const AttribBlob b = at.harvest();
    ASSERT_EQ(b.windows.size(), 3u); // dense 0..2
    EXPECT_EQ(b.windows[0].ontime, 1u);
    EXPECT_EQ(b.windows[1].ontime + b.windows[1].early +
                  b.windows[1].late + b.windows[1].out_of_window,
              0u);
    EXPECT_EQ(b.windows[2].early, 1u);
    EXPECT_EQ(b.windows[2].late, 1u);
    EXPECT_EQ(b.window_overflow.out_of_window, 1u);
    EXPECT_EQ(b.window_overflow.late, 1u);

    // Class totals include the overflowed windows.
    EXPECT_EQ(b.rnr_ontime, 1u);
    EXPECT_EQ(b.rnr_early, 1u);
    EXPECT_EQ(b.rnr_late, 2u);
    EXPECT_EQ(b.rnr_out_of_window, 1u);
}

TEST(AttribCollector, HarvestOrdersSitesByActivityAndRegionsByAddress)
{
    AttribCollector at;
    const unsigned stride = 1u << kAttribRegionShift;
    at.onIssued(30, 5 * stride);
    at.onUseful(30, 5 * stride);
    at.onIssued(10, 2 * stride);
    at.onIssued(20, 9 * stride);
    at.onLateMerged(20, 9 * stride);
    at.onEvictedUnused(20, 9 * stride);

    const AttribBlob b = at.harvest();
    ASSERT_EQ(b.sites.size(), 3u);
    EXPECT_EQ(b.sites[0].site, 20u); // total 3
    EXPECT_EQ(b.sites[1].site, 30u); // total 2
    EXPECT_EQ(b.sites[2].site, 10u); // total 1
    ASSERT_EQ(b.regions.size(), 3u);
    EXPECT_EQ(b.regions[0].region, 2u);
    EXPECT_EQ(b.regions[1].region, 5u);
    EXPECT_EQ(b.regions[2].region, 9u);
}

TEST(AttribJson, CarriesSchemaTagAndExactCounts)
{
    AttribCollector at;
    at.onIssued(attribRnrSite(1), 4);
    at.onRnrClass(RnrTimeliness::OnTime, 0);
    const std::string js = attribJson(at.harvest());

    EXPECT_NE(js.find("\"schema\": \"rnr-attrib-v1\""), std::string::npos);
    EXPECT_NE(js.find("\"totals\": {\"issued\": 1"), std::string::npos);
    EXPECT_NE(js.find("\"site\": 2147483649, \"rnr\": true"),
              std::string::npos);
    EXPECT_NE(js.find("\"rnr\": {\"ontime\": 1"), std::string::npos);
    EXPECT_EQ(js.find('\n'), std::string::npos); // one line, no newline
}

TEST(AttribEnv, GateFollowsRnrAttrib)
{
    unsetenv("RNR_ATTRIB");
    EXPECT_FALSE(attribEnvEnabled());
    setenv("RNR_ATTRIB", "0", 1);
    EXPECT_FALSE(attribEnvEnabled());
    setenv("RNR_ATTRIB", "1", 1);
    EXPECT_TRUE(attribEnvEnabled());
    unsetenv("RNR_ATTRIB");
}

} // namespace
} // namespace rnr
