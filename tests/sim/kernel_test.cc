/**
 * @file
 * Unit tests for the simulation-kernel plumbing: RNR_KERNEL mode
 * selection (sim/kernel.h) and the Ring FIFO backing the core model's
 * ROB/LSQ queues (sim/ring.h).
 */
#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/kernel.h"
#include "sim/ring.h"

namespace rnr {
namespace {

class KernelModeEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv("RNR_KERNEL"); }
    void TearDown() override { unsetenv("RNR_KERNEL"); }
};

TEST_F(KernelModeEnvTest, UnsetDefaultsToBatched)
{
    EXPECT_EQ(kernelModeFromEnv(), KernelMode::Batched);
}

TEST_F(KernelModeEnvTest, LegacySelectsSeedPath)
{
    setenv("RNR_KERNEL", "legacy", 1);
    EXPECT_EQ(kernelModeFromEnv(), KernelMode::Legacy);
}

TEST_F(KernelModeEnvTest, UnknownValueFallsBackToBatched)
{
    setenv("RNR_KERNEL", "turbo", 1);
    EXPECT_EQ(kernelModeFromEnv(), KernelMode::Batched);
    setenv("RNR_KERNEL", "", 1);
    EXPECT_EQ(kernelModeFromEnv(), KernelMode::Batched);
}

TEST(KernelModeTest, NamesAreStable)
{
    EXPECT_STREQ(kernelModeName(KernelMode::Batched), "batched");
    EXPECT_STREQ(kernelModeName(KernelMode::Legacy), "legacy");
}

TEST(RingTest, StartsEmpty)
{
    Ring<int> r(4);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
}

TEST(RingTest, FifoOrder)
{
    Ring<int> r(4);
    r.push_back(1);
    r.push_back(2);
    r.push_back(3);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.front(), 1);
    r.pop_front();
    EXPECT_EQ(r.front(), 2);
    r.pop_front();
    r.push_back(4);
    EXPECT_EQ(r.front(), 3);
    r.pop_front();
    EXPECT_EQ(r.front(), 4);
    r.pop_front();
    EXPECT_TRUE(r.empty());
}

TEST(RingTest, AtIndexesFromFront)
{
    Ring<int> r(8);
    // Force the window to wrap around the physical array.
    for (int i = 0; i < 6; ++i)
        r.push_back(i);
    for (int i = 0; i < 5; ++i)
        r.pop_front();
    for (int i = 10; i < 16; ++i)
        r.push_back(i);
    ASSERT_EQ(r.size(), 7u);
    EXPECT_EQ(r.at(0), 5);
    for (std::size_t i = 1; i < r.size(); ++i)
        EXPECT_EQ(r.at(i), static_cast<int>(9 + i));
}

TEST(RingTest, GrowsPastReservedCapacityPreservingOrder)
{
    Ring<int> r(2);
    // Push far beyond the reserved capacity; the ring must grow and
    // keep FIFO order rather than assert or overwrite.
    for (int i = 0; i < 100; ++i)
        r.push_back(i);
    ASSERT_EQ(r.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.front(), i);
        r.pop_front();
    }
    EXPECT_TRUE(r.empty());
}

TEST(RingTest, GrowthWithWrappedWindow)
{
    Ring<int> r(4);
    // Wrap the head first, then overflow: grow() must re-linearise the
    // wrapped window correctly.
    for (int i = 0; i < 4; ++i)
        r.push_back(i);
    r.pop_front();
    r.pop_front();
    for (int i = 4; i < 20; ++i)
        r.push_back(i);
    ASSERT_EQ(r.size(), 18u);
    for (int i = 2; i < 20; ++i) {
        EXPECT_EQ(r.front(), i);
        r.pop_front();
    }
}

TEST(RingTest, ClearKeepsCapacity)
{
    Ring<int> r(4);
    r.push_back(7);
    r.clear();
    EXPECT_TRUE(r.empty());
    r.push_back(9);
    EXPECT_EQ(r.front(), 9);
}

TEST(RingTest, ResetReservesRequestedCapacity)
{
    Ring<int> r(1);
    r.reset(192); // non-power-of-two; rounds up internally
    for (int i = 0; i < 192; ++i)
        r.push_back(i);
    EXPECT_EQ(r.size(), 192u);
    EXPECT_EQ(r.front(), 0);
}

} // namespace
} // namespace rnr
