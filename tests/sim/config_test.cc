#include <gtest/gtest.h>

#include "sim/config.h"

namespace rnr {
namespace {

TEST(ConfigTest, PaperBaselineMatchesTableII)
{
    const MachineConfig m = MachineConfig::paperBaseline();
    EXPECT_EQ(m.cores, 4u);
    EXPECT_EQ(m.core.issue_width, 4u);
    EXPECT_EQ(m.core.rob_size, 256u);
    EXPECT_EQ(m.core.lsq_size, 64u);
    EXPECT_EQ(m.l1d.size_bytes, 64u * 1024);
    EXPECT_EQ(m.l2.size_bytes, 256u * 1024);
    EXPECT_EQ(m.llc.size_bytes, 8u * 1024 * 1024);
    EXPECT_EQ(m.l2.mshrs, 16u);
    EXPECT_EQ(m.llc.mshrs, 128u);
    EXPECT_TRUE(m.llc.shared);
    EXPECT_FALSE(m.l2.shared);
    EXPECT_EQ(m.dram.read_queue, 64u);
    EXPECT_EQ(m.dram.write_queue, 32u);
    EXPECT_DOUBLE_EQ(m.dram.drain_high, 0.75);
    EXPECT_DOUBLE_EQ(m.dram.drain_low, 0.25);
}

TEST(ConfigTest, ScaledDefaultKeepsStructure)
{
    const MachineConfig m = MachineConfig::scaledDefault();
    EXPECT_EQ(m.cores, 4u);
    // Capacity order is preserved: L1 < L2 < LLC.
    EXPECT_LT(m.l1d.size_bytes, m.l2.size_bytes);
    EXPECT_LT(m.l2.size_bytes, m.llc.size_bytes);
    // The scaled machine shrinks each level relative to the paper's.
    const MachineConfig p = MachineConfig::paperBaseline();
    EXPECT_LT(m.l1d.size_bytes, p.l1d.size_bytes);
    EXPECT_LT(m.llc.size_bytes, p.llc.size_bytes);
}

TEST(ConfigTest, SetCountsArePowersOfTwo)
{
    for (const MachineConfig &m :
         {MachineConfig::paperBaseline(), MachineConfig::scaledDefault()}) {
        for (const CacheConfig *c : {&m.l1d, &m.l2, &m.llc}) {
            const unsigned sets = c->sets();
            EXPECT_GT(sets, 0u) << c->name;
            EXPECT_EQ(sets & (sets - 1), 0u) << c->name;
        }
    }
}

TEST(ConfigTest, InfiniteLlcCoversScaledInputs)
{
    const MachineConfig m =
        MachineConfig::withInfiniteLlc(MachineConfig::scaledDefault());
    // Must dwarf every scaled input (largest ~16 MB).
    EXPECT_GE(m.llc.size_bytes, std::uint64_t{32} << 20);
    // Other levels unchanged.
    EXPECT_EQ(m.l2.size_bytes, MachineConfig::scaledDefault().l2.size_bytes);
}

TEST(ConfigTest, DescribeMentionsEveryLevel)
{
    const std::string d = MachineConfig::paperBaseline().describe();
    EXPECT_NE(d.find("L1D"), std::string::npos);
    EXPECT_NE(d.find("L2"), std::string::npos);
    EXPECT_NE(d.find("LLC"), std::string::npos);
    EXPECT_NE(d.find("DRAM"), std::string::npos);
}

} // namespace
} // namespace rnr
