#include <gtest/gtest.h>

#include "workloads/jacobi.h"
#include "workloads/sparse_gen.h"

namespace rnr {
namespace {

WorkloadOptions
opts()
{
    WorkloadOptions o;
    o.cores = 2;
    return o;
}

std::vector<TraceBuffer>
emit(JacobiWorkload &wl, unsigned iter, bool last)
{
    std::vector<TraceBuffer> bufs(wl.cores());
    wl.emitIteration(iter, last, bufs);
    return bufs;
}

TEST(JacobiTest, ConvergesToOnesOnDominantMatrix)
{
    JacobiWorkload wl(makeStencilMatrix(6, 6, 6), opts());
    for (unsigned it = 0; it < 60; ++it)
        emit(wl, it, it == 59);
    EXPECT_LT(wl.lastDelta(), 1e-4);
    for (double xi : wl.solution())
        ASSERT_NEAR(xi, 1.0, 1e-3);
}

TEST(JacobiTest, DeltaShrinksMonotonically)
{
    JacobiWorkload wl(makeStencilMatrix(8, 8, 4), opts());
    emit(wl, 0, false);
    double prev = wl.lastDelta();
    for (unsigned it = 1; it < 10; ++it) {
        emit(wl, it, false);
        EXPECT_LE(wl.lastDelta(), prev * 1.0001) << it;
        prev = wl.lastDelta();
    }
}

TEST(JacobiTest, SwapProtocolEmittedEachIteration)
{
    JacobiWorkload wl(makeStencilMatrix(4, 4, 4), opts());
    auto bufs = emit(wl, 0, false);
    const auto &recs = bufs[0].records();
    // Setup declares both x buffers; epilogue swaps the enable.
    EXPECT_EQ(recs[1].ctrl, RnrOp::AddrBaseSet);
    EXPECT_EQ(recs[2].ctrl, RnrOp::AddrBaseSet);
    EXPECT_EQ(recs[recs.size() - 2].ctrl, RnrOp::AddrDisable);
    EXPECT_EQ(recs[recs.size() - 1].ctrl, RnrOp::AddrEnable);
}

TEST(JacobiTest, OddIterationTracesRepeat)
{
    JacobiWorkload wl(makeBandedScatterMatrix(512, 16, 8, 0.3, 7),
                      opts());
    emit(wl, 0, false);
    auto a = emit(wl, 1, false);
    emit(wl, 2, false);
    auto b = emit(wl, 3, false);
    ASSERT_EQ(a[0].size(), b[0].size());
    for (std::size_t i = 0; i < a[0].size(); ++i)
        ASSERT_EQ(a[0].records()[i].addr, b[0].records()[i].addr) << i;
}

TEST(JacobiTest, ImpSnifferDescribesColumnArray)
{
    JacobiWorkload wl(makeStencilMatrix(4, 4, 4), opts());
    IndexSniffer s = wl.impSniffer(0);
    ASSERT_TRUE(static_cast<bool>(s.value_of));
    EXPECT_GT(s.index_count, 0u);
    EXPECT_EQ(s.value_of(0), wl.matrix().col[wl.matrix().row_ptr[0]]);
}

} // namespace
} // namespace rnr
