#include <gtest/gtest.h>

#include "workloads/sparse_gen.h"
#include "workloads/spcg.h"

namespace rnr {
namespace {

WorkloadOptions
opts()
{
    WorkloadOptions o;
    o.cores = 2;
    return o;
}

std::vector<TraceBuffer>
emit(SpcgWorkload &wl, unsigned iter, bool last)
{
    std::vector<TraceBuffer> bufs(wl.cores());
    wl.emitIteration(iter, last, bufs);
    return bufs;
}

TEST(SpcgTest, ResidualDecreasesMonotonically)
{
    SpcgWorkload wl(makeStencilMatrix(8, 8, 8), opts());
    double prev = wl.residualNorm2();
    for (unsigned it = 0; it < 10; ++it) {
        emit(wl, it, it == 9);
        EXPECT_LE(wl.residualNorm2(), prev * 1.0001) << it;
        prev = wl.residualNorm2();
    }
}

TEST(SpcgTest, SolvesToKnownSolution)
{
    // b was built as A * ones, so x converges to all-ones.
    SpcgWorkload wl(makeStencilMatrix(6, 6, 6), opts());
    for (unsigned it = 0; it < 40; ++it)
        emit(wl, it, it == 39);
    for (double xi : wl.solution())
        ASSERT_NEAR(xi, 1.0, 1e-3);
}

TEST(SpcgTest, TraceCoversSpmvAndVectorPhases)
{
    SpcgWorkload wl(makeStencilMatrix(6, 6, 6), opts());
    auto bufs = emit(wl, 0, false);
    const SparseMatrix &A = wl.matrix();
    std::uint64_t loads = 0, stores = 0;
    for (const auto &b : bufs) {
        loads += b.loads();
        stores += b.stores();
    }
    // SpMV: n row_ptr + 3nnz (col, val, p); dots/axpys: 8n loads.
    EXPECT_EQ(loads, A.n + 3 * A.nnz() + 8 * A.n);
    // q store + x + r + p update stores.
    EXPECT_EQ(stores, 4u * A.n);
}

TEST(SpcgTest, RnrTargetsThePVector)
{
    SpcgWorkload wl(makeStencilMatrix(6, 6, 6), opts());
    auto bufs = emit(wl, 0, false);
    const auto &recs = bufs[0].records();
    EXPECT_EQ(recs[0].ctrl, RnrOp::Init);
    EXPECT_EQ(recs[1].ctrl, RnrOp::AddrBaseSet);
    const AddressSpace::Region *r = wl.space().find("cg_p");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(recs[1].addr, r->base);
    EXPECT_EQ(recs[1].aux, wl.matrix().n * sizeof(double));
}

TEST(SpcgTest, IrregularAccessSequenceRepeats)
{
    SpcgWorkload wl(makeBandedScatterMatrix(512, 16, 8, 0.3, 5), opts());
    auto a = emit(wl, 1, false);
    auto b = emit(wl, 2, false);
    ASSERT_EQ(a[0].size(), b[0].size());
    for (std::size_t i = 0; i < a[0].size(); ++i)
        ASSERT_EQ(a[0].records()[i].addr, b[0].records()[i].addr) << i;
}

TEST(SpcgTest, WindowSizeOverridePropagates)
{
    WorkloadOptions o = opts();
    o.window_size = 64;
    SpcgWorkload wl(makeStencilMatrix(4, 4, 4), o);
    auto bufs = emit(wl, 0, false);
    bool saw = false;
    for (const auto &r : bufs[0].records())
        saw |= r.kind == RecordKind::Control &&
               r.ctrl == RnrOp::WindowSizeSet && r.addr == 64;
    EXPECT_TRUE(saw);
}

} // namespace
} // namespace rnr
