#include <gtest/gtest.h>

#include "workloads/sparse_gen.h"

namespace rnr {
namespace {

class MatrixInputTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MatrixInputTest, RegistryProducesValidSpdMatrices)
{
    const MatrixInput in = makeMatrixInput(GetParam());
    const SparseMatrix &m = in.matrix;
    EXPECT_GT(m.n, 10000u);
    EXPECT_EQ(m.row_ptr.size(), m.n + 1u);
    EXPECT_EQ(m.row_ptr.back(), m.nnz());
    // Spot-check diagonal dominance on a sample of rows.
    for (std::uint32_t i = 0; i < m.n; i += m.n / 97 + 1) {
        double diag = 0, off = 0;
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
            if (m.col[e] == i)
                diag = m.val[e];
            else
                off += std::abs(m.val[e]);
        }
        ASSERT_GT(diag, off) << GetParam() << " row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(TableIII, MatrixInputTest,
                         ::testing::ValuesIn(matrixInputNames()));

TEST(SparseGenTest, StencilIsBanded)
{
    SparseMatrix m = makeStencilMatrix(8, 8, 8);
    EXPECT_EQ(m.n, 512u);
    // Off-diagonals of a 7-point stencil stay within +-nx*ny.
    for (std::uint32_t i = 0; i < m.n; ++i) {
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
            const std::int64_t d =
                std::int64_t(m.col[e]) - std::int64_t(i);
            ASSERT_LE(std::abs(d), 64);
        }
    }
}

TEST(SparseGenTest, ScatterFractionAddsFarEntries)
{
    SparseMatrix banded =
        makeBandedScatterMatrix(4096, 16, 8, 0.0, 1);
    SparseMatrix scattered =
        makeBandedScatterMatrix(4096, 16, 8, 0.5, 1);
    auto far_entries = [](const SparseMatrix &m) {
        std::uint64_t far = 0;
        for (std::uint32_t i = 0; i < m.n; ++i) {
            for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1];
                 ++e) {
                if (std::abs(std::int64_t(m.col[e]) - std::int64_t(i)) >
                    64)
                    ++far;
            }
        }
        return far;
    };
    EXPECT_EQ(far_entries(banded), 0u);
    EXPECT_GT(far_entries(scattered), 1000u);
}

TEST(SparseGenTest, KktCouplesConstraintRowsToPrimal)
{
    SparseMatrix m = makeKktMatrix(2048, 16);
    const std::uint32_t half = m.n / 2;
    std::uint64_t cross = 0;
    for (std::uint32_t i = half; i < m.n; ++i) {
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
            cross += m.col[e] < half;
    }
    EXPECT_GT(cross, std::uint64_t{half});
}

TEST(SparseGenTest, ClusteredMatrixDenseRows)
{
    SparseMatrix m = makeClusteredMatrix(4096, 128, 24);
    EXPECT_GT(static_cast<double>(m.nnz()) / m.n, 20.0);
}

TEST(SparseGenTest, UnknownInputThrows)
{
    EXPECT_THROW(makeMatrixInput("nope"), std::invalid_argument);
}

} // namespace
} // namespace rnr
