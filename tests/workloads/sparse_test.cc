#include <gtest/gtest.h>

#include "workloads/sparse.h"

namespace rnr {
namespace {

SparseMatrix
chain(std::uint32_t n)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    for (std::uint32_t i = 0; i + 1 < n; ++i)
        entries.emplace_back(i, i + 1);
    return SparseMatrix::fromPattern(n, std::move(entries));
}

TEST(SparseTest, PatternIsSymmetric)
{
    SparseMatrix m = chain(8);
    // Every (i, j) off-diagonal has its mirror (j, i).
    for (std::uint32_t i = 0; i < m.n; ++i) {
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
            const std::uint32_t j = m.col[e];
            if (j == i)
                continue;
            bool mirrored = false;
            for (std::uint32_t f = m.row_ptr[j]; f < m.row_ptr[j + 1];
                 ++f)
                mirrored |= m.col[f] == i;
            ASSERT_TRUE(mirrored) << i << "," << j;
        }
    }
}

TEST(SparseTest, DiagonallyDominant)
{
    SparseMatrix m = chain(16);
    for (std::uint32_t i = 0; i < m.n; ++i) {
        double diag = 0, off = 0;
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
            if (m.col[e] == i)
                diag = m.val[e];
            else
                off += std::abs(m.val[e]);
        }
        ASSERT_GT(diag, off) << i; // strictly dominant -> SPD
    }
}

TEST(SparseTest, MultiplyMatchesManualLaplacian)
{
    // Chain of 3: A = [[2,-1,0],[-1,3,-1],[0,-1,2]].
    SparseMatrix m = chain(3);
    std::vector<double> y;
    m.multiply({1.0, 1.0, 1.0}, y);
    EXPECT_DOUBLE_EQ(y[0], 1.0);
    EXPECT_DOUBLE_EQ(y[1], 1.0);
    EXPECT_DOUBLE_EQ(y[2], 1.0);
    m.multiply({1.0, 0.0, 0.0}, y);
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(SparseTest, EveryRowHasDiagonal)
{
    SparseMatrix m = chain(10);
    for (std::uint32_t i = 0; i < m.n; ++i) {
        bool has = false;
        for (std::uint32_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
            has |= m.col[e] == i;
        ASSERT_TRUE(has) << i;
    }
}

TEST(SparseTest, BytesAccountsAllArrays)
{
    SparseMatrix m = chain(5);
    EXPECT_EQ(m.bytes(), m.row_ptr.size() * 4 + m.col.size() * 4 +
                             m.val.size() * 8);
}

} // namespace
} // namespace rnr
