#include <gtest/gtest.h>

#include "workloads/graph_gen.h"
#include "workloads/partition.h"

namespace rnr {
namespace {

TEST(PartitionTest, EveryVertexAssignedExactlyOnce)
{
    Graph g = makeUrandGraph(2048, 6, 4);
    Partitioning p = partitionGraph(g, 4);
    ASSERT_EQ(p.order.size(), g.num_vertices);
    std::vector<bool> seen(g.num_vertices, false);
    for (std::uint32_t v : p.order) {
        ASSERT_LT(v, g.num_vertices);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(PartitionTest, PartitionsAreBalanced)
{
    Graph g = makeUrandGraph(4096, 6, 5);
    Partitioning p = partitionGraph(g, 4);
    for (unsigned part = 0; part < 4; ++part) {
        const std::uint32_t size =
            p.starts[part + 1] - p.starts[part];
        EXPECT_NEAR(size, 1024.0, 200.0) << part;
    }
}

TEST(PartitionTest, StartsConsistentWithPartitionMap)
{
    Graph g = makeRoadGraph(32, 32, 6);
    Partitioning p = partitionGraph(g, 4);
    for (unsigned part = 0; part < 4; ++part) {
        for (std::uint32_t i = p.starts[part]; i < p.starts[part + 1];
             ++i)
            ASSERT_EQ(p.partition[p.order[i]], part);
    }
}

TEST(PartitionTest, SpatialGraphGetsLowEdgeCut)
{
    Graph g = makeRoadGraph(64, 64, 7);
    Partitioning p = partitionGraph(g, 4);
    // BFS growth on a planar grid keeps the cut small; random
    // assignment would cut ~75% of edges.
    EXPECT_LT(p.edgeCut(g), 0.25);
}

TEST(PartitionTest, HandlesDisconnectedVertices)
{
    // A graph with isolated vertices (no edges at all).
    Graph g;
    g.num_vertices = 64;
    g.offsets.assign(65, 0);
    Partitioning p = partitionGraph(g, 4);
    EXPECT_EQ(p.order.size(), 64u);
    for (unsigned part = 0; part < 4; ++part)
        EXPECT_EQ(p.starts[part + 1] - p.starts[part], 16u);
}

TEST(PartitionTest, SinglePartitionIsIdentityCut)
{
    Graph g = makeUrandGraph(256, 4, 8);
    Partitioning p = partitionGraph(g, 1);
    EXPECT_EQ(p.edgeCut(g), 0.0);
}

} // namespace
} // namespace rnr
