#include <gtest/gtest.h>

#include "workloads/graph_gen.h"
#include "workloads/partition.h"

namespace rnr {
namespace {

TEST(GraphGenTest, UrandDeterministicAndSized)
{
    Graph a = makeUrandGraph(1024, 8, 5);
    Graph b = makeUrandGraph(1024, 8, 5);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.num_vertices, 1024u);
    // Dedup removes a few, but the bulk remains.
    EXPECT_GT(a.numEdges(), 1024u * 6);
    EXPECT_LE(a.numEdges(), 1024u * 8);
}

TEST(GraphGenTest, NoSelfLoops)
{
    Graph g = makeUrandGraph(512, 8, 9);
    for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
        for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e)
            ASSERT_NE(g.edges[e], v);
    }
}

TEST(GraphGenTest, CommunityGraphHasLocality)
{
    // Partitioning a community graph should cut far fewer edges than
    // partitioning a uniform random one.
    Graph community = makeCommunityGraph(4096, 8, 64, 0.9, 3);
    Graph random = makeUrandGraph(4096, 8, 3);
    const double cut_c =
        partitionGraph(community, 4).edgeCut(community);
    const double cut_r = partitionGraph(random, 4).edgeCut(random);
    EXPECT_LT(cut_c, cut_r * 0.7);
}

TEST(GraphGenTest, RoadGraphNearRegularDegree)
{
    Graph g = makeRoadGraph(64, 64, 7);
    EXPECT_EQ(g.num_vertices, 64u * 64);
    double total = 0;
    std::uint32_t max_deg = 0;
    for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
        total += g.degree(v);
        max_deg = std::max(max_deg, g.degree(v));
    }
    const double avg = total / g.num_vertices;
    EXPECT_GT(avg, 3.0);
    EXPECT_LT(avg, 6.0);
    EXPECT_LE(max_deg, 16u); // no hubs in a road network
}

class GraphInputTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GraphInputTest, RegistryProducesValidGraphs)
{
    const GraphInput in = makeGraphInput(GetParam());
    EXPECT_EQ(in.name, GetParam());
    EXPECT_GT(in.graph.num_vertices, 10000u);
    EXPECT_GT(in.graph.numEdges(), in.graph.num_vertices);
    EXPECT_EQ(in.graph.offsets.size(), in.graph.num_vertices + 1u);
    EXPECT_EQ(in.graph.offsets.back(), in.graph.numEdges());
}

INSTANTIATE_TEST_SUITE_P(TableIII, GraphInputTest,
                         ::testing::ValuesIn(graphInputNames()));

TEST(GraphGenTest, UnknownInputThrows)
{
    EXPECT_THROW(makeGraphInput("nope"), std::invalid_argument);
}

} // namespace
} // namespace rnr
