#include <gtest/gtest.h>

#include "workloads/graph_gen.h"
#include "workloads/labelprop.h"

namespace rnr {
namespace {

WorkloadOptions
opts()
{
    WorkloadOptions o;
    o.cores = 2;
    return o;
}

std::vector<TraceBuffer>
emit(LabelPropWorkload &wl, unsigned iter, bool last)
{
    std::vector<TraceBuffer> bufs(wl.cores());
    wl.emitIteration(iter, last, bufs);
    return bufs;
}

TEST(LabelPropTest, ConvergesToComponentMinima)
{
    // A connected random graph converges to a single label: 0.
    LabelPropWorkload wl(makeUrandGraph(512, 8, 41), opts());
    unsigned it = 0;
    while (it < 64) {
        emit(wl, it, false);
        ++it;
        if (wl.lastChanged() == 0)
            break;
    }
    EXPECT_EQ(wl.lastChanged(), 0u);
    EXPECT_EQ(wl.distinctLabels(), 1u);
    EXPECT_EQ(wl.label(100), 0u);
}

TEST(LabelPropTest, DisconnectedComponentsKeepSeparateLabels)
{
    // Two cliques with no edge between them.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t i = 0; i < 8; ++i) {
        for (std::uint32_t j = 0; j < 8; ++j) {
            if (i != j) {
                edges.emplace_back(i, j);
                edges.emplace_back(8 + i, 8 + j);
            }
        }
    }
    LabelPropWorkload wl(Graph::fromEdgeList(16, edges), opts());
    for (unsigned it = 0; it < 8; ++it)
        emit(wl, it, it == 7);
    EXPECT_EQ(wl.distinctLabels(), 2u);
}

TEST(LabelPropTest, TraceTargetsTheLabelArray)
{
    LabelPropWorkload wl(makeUrandGraph(256, 6, 43), opts());
    auto bufs = emit(wl, 0, false);
    const auto &recs = bufs[0].records();
    EXPECT_EQ(recs[0].ctrl, RnrOp::Init);
    EXPECT_EQ(recs[1].ctrl, RnrOp::AddrBaseSet);
    const AddressSpace::Region *r = wl.space().find("lp_labels");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(recs[1].addr, r->base);
    EXPECT_EQ(recs[1].aux, r->bytes);
}

TEST(LabelPropTest, AccessSequenceRepeatsAcrossIterations)
{
    LabelPropWorkload wl(makeUrandGraph(256, 6, 47), opts());
    auto a = emit(wl, 1, false);
    auto b = emit(wl, 2, false);
    ASSERT_EQ(a[0].size(), b[0].size());
    for (std::size_t i = 0; i < a[0].size(); ++i)
        ASSERT_EQ(a[0].records()[i].addr, b[0].records()[i].addr) << i;
}

} // namespace
} // namespace rnr
