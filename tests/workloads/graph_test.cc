#include <gtest/gtest.h>

#include "workloads/graph.h"

namespace rnr {
namespace {

Graph
diamond()
{
    // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
    return Graph::fromEdgeList(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

TEST(GraphTest, FromEdgeListBuildsSortedCsr)
{
    Graph g = diamond();
    EXPECT_EQ(g.num_vertices, 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(3), 0u);
    EXPECT_EQ(g.edges[g.offsets[0]], 1u);
    EXPECT_EQ(g.edges[g.offsets[0] + 1], 2u);
}

TEST(GraphTest, DuplicateEdgesRemoved)
{
    Graph g = Graph::fromEdgeList(2, {{0, 1}, {0, 1}, {0, 1}});
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphTest, TransposeReversesEdges)
{
    Graph t = diamond().transpose();
    // In-edges of 3 are {1, 2}.
    EXPECT_EQ(t.degree(3), 2u);
    EXPECT_EQ(t.degree(0), 0u);
    std::vector<std::uint32_t> in3(t.edges.begin() + t.offsets[3],
                                   t.edges.begin() + t.offsets[4]);
    EXPECT_EQ(in3, (std::vector<std::uint32_t>{1, 2}));
}

TEST(GraphTest, TransposeTwiceIsIdentity)
{
    Graph g = diamond();
    Graph tt = g.transpose().transpose();
    EXPECT_EQ(tt.offsets, g.offsets);
    EXPECT_EQ(tt.edges, g.edges);
}

TEST(GraphTest, OutDegreesMatchOffsets)
{
    Graph g = diamond();
    const auto deg = g.outDegrees();
    EXPECT_EQ(deg, (std::vector<std::uint32_t>{2, 1, 1, 0}));
}

TEST(GraphTest, RelabelPreservesStructure)
{
    Graph g = diamond();
    // New order: reverse the ids.
    Graph r = g.relabel({3, 2, 1, 0});
    EXPECT_EQ(r.numEdges(), g.numEdges());
    // Old edge 0->1 becomes 3->2.
    bool found = false;
    for (std::uint32_t e = r.offsets[3]; e < r.offsets[4]; ++e)
        found |= r.edges[e] == 2;
    EXPECT_TRUE(found);
}

TEST(GraphTest, BytesCoversBothArrays)
{
    Graph g = diamond();
    EXPECT_EQ(g.bytes(), (g.offsets.size() + g.edges.size()) * 4);
}

} // namespace
} // namespace rnr
