#include <gtest/gtest.h>

#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

namespace rnr {
namespace {

WorkloadOptions
opts(bool use_rnr = true)
{
    WorkloadOptions o;
    o.cores = 2;
    o.use_rnr = use_rnr;
    return o;
}

PageRankWorkload
makeSmall(bool use_rnr = true)
{
    return PageRankWorkload(makeUrandGraph(512, 6, 17), opts(use_rnr));
}

std::vector<TraceBuffer>
emit(PageRankWorkload &wl, unsigned iter, bool last)
{
    std::vector<TraceBuffer> bufs(wl.cores());
    wl.emitIteration(iter, last, bufs);
    return bufs;
}

TEST(PageRankTest, ConvergesOnSmallGraph)
{
    PageRankWorkload wl = makeSmall();
    double prev = 1e300;
    for (unsigned it = 0; it < 12; ++it) {
        emit(wl, it, it == 11);
        if (it >= 2) {
            EXPECT_LT(wl.lastDiff(), prev * 1.2) << it;
        }
        prev = wl.lastDiff();
    }
    EXPECT_LT(wl.lastDiff(), 1e-2);
}

TEST(PageRankTest, ScaledRanksArePositiveAndBounded)
{
    PageRankWorkload wl = makeSmall();
    for (unsigned it = 0; it < 5; ++it)
        emit(wl, it, it == 4);
    double mass = 0.0;
    const Graph &g = wl.inGraph();
    for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
        ASSERT_GE(wl.rank(v), 0.0);
        mass += wl.rank(v); // scaled by degree, so just a sanity bound
    }
    EXPECT_GT(mass, 0.0);
    EXPECT_LT(mass, 10.0);
}

TEST(PageRankTest, FirstIterationEmitsRnrSetup)
{
    PageRankWorkload wl = makeSmall();
    auto bufs = emit(wl, 0, false);
    // Per core: Init, 2x AddrBaseSet, AddrEnable, Start, then the
    // epilogue disable/enable pair.
    ASSERT_GE(bufs[0].controls(), 7u);
    const auto &recs = bufs[0].records();
    EXPECT_EQ(recs[0].ctrl, RnrOp::Init);
    EXPECT_EQ(recs[1].ctrl, RnrOp::AddrBaseSet);
    EXPECT_EQ(recs[2].ctrl, RnrOp::AddrBaseSet);
    EXPECT_EQ(recs[3].ctrl, RnrOp::AddrEnable);
    EXPECT_EQ(recs[4].ctrl, RnrOp::Start);
    // Epilogue swaps the enabled base (Algorithm 1 lines 31-33).
    EXPECT_EQ(recs[recs.size() - 2].ctrl, RnrOp::AddrDisable);
    EXPECT_EQ(recs[recs.size() - 1].ctrl, RnrOp::AddrEnable);
}

TEST(PageRankTest, ReplayIterationsStartWithReplayCall)
{
    PageRankWorkload wl = makeSmall();
    emit(wl, 0, false);
    auto bufs = emit(wl, 1, false);
    EXPECT_EQ(bufs[0].records()[0].ctrl, RnrOp::Replay);
}

TEST(PageRankTest, LastIterationTearsDown)
{
    PageRankWorkload wl = makeSmall();
    emit(wl, 0, false);
    auto bufs = emit(wl, 1, true);
    const auto &recs = bufs[0].records();
    EXPECT_EQ(recs[recs.size() - 2].ctrl, RnrOp::EndState);
    EXPECT_EQ(recs[recs.size() - 1].ctrl, RnrOp::Free);
}

TEST(PageRankTest, DisabledRnrEmitsNoControls)
{
    PageRankWorkload wl = makeSmall(/*use_rnr=*/false);
    auto bufs = emit(wl, 0, true);
    for (const auto &b : bufs)
        EXPECT_EQ(b.controls(), 0u);
}

TEST(PageRankTest, TraceShapeMatchesGraph)
{
    PageRankWorkload wl = makeSmall(/*use_rnr=*/false);
    auto bufs = emit(wl, 0, false);
    std::uint64_t loads = 0, stores = 0;
    for (const auto &b : bufs) {
        loads += b.loads();
        stores += b.stores();
    }
    const Graph &g = wl.inGraph();
    const std::uint64_t V = g.num_vertices, E = g.numEdges();
    // Edge phase: V offsets + 2E edge/value loads; normalise: 3V loads.
    EXPECT_EQ(loads, V + 2 * E + 3 * V);
    // Edge phase: V p_next stores; normalise: 2V stores.
    EXPECT_EQ(stores, 3 * V);
}

TEST(PageRankTest, IterationTracesAreRepeatable)
{
    // The premise of RnR: the access sequence repeats across iterations.
    PageRankWorkload wl = makeSmall(/*use_rnr=*/false);
    emit(wl, 0, false);
    auto it1 = emit(wl, 1, false);
    emit(wl, 2, false);
    auto it3 = emit(wl, 3, false);
    // Odd iterations share the same base assignment (the p_curr/p_next
    // swap has period 2), so the address sequences match exactly.
    ASSERT_EQ(it1[0].size(), it3[0].size());
    for (std::size_t i = 0; i < it1[0].size(); ++i) {
        ASSERT_EQ(it1[0].records()[i].addr, it3[0].records()[i].addr)
            << i;
    }
}

TEST(PageRankTest, DropletHintResolvesVertexAddresses)
{
    PageRankWorkload wl = makeSmall();
    emit(wl, 0, false); // sets the simulated-current base
    DropletHint hint = wl.dropletHint(0);
    ASSERT_TRUE(static_cast<bool>(hint.target_of));
    ASSERT_GT(hint.edge_count, 0u);
    const Addr a = hint.target_of(0);
    const AddressSpace::Region *curr = wl.space().find("pr_pcurr");
    const AddressSpace::Region *next = wl.space().find("pr_pnext");
    ASSERT_NE(curr, nullptr);
    ASSERT_NE(next, nullptr);
    const bool in_curr =
        a >= curr->base && a < curr->base + curr->bytes;
    const bool in_next =
        a >= next->base && a < next->base + next->bytes;
    EXPECT_TRUE(in_curr || in_next);
}

} // namespace
} // namespace rnr
